#!/usr/bin/env python
"""Aggregate bench_results/*.txt into a single REPORT.md.

Run after ``pytest benchmarks/ --benchmark-only``:

    python tools/make_report.py [--output REPORT.md]

The report embeds every saved table in a fixed, paper-figure order with
section headers, so one file captures a full reproduction run.
"""

from __future__ import annotations

import argparse
import datetime
import platform
from pathlib import Path

SECTIONS = [
    ("eq_memory_model", "E5 — Equations 1–4 (analytic memory model)"),
    ("fig4_unet", "E1 — Figure 4a: UNet memory timeline"),
    ("fig4_vgg16", "E1 — Figure 4b: VGG-16 memory timeline"),
    ("fig10_peak_memory", "E2 — Figure 10: peak memory across variants"),
    ("fig10_geomean", "E6 — headline geomean reduction"),
    ("fig11_inference_time", "E3 — Figure 11: end-to-end inference time"),
    ("fig12_accuracy", "E4 — Figure 12: accuracy preservation"),
    ("fig12_trained", "E4b — Figure 12 with trained weights"),
    ("pareto_tradeoff", "E7 — memory/time Pareto"),
    ("ablation_thresholds", "A1 — skip-opt thresholds"),
    ("ablation_decomposition", "A2 — decomposition method/ratio"),
    ("ablation_transform", "A3 — concat strategy"),
    ("ablation_tile_size", "A4 — fused-kernel tile size"),
    ("ablation_inplace", "A5 — accounting policy"),
    ("ablation_arena", "A6 — static arena planning"),
    ("ablation_scheduling", "A7 — memory-aware scheduling"),
]


def build_report(results_dir: Path) -> str:
    lines = [
        "# TeMCO reproduction — benchmark report",
        "",
        f"- generated: {datetime.datetime.now().isoformat(timespec='seconds')}",
        f"- host: {platform.platform()} / Python {platform.python_version()}",
        "- regenerate: `pytest benchmarks/ --benchmark-only && "
        "python tools/make_report.py`",
        "",
    ]
    missing = []
    for stem, title in SECTIONS:
        path = results_dir / f"{stem}.txt"
        lines.append(f"## {title}")
        lines.append("")
        if path.exists():
            lines.append("```")
            lines.append(path.read_text().rstrip())
            lines.append("```")
        else:
            missing.append(stem)
            lines.append(f"*missing — run the `{stem}` benchmark first*")
        lines.append("")
    if missing:
        lines.insert(5, f"- **incomplete run**: missing {', '.join(missing)}")
    return "\n".join(lines) + "\n"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--results", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "bench_results")
    parser.add_argument("--output", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "REPORT.md")
    args = parser.parse_args(argv)
    report = build_report(args.results)
    args.output.write_text(report)
    print(f"wrote {args.output} ({len(report.splitlines())} lines)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
