"""A3 — ablation: concat strategy (Figure 9a merge vs 9c split vs none).

The paper merges lconvs for DenseNet/UNet ("Merging lconv requires more
memory space for weights but reduces the total peak memory usage by
reducing the number of fused kernels").  The sweep quantifies both
directions: peak internal memory, weight growth, and kernel counts.
"""

from repro.bench import ablate_concat_strategy, fast_mode, format_table

from _bench_util import run_once

MODELS = ("unet_small",) if fast_mode() else ("unet_small", "densenet")


def test_concat_strategy_ablation(benchmark, report_sink):
    points = run_once(benchmark,
                      lambda: ablate_concat_strategy(models=MODELS, batch=2))

    table = [[p.model, p.strategy, p.peak_mib, p.weight_mib, p.fused_kernels,
              p.node_count] for p in points]
    report_sink("ablation_transform", format_table(
        ["model", "strategy", "peak MiB", "weights MiB", "fused kernels",
         "nodes"], table,
        title="A3: concat strategy (merge=Fig.9a, split=Fig.9c)"))

    by = {(p.model, p.strategy): p for p in points}
    for model in MODELS:
        merge, split, none = (by[(model, s)] for s in ("merge", "split", "none"))
        # transforms help: merge beats doing nothing on concat models
        assert merge.peak_mib <= none.peak_mib + 1e-9, model
        # the paper's trade-off: merged weights are never smaller
        assert merge.weight_mib >= split.weight_mib - 1e-9, model
