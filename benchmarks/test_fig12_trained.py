"""E4b — Figure 12 with *trained* weights (companion to test_fig12_accuracy).

The paper trains its decomposed models; without offline ImageNet we
train a small CNN on the synthetic classification task, decompose it,
fine-tune the decomposed model, and verify that TeMCO's optimization
keeps the genuinely-learned accuracy bit-for-bit — the strongest form
of the Figure 12 claim this substrate can make.
"""

import numpy as np

from repro.bench import format_table
from repro.core import optimize
from repro.data import classification_batch, topk_accuracy
from repro.decompose import DecompositionConfig, decompose_graph
from repro.ir import GraphBuilder
from repro.runtime import execute
from repro.train import SGDConfig, train_classifier

from _bench_util import run_once


def _cnn(batch, hw=16, num_classes=4, seed=0):
    b = GraphBuilder("trained_cnn", seed=seed)
    x = b.input("image", (batch, 3, hw, hw))
    h = b.relu(b.conv2d(x, 16, 3, padding=1, name="c1"))
    h = b.maxpool2d(h, 2)
    h = b.relu(b.conv2d(h, 32, 3, padding=1, name="c2"))
    h = b.relu(b.conv2d(h, 32, 3, padding=1, name="c3"))
    h = b.flatten(b.global_avgpool(h))
    return b.finish(b.linear(h, num_classes, name="fc"))


def test_fig12_trained_accuracy(benchmark, report_sink):
    def experiment():
        train_batch, eval_batch, classes = 32, 96, 4
        model = _cnn(train_batch, num_classes=classes)
        train_classifier(model, steps=50, num_classes=classes,
                         config=SGDConfig(learning_rate=0.08))
        decomposed = decompose_graph(model, DecompositionConfig(ratio=0.5))
        # fine-tune the decomposed model (the paper's "direct training")
        train_classifier(decomposed, steps=25, num_classes=classes, seed=500,
                         config=SGDConfig(learning_rate=0.02))
        optimized, report = optimize(decomposed)

        data = classification_batch(eval_batch, hw=16, num_classes=classes,
                                    seed=424242)
        results = {}
        for label, graph in (("original", model), ("decomposed", decomposed),
                             ("TeMCO", optimized)):
            eval_graph = _rebatch(graph, eval_batch)
            logits = execute(eval_graph, {"image": data.images}).output()
            results[label] = (topk_accuracy(logits, data.labels, k=1),
                              topk_accuracy(logits, data.labels, k=3))
        return results, report

    results, report = run_once(benchmark, experiment)
    rows = [[label, top1, topk] for label, (top1, topk) in results.items()]
    report_sink("fig12_trained", format_table(
        ["variant", "top-1", "top-3"], rows,
        title="Figure 12 (trained weights, synthetic 4-class task): "
              f"TeMCO peak reduction {report.peak_reduction:.1%}"))

    # the model genuinely learned the task
    assert results["original"][0] > 0.5
    # fine-tuned decomposition retains signal
    assert results["decomposed"][0] > 0.4
    # TeMCO changes nothing (the paper's claim)
    assert results["TeMCO"] == results["decomposed"]


def _rebatch(graph, batch):
    """Clone a graph at a different batch size, sharing trained weights."""
    from repro.ir.serialize import graph_from_dict, graph_to_dict
    structure, weights = graph_to_dict(graph)
    for vd in structure["inputs"]:
        vd["shape"][0] = batch
    for nd in structure["nodes"]:
        nd["output"]["shape"][0] = batch
    return graph_from_dict(structure, weights)
