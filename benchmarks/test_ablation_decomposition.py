"""A2 — ablation: decomposition method (Tucker/CP/TT) and ratio.

TeMCO's passes apply to any decomposition that ends its sequences with
1×1 fconv/lconv layers (§5).  The sweep shows, per method and ratio:
weight memory, factorization fit error, and the decomposed/optimized
internal peaks — demonstrating the optimizations are method-agnostic.
"""

from repro.bench import ablate_decomposition, fast_mode, format_table

from _bench_util import run_once

RATIOS = (0.1, 0.5) if fast_mode() else (0.05, 0.1, 0.25, 0.5)
METHODS = ("tucker", "tt") if fast_mode() else ("tucker", "cp", "tt")


def test_decomposition_ablation(benchmark, report_sink):
    points = run_once(benchmark, lambda: ablate_decomposition(
        "unet_small", batch=2, hw=32, methods=METHODS, ratios=RATIOS))

    table = [[p.method, p.ratio, p.weight_mib, p.mean_fit_error,
              p.peak_decomposed_mib, p.peak_optimized_mib] for p in points]
    report_sink("ablation_decomposition", format_table(
        ["method", "ratio", "weights MiB", "fit error", "peak dec MiB",
         "peak TeMCO MiB"], table,
        title="A2: decomposition method/ratio sweep (unet_small, batch 2)"))

    by = {(p.method, p.ratio): p for p in points}
    for method in METHODS:
        series = [by[(method, r)] for r in sorted(RATIOS)]
        # more rank -> more weights, better fit
        weights = [p.weight_mib for p in series]
        errors = [p.mean_fit_error for p in series]
        assert all(a <= b + 1e-9 for a, b in zip(weights, weights[1:]))
        assert all(a >= b - 5e-2 for a, b in zip(errors, errors[1:]))
        # TeMCO reduces the peak for every method at the paper's ratio
        assert by[(method, 0.1)].peak_optimized_mib < \
            by[(method, 0.1)].peak_decomposed_mib
