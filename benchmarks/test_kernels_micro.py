"""Kernel micro-benchmarks (pytest-benchmark proper timing).

Times the individual compute kernels that every experiment is built
from, at shapes representative of the zoo, including the central
comparison: separate lconv/act/fconv layers vs the fused tiled kernel
(the source of Figure 11's overhead).
"""

import numpy as np
import pytest

from repro.kernels import (conv2d, fused_block, get_activation, maxpool2d,
                           pointwise_conv)

RNG = np.random.default_rng(0)


def _data(shape):
    return RNG.normal(size=shape).astype(np.float32)


class TestConvKernels:
    def test_conv3x3_64ch(self, benchmark):
        x = _data((4, 64, 32, 32))
        w = _data((64, 64, 3, 3))
        benchmark(conv2d, x, w, None, (1, 1), (1, 1))

    def test_conv3x3_strided(self, benchmark):
        x = _data((4, 64, 32, 32))
        w = _data((128, 64, 3, 3))
        benchmark(conv2d, x, w, None, (2, 2), (1, 1))

    def test_pointwise_256to26(self, benchmark):
        # the fconv of a ratio-0.1 decomposed 256-channel conv
        x = _data((4, 256, 16, 16))
        w = _data((26, 256))
        benchmark(pointwise_conv, x, w)

    def test_depthwise(self, benchmark):
        x = _data((4, 64, 32, 32))
        w = _data((64, 1, 3, 3))
        benchmark(conv2d, x, w, None, (1, 1), (1, 1), 64)

    def test_maxpool(self, benchmark):
        x = _data((4, 64, 32, 32))
        benchmark(maxpool2d, x, (2, 2))


class TestFusedVsSeparate:
    """The Figure-11 story at kernel granularity."""

    C_IN, C_PRIME, C_OUT, HW = 26, 256, 26, 16

    def _weights(self):
        return (_data((self.C_PRIME, self.C_IN)), _data(self.C_PRIME),
                _data((self.C_OUT, self.C_PRIME)), _data(self.C_OUT))

    def test_separate_layers(self, benchmark):
        x = _data((4, self.C_IN, self.HW, self.HW))
        w1, b1, w2, b2 = self._weights()
        relu = get_activation("relu")

        def run():
            full = pointwise_conv(x, w1, b1)
            return pointwise_conv(relu(full), w2, b2)

        benchmark(run)

    @pytest.mark.parametrize("block", [8, 32, 256])
    def test_fused_kernel(self, benchmark, block):
        x = _data((4, self.C_IN, self.HW, self.HW))
        w1, b1, w2, b2 = self._weights()
        benchmark(fused_block, x, w1, b1, w2, b2, "relu", None, 0, block)

    def test_fused_with_spatial_tiling(self, benchmark):
        x = _data((4, self.C_IN, self.HW, self.HW))
        w1, b1, w2, b2 = self._weights()
        benchmark(fused_block, x, w1, b1, w2, b2, "relu", None, 0, 32, 8)
