"""E4 — Figure 12: TeMCO does not change model accuracy.

Paper: top-5 accuracy (classification) and dice score (UNet) of the
optimized models equal the decomposed baselines, because the compiler
transformations preserve semantics.

Without offline ImageNet/Carvana our absolute metrics are chance-level
(random weights on synthetic data); the reproducible claim is the
*equality*: every TeMCO variant agrees with the decomposed baseline on
every prediction, and the task metric is bit-identical.
"""

from repro.bench import (PAPER_LABELS, fast_mode, figure12, format_table)
from repro.models import model_names

from _bench_util import run_once

MODELS = ["alexnet", "vgg16", "resnet18", "densenet", "unet_small"] \
    if fast_mode() else model_names()
BATCH = 4 if fast_mode() else 16


def test_fig12_accuracy(benchmark, report_sink):
    rows = run_once(benchmark, lambda: figure12(models=MODELS, batch=BATCH,
                                                hw=32))

    table = [[r.model, PAPER_LABELS[r.variant], r.metric,
              r.agreement_with_decomposed] for r in rows]
    report_sink("fig12_accuracy", format_table(
        ["model", "variant", "top-5 / dice", "agreement vs decomposed"],
        table, title=f"Figure 12 (batch {BATCH}, synthetic data): TeMCO "
                     f"variants must match the decomposed baseline exactly"))

    by_model: dict[str, dict[str, float]] = {}
    for r in rows:
        by_model.setdefault(r.model, {})[r.variant] = r.metric
        # the paper's claim: semantics (and thus predictions) unchanged
        assert r.agreement_with_decomposed == 1.0, (r.model, r.variant)

    for model, metrics in by_model.items():
        baseline = metrics["decomposed"]
        for variant, value in metrics.items():
            assert value == baseline, (model, variant)
