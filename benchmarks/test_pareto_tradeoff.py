"""E7 — the paper's implicit trade-off: memory saved vs time paid.

Figures 10 and 11 together make TeMCO's case: a large internal-memory
reduction for a modest inference-time overhead.  This bench joins the
two measurements per model into one Pareto table and asserts the deal
is favourable across the zoo — every model must save a larger fraction
of internal memory than the fraction of time it gives up.
"""

from repro.bench import (MIB, build_variants, fast_mode, format_table,
                         variant_names_for)
from repro.core import estimate_peak_internal
from repro.runtime import InferenceSession

from _bench_util import run_once

MODELS = ("vgg16", "unet_small") if fast_mode() \
    else ("alexnet", "vgg16", "resnet18", "densenet", "unet_small")
BATCH = 4
HW = 32


def test_memory_time_pareto(benchmark, report_sink):
    def compute():
        rows = []
        for model in MODELS:
            vs = build_variants(model, batch=BATCH, hw=HW)
            inputs = vs.input_batch()
            best = variant_names_for(model)[-1]
            base_graph = vs.graphs["decomposed"]
            opt_graph = vs.graphs[best]
            t_base = InferenceSession(base_graph).time_inference(
                inputs, warmup=1, repeats=2).median
            t_opt = InferenceSession(opt_graph).time_inference(
                inputs, warmup=1, repeats=2).median
            m_orig = estimate_peak_internal(vs.graphs["original"])
            m_opt = estimate_peak_internal(opt_graph)
            rows.append([model,
                         m_orig / MIB, m_opt / MIB,
                         1.0 - m_opt / m_orig,
                         t_base * 1e3, t_opt * 1e3,
                         t_opt / t_base])
        return rows

    rows = run_once(benchmark, compute)
    report_sink("pareto_tradeoff", format_table(
        ["model", "orig MiB", "TeMCO MiB", "mem reduction",
         "decomposed ms", "TeMCO ms", "time ratio"], rows,
        title=f"E7: memory/time Pareto (batch {BATCH}, hw {HW})"))

    for model, _mo, _mt, reduction, _tb, _to, ratio in rows:
        # every model trades a substantial memory cut for a bounded
        # constant-factor slowdown (the paper's qualitative deal; our
        # Python-dispatch overhead inflates the ratio for kernel-heavy
        # DenseNet, so the bound is loose)
        assert reduction > 0.2, model
        assert ratio < 4.0, f"{model}: time ratio {ratio:.2f}x"
