"""A5/A6 — ablations: accounting policy and deployment arena size.

A5 (in-place policy): the paper's Eq. 3/4 count each activation's
input+output pair; PyTorch's ``inplace=True`` ReLUs collapse it.  TeMCO's
advantage must not be an artifact of the conservative policy — this
bench re-measures Figure 10's comparison under in-place accounting.

A6 (arena): deployment runtimes pre-plan one static arena from the
liveness intervals (Pisarchyk & Lee 2020; Occamy DAC'23 — the paper's
§5 related work).  TeMCO's live-set reduction must carry through to
the arena bytes an embedded deployment would actually reserve.
"""

import pytest

from repro.bench import MIB, build_variants, fast_mode, format_table, variant_names_for
from repro.core import estimate_peak_internal
from repro.runtime import plan_arena

from _bench_util import run_once

MODELS = ("vgg16", "unet_small") if fast_mode() \
    else ("alexnet", "vgg16", "resnet18", "densenet", "unet_small")
BATCH = 2


def test_inplace_policy_ablation(benchmark, report_sink):
    def compute():
        rows = []
        for model in MODELS:
            vs = build_variants(model, batch=BATCH)
            for variant in variant_names_for(model):
                g = vs.graphs[variant]
                rows.append([model, variant,
                             estimate_peak_internal(g) / MIB,
                             estimate_peak_internal(g, inplace_activations=True) / MIB])
        return rows

    rows = run_once(benchmark, compute)
    report_sink("ablation_inplace", format_table(
        ["model", "variant", "peak MiB (Eq.3/4 policy)", "peak MiB (inplace)"],
        rows, title="A5: accounting policy (batch 2)"))

    by_model: dict[str, dict[str, tuple[float, float]]] = {}
    for model, variant, default, inplace in rows:
        by_model.setdefault(model, {})[variant] = (default, inplace)
        assert inplace <= default + 1e-9
    for model, variants in by_model.items():
        best = min(v for k, (d, v) in variants.items()
                   if k not in ("original", "decomposed"))
        _, orig_inplace = variants["original"]
        # TeMCO still wins under the in-place policy
        assert best < orig_inplace, model


def test_arena_ablation(benchmark, report_sink):
    def compute():
        rows = []
        for model in MODELS:
            vs = build_variants(model, batch=BATCH)
            for variant in variant_names_for(model):
                g = vs.graphs[variant]
                plan = plan_arena(g)
                rows.append([model, variant, plan.arena_bytes / MIB,
                             plan.fragmentation,
                             estimate_peak_internal(g) / MIB])
        return rows

    rows = run_once(benchmark, compute)
    report_sink("ablation_arena", format_table(
        ["model", "variant", "arena MiB", "fragmentation", "live-peak MiB"],
        rows, title="A6: static arena planning (batch 2)"))

    by_model: dict[str, dict[str, float]] = {}
    for model, variant, arena, frag, _live in rows:
        by_model.setdefault(model, {})[variant] = arena
        assert frag < 1.0  # greedy best-fit stays within 2x of optimal
    for model, variants in by_model.items():
        best = min(v for k, v in variants.items()
                   if k not in ("original", "decomposed"))
        # the live-set reduction carries to the deployment arena
        assert best < variants["original"], model
