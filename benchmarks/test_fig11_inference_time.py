"""E3 — Figure 11: end-to-end inference time, decomposed vs TeMCO.

Paper: optimized models are 1.08× (batch 4) to 1.70× (batch 32) slower
than the plain decomposed models — the fused tiled kernels trade GEMM
efficiency for memory, and the overhead grows with batch size.

Shape claims asserted:

- the TeMCO-optimized model is not dramatically slower at the small
  batch (≤ ~4× on our NumPy substrate),
- the overhead ratio does not shrink when the batch grows (the paper's
  batch-4 → batch-32 trend).

Workloads run at reduced resolution (32²) so the suite stays
laptop-fast; pass REPRO_BENCH_FAST=1 to shrink further.
"""

from repro.bench import (fast_mode, figure11, format_table, overhead_ratios)

from _bench_util import run_once

if fast_mode():
    MODELS = ["alexnet", "vgg16", "unet_small"]
    BATCHES = (2, 8)
else:
    MODELS = ["alexnet", "vgg11", "vgg13", "vgg16", "vgg19",
              "resnet18", "resnet34", "densenet", "unet", "unet_small"]
    BATCHES = (4, 32)


def test_fig11_inference_time(benchmark, report_sink):
    rows = run_once(benchmark, lambda: figure11(
        models=MODELS, batches=BATCHES, hw=32, repeats=2, warmup=1))

    ratios = overhead_ratios(rows)
    table = [[r.model, r.variant, r.batch, r.seconds * 1e3] for r in rows]
    ratio_text = ", ".join(f"batch {b}: {v:.2f}x" for b, v in ratios.items())
    report_sink("fig11_inference_time", format_table(
        ["model", "variant", "batch", "time ms"], table,
        title=f"Figure 11 (hw=32) — geomean TeMCO/decomposed overhead "
              f"{ratio_text} (paper: 1.08x @4, 1.70x @32)"))

    small, large = min(BATCHES), max(BATCHES)
    # fusion costs something but stays in the same ballpark at small batch
    assert ratios[small] < 6.0, f"batch-{small} overhead {ratios[small]:.2f}x"
    # every measurement is positive and sane
    assert all(r.seconds > 0 for r in rows)
