"""A1 — ablation: Algorithm 1's DISTANCE_THRESHOLD / COMPUTE_THRESHOLD.

The paper notes (§4.2) that skip-connection optimization must be
*selective*: copying deep restore chains costs compute, so the guards
control a coverage/overhead trade-off.  This sweep shows how the number
of optimized connections responds to the two thresholds on DenseNet
(many skip connections of varying depth).
"""

from repro.bench import ablate_thresholds, fast_mode, format_table

from _bench_util import run_once

DIST = (2, 4, 8) if fast_mode() else (2, 4, 8, 16, 32)
SLACKS = (0.1, 1.0) if fast_mode() else (0.1, 1.0, 10.0)


def test_threshold_ablation(benchmark, report_sink):
    points = run_once(benchmark, lambda: ablate_thresholds(
        "densenet", batch=2, distance_thresholds=DIST, compute_slacks=SLACKS))

    table = [[p.distance_threshold, p.compute_slack, p.candidates,
              p.optimized, p.peak_mib] for p in points]
    report_sink("ablation_thresholds", format_table(
        ["distance", "compute slack", "candidates", "optimized", "peak MiB"],
        table, title="A1: skip-opt threshold sweep (DenseNet, batch 2)"))

    by = {(p.distance_threshold, p.compute_slack): p for p in points}
    # larger distance threshold -> fewer candidates (monotone)
    for slack in SLACKS:
        cands = [by[(d, slack)].candidates for d in DIST]
        assert all(a >= b for a, b in zip(cands, cands[1:]))
    # tighter compute slack -> no more optimizations than looser slack
    for d in DIST:
        series = [by[(d, s)].optimized for s in sorted(SLACKS)]
        assert all(a <= b for a, b in zip(series, series[1:]))
