"""A4 — ablation: fused-kernel channel-block (tile) size.

Listing 1's tile size T controls the fused kernel's scratch footprint
and its efficiency: small tiles minimize memory but pay per-block
dispatch overhead, large tiles approach a dense contraction.  The sweep
measures both on a fused VGG variant, and the report also shows which
tiles the ``repro.tune`` autotuner actually picks per site — i.e. where
the measured optimum lands relative to the swept grid.
"""

from collections import Counter

from repro.bench import (ablate_tile_size, fast_mode, format_table,
                         tuned_tile_choices)

from _bench_util import run_once

BLOCKS = (4, 32, 256) if fast_mode() else (4, 16, 32, 64, 256)
TUNE_BUDGET = 3 if fast_mode() else 6


def test_tile_size_ablation(benchmark, report_sink):
    points = run_once(benchmark, lambda: ablate_tile_size(
        "vgg11", batch=4, hw=32, block_sizes=BLOCKS, repeats=2))
    choices = tuned_tile_choices("vgg11", batch=4, hw=32,
                                 budget=TUNE_BUDGET, repeats=1)

    table = [[p.block_size, p.scratch_mib, p.seconds * 1e3] for p in points]
    modal_block, picks = Counter(c.block_size for c in choices).most_common(1)[0]
    report_sink("ablation_tile_size", "\n\n".join([
        format_table(
            ["block size", "scratch MiB", "time ms"], table,
            title="A4: fused-kernel tile size (vgg11, batch 4, hw 32)"),
        format_table(
            ["site", "tuned block", "tuned tile", "best ms", "default ms"],
            [[c.site, c.block_size, c.spatial_tile, c.best_ms, c.default_ms]
             for c in choices],
            title=f"autotuner picks (modal block {modal_block}, "
                  f"{picks}/{len(choices)} sites)"),
    ]))

    scratch = [p.scratch_mib for p in points]
    # scratch grows monotonically with the tile size (until clamped)
    assert all(a <= b + 1e-9 for a, b in zip(scratch, scratch[1:]))
    assert scratch[0] < scratch[-1]
    assert all(p.seconds > 0 for p in points)
    # the tuner covered every fusion site and never beat the baseline's
    # measured time by losing to it (best is min over measured trials)
    assert choices
    assert all(c.best_ms <= c.default_ms + 1e-9 for c in choices)
