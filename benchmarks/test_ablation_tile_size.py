"""A4 — ablation: fused-kernel channel-block (tile) size.

Listing 1's tile size T controls the fused kernel's scratch footprint
and its efficiency: small tiles minimize memory but pay per-block
dispatch overhead, large tiles approach a dense contraction.  The sweep
measures both on a fused VGG variant.
"""

from repro.bench import ablate_tile_size, fast_mode, format_table

from _bench_util import run_once

BLOCKS = (4, 32, 256) if fast_mode() else (4, 16, 32, 64, 256)


def test_tile_size_ablation(benchmark, report_sink):
    points = run_once(benchmark, lambda: ablate_tile_size(
        "vgg11", batch=4, hw=32, block_sizes=BLOCKS, repeats=2))

    table = [[p.block_size, p.scratch_mib, p.seconds * 1e3] for p in points]
    report_sink("ablation_tile_size", format_table(
        ["block size", "scratch MiB", "time ms"], table,
        title="A4: fused-kernel tile size (vgg11, batch 4, hw 32)"))

    scratch = [p.scratch_mib for p in points]
    # scratch grows monotonically with the tile size (until clamped)
    assert all(a <= b + 1e-9 for a, b in zip(scratch, scratch[1:]))
    assert scratch[0] < scratch[-1]
    assert all(p.seconds > 0 for p in points)
