"""E5: the paper's analytic memory model (Equations 1–4, §2.2).

Regenerates the equation values for the Figure 3 conv-pair scenario at
the paper's qualitative operating point and checks the §2.2 narrative:
decomposition shrinks weights (Eq. 2 < Eq. 1) but leaves the internal
peak at the activation pair (Eq. 4 ≈ Eq. 3 ≈ 2·C'H'W'), while the
TeMCO-fused sequence breaks below it.
"""

from repro.bench import format_table
from repro.core import (ConvPairSpec, eq1_weight_elems_original,
                        eq2_weight_elems_decomposed,
                        eq3_peak_internal_original,
                        eq4_peak_internal_decomposed, fused_peak_internal)

from _bench_util import run_once


def _spec(batch: int = 4) -> ConvPairSpec:
    # VGG-like mid-network pair at ratio 0.1
    return ConvPairSpec(c=256, h=28, w=28, k=3,
                        c_prime=256, h_prime=28, w_prime=28, k_prime=3,
                        c_dprime=256, h_dprime=14, w_dprime=14,
                        c1=26, c2=26, c3=26, c4=26, batch=batch)


def test_memory_model_equations(benchmark, report_sink):
    def compute():
        s = _spec()
        return {
            "eq1": eq1_weight_elems_original(s),
            "eq2": eq2_weight_elems_decomposed(s),
            "eq3": eq3_peak_internal_original(s),
            "eq4": eq4_peak_internal_decomposed(s),
            "fused": fused_peak_internal(s),
            "act_pair": 2 * s.batch * s.c_prime * s.h_prime * s.w_prime,
        }

    values = run_once(benchmark, compute)
    rows = [
        ["Eq.1 weights (original)", values["eq1"]],
        ["Eq.2 weights (decomposed)", values["eq2"]],
        ["Eq.3 peak internal (original)", values["eq3"]],
        ["Eq.4 peak internal (decomposed)", values["eq4"]],
        ["TeMCO fused peak internal", values["fused"]],
    ]
    report_sink("eq_memory_model",
                format_table(["quantity", "elements"], rows,
                             title="E5: Equations 1-4 (Figure 3 scenario, "
                                   "ratio 0.1, batch 4)"))

    # §2.1: decomposition shrinks weight memory dramatically
    assert values["eq2"] < 0.2 * values["eq1"]
    # §2.2: decomposition does NOT shrink the internal peak — it stays at
    # the activation pair 2·C'H'W'
    assert values["eq4"] == values["act_pair"]
    assert values["eq4"] >= 0.9 * values["eq3"]
    # Figure 5: the fused sequence finally breaks the activation pair —
    # what remains is dominated by the scenario's input tensor C·H·W
    assert values["fused"] < 0.6 * values["eq4"]
    s = _spec()
    input_elems = s.batch * s.c * s.h * s.w
    assert values["fused"] < input_elems + 2 * s.batch * s.c1 * s.h * s.w
