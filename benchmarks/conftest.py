"""Shared helpers for the benchmark suite.

Each benchmark regenerates one paper artifact (figure/table), prints
the rows, saves them under ``bench_results/`` and asserts the paper's
qualitative claims.  ``REPRO_BENCH_FAST=1`` shrinks workloads for smoke
runs.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent.parent / "bench_results"


@pytest.fixture
def report_sink():
    """Write a named report to bench_results/ and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def sink(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n[saved to bench_results/{name}.txt]")

    return sink
