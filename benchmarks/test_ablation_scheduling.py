"""A7 — ablation: memory-aware execution scheduling (§5 extension).

The paper's Compare/Peak functions order restore chains and its §5
defers general layer scheduling to prior work; our ``reschedule`` pass
implements the greedy list-scheduling variant.  This bench measures
how much scheduling adds on top of (and orthogonally to) the TeMCO
passes for the skip-connected models.
"""

from repro.bench import MIB, fast_mode, format_table
from repro.core import (TeMCOConfig, estimate_peak_internal, optimize,
                        reschedule)
from repro.decompose import DecompositionConfig, decompose_graph
from repro.models import build_model

from _bench_util import run_once

MODELS = ("unet_small",) if fast_mode() else ("unet_small", "densenet",
                                              "resnet18")


def test_scheduling_ablation(benchmark, report_sink):
    def compute():
        rows = []
        for model in MODELS:
            g = build_model(model, batch=2)
            dg = decompose_graph(g, DecompositionConfig(ratio=0.1))
            # scheduling alone on the decomposed graph
            sched_only = dg.clone()
            stats = reschedule(sched_only)
            # TeMCO without scheduling vs with scheduling
            no_sched, r1 = optimize(dg, TeMCOConfig(enable_scheduling=False))
            with_sched, r2 = optimize(dg, TeMCOConfig(enable_scheduling=True))
            rows.append([model,
                         estimate_peak_internal(dg) / MIB,
                         stats.peak_after / MIB,
                         r1.peak_after / MIB,
                         r2.peak_after / MIB])
        return rows

    rows = run_once(benchmark, compute)
    report_sink("ablation_scheduling", format_table(
        ["model", "decomposed MiB", "+schedule only MiB",
         "TeMCO (no sched) MiB", "TeMCO+schedule MiB"], rows,
        title="A7: memory-aware scheduling (batch 2)"))

    for model, dec, sched, temco, temco_sched in rows:
        # the guarded pass can never hurt, alone or inside the pipeline
        assert sched <= dec + 1e-9, model
        assert temco_sched <= temco + 1e-9, model
