"""E2/E6 — Figure 10: peak memory of the 10 models across TeMCO variants.

Paper: batch-4 inference, Tucker ratio 0.1.  Bars per model:
Original / Decomposed / Fusion (AlexNet, VGG) or Skip-Opt and
Skip-Opt+Fusion (ResNet, DenseNet, UNet).  Headline: internal-tensor
memory reduced by 75.7% (geomean) with the full pipeline.

Shape claims asserted here:

- decomposition alone leaves internal memory within 10% of original,
- the best TeMCO variant reduces internal memory for every model,
- Skip-Opt+Fusion ≤ Skip-Opt (fusion adds on top) per skip model,
- the geomean reduction lands in the paper's neighbourhood (>50%),
- weight memory shrinks with decomposition and is not inflated by
  TeMCO beyond the merged-lconv zero padding.
"""

from repro.bench import (PAPER_LABELS, bar_chart, fast_mode, figure10,
                         format_table, internal_reduction_geomean,
                         variant_names_for)
from repro.models import model_names

from _bench_util import run_once

MODELS = ["alexnet", "vgg16", "resnet18", "densenet", "unet_small"] \
    if fast_mode() else model_names()
BATCH = 2 if fast_mode() else 4


def test_fig10_peak_memory(benchmark, report_sink):
    rows = run_once(benchmark, lambda: figure10(models=MODELS, batch=BATCH))

    table = [[r.model, PAPER_LABELS[r.variant], r.weight_mib, r.internal_mib,
              r.total_mib] for r in rows]
    geo = internal_reduction_geomean(rows)
    chart = bar_chart(
        [(f"{r.model}/{PAPER_LABELS[r.variant]}", r.internal_mib)
         for r in rows],
        title="internal-tensor peak per model/variant:")
    report_sink("fig10_peak_memory", format_table(
        ["model", "variant", "weights MiB", "internal MiB", "total MiB"],
        table, title=f"Figure 10 (batch {BATCH}, Tucker ratio 0.1) — "
                     f"geomean internal reduction {geo:.1%} "
                     f"(paper: 75.7%)") + "\n\n" + chart)

    by_model = {}
    for r in rows:
        by_model.setdefault(r.model, {})[r.variant] = r

    for model, variants in by_model.items():
        orig = variants["original"]
        dec = variants["decomposed"]
        # decomposition shrinks weights...
        assert dec.weight_mib < orig.weight_mib, model
        # ...but not the internal peak (the paper's motivation)
        assert dec.internal_mib >= 0.9 * orig.internal_mib, model
        best = min(r.internal_mib for v, r in variants.items()
                   if v not in ("original", "decomposed"))
        # every model improves under its best TeMCO variant
        assert best < orig.internal_mib, model
        if "skip_opt" in variants and "skip_opt_fusion" in variants:
            assert variants["skip_opt_fusion"].internal_mib <= \
                variants["skip_opt"].internal_mib + 1e-9, model

    # headline neighbourhood (paper: 75.7% geomean)
    assert geo > 0.5, f"geomean reduction {geo:.1%} too low"


def test_geomean_reduction(benchmark, report_sink):
    """E6: the headline number on the full zoo."""
    rows = run_once(benchmark, lambda: figure10(models=MODELS, batch=BATCH))
    geo = internal_reduction_geomean(rows)
    report_sink("fig10_geomean",
                f"geomean internal-tensor reduction: {geo:.1%} (paper: 75.7%)")
    assert 0.5 < geo < 0.99
