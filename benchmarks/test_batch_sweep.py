"""E8 — batch-size sweep: TeMCO's relative reduction is batch-invariant.

Internal tensors scale linearly with batch while weights are constant,
so the paper's batch-4 measurements generalize: the *fraction* of
internal memory TeMCO removes should not depend on the batch size.
This bench verifies that on three model families across batch 1–8 and
also shows the absolute picture (weights dominate at batch 1, internal
tensors dominate at larger batches — the regime where TeMCO matters).
"""

from repro.bench import MIB, build_variants, fast_mode, format_table, variant_names_for
from repro.core import estimate_peak_internal

from _bench_util import run_once

MODELS = ("vgg16", "unet_small") if fast_mode() \
    else ("vgg16", "resnet18", "unet_small")
BATCHES = (1, 2, 4) if fast_mode() else (1, 2, 4, 8)


def test_batch_invariance(benchmark, report_sink):
    def compute():
        rows = []
        for model in MODELS:
            for batch in BATCHES:
                vs = build_variants(model, batch=batch)
                best = variant_names_for(model)[-1]
                orig = estimate_peak_internal(vs.graphs["original"])
                opt = estimate_peak_internal(vs.graphs[best])
                rows.append([model, batch, orig / MIB, opt / MIB,
                             1.0 - opt / orig,
                             vs.weight_bytes("decomposed") / MIB])
        return rows

    rows = run_once(benchmark, compute)
    report_sink("batch_sweep", format_table(
        ["model", "batch", "orig internal MiB", "TeMCO internal MiB",
         "reduction", "weights MiB"], rows,
        title="E8: batch-size sweep of the internal-memory reduction"))

    by_model: dict[str, list[float]] = {}
    for model, batch, orig, opt, reduction, _w in rows:
        by_model.setdefault(model, []).append(reduction)
        # internal memory scales with batch; reduction must stay put
        assert reduction > 0.2, (model, batch)
    for model, reductions in by_model.items():
        spread = max(reductions) - min(reductions)
        assert spread < 0.15, f"{model}: reduction varies {spread:.1%} across batches"
