"""Benchmark-suite helper (unique module name so it never collides
with tests/conftest.py when both directories are collected together)."""


def run_once(benchmark, fn):
    """Execute ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
