"""E1 — Figure 4: internal-tensor memory over the layer timeline.

Paper: 4-batch inference of UNet (4a) and VGG-16 (4b), original vs
Tucker-decomposed.  Claims reproduced:

- the decomposed timeline tracks the original closely (decomposition
  alone does not reduce internal memory),
- for UNet, skip connections hold a dominant share of the peak
  (paper: 76.2%),
- for VGG, the peaks sit at the non-decomposed activation layers.
"""

import pytest

from repro.bench import fast_mode, figure4, format_table

from _bench_util import run_once

BATCH = 2 if fast_mode() else 4


@pytest.mark.parametrize("model,hw", [("unet", 96), ("vgg16", 64)])
def test_fig4_timeline(benchmark, report_sink, model, hw):
    result = run_once(benchmark, lambda: figure4(model, batch=BATCH, hw=hw))

    rows = []
    for variant, series in result.timelines.items():
        step = max(1, len(series) // 24)
        for index, mib in series[::step]:
            rows.append([variant, index, mib])
    extra = (f"skip residency / peak: {result.skip_share_decomposed:.1%} "
             f"(paper: 76.2%); max instantaneous skip share: "
             f"{result.skip_share_instantaneous:.1%}"
             if model == "unet" else "")
    report_sink(
        f"fig4_{model}",
        format_table(["variant", "layer", "live MiB"], rows,
                     title=f"Figure 4 ({model}, batch {BATCH}): peaks "
                           f"orig={result.peaks['original']:.2f} MiB, "
                           f"decomposed={result.peaks['decomposed']:.2f} MiB. "
                           + extra))

    # decomposition alone leaves the peak within 10% of the original
    assert result.peaks["decomposed"] >= 0.9 * result.peaks["original"]
    if model == "unet":
        # skip connections hold a large share of the decomposed UNet's
        # memory (paper: 76.2% of the peak; our UNet variant's peak is
        # inflated by the full-resolution decoder concat, so the ratio
        # lands lower — the *instantaneous* dominance is near-total)
        assert result.skip_share_decomposed > 0.25
        assert result.skip_share_instantaneous > 0.75
