"""Bench baselines: collection, persistence, and the regression gate."""

import copy
import json

import pytest

from repro.bench import (BenchConfig, collect_bench, compare_bench,
                         format_comparison, load_bench, write_bench)

#: one tiny model keeps the suite fast; the full gate runs in CI
FAST = BenchConfig(models=("alexnet",), batch=2, hw=32, repeats=2)


@pytest.fixture(scope="module")
def doc():
    return collect_bench(FAST, name="test")


class TestCollect:
    def test_document_shape(self, doc):
        assert doc["schema"] == 1
        assert doc["name"] == "test"
        assert doc["config"]["models"] == ["alexnet"]
        entry = doc["models"]["alexnet"]
        assert set(entry["variants"]) == {"original", entry["best_variant"]}
        for v in entry["variants"].values():
            assert v["peak_bytes"] > 0
            assert set(v["latency_ms"]) == {"p50", "p95", "p99"}
            assert v["latency_ms"]["p50"] <= v["latency_ms"]["p99"]

    def test_reduction_is_positive(self, doc):
        assert doc["models"]["alexnet"]["reduction_pct"] > 0

    def test_peaks_are_deterministic(self, doc):
        again = collect_bench(FAST, name="again")
        for model, entry in doc["models"].items():
            for variant, v in entry["variants"].items():
                assert again["models"][model]["variants"][variant][
                    "peak_bytes"] == v["peak_bytes"]


class TestPersistence:
    def test_write_load_round_trip(self, doc, tmp_path):
        path = write_bench(doc, tmp_path / "BENCH_test.json")
        assert load_bench(path) == doc

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": 99, "models": {},
                                    "config": {}}))
        with pytest.raises(ValueError, match="schema"):
            load_bench(path)

    def test_load_rejects_missing_sections(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": 1}))
        with pytest.raises(ValueError, match="config"):
            load_bench(path)


class TestGate:
    def test_identical_documents_pass(self, doc):
        comparison = compare_bench(doc, doc)
        assert comparison.passed
        assert comparison.deltas
        assert all(d.peak_delta_pct == 0.0 for d in comparison.deltas)
        assert "PASS" in format_comparison(comparison)

    def test_peak_growth_fails_at_zero_tolerance(self, doc):
        current = copy.deepcopy(doc)
        entry = current["models"]["alexnet"]
        best = entry["best_variant"]
        entry["variants"][best]["peak_bytes"] += 4096
        comparison = compare_bench(current, doc)
        assert not comparison.passed
        assert any("peak" in r and best in r for r in comparison.regressions)
        assert "FAIL" in format_comparison(comparison)

    def test_peak_growth_within_tolerance_passes(self, doc):
        current = copy.deepcopy(doc)
        entry = current["models"]["alexnet"]
        peak = entry["variants"]["original"]["peak_bytes"]
        entry["variants"]["original"]["peak_bytes"] = int(peak * 1.01)
        assert not compare_bench(current, doc).passed
        assert compare_bench(current, doc, peak_tolerance_pct=2.0).passed

    def test_peak_improvement_is_not_a_regression(self, doc):
        current = copy.deepcopy(doc)
        entry = current["models"]["alexnet"]
        entry["variants"]["original"]["peak_bytes"] //= 2
        assert compare_bench(current, doc).passed

    def test_latency_informational_by_default(self, doc):
        current = copy.deepcopy(doc)
        entry = current["models"]["alexnet"]
        entry["variants"]["original"]["latency_ms"]["p50"] *= 10
        assert compare_bench(current, doc).passed
        gated = compare_bench(current, doc, latency_tolerance_pct=50.0)
        assert not gated.passed
        assert any("latency" in r for r in gated.regressions)

    def test_missing_model_is_a_regression(self, doc):
        current = copy.deepcopy(doc)
        del current["models"]["alexnet"]
        comparison = compare_bench(current, doc)
        assert not comparison.passed
        assert any("not measured" in r for r in comparison.regressions)

    def test_missing_variant_is_a_regression(self, doc):
        current = copy.deepcopy(doc)
        del current["models"]["alexnet"]["variants"]["original"]
        assert not compare_bench(current, doc).passed


class TestConfig:
    def test_config_round_trips_through_dict(self):
        config = BenchConfig(models=("a", "b"), batch=3, hw=48, repeats=7)
        assert BenchConfig.from_dict(config.to_dict()) == config

    def test_compare_uses_baseline_config(self, doc):
        # the baseline embeds its workload; from_dict must rebuild it
        config = BenchConfig.from_dict(doc["config"])
        assert config == FAST
