"""Exporters and instrumentation: Chrome-trace schema, counter-track
fidelity vs the executor's MemoryProfile, JSONL stream, and decision-log
completeness against SkipOptStats."""

import json

import pytest

from repro.core.skip_opt import SkipOptConfig, optimize_skip_connections
from repro.decompose import DecompositionConfig, decompose_graph
from repro.obs import (Tracer, jsonl_records, to_chrome_trace, use_tracer,
                       write_chrome_trace, write_jsonl, write_trace)
from repro.obs.export import TRACE_PID
from repro.runtime import InferenceSession

from _graph_fixtures import make_skip_graph, random_input

VALID_PHASES = {"X", "i", "C", "M"}


def _traced_run():
    """Compile + run the skip fixture under a fresh tracer."""
    tracer = Tracer()
    with use_tracer(tracer):
        graph = make_skip_graph()
        decomposed = decompose_graph(
            graph, DecompositionConfig(method="tucker", ratio=0.25, seed=0))
        optimize_skip_connections(decomposed)
        result = InferenceSession(decomposed).run(random_input(decomposed))
    return tracer, result


@pytest.fixture(scope="module")
def traced():
    return _traced_run()


class TestChromeTraceSchema:
    def test_required_fields_and_phases(self, traced):
        tracer, _ = traced
        doc = to_chrome_trace(tracer)
        assert isinstance(doc["traceEvents"], list) and doc["traceEvents"]
        assert doc["displayTimeUnit"] == "ms"
        for ev in doc["traceEvents"]:
            assert ev["ph"] in VALID_PHASES
            assert isinstance(ev["name"], str) and ev["name"]
            assert ev["pid"] == TRACE_PID
            assert "tid" in ev
            if ev["ph"] != "M":
                assert isinstance(ev["ts"], (int, float)) and ev["ts"] >= 0
            if ev["ph"] == "X":
                assert ev["dur"] >= 0
            if ev["ph"] == "i":
                assert ev["s"] == "t"

    def test_metadata_names_the_process(self, traced):
        tracer, _ = traced
        meta = [e for e in to_chrome_trace(tracer)["traceEvents"]
                if e["ph"] == "M"]
        assert {"process_name", "thread_name"} <= {e["name"] for e in meta}

    def test_spans_cover_compiler_and_runtime(self, traced):
        tracer, _ = traced
        names = {s.name for s in tracer.spans}
        assert "skip_opt" in names
        assert "inference" in names

    def test_file_roundtrip_is_valid_json(self, traced, tmp_path):
        tracer, _ = traced
        path = write_chrome_trace(tracer, tmp_path / "out.json")
        doc = json.loads(path.read_text())
        assert doc["otherData"]["producer"] == "repro.obs"
        assert doc["otherData"]["metrics"]["executor.runs"] == 1


class TestMemoryCounterTrack:
    def test_counter_track_matches_memory_profile(self, traced):
        tracer, result = traced
        events = to_chrome_trace(tracer)["traceEvents"]
        samples = [e["args"]["live_bytes"] for e in events
                   if e["ph"] == "C" and e["name"] == "memory"]
        profile = result.memory
        assert samples == [e.live_bytes for e in profile.events]
        assert max(samples) == profile.peak_internal_bytes

    def test_counter_samples_are_monotonic_in_time(self, traced):
        tracer, _ = traced
        ts = [c.ts_us for c in tracer.counters if c.track == "memory"]
        assert ts == sorted(ts)


class TestJsonl:
    def test_stream_parses_and_is_chronological(self, traced, tmp_path):
        tracer, _ = traced
        path = write_jsonl(tracer, tmp_path / "out.jsonl")
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert records
        assert {r["type"] for r in records} <= \
            {"span", "instant", "decision", "counter"}
        stamps = [r.get("ts_us", r.get("start_us")) for r in records]
        assert stamps == sorted(stamps)
        assert records == list(jsonl_records(tracer))

    def test_write_trace_routes_on_suffix(self, traced, tmp_path):
        tracer, _ = traced
        chrome = write_trace(tracer, tmp_path / "a.json")
        jsonl = write_trace(tracer, tmp_path / "a.jsonl")
        assert "traceEvents" in json.loads(chrome.read_text())
        first = json.loads(jsonl.read_text().splitlines()[0])
        assert "type" in first


def _decomposed_skip_graph():
    return decompose_graph(
        make_skip_graph(),
        DecompositionConfig(method="tucker", ratio=0.25, seed=0))


def _stats_match_decisions(tracer, stats):
    """Every SkipOptStats counter must have matching decision events."""
    by_reason = {
        "compute_overhead": stats.rejected_compute,
        "memory_overhead": stats.rejected_memory,
        "no_chain": stats.rejected_no_chain,
        "global_peak": stats.rejected_global,
    }
    for reason, count in by_reason.items():
        events = tracer.decisions_for("skip_opt", verdict="reject",
                                      reason=reason)
        assert len(events) == count, reason
    accepts = tracer.decisions_for("skip_opt", verdict="accept")
    assert len(accepts) == stats.optimized
    # one decision per candidate, no more, no less
    assert len(tracer.decisions_for("skip_opt")) == stats.candidates


class TestDecisionLogCompleteness:
    def test_accepts_are_logged_with_quantities(self):
        tracer = Tracer()
        with use_tracer(tracer):
            stats = optimize_skip_connections(_decomposed_skip_graph())
        assert stats.optimized > 0
        _stats_match_decisions(tracer, stats)
        accept = tracer.decisions_for("skip_opt", verdict="accept")[0]
        for key in ("skip_bytes", "chain_peak_bytes", "copies", "copy_flops"):
            assert accept.quantities[key] > 0

    def test_compute_rejections_are_logged(self):
        tracer = Tracer()
        with use_tracer(tracer):
            stats = optimize_skip_connections(
                _decomposed_skip_graph(), SkipOptConfig(compute_slack=0.0))
        assert stats.rejected_compute > 0
        _stats_match_decisions(tracer, stats)
        reject = tracer.decisions_for("skip_opt", reason="compute_overhead")[0]
        assert reject.quantities["copy_flops"] > \
            reject.quantities["threshold_flops"]

    def test_memory_rejections_are_logged(self):
        tracer = Tracer()
        with use_tracer(tracer):
            stats = optimize_skip_connections(
                _decomposed_skip_graph(),
                SkipOptConfig(compute_slack=1e9, memory_slack=0.0))
        assert stats.rejected_memory > 0
        _stats_match_decisions(tracer, stats)
        reject = tracer.decisions_for("skip_opt", reason="memory_overhead")[0]
        assert reject.quantities["chain_peak_bytes"] > 0
        assert reject.quantities["freed_bytes"] > 0

    def test_no_chain_rejections_are_logged(self):
        # undecomposed graph: the skip's producers are plain convs, not
        # lconv leaves, so no restore chain exists
        tracer = Tracer()
        with use_tracer(tracer):
            stats = optimize_skip_connections(make_skip_graph())
        assert stats.rejected_no_chain > 0
        _stats_match_decisions(tracer, stats)

    def test_decisions_count_into_metrics(self):
        tracer = Tracer()
        with use_tracer(tracer):
            stats = optimize_skip_connections(_decomposed_skip_graph())
        assert tracer.metrics.get("skip_opt.accept") == stats.optimized
