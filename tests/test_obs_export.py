"""Exporters and instrumentation: Chrome-trace schema, counter-track
fidelity vs the executor's MemoryProfile, JSONL stream, and decision-log
completeness against SkipOptStats."""

import json

import pytest

from repro.core.skip_opt import SkipOptConfig, optimize_skip_connections
from repro.decompose import DecompositionConfig, decompose_graph
from repro.obs import (Tracer, jsonl_records, to_chrome_trace, use_tracer,
                       write_chrome_trace, write_jsonl, write_trace)
from repro.obs.export import TRACE_PID
from repro.runtime import InferenceSession

from _graph_fixtures import make_skip_graph, random_input

#: offline compile/run traces use the first four; serving traces add
#: flow arrows ("s"/"f") and per-request async lanes ("b"/"e")
VALID_PHASES = {"X", "i", "C", "M", "s", "f", "b", "e"}


def _traced_run():
    """Compile + run the skip fixture under a fresh tracer."""
    tracer = Tracer()
    with use_tracer(tracer):
        graph = make_skip_graph()
        decomposed = decompose_graph(
            graph, DecompositionConfig(method="tucker", ratio=0.25, seed=0))
        optimize_skip_connections(decomposed)
        result = InferenceSession(decomposed).run(random_input(decomposed))
    return tracer, result


@pytest.fixture(scope="module")
def traced():
    return _traced_run()


class TestChromeTraceSchema:
    def test_required_fields_and_phases(self, traced):
        tracer, _ = traced
        doc = to_chrome_trace(tracer)
        assert isinstance(doc["traceEvents"], list) and doc["traceEvents"]
        assert doc["displayTimeUnit"] == "ms"
        for ev in doc["traceEvents"]:
            assert ev["ph"] in VALID_PHASES
            assert isinstance(ev["name"], str) and ev["name"]
            assert ev["pid"] == TRACE_PID
            assert "tid" in ev
            if ev["ph"] != "M":
                assert isinstance(ev["ts"], (int, float)) and ev["ts"] >= 0
            if ev["ph"] == "X":
                assert ev["dur"] >= 0
            if ev["ph"] == "i":
                assert ev["s"] == "t"

    def test_metadata_names_the_process(self, traced):
        tracer, _ = traced
        meta = [e for e in to_chrome_trace(tracer)["traceEvents"]
                if e["ph"] == "M"]
        assert {"process_name", "thread_name"} <= {e["name"] for e in meta}

    def test_spans_cover_compiler_and_runtime(self, traced):
        tracer, _ = traced
        names = {s.name for s in tracer.spans}
        assert "skip_opt" in names
        assert "inference" in names

    def test_file_roundtrip_is_valid_json(self, traced, tmp_path):
        tracer, _ = traced
        path = write_chrome_trace(tracer, tmp_path / "out.json")
        doc = json.loads(path.read_text())
        assert doc["otherData"]["producer"] == "repro.obs"
        assert doc["otherData"]["metrics"]["executor.runs"] == 1


class TestRowMetadata:
    def test_named_and_used_rows_get_labels_and_sort_order(self):
        tracer = Tracer()
        tracer.name_thread(1, "worker-0")
        tracer.complete("batch", 0, 10, tid=1)
        tracer.complete("stray", 0, 10, tid=7)  # unnamed row with a span
        events = to_chrome_trace(tracer)["traceEvents"]
        names = {e["tid"]: e["args"]["name"] for e in events
                 if e["ph"] == "M" and e["name"] == "thread_name"}
        assert names[0] == "timeline"
        assert names[1] == "worker-0"
        assert names[7] == "tid-7"  # fallback label, never a bare tid
        sort = {e["tid"]: e["args"]["sort_index"] for e in events
                if e["ph"] == "M" and e["name"] == "thread_sort_index"}
        assert sort == {0: 0, 1: 1, 7: 7}

    def test_spans_render_on_their_tid(self):
        tracer = Tracer()
        tracer.complete("batch", 0, 10, tid=3)
        (x_event,) = [e for e in to_chrome_trace(tracer)["traceEvents"]
                      if e["ph"] == "X"]
        assert x_event["tid"] == 3


class TestFlowAndAsyncExport:
    def test_flow_endpoints(self):
        tracer = Tracer()
        tracer.flow("serve.request", 42, "start", ts_us=1.0, tid=0)
        tracer.flow("serve.request", 42, "finish", ts_us=5.0, tid=1)
        flows = [e for e in to_chrome_trace(tracer)["traceEvents"]
                 if e["ph"] in ("s", "f")]
        start, finish = sorted(flows, key=lambda e: e["ts"])
        assert start["ph"] == "s" and start["id"] == 42 and start["tid"] == 0
        assert finish["ph"] == "f" and finish["tid"] == 1
        assert finish["bp"] == "e"  # bind to the enclosing slice
        assert "bp" not in start

    def test_bad_flow_phase_rejected(self):
        with pytest.raises(ValueError, match="phase"):
            Tracer().flow("x", 1, "middle")

    def test_async_slice_emits_balanced_pair(self):
        tracer = Tracer()
        tracer.async_slice("request", 7, 10.0, 30.0, category="serve",
                           outcome="ok")
        pair = [e for e in to_chrome_trace(tracer)["traceEvents"]
                if e["ph"] in ("b", "e")]
        begin, end = sorted(pair, key=lambda e: e["ts"])
        assert begin["ph"] == "b" and begin["ts"] == 10.0
        assert end["ph"] == "e" and end["ts"] == 30.0
        assert begin["id"] == end["id"] == 7
        assert begin["args"]["outcome"] == "ok"

    def test_jsonl_carries_flow_async_and_tid(self):
        tracer = Tracer()
        tracer.complete("batch", 0, 10, tid=2)
        tracer.flow("serve.request", 1, "start", ts_us=0.0)
        tracer.async_slice("request", 1, 0.0, 10.0)
        records = list(jsonl_records(tracer))
        kinds = {r["type"] for r in records}
        assert {"span", "flow", "async"} <= kinds
        (span,) = [r for r in records if r["type"] == "span"]
        assert span["tid"] == 2
        assert all(r["phase"] in ("start", "finish", "begin", "end")
                   for r in records if r["type"] in ("flow", "async"))


class TestAbsorb:
    def test_absorb_shifts_tags_and_rows(self):
        worker = Tracer()
        worker.complete("node", 5.0, 10.0, category="conv2d", op="conv2d")
        worker.instant("mark", category="test")
        worker.counter("memory", live_bytes=64)
        records = worker.export_records()

        parent = Tracer()
        # pin the anchors: the worker's epoch is 2 s after the parent's
        records["epoch_wall"] = parent.epoch_wall + 2.0
        count = parent.absorb(records, tid=1000, trace_id="t1", shard=0)
        assert count == 1
        (span,) = parent.spans
        assert span.tid == 1000
        assert span.start_us == pytest.approx(5.0 + 2e6)
        assert span.args["trace_id"] == "t1" and span.args["shard"] == 0
        assert span.args["op"] == "conv2d"
        (inst,) = parent.instants
        assert inst.args["trace_id"] == "t1"
        (sample,) = parent.counters
        assert sample.values == {"live_bytes": 64}


class TestMemoryCounterTrack:
    def test_counter_track_matches_memory_profile(self, traced):
        tracer, result = traced
        events = to_chrome_trace(tracer)["traceEvents"]
        samples = [e["args"]["live_bytes"] for e in events
                   if e["ph"] == "C" and e["name"] == "memory"]
        profile = result.memory
        assert samples == [e.live_bytes for e in profile.events]
        assert max(samples) == profile.peak_internal_bytes

    def test_counter_samples_are_monotonic_in_time(self, traced):
        tracer, _ = traced
        ts = [c.ts_us for c in tracer.counters if c.track == "memory"]
        assert ts == sorted(ts)


class TestJsonl:
    def test_stream_parses_and_is_chronological(self, traced, tmp_path):
        tracer, _ = traced
        path = write_jsonl(tracer, tmp_path / "out.jsonl")
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert records
        assert {r["type"] for r in records} <= \
            {"span", "instant", "decision", "counter"}
        stamps = [r.get("ts_us", r.get("start_us")) for r in records]
        assert stamps == sorted(stamps)
        assert records == list(jsonl_records(tracer))

    def test_write_trace_routes_on_suffix(self, traced, tmp_path):
        tracer, _ = traced
        chrome = write_trace(tracer, tmp_path / "a.json")
        jsonl = write_trace(tracer, tmp_path / "a.jsonl")
        assert "traceEvents" in json.loads(chrome.read_text())
        first = json.loads(jsonl.read_text().splitlines()[0])
        assert "type" in first


def _decomposed_skip_graph():
    return decompose_graph(
        make_skip_graph(),
        DecompositionConfig(method="tucker", ratio=0.25, seed=0))


def _stats_match_decisions(tracer, stats):
    """Every SkipOptStats counter must have matching decision events."""
    by_reason = {
        "compute_overhead": stats.rejected_compute,
        "memory_overhead": stats.rejected_memory,
        "no_chain": stats.rejected_no_chain,
        "global_peak": stats.rejected_global,
    }
    for reason, count in by_reason.items():
        events = tracer.decisions_for("skip_opt", verdict="reject",
                                      reason=reason)
        assert len(events) == count, reason
    accepts = tracer.decisions_for("skip_opt", verdict="accept")
    assert len(accepts) == stats.optimized
    # one decision per candidate, no more, no less
    assert len(tracer.decisions_for("skip_opt")) == stats.candidates


class TestDecisionLogCompleteness:
    def test_accepts_are_logged_with_quantities(self):
        tracer = Tracer()
        with use_tracer(tracer):
            stats = optimize_skip_connections(_decomposed_skip_graph())
        assert stats.optimized > 0
        _stats_match_decisions(tracer, stats)
        accept = tracer.decisions_for("skip_opt", verdict="accept")[0]
        for key in ("skip_bytes", "chain_peak_bytes", "copies", "copy_flops"):
            assert accept.quantities[key] > 0

    def test_compute_rejections_are_logged(self):
        tracer = Tracer()
        with use_tracer(tracer):
            stats = optimize_skip_connections(
                _decomposed_skip_graph(), SkipOptConfig(compute_slack=0.0))
        assert stats.rejected_compute > 0
        _stats_match_decisions(tracer, stats)
        reject = tracer.decisions_for("skip_opt", reason="compute_overhead")[0]
        assert reject.quantities["copy_flops"] > \
            reject.quantities["threshold_flops"]

    def test_memory_rejections_are_logged(self):
        tracer = Tracer()
        with use_tracer(tracer):
            stats = optimize_skip_connections(
                _decomposed_skip_graph(),
                SkipOptConfig(compute_slack=1e9, memory_slack=0.0))
        assert stats.rejected_memory > 0
        _stats_match_decisions(tracer, stats)
        reject = tracer.decisions_for("skip_opt", reason="memory_overhead")[0]
        assert reject.quantities["chain_peak_bytes"] > 0
        assert reject.quantities["freed_bytes"] > 0

    def test_no_chain_rejections_are_logged(self):
        # undecomposed graph: the skip's producers are plain convs, not
        # lconv leaves, so no restore chain exists
        tracer = Tracer()
        with use_tracer(tracer):
            stats = optimize_skip_connections(make_skip_graph())
        assert stats.rejected_no_chain > 0
        _stats_match_decisions(tracer, stats)

    def test_decisions_count_into_metrics(self):
        tracer = Tracer()
        with use_tracer(tracer):
            stats = optimize_skip_connections(_decomposed_skip_graph())
        assert tracer.metrics.get("skip_opt.accept") == stats.optimized
