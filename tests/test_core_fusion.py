"""Activation layer fusion (paper §3.2)."""

import numpy as np
import pytest

from repro.core import (FusionConfig, assert_equivalent,
                        estimate_peak_internal, fuse_activation_layers)
from repro.decompose import DecompositionConfig, decompose_graph
from repro.ir import GraphBuilder
from repro.runtime import execute

from _graph_fixtures import make_chain_graph, random_input


def _decomposed_chain(**kwargs):
    return decompose_graph(make_chain_graph(**kwargs),
                           DecompositionConfig(ratio=0.25))


class TestPatternMatching:
    def test_fuses_lconv_relu_pool_fconv(self):
        g = _decomposed_chain()
        stats = fuse_activation_layers(g)
        assert stats.fused >= 1
        assert stats.with_pool == 1
        fused = [n for n in g.nodes if n.op == "fused_block"]
        assert fused and fused[0].attrs["pool"]["kind"] == "max"

    def test_full_tensors_eliminated(self):
        g = _decomposed_chain()
        peak_before = estimate_peak_internal(g)
        fuse_activation_layers(g, FusionConfig(allow_epilogue=False))
        assert estimate_peak_internal(g) < peak_before
        # the c1 lconv's full-size restored output no longer exists
        assert all("c1.lconv" not in n.name or n.op == "fused_block"
                   for n in g.nodes)

    def test_semantics_preserved(self):
        g = _decomposed_chain()
        before = g.clone("before")
        fuse_activation_layers(g)
        assert_equivalent(before, g, random_input(g), rtol=1e-3)

    def test_multi_consumer_intermediate_blocks_fusion(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 4, 8, 8))
        up = b.conv2d(x, 32, 1, name="up")       # lconv
        act = b.relu(up)
        down = b.conv2d(act, 4, 1, name="down")  # fconv
        g = b.finish(b.add(act, act), down)      # act has 2 consumers
        stats = fuse_activation_layers(g, FusionConfig(allow_epilogue=False))
        assert stats.fused == 0

    def test_graph_output_blocks_fusion(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 4, 8, 8))
        up = b.conv2d(x, 32, 1, name="up")
        act = b.relu(up)
        down = b.conv2d(act, 4, 1, name="down")
        g = b.finish(act, down)  # the intermediate IS an output
        stats = fuse_activation_layers(g)
        assert stats.fused == 0

    def test_silu_fused(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 4, 8, 8))
        up = b.conv2d(x, 32, 1, name="up")
        act = b.silu(up)
        down = b.conv2d(act, 4, 1, name="down")
        g = b.finish(down)
        stats = fuse_activation_layers(g)
        assert stats.fused == 1
        assert g.nodes[-1].attrs["act"] == "silu"

    def test_no_activation_pair_fused_by_default(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 4, 8, 8))
        up = b.conv2d(x, 32, 1, name="up")
        down = b.conv2d(up, 4, 1, name="down")
        g = b.finish(down)
        assert fuse_activation_layers(g).fused == 1
        g2 = GraphBuilder("t2", seed=0)
        x = g2.input("x", (1, 4, 8, 8))
        up = g2.conv2d(x, 32, 1, name="up")
        down = g2.conv2d(up, 4, 1, name="down")
        graph2 = g2.finish(down)
        stats = fuse_activation_layers(graph2,
                                       FusionConfig(require_activation=True))
        assert stats.fused == 0

    def test_block_size_recorded(self):
        g = _decomposed_chain()
        fuse_activation_layers(g, FusionConfig(block_size=13))
        fused = [n for n in g.nodes if n.op.startswith("fused")]
        assert all(n.attrs["block_size"] == 13 for n in fused)


class TestEpilogueFusion:
    def _stem_graph(self):
        """lconv -> relu -> maxpool feeding a 2-consumer join."""
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 4, 8, 8))
        up = b.conv2d(x, 32, 1, name="up")
        act = b.relu(up)
        pool = b.maxpool2d(act, 2)
        g = b.finish(b.add(pool, pool), b.sigmoid(pool))
        return g

    def test_epilogue_replaces_chain(self):
        g = self._stem_graph()
        stats = fuse_activation_layers(g)
        assert stats.fused == 1
        assert stats.epilogues == 1
        assert any(n.op == "fused_restore" for n in g.nodes)

    def test_epilogue_reduces_peak(self):
        g = self._stem_graph()
        peak_before = estimate_peak_internal(g)
        fuse_activation_layers(g)
        assert estimate_peak_internal(g) < peak_before

    def test_epilogue_preserves_semantics(self):
        g = self._stem_graph()
        before = g.clone("before")
        fuse_activation_layers(g)
        inp = random_input(g)
        a = execute(before, inp)
        b_ = execute(g, inp)
        for va, vb in zip(before.outputs, g.outputs):
            np.testing.assert_allclose(a.outputs[va.name], b_.outputs[vb.name],
                                       atol=1e-5)

    def test_epilogue_disabled(self):
        g = self._stem_graph()
        stats = fuse_activation_layers(g, FusionConfig(allow_epilogue=False))
        assert stats.fused == 0


class TestScratchReporting:
    def test_scratch_tracked_separately(self):
        g = _decomposed_chain()
        fuse_activation_layers(g, FusionConfig(block_size=8))
        profile = execute(g, random_input(g)).memory
        assert profile.peak_scratch_bytes > 0

    def test_scratch_counted_when_requested(self):
        g = _decomposed_chain()
        fuse_activation_layers(g, FusionConfig(block_size=8))
        inp = random_input(g)
        default = execute(g, inp).memory
        honest = execute(g, inp, count_fused_scratch=True).memory
        assert honest.peak_internal_bytes >= default.peak_internal_bytes
