"""Hot-path profiler: span aggregation and flamegraph export."""

import numpy as np
import pytest

from repro.models import build_model
from repro.obs import (ProfileReport, Tracer, collapsed_stacks, profile_spans,
                       profile_tracer, write_collapsed_stacks)
from repro.runtime import InferenceSession


def _node_span(tracer, name, op, start, dur, **extra):
    tracer.complete(name, start, dur, category=op, op=op, **extra)


class TestProfileSpans:
    def test_aggregates_by_op_and_node(self):
        t = Tracer()
        _node_span(t, "c1", "conv2d", 0, 100, bytes=10, flops=400)
        _node_span(t, "c2", "conv2d", 100, 300, bytes=30, flops=600)
        _node_span(t, "r1", "relu", 400, 100, bytes=60, flops=0)
        report = profile_spans(t.spans, model="m", runs=1)
        assert report.total_us == 500
        conv, relu = report.by_op
        assert conv.key == "conv2d" and conv.count == 2
        assert conv.total_us == 400 and conv.mean_us == 200
        assert conv.share == pytest.approx(0.8)
        assert conv.total_bytes == 40 and conv.flops == 1000
        assert conv.intensity == pytest.approx(25.0)
        assert relu.intensity == 0.0
        assert [s.key for s in report.by_node] == ["c2", "c1", "r1"]

    def test_container_spans_ignored(self):
        t = Tracer()
        with t.span("serve.batch", category="serve"):
            pass
        _node_span(t, "c1", "conv2d", 0, 50)
        report = profile_spans(t.spans)
        assert report.total_us == 50
        assert [s.key for s in report.by_op] == ["conv2d"]

    def test_scratch_is_max_not_sum(self):
        t = Tracer()
        _node_span(t, "f1", "fused_block", 0, 10, scratch=100)
        _node_span(t, "f2", "fused_block", 10, 10, scratch=300)
        (fused,) = profile_spans(t.spans).by_op
        assert fused.scratch_bytes == 300

    def test_gflops_per_s(self):
        t = Tracer()
        _node_span(t, "c1", "conv2d", 0, 1_000_000, flops=2_000_000_000)
        (conv,) = profile_spans(t.spans).by_op
        assert conv.gflops_per_s == pytest.approx(2.0)

    def test_empty_trace(self):
        report = profile_spans([])
        assert isinstance(report, ProfileReport)
        assert report.total_us == 0.0
        assert report.by_op == [] and report.by_node == []

    def test_to_dict_round_trips_json(self):
        import json
        t = Tracer()
        _node_span(t, "c1", "conv2d", 0, 50, bytes=8, flops=16)
        doc = json.loads(profile_spans(t.spans, model="m").to_json())
        assert doc["model"] == "m"
        assert doc["by_op"][0]["intensity"] == pytest.approx(2.0)


class TestProfileTracer:
    def test_real_session_carries_bytes_and_flops(self):
        graph = build_model("unet_small", batch=1, hw=16)
        tracer = Tracer()
        x = np.random.default_rng(0).normal(
            size=graph.inputs[0].shape).astype(np.float32)
        session = InferenceSession(graph, tracer=tracer)
        session.run(x)
        session.run(x)
        report = profile_tracer(tracer, model=graph.name)
        assert report.runs == 2
        assert report.model == graph.name
        conv = next(s for s in report.by_op if s.key == "conv2d")
        assert conv.total_bytes > 0 and conv.flops > 0
        assert conv.intensity > 0
        # shares over all attributed ops sum to 1
        assert sum(s.share for s in report.by_op) == pytest.approx(1.0)
        # per-node table has one row per distinct layer, each run counted
        assert all(s.count == 2 for s in report.by_node)


class TestCollapsedStacks:
    def test_nesting_and_self_time(self):
        t = Tracer()
        # parent [0, 100] with child [10, 40] -> parent self 70, child 30
        t.complete("child", 10, 30)
        t.complete("parent", 0, 100)
        lines = dict(line.rsplit(" ", 1) for line in collapsed_stacks(t))
        assert lines == {"repro;parent": "70", "repro;parent;child": "30"}

    def test_siblings_fold_together(self):
        t = Tracer()
        t.complete("op", 0, 10)
        t.complete("op", 20, 10)
        lines = collapsed_stacks(t)
        assert lines == ["repro;op 20"]

    def test_separate_tids_never_nest(self):
        t = Tracer()
        t.complete("a", 0, 100, tid=1)
        t.complete("b", 10, 20, tid=2)  # inside a's interval, other row
        lines = set(collapsed_stacks(t))
        assert lines == {"repro;a 100", "repro;b 20"}

    def test_write(self, tmp_path):
        t = Tracer()
        t.complete("op", 0, 10)
        path = write_collapsed_stacks(t, tmp_path / "fg.txt")
        assert path.read_text() == "repro;op 10\n"

    def test_real_session_stacks_nest_under_inference(self):
        graph = build_model("unet_small", batch=1, hw=16)
        tracer = Tracer()
        x = np.random.default_rng(0).normal(
            size=graph.inputs[0].shape).astype(np.float32)
        InferenceSession(graph, tracer=tracer).run(x)
        lines = collapsed_stacks(tracer)
        node_lines = [ln for ln in lines
                      if ln.startswith("repro;inference;")]
        assert node_lines, "node spans must nest under the inference span"
        # self time is non-negative everywhere
        assert all(int(ln.rsplit(" ", 1)[1]) >= 0 for ln in lines)
