"""repro.tune.cache: content addressing, persistence, corruption handling."""

import json
import logging

import numpy as np
import pytest

from repro.tune import (CACHE_VERSION, SiteRecord, TuneCache, TuneRecord,
                        default_cache_dir)
from repro.tune.cache import new_record

from _graph_fixtures import make_chain_graph


@pytest.fixture
def cache(tmp_path):
    return TuneCache(tmp_path / "tune-cache")


def make_record(key: str) -> TuneRecord:
    record = new_record(key, "chain", mode="per-site", budget=4)
    record.sites = [SiteRecord(site_key="c1", node="fused[c1+c2]",
                               block_size=16, spatial_tile=8,
                               seconds=0.001, baseline_seconds=0.002,
                               scratch_bytes=4096,
                               baseline_scratch_bytes=8192, trials=4)]
    record.total_trials = 4
    return record


class TestKeying:
    def test_key_stable_across_clone(self, cache):
        graph = make_chain_graph()
        assert cache.key_for(graph) == cache.key_for(graph.clone("other"))

    def test_key_changes_on_weight_edit(self, cache):
        graph = make_chain_graph()
        edited = graph.clone()
        node = next(n for n in edited.nodes if "weight" in n.params)
        node.params["weight"] = node.params["weight"] + np.float32(0.5)
        assert cache.key_for(graph) != cache.key_for(edited)

    def test_key_changes_on_structure_edit(self, cache):
        a, b = make_chain_graph(channels=16), make_chain_graph(channels=8)
        assert cache.key_for(a) != cache.key_for(b)

    def test_extra_settings_change_key(self, cache):
        graph = make_chain_graph()
        assert (cache.key_for(graph, extra={"mode": "per-site"})
                != cache.key_for(graph, extra={"mode": "global"}))


class TestRoundtrip:
    def test_store_then_load(self, cache):
        record = make_record("k" * 32)
        cache.store(record)
        loaded = cache.load(record.key)
        assert loaded is not None
        assert loaded.overrides == {"c1": (16, 8)}
        assert loaded.sites[0].seconds == pytest.approx(0.001)
        assert loaded.hardware == record.hardware

    def test_miss_returns_none(self, cache):
        assert cache.load("absent" * 5) is None
        assert cache.load_plan("absent" * 5) is None

    def test_plan_roundtrip_executes(self, cache):
        from repro.runtime import InferenceSession
        graph = make_chain_graph()
        record = make_record("p" * 32)
        cache.store(record, plan=graph)
        plan = cache.load_plan(record.key)
        assert plan is not None
        rng = np.random.default_rng(0)
        x = {"x": rng.normal(size=graph.inputs[0].shape).astype(np.float32)}
        want = InferenceSession(graph).run(x).outputs
        got = InferenceSession(plan).run(x).outputs
        for name in want:
            np.testing.assert_allclose(got[name], want[name], rtol=1e-5)

    def test_entries_lists_stored_keys(self, cache):
        assert cache.entries() == []
        cache.store(make_record("a" * 32))
        cache.store(make_record("b" * 32))
        assert cache.entries() == ["a" * 32, "b" * 32]


class TestCorruption:
    def test_corrupt_json_ignored_with_warning(self, cache, caplog):
        record = make_record("c" * 32)
        cache.store(record)
        cache.record_path(record.key).write_text("{not json!!")
        with caplog.at_level(logging.WARNING, logger="repro.tune.cache"):
            assert cache.load(record.key) is None
        assert any("corrupt" in r.message for r in caplog.records)

    def test_wrong_schema_fields_ignored(self, cache, caplog):
        path = cache.record_path("d" * 32)
        cache.dir.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps({"unexpected": 1}))
        with caplog.at_level(logging.WARNING, logger="repro.tune.cache"):
            assert cache.load("d" * 32) is None
        assert any("corrupt" in r.message for r in caplog.records)

    def test_version_mismatch_ignored(self, cache, caplog):
        record = make_record("e" * 32)
        record.version = CACHE_VERSION + 1
        cache.store(record)
        with caplog.at_level(logging.WARNING, logger="repro.tune.cache"):
            assert cache.load(record.key) is None
        assert any("schema" in r.message for r in caplog.records)

    def test_corrupt_plan_ignored_with_warning(self, cache, caplog):
        record = make_record("f" * 32)
        cache.store(record, plan=make_chain_graph())
        cache.plan_path(record.key).write_bytes(b"\x00\x01truncated")
        with caplog.at_level(logging.WARNING, logger="repro.tune.cache"):
            assert cache.load_plan(record.key) is None
        assert any("corrupt" in r.message for r in caplog.records)


class TestCacheDir:
    def test_explicit_dir_respected(self, tmp_path):
        cache = TuneCache(tmp_path / "elsewhere")
        record = make_record("g" * 32)
        cache.store(record)
        assert (tmp_path / "elsewhere" / f"{record.key}.json").is_file()

    def test_env_var_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TUNE_CACHE", str(tmp_path / "envcache"))
        assert default_cache_dir() == tmp_path / "envcache"
        assert TuneCache().dir == tmp_path / "envcache"

    def test_home_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TUNE_CACHE", raising=False)
        assert default_cache_dir().name == "repro-tune"
