"""Layer transformations (paper §3.3, Figure 9)."""

import numpy as np
import pytest

from repro.core import (assert_equivalent, commute_upsample_lconv,
                        estimate_peak_internal, merge_lconv_add,
                        merge_lconv_concat, push_act_through_concat,
                        split_concat_fconv)
from repro.ir import GraphBuilder, ops
from repro.runtime import execute

from _graph_fixtures import random_input


def _two_branch_concat(act: bool = True, seed: int = 0):
    """concat of two [relu ∘] lconv branches feeding an fconv."""
    b = GraphBuilder("t", seed=seed)
    x = b.input("x", (2, 6, 8, 8))
    l1 = b.conv2d(x, 24, 1, name="lconv_a")
    l2 = b.conv2d(x, 16, 1, name="lconv_b")
    if act:
        l1, l2 = b.relu(l1), b.relu(l2)
    cat = b.concat(l1, l2, name="join")
    out = b.conv2d(cat, 5, 1, name="after")  # 40 -> 5: fconv
    return b.finish(out)


class TestMergeConcat:
    @pytest.mark.parametrize("act", [True, False])
    def test_merges_and_preserves_semantics(self, act):
        g = _two_branch_concat(act=act)
        before = g.clone("before")
        stats = merge_lconv_concat(g)
        assert stats.merged_concats == 1
        merged = next(n for n in g.nodes if "merged_from" in n.attrs)
        assert ops.is_lconv(merged)
        assert merged.params["weight"].shape[:2] == (40, 6 + 6)
        assert_equivalent(before, g, random_input(g), rtol=1e-4)

    def test_block_diagonal_structure(self):
        g = _two_branch_concat(act=False)
        merge_lconv_concat(g)
        merged = next(n for n in g.nodes if "merged_from" in n.attrs)
        w = merged.params["weight"][:, :, 0, 0]
        # off-diagonal blocks are exactly zero
        assert (w[:24, 6:] == 0).all()
        assert (w[24:, :6] == 0).all()

    def test_mixed_activations_block_merge(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 6, 8, 8))
        l1 = b.relu(b.conv2d(x, 24, 1))
        l2 = b.sigmoid(b.conv2d(x, 16, 1))
        out = b.conv2d(b.concat(l1, l2), 5, 1)
        g = b.finish(out)
        assert merge_lconv_concat(g).merged_concats == 0

    def test_passthrough_branch_gets_identity_block(self):
        b = GraphBuilder("t", seed=1)
        x = b.input("x", (1, 6, 8, 8))
        plain = b.maxpool2d(x, 1)            # not a restore chain
        l2 = b.conv2d(x, 16, 1, name="lconv_b")
        cat = b.concat(plain, l2, name="join")
        out = b.conv2d(cat, 4, 1, name="after")
        g = b.finish(out)
        before = g.clone("before")
        stats = merge_lconv_concat(g)
        assert stats.merged_concats == 1
        merged = next(n for n in g.nodes if "merged_from" in n.attrs)
        w = merged.params["weight"][:, :, 0, 0]
        np.testing.assert_array_equal(w[:6, :6], np.eye(6, dtype=w.dtype))
        assert_equivalent(before, g, random_input(g), rtol=1e-4)

    def test_passthrough_with_act_blocks_merge(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 6, 8, 8))
        plain = b.maxpool2d(x, 1)
        l2 = b.relu(b.conv2d(x, 16, 1))
        out = b.conv2d(b.concat(plain, l2), 4, 1)
        g = b.finish(out)
        assert merge_lconv_concat(g).merged_concats == 0

    def test_all_passthrough_blocks_merge(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 6, 8, 8))
        out = b.conv2d(b.concat(b.maxpool2d(x, 1), b.avgpool2d(x, 1)), 4, 1)
        g = b.finish(out)
        assert merge_lconv_concat(g).merged_concats == 0


class TestMergeAdd:
    def test_merges_equal_width_lconvs(self):
        b = GraphBuilder("t", seed=2)
        x = b.input("x", (2, 6, 8, 8))
        l1 = b.conv2d(x, 24, 1, name="la")
        l2 = b.conv2d(x, 24, 1, name="lb")
        out = b.relu(b.add(l1, l2, name="sum"))
        g = b.finish(out)
        before = g.clone("before")
        stats = merge_lconv_add(g)
        assert stats.merged_adds == 1
        merged = next(n for n in g.nodes if "merged_from" in n.attrs)
        assert merged.params["weight"].shape[:2] == (24, 12)
        assert_equivalent(before, g, random_input(g), rtol=1e-4)

    def test_biases_summed(self):
        b = GraphBuilder("t", seed=2)
        x = b.input("x", (1, 4, 4, 4))
        l1 = b.conv2d(x, 16, 1, bias_value=np.full(16, 2.0, np.float32), name="la")
        l2 = b.conv2d(x, 16, 1, bias_value=np.full(16, 3.0, np.float32), name="lb")
        g = b.finish(b.add(l1, l2))
        merge_lconv_add(g)
        merged = next(n for n in g.nodes if "merged_from" in n.attrs)
        np.testing.assert_allclose(merged.params["bias"], 5.0)

    def test_non_lconv_operand_blocks(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 24, 4, 4))
        l1 = b.conv2d(x, 24, 1)  # 24 -> 24: not channel-increasing
        g = b.finish(b.add(l1, x))
        assert merge_lconv_add(g).merged_adds == 0


class TestSplitConcat:
    def test_split_preserves_semantics(self):
        g = _two_branch_concat(act=False)
        before = g.clone("before")
        stats = split_concat_fconv(g)
        assert stats.split_concats == 1
        assert not any(n.op == "concat" for n in g.nodes)
        branch_convs = [n for n in g.nodes if "split_from" in n.attrs]
        assert len(branch_convs) == 2
        assert_equivalent(before, g, random_input(g), rtol=1e-4)

    def test_weight_slices_match_columns(self):
        g = _two_branch_concat(act=False)
        full = g.find_node("after").params["weight"].copy()
        split_concat_fconv(g)
        branches = sorted((n for n in g.nodes if "split_from" in n.attrs),
                          key=lambda n: n.name)
        np.testing.assert_array_equal(branches[0].params["weight"], full[:, :24])
        np.testing.assert_array_equal(branches[1].params["weight"], full[:, 24:])

    def test_never_splits_merged_lconv(self):
        g = _two_branch_concat(act=False)
        merge_lconv_concat(g)
        stats = split_concat_fconv(g)
        assert stats.split_concats == 0

    def test_multi_consumer_concat_not_split(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 4, 4, 4))
        cat = b.concat(b.relu(x), b.sigmoid(x))
        out1 = b.conv2d(cat, 2, 1)
        out2 = b.tanh(cat)
        g = b.finish(out1, out2)
        assert split_concat_fconv(g).split_concats == 0

    def test_binary_add_chain_bounds_liveness(self):
        """The split's accumulation must not hold all branches at once."""
        b = GraphBuilder("t", seed=3)
        x = b.input("x", (1, 4, 16, 16))
        branches = [b.conv2d(x, 16, 1, name=f"l{i}") for i in range(6)]
        cat = b.concat(*branches, name="wide")
        out = b.conv2d(cat, 8, 1, name="after")
        g = b.finish(out)
        before_peak = estimate_peak_internal(g)
        before = g.clone("before")
        split_concat_fconv(g)
        after_peak = estimate_peak_internal(g)
        assert after_peak < before_peak
        assert_equivalent(before, g, random_input(g), rtol=1e-4)


class TestPushActThroughConcat:
    def test_pushes_when_followed_by_pointwise(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 4, 4, 4))
        cat = b.concat(b.identity(x), b.identity(x))
        act = b.relu(cat)
        out = b.conv2d(act, 2, 1)
        g = b.finish(out)
        before = g.clone("before")
        stats = push_act_through_concat(g)
        assert stats.pushed_acts == 1
        # the concat's inputs are now relu outputs
        cat_node = next(n for n in g.nodes if n.op == "concat")
        assert all(g.producer_of(v).op == "relu" for v in cat_node.inputs)
        assert_equivalent(before, g, random_input(g))

    def test_not_pushed_without_pointwise_consumer(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 4, 4, 4))
        act = b.relu(b.concat(b.identity(x), b.identity(x)))
        g = b.finish(b.maxpool2d(act, 2))
        assert push_act_through_concat(g).pushed_acts == 0


class TestCommuteUpsample:
    def test_commutes_and_preserves_semantics(self):
        b = GraphBuilder("t", seed=4)
        x = b.input("x", (1, 4, 4, 4))
        l = b.conv2d(x, 16, 1, name="l")
        act = b.relu(l)
        up = b.upsample_nearest(act, 2, name="up")
        out = b.conv2d(up, 4, 1, name="after")
        g = b.finish(out)
        before = g.clone("before")
        stats = commute_upsample_lconv(g)
        assert stats.commuted_upsamples == 1
        # upsample now operates on the 4-channel reduced tensor
        up_node = next(n for n in g.nodes if n.op == "upsample_nearest")
        assert up_node.output.shape[1] == 4
        assert_equivalent(before, g, random_input(g), rtol=1e-4)

    def test_requires_restore_chain(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 4, 4, 4))
        up = b.upsample_nearest(b.relu(x), 2)
        g = b.finish(up)
        assert commute_upsample_lconv(g).commuted_upsamples == 0
