"""Autodiff VJPs vs central finite differences, op by op."""

import numpy as np
import pytest

from repro.ir import GraphBuilder
from repro.train import backward, forward_with_tape, grad_check
from repro.train.gradients import UntrainableOpError

from _graph_fixtures import random_input


def _check(graph, node_name, param, k=6, atol=2e-3):
    rng = np.random.default_rng(0)
    inputs = {v.name: rng.normal(size=v.shape).astype(np.float64)
              for v in graph.inputs}
    # force float64 everywhere for tight finite-difference agreement
    for v in graph.values():
        v.dtype = type(v.dtype)("float64")
    for node in graph.nodes:
        node.params = {k_: p.astype(np.float64) for k_, p in node.params.items()}
    node = graph.find_node(node_name)
    weight = node.params[param]
    flat = [np.unravel_index(i, weight.shape)
            for i in rng.choice(weight.size, size=min(k, weight.size),
                                replace=False)]
    analytic, numeric = grad_check(graph, inputs, node_name=node_name,
                                   param=param, indices=flat, eps=1e-5)
    np.testing.assert_allclose(analytic, numeric, atol=atol, rtol=1e-3)


class TestConvGradients:
    def test_conv2d_weight(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (2, 3, 7, 7))
        h = b.conv2d(x, 4, 3, stride=2, padding=1, name="c")
        _check(b.finish(b.tanh(h)), "c", "weight")

    def test_conv2d_bias(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (2, 3, 5, 5))
        h = b.conv2d(x, 4, 3, padding=1, name="c")
        _check(b.finish(b.sigmoid(h)), "c", "bias", k=4)

    def test_pointwise_conv_weight(self):
        b = GraphBuilder("t", seed=1)
        x = b.input("x", (1, 5, 4, 4))
        h = b.conv2d(x, 7, 1, name="c")
        _check(b.finish(b.relu(h)), "c", "weight")

    def test_depthwise_conv_weight(self):
        b = GraphBuilder("t", seed=1)
        x = b.input("x", (1, 4, 6, 6))
        h = b.conv2d(x, 4, 3, padding=1, groups=4, name="dw")
        _check(b.finish(b.tanh(h)), "dw", "weight")

    def test_conv_transpose_weight(self):
        b = GraphBuilder("t", seed=2)
        x = b.input("x", (1, 3, 4, 4))
        h = b.conv_transpose2d(x, 5, 2, stride=2, name="up")
        _check(b.finish(b.tanh(h)), "up", "weight")

    def test_linear_weight(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (3, 6))
        h = b.linear(x, 4, name="fc")
        _check(b.finish(b.tanh(h)), "fc", "weight")

    def test_grad_flows_through_strided_conv_input(self):
        # verify grad_x shape/values via a downstream weight check
        b = GraphBuilder("t", seed=3)
        x = b.input("x", (1, 3, 9, 9))
        h = b.conv2d(x, 4, 3, stride=2, padding=0, name="c1")
        h = b.conv2d(h, 2, 1, name="c2")
        _check(b.finish(b.tanh(h)), "c1", "weight")


class TestLayerGradients:
    @pytest.mark.parametrize("act", ["relu", "silu", "sigmoid", "tanh"])
    def test_through_activation(self, act):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (2, 3, 5, 5))
        h = b.conv2d(x, 4, 3, padding=1, name="c")
        h = getattr(b, act)(h)
        _check(b.finish(h), "c", "weight")

    def test_through_maxpool(self):
        b = GraphBuilder("t", seed=1)
        x = b.input("x", (2, 3, 8, 8))
        h = b.conv2d(x, 4, 3, padding=1, name="c")
        h = b.maxpool2d(h, 2)
        _check(b.finish(b.tanh(h)), "c", "weight")

    def test_through_overlapping_maxpool(self):
        b = GraphBuilder("t", seed=2)
        x = b.input("x", (1, 2, 9, 9))
        h = b.conv2d(x, 3, 3, padding=1, name="c")
        h = b.maxpool2d(h, 3, stride=2, padding=1)
        _check(b.finish(b.tanh(h)), "c", "weight")

    def test_through_avgpool(self):
        b = GraphBuilder("t", seed=1)
        x = b.input("x", (1, 3, 8, 8))
        h = b.conv2d(x, 4, 3, padding=1, name="c")
        h = b.avgpool2d(h, 2)
        _check(b.finish(b.tanh(h)), "c", "weight")

    def test_through_global_avgpool_flatten_linear(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (2, 3, 6, 6))
        h = b.conv2d(x, 4, 3, padding=1, name="c")
        h = b.flatten(b.global_avgpool(h))
        h = b.linear(h, 3, name="fc")
        _check(b.finish(b.tanh(h)), "c", "weight")

    def test_through_upsample(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 3, 4, 4))
        h = b.conv2d(x, 4, 1, name="c")
        h = b.upsample_nearest(h, 3)
        _check(b.finish(b.tanh(h)), "c", "weight")

    def test_through_concat_and_add(self):
        b = GraphBuilder("t", seed=4)
        x = b.input("x", (1, 3, 5, 5))
        a = b.conv2d(x, 4, 3, padding=1, name="ca")
        c = b.conv2d(x, 4, 3, padding=1, name="cb")
        h = b.concat(a, c)
        h = b.conv2d(h, 4, 1, name="mix")
        h = b.add(h, a)
        _check(b.finish(b.tanh(h)), "ca", "weight")

    def test_through_softmax(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (2, 5))
        h = b.linear(x, 4, name="fc")
        h = b.softmax(h)
        _check(b.finish(h), "fc", "weight")

    def test_batchnorm_gamma_beta(self):
        b = GraphBuilder("t", seed=5)
        x = b.input("x", (2, 3, 4, 4))
        h = b.conv2d(x, 4, 3, padding=1, name="c")
        h = b.batchnorm2d(h, gamma=b.rng.uniform(0.5, 2, 4),
                          beta=b.rng.normal(size=4),
                          mean=b.rng.normal(size=4),
                          var=b.rng.uniform(0.5, 2, 4), name="bn")
        g = b.finish(b.tanh(h))
        _check(g, "bn", "gamma", k=4)
        _check(g, "bn", "beta", k=4)


class TestBackwardAPI:
    def test_fused_block_is_untrainable(self):
        from repro.core import fuse_activation_layers
        from repro.decompose import DecompositionConfig, decompose_graph
        from _graph_fixtures import make_chain_graph
        g = decompose_graph(make_chain_graph(), DecompositionConfig(ratio=0.25))
        fuse_activation_layers(g)
        tape = forward_with_tape(g, random_input(g))
        out = g.outputs[0].name
        with pytest.raises(UntrainableOpError, match="decomposed model"):
            backward(tape, {out: np.ones_like(tape.env[out])})

    def test_input_gradients_returned(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 2, 3, 3))
        g = b.finish(b.relu(x))
        tape = forward_with_tape(g, random_input(g))
        out = g.outputs[0].name
        grads = backward(tape, {out: np.ones_like(tape.env[out])})
        assert "x" in grads.inputs
        assert grads.inputs["x"].shape == (1, 2, 3, 3)

    def test_bad_grad_shape_rejected(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 2, 3, 3))
        g = b.finish(b.relu(x))
        tape = forward_with_tape(g, random_input(g))
        with pytest.raises(ValueError, match="shape"):
            backward(tape, {g.outputs[0].name: np.ones((1, 1))})

    def test_shared_input_accumulates(self):
        # y = x + x: dy/dx = 2
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 2, 2, 2))
        g = b.finish(b.add(x, x))
        tape = forward_with_tape(g, random_input(g))
        out = g.outputs[0].name
        grads = backward(tape, {out: np.ones_like(tape.env[out])})
        np.testing.assert_array_equal(grads.inputs["x"], 2.0)
