"""FaultPolicy: grammar, validation, description."""

import pytest

from repro.fleet import FAULT_KINDS, FaultPolicy


class TestParse:
    def test_kill_spec(self):
        fault = FaultPolicy.parse("1:kill:5")
        assert (fault.replica, fault.kind, fault.after) == (1, "kill", 5)

    def test_slow_spec_with_millis(self):
        fault = FaultPolicy.parse("0:slow:3:40")
        assert fault.kind == "slow"
        assert fault.slow_s == pytest.approx(0.040)

    def test_slow_default_delay(self):
        assert FaultPolicy.parse("0:slow:3").slow_s == pytest.approx(0.05)

    @pytest.mark.parametrize("spec", [
        "", "1:kill", "1:kill:5:9:9", "x:kill:5", "1:kill:y",
        "1:explode:5",
    ])
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            FaultPolicy.parse(spec)


class TestValidation:
    def test_kinds_are_closed_set(self):
        assert set(FAULT_KINDS) == {"kill", "stall", "slow"}

    def test_negative_replica_rejected(self):
        with pytest.raises(ValueError):
            FaultPolicy(replica=-1, kind="kill", after=1)

    def test_after_must_be_positive(self):
        with pytest.raises(ValueError):
            FaultPolicy(replica=0, kind="kill", after=0)

    def test_describe_mentions_kind_and_replica(self):
        text = FaultPolicy.parse("2:stall:7").describe()
        assert "stall" in text and "replica 2" in text and "7" in text

    def test_describe_slow_includes_delay(self):
        assert "40 ms" in FaultPolicy.parse("0:slow:1:40").describe()
