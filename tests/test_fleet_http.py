"""serve_http over a Router: the fleet behind the same HTTP surface."""

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.fleet import PoolConfig, ReplicaPool, Router
from repro.serve import ServerConfig, serve_http

from _graph_fixtures import make_chain_graph
from test_obs_prometheus import parse_exposition


@pytest.fixture()
def fleet_served():
    g = make_chain_graph(batch=4)
    pool = ReplicaPool(g, PoolConfig(
        replicas=2, host_budget="100%",
        server=ServerConfig(max_wait_s=0.0)))
    with Router(pool) as router:
        with serve_http(router) as frontend:
            host, port = frontend.address
            yield g, router, f"http://{host}:{port}"


def _get(url):
    try:
        with urllib.request.urlopen(url, timeout=10) as resp:
            return resp.status, resp.read()
    except urllib.error.HTTPError as err:
        return err.code, err.read()


def _post(url, payload):
    req = urllib.request.Request(
        url, data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(req, timeout=10) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


class TestFleetHealthz:
    def test_healthz_reports_replica_detail(self, fleet_served):
        _, _, base = fleet_served
        status, body = _get(base + "/healthz")
        doc = json.loads(body)
        assert status == 200 and doc["status"] == "ok"
        assert doc["ready"] == 2
        assert [r["id"] for r in doc["replicas"]] == [0, 1]
        assert all(r["state"] == "ready" for r in doc["replicas"])

    def test_healthz_503_while_draining(self, fleet_served):
        _, router, base = fleet_served
        router._draining = True
        try:
            status, body = _get(base + "/healthz")
            assert status == 503
            assert json.loads(body)["status"] == "draining"
        finally:
            router._draining = False


class TestFleetInfer:
    def test_infer_round_trips_through_the_fleet(self, fleet_served):
        g, router, base = fleet_served
        v = g.inputs[0]
        x = np.random.default_rng(0).normal(
            size=(1,) + v.shape[1:]).astype(v.dtype.np)
        status, doc = _post(base + "/infer", {"inputs": {v.name: x.tolist()}})
        assert status == 200
        assert doc["outputs"]
        assert router.metrics.get("fleet.completed") == 1


class TestFleetMetrics:
    def test_metrics_expose_per_replica_and_fleet_families(self, fleet_served):
        g, router, base = fleet_served
        v = g.inputs[0]
        x = np.zeros((1,) + v.shape[1:], v.dtype.np)
        _post(base + "/infer", {"inputs": {v.name: x.tolist()}})
        status, body = _get(base + "/metrics")
        assert status == 200
        samples = parse_exposition(body.decode())
        assert samples[("repro_fleet_replica_up", '{replica="0"}')] == 1.0
        assert samples[("repro_fleet_replica_up", '{replica="1"}')] == 1.0
        assert samples[("repro_fleet_requests_total", "")] >= 1.0
        assert samples[("repro_fleet_ready_replicas", "")] == 2.0
        assert samples[("repro_fleet_host_budget_bytes", "")] > 0
        assert any(name == "repro_build_info" for name, _ in samples)
