"""Tucker-2 / CP / TT factorization quality and structure."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.decompose import (cp_decompose, plan_ranks, tt_decompose,
                             tucker2_decompose)


@pytest.fixture
def kernel():
    return np.random.default_rng(5).normal(size=(12, 10, 3, 3))


class TestTucker2:
    def test_full_rank_is_exact(self, kernel):
        f = tucker2_decompose(kernel, 12, 10)
        assert f.error(kernel) < 1e-12

    def test_shapes(self, kernel):
        f = tucker2_decompose(kernel, 5, 4)
        assert f.core.shape == (5, 4, 3, 3)
        assert f.u_out.shape == (12, 5)
        assert f.u_in.shape == (10, 4)
        assert (f.rank_out, f.rank_in) == (5, 4)

    def test_ranks_clamped(self, kernel):
        f = tucker2_decompose(kernel, 100, 100)
        assert (f.rank_out, f.rank_in) == (12, 10)

    def test_error_monotone_in_rank(self, kernel):
        errors = [tucker2_decompose(kernel, r, r).error(kernel)
                  for r in (2, 4, 6, 8, 10)]
        assert all(a >= b - 1e-9 for a, b in zip(errors, errors[1:]))

    def test_hooi_improves_on_hosvd(self, kernel):
        hosvd = tucker2_decompose(kernel, 3, 3, hooi_iters=0).error(kernel)
        hooi = tucker2_decompose(kernel, 3, 3, hooi_iters=5).error(kernel)
        assert hooi <= hosvd + 1e-9

    def test_factors_orthonormal(self, kernel):
        f = tucker2_decompose(kernel, 5, 4)
        np.testing.assert_allclose(f.u_out.T @ f.u_out, np.eye(5), atol=1e-6)
        np.testing.assert_allclose(f.u_in.T @ f.u_in, np.eye(4), atol=1e-6)

    def test_preserves_dtype(self):
        k32 = np.random.default_rng(0).normal(size=(8, 8, 3, 3)).astype(np.float32)
        f = tucker2_decompose(k32, 4, 4)
        assert f.core.dtype == np.float32

    def test_non_4d_rejected(self):
        with pytest.raises(ValueError, match="4D"):
            tucker2_decompose(np.zeros((3, 3, 3)), 2, 2)


class TestCP:
    def test_rank1_tensor_recovered(self):
        rng = np.random.default_rng(1)
        a, b, c, d = (rng.normal(size=s) for s in (6, 5, 3, 3))
        t = np.einsum("o,c,h,w->ochw", a, b, c, d)
        f = cp_decompose(t, 1, max_iters=100)
        assert f.error(t) < 1e-8

    def test_error_decreases_with_rank(self, kernel):
        errs = [cp_decompose(kernel, r, max_iters=40, seed=0).error(kernel)
                for r in (1, 8, 64)]
        assert errs[0] > errs[1] > errs[2]

    def test_deterministic_given_seed(self, kernel):
        f1 = cp_decompose(kernel, 4, max_iters=10, seed=3)
        f2 = cp_decompose(kernel, 4, max_iters=10, seed=3)
        np.testing.assert_array_equal(f1.a, f2.a)

    def test_factor_shapes(self, kernel):
        f = cp_decompose(kernel, 7, max_iters=5)
        assert f.a.shape == (12, 7) and f.b.shape == (10, 7)
        assert f.c.shape == (3, 7) and f.d.shape == (3, 7)
        assert f.rank == 7

    def test_non_4d_rejected(self):
        with pytest.raises(ValueError, match="4D"):
            cp_decompose(np.zeros((2, 2)), 1)


class TestTT:
    def test_full_rank_is_exact(self, kernel):
        # maximal TT ranks for a (Cout=12, Cin=10, 3, 3) kernel
        f = tt_decompose(kernel, (10, 30, 36))
        assert f.error(kernel) < 1e-12

    def test_core_shapes(self, kernel):
        f = tt_decompose(kernel, (4, 6, 5))
        r1, r2, r3 = f.ranks
        assert f.g1.shape == (10, r1)
        assert f.g2.shape == (r1, 3, r2)
        assert f.g3.shape == (r2, 3, r3)
        assert f.g4.shape == (r3, 12)

    def test_ranks_clamped_to_achievable(self, kernel):
        f = tt_decompose(kernel, (1000, 1000, 1000))
        r1, r2, r3 = f.ranks
        assert r1 <= 10 and r3 <= 36

    def test_error_monotone_in_rank(self, kernel):
        errs = [tt_decompose(kernel, (r, r, r)).error(kernel)
                for r in (1, 3, 6, 10)]
        assert all(a >= b - 1e-9 for a, b in zip(errs, errs[1:]))


class TestRankPlanning:
    def test_paper_ratio(self):
        plan = plan_ranks(256, 512, 0.1)
        assert plan.rank_in == 26 and plan.rank_out == 51

    def test_floor_at_one(self):
        plan = plan_ranks(3, 8, 0.1)
        assert plan.rank_in == 1 and plan.rank_out == 1

    def test_ratio_one_is_identity(self):
        plan = plan_ranks(64, 32, 1.0)
        assert plan.rank_in == 64 and plan.rank_out == 32

    def test_bad_ratio_rejected(self):
        with pytest.raises(ValueError, match="ratio"):
            plan_ranks(8, 8, 0.0)
        with pytest.raises(ValueError, match="ratio"):
            plan_ranks(8, 8, 1.5)

    def test_bad_channels_rejected(self):
        with pytest.raises(ValueError, match="channel"):
            plan_ranks(0, 8, 0.5)

    @settings(max_examples=30, deadline=None)
    @given(cin=st.integers(1, 512), cout=st.integers(1, 512),
           ratio=st.floats(0.01, 1.0))
    def test_property_ranks_bounded(self, cin, cout, ratio):
        plan = plan_ranks(cin, cout, ratio)
        assert 1 <= plan.rank_in <= cin
        assert 1 <= plan.rank_out <= cout
        assert plan.cp_rank >= 1 and plan.tt_mid >= 1
