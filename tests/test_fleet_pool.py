"""ReplicaPool: budget splitting, health, ejection, re-admission."""

import time

import pytest

from repro.core import estimate_peak_internal
from repro.fleet import (PoolConfig, ReplicaPool, ReplicaState,
                         split_host_budget)
from repro.plan import InfeasibleBudget
from repro.serve import ServerConfig

from _graph_fixtures import make_chain_graph


def _pool(graph=None, **kwargs):
    graph = graph or make_chain_graph(batch=4)
    kwargs.setdefault("server", ServerConfig(max_wait_s=0.0))
    return ReplicaPool(graph, PoolConfig(**kwargs))


def _wait(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, "condition never held"
        time.sleep(0.005)


class TestHostBudget:
    def test_split_is_even_and_planned(self):
        # a percentage is relative to replicas x one unplanned peak,
        # so "100%" packs exactly `replicas` unplanned copies
        g = make_chain_graph(batch=4)
        peak = estimate_peak_internal(g)
        plan, host = split_host_budget(g, "100%", replicas=3)
        assert host == 3 * peak
        assert plan.budget_bytes == host // 3 == peak

    def test_absolute_bytes_accepted(self):
        g = make_chain_graph(batch=4)
        peak = estimate_peak_internal(g)
        plan, host = split_host_budget(g, 2 * peak, replicas=2)
        assert host == 2 * peak and plan.budget_bytes == peak

    def test_infeasible_share_raises(self):
        g = make_chain_graph(batch=4)
        with pytest.raises(InfeasibleBudget):
            split_host_budget(g, 64, replicas=2)

    def test_pool_publishes_budget_gauges(self):
        pool = _pool(replicas=2, host_budget="100%")
        assert pool.metrics.get("fleet.host_budget_bytes") > 0
        assert pool.metrics.get("fleet.replica_budget_bytes") == \
            pool.memory_plan.budget_bytes
        # one shared read-only plan across replicas
        assert all(r.spec.memory_plan is pool.memory_plan
                   for r in pool.replicas)

    def test_unbudgeted_pool_has_no_plan(self):
        pool = _pool(replicas=2)
        assert pool.memory_plan is None
        assert all(r.spec.memory_plan is None for r in pool.replicas)


class TestConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"replicas": 0}, {"eject_after_failures": 0},
        {"readmit_backoff_s": 0.0}, {"health_interval_s": 0.0},
    ])
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            PoolConfig(**kwargs)


class TestLifecycle:
    def test_start_brings_all_replicas_ready(self):
        with _pool(replicas=3) as pool:
            assert pool.ready_count() == 3
            assert [r.state for r in pool.replicas] == \
                [ReplicaState.READY] * 3
            assert pool.metrics.get("fleet.replica_up.replica.1") == 1.0

    def test_close_stops_everything(self):
        pool = _pool(replicas=2).start()
        pool.close()
        assert pool.ready_count() == 0
        assert all(r.server is None for r in pool.replicas)
        assert pool.metrics.get("fleet.replica_up.replica.0") == 0.0

    def test_pick_prefers_least_outstanding(self):
        with _pool(replicas=3) as pool:
            pool.replicas[0].outstanding = 2
            pool.replicas[1].outstanding = 0
            pool.replicas[2].outstanding = 1
            assert pool.pick().id == 1
            assert pool.pick(exclude={1}).id == 2

    def test_pick_skips_unready_and_can_return_none(self):
        with _pool(replicas=2) as pool:
            pool.eject(pool.replicas[0], "test")
            assert pool.pick().id == 1
            assert pool.pick(exclude={1}) is None


class TestEjection:
    def test_failure_streak_ejects(self):
        with _pool(replicas=2, eject_after_failures=3,
                   readmit_backoff_s=30.0) as pool:
            replica = pool.replicas[0]
            for _ in range(2):
                pool.record_failure(replica, "worker_error")
            assert replica.state == ReplicaState.READY
            pool.record_failure(replica, "worker_error")
            assert replica.state == ReplicaState.EJECTED
            assert pool.metrics.get(
                "fleet.ejections.reason.worker_error") == 1
            assert pool.metrics.get("fleet.replica_up.replica.0") == 0.0

    def test_success_resets_the_streak(self):
        with _pool(replicas=2, eject_after_failures=2) as pool:
            replica = pool.replicas[0]
            pool.record_failure(replica, "worker_error")
            pool.record_success(replica)
            pool.record_failure(replica, "worker_error")
            assert replica.state == ReplicaState.READY

    def test_backoff_doubles_per_ejection_and_caps(self):
        with _pool(replicas=1, readmit_backoff_s=0.25,
                   readmit_backoff_max_s=0.6) as pool:
            replica = pool.replicas[0]
            for expected in (0.25, 0.5, 0.6, 0.6):
                replica.state = ReplicaState.READY
                before = time.monotonic()
                pool.eject(replica, "test")
                assert replica.readmit_at - before == \
                    pytest.approx(expected, abs=0.05)

    def test_crashed_replica_is_ejected_then_readmitted(self):
        with _pool(replicas=2, health_interval_s=0.01,
                   readmit_backoff_s=0.05) as pool:
            replica = pool.replicas[0]
            replica.server.close()  # crash
            _wait(lambda: replica.ejections >= 1)
            assert pool.metrics.get("fleet.ejections.reason.unhealthy") >= 1
            _wait(lambda: replica.ready)
            assert replica.generation == 1
            assert pool.metrics.get("fleet.readmissions") >= 1
            assert pool.ready_count() == 2


class TestDrainAndReload:
    def test_drain_replica_finishes_in_flight(self):
        import numpy as np
        with _pool(replicas=2) as pool:
            replica = pool.replicas[0]
            x = np.zeros((1, 16, 12, 12), np.float32)
            future = replica.server.submit({"x": x})
            assert pool.drain_replica(replica, timeout=10.0)
            assert future.done() and future.result(0)
            assert replica.state == ReplicaState.STOPPED
            assert pool.ready_count() == 1

    def test_reload_replica_swaps_spec_and_bumps_generation(self):
        with _pool(replicas=2) as pool:
            replica = pool.replicas[0]
            new_spec = type(replica.spec)(
                graph=replica.spec.graph,
                server_config=ServerConfig(num_workers=2, max_wait_s=0.0))
            assert pool.reload_replica(replica, new_spec)
            assert replica.generation == 1
            assert replica.ready
            assert replica.server.config.num_workers == 2
            assert pool.metrics.get("fleet.reloads") == 1
