"""Liveness analysis and skip-connection discovery (Algorithm 1 front half)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (analyze_liveness, estimate_peak_internal,
                        find_skip_connections, live_bytes_at)
from repro.ir import GraphBuilder
from repro.runtime import execute

from _graph_fixtures import (make_chain_graph, make_residual_graph, make_skip_graph,
                      random_input)


class TestLiveness:
    def test_begin_end_for_chain(self):
        g = make_chain_graph()
        intervals = analyze_liveness(g)
        for node_index, node in enumerate(g.nodes):
            iv = intervals[node.output]
            assert iv.begin == node_index
        # graph input is defined before node 0
        assert intervals[g.inputs[0]].begin == -1

    def test_output_lives_to_end(self):
        g = make_chain_graph()
        intervals = analyze_liveness(g)
        assert intervals[g.outputs[0]].end == len(g.nodes) - 1

    def test_chain_distances_are_short(self):
        g = make_chain_graph()
        intervals = analyze_liveness(g)
        for node in g.nodes[:-1]:
            assert intervals[node.output].distance <= 2

    def test_skip_value_has_long_distance(self):
        g = make_skip_graph()
        intervals = analyze_liveness(g)
        enc1_relu = g.nodes[1]  # relu after enc1
        assert enc1_relu.op == "relu"
        assert intervals[enc1_relu.output].distance >= 4

    def test_unused_value_distance_zero(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 2, 2, 2))
        live = b.relu(x)
        b.sigmoid(x, name="orphan")
        g = b.finish(live)
        intervals = analyze_liveness(g)
        orphan = g.find_node("orphan")
        assert intervals[orphan.output].distance == 0


class TestPeakEstimate:
    def test_matches_executor_on_all_fixtures(self):
        for factory in (make_chain_graph, make_skip_graph, make_residual_graph):
            g = factory()
            measured = execute(g, random_input(g)).memory.peak_internal_bytes
            assert estimate_peak_internal(g) == measured

    def test_live_bytes_at_bounds(self):
        g = make_skip_graph()
        intervals = analyze_liveness(g)
        total = sum(v.nbytes for v in g.values())
        for i in range(len(g.nodes)):
            b = live_bytes_at(intervals, i)
            assert 0 < b <= total

    def test_empty_graph(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (4, 4))
        g = b.graph
        g.outputs = [x]
        assert estimate_peak_internal(g) == x.nbytes

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 1000), depth=st.integers(1, 6))
    def test_property_estimate_equals_measurement(self, seed, depth):
        """Random sequential CNNs: static estimator == executor."""
        rng = np.random.default_rng(seed)
        b = GraphBuilder("rand", seed=seed)
        x = b.input("x", (1, int(rng.integers(1, 6)), 8, 8))
        h = x
        for i in range(depth):
            choice = rng.integers(0, 3)
            if choice == 0:
                h = b.conv2d(h, int(rng.integers(1, 8)), 1)
            elif choice == 1:
                h = b.relu(h)
            else:
                h = b.add(h, h) if rng.integers(0, 2) else b.sigmoid(h)
        g = b.finish(h)
        measured = execute(g, random_input(g, seed)).memory.peak_internal_bytes
        assert estimate_peak_internal(g) == measured


class TestSkipDiscovery:
    def test_finds_concat_skip(self):
        g = make_skip_graph()
        skips = find_skip_connections(g, distance_threshold=4)
        assert len(skips) == 1
        skip = skips[0]
        assert skip.producer.op == "relu"
        assert len(skip.far_uses) == 1
        assert skip.far_uses[0].op == "concat"
        assert len(skip.near_uses) == 1  # the maxpool right after

    def test_finds_residual_skips(self):
        g = make_residual_graph(blocks=2)
        skips = find_skip_connections(g, distance_threshold=3)
        assert len(skips) >= 2
        assert all(any(u.op == "add" for u in s.far_uses) for s in skips)

    def test_threshold_filters(self):
        g = make_skip_graph()
        assert find_skip_connections(g, distance_threshold=100) == []

    def test_bad_threshold_rejected(self):
        with pytest.raises(ValueError, match="distance_threshold"):
            find_skip_connections(make_chain_graph(), 0)

    def test_graph_outputs_excluded(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 2, 4, 4))
        h = b.relu(x)
        for _ in range(8):
            h2 = b.sigmoid(h)  # h has a long gap to its last use below
            h2 = b.tanh(h2)
        out = b.add(h, h2)
        g = b.finish(out)
        skips = find_skip_connections(g, distance_threshold=4)
        assert all(s.value is not g.outputs[0] for s in skips)
