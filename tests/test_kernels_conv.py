"""Convolution kernels vs a naive loop reference, incl. property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import conv2d, conv_transpose2d, pointwise_conv


def naive_conv2d(x, w, b=None, stride=(1, 1), padding=(0, 0), groups=1):
    """O(everything) reference convolution."""
    n, c, h, wd = x.shape
    cout, cin_g, kh, kw = w.shape
    sh, sw = stride
    ph, pw = padding
    xp = np.zeros((n, c, h + 2 * ph, wd + 2 * pw), dtype=np.float64)
    xp[:, :, ph:ph + h, pw:pw + wd] = x
    oh = (h + 2 * ph - kh) // sh + 1
    ow = (wd + 2 * pw - kw) // sw + 1
    out = np.zeros((n, cout, oh, ow), dtype=np.float64)
    cpg_in = c // groups
    cpg_out = cout // groups
    for ni in range(n):
        for oc in range(cout):
            g = oc // cpg_out
            for ic in range(cin_g):
                src = g * cpg_in + ic
                for oy in range(oh):
                    for ox in range(ow):
                        patch = xp[ni, src, oy * sh:oy * sh + kh,
                                   ox * sw:ox * sw + kw]
                        out[ni, oc, oy, ox] += (patch * w[oc, ic]).sum()
    if b is not None:
        out += b[None, :, None, None]
    return out


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestConv2dAgainstReference:
    @pytest.mark.parametrize("stride,padding", [
        ((1, 1), (0, 0)), ((1, 1), (1, 1)), ((2, 2), (1, 1)),
        ((2, 1), (0, 2)), ((3, 3), (2, 2)),
    ])
    def test_dense(self, rng, stride, padding):
        x = rng.normal(size=(2, 5, 9, 8))
        w = rng.normal(size=(7, 5, 3, 3))
        b = rng.normal(size=7)
        got = conv2d(x, w, b, stride=stride, padding=padding)
        want = naive_conv2d(x, w, b, stride=stride, padding=padding)
        np.testing.assert_allclose(got, want, atol=1e-10)

    def test_pointwise_fast_path(self, rng):
        x = rng.normal(size=(3, 6, 5, 5))
        w = rng.normal(size=(4, 6, 1, 1))
        got = conv2d(x, w, None)
        want = naive_conv2d(x, w, None)
        np.testing.assert_allclose(got, want, atol=1e-10)

    def test_depthwise(self, rng):
        x = rng.normal(size=(2, 6, 8, 8))
        w = rng.normal(size=(6, 1, 3, 3))
        got = conv2d(x, w, None, padding=(1, 1), groups=6)
        want = naive_conv2d(x, w, None, padding=(1, 1), groups=6)
        np.testing.assert_allclose(got, want, atol=1e-10)

    def test_grouped(self, rng):
        x = rng.normal(size=(2, 8, 6, 6))
        w = rng.normal(size=(4, 4, 3, 3))  # 2 groups
        got = conv2d(x, w, None, padding=(1, 1), groups=2)
        want = naive_conv2d(x, w, None, padding=(1, 1), groups=2)
        np.testing.assert_allclose(got, want, atol=1e-10)

    def test_asymmetric_kernel(self, rng):
        x = rng.normal(size=(1, 3, 8, 8))
        w = rng.normal(size=(2, 3, 3, 1))
        got = conv2d(x, w, None, stride=(2, 1), padding=(1, 0))
        want = naive_conv2d(x, w, None, stride=(2, 1), padding=(1, 0))
        np.testing.assert_allclose(got, want, atol=1e-10)

    @settings(max_examples=25, deadline=None)
    @given(n=st.integers(1, 3), c=st.integers(1, 6), cout=st.integers(1, 6),
           hw=st.integers(3, 9), k=st.integers(1, 3), s=st.integers(1, 2),
           p=st.integers(0, 2), seed=st.integers(0, 10_000))
    def test_property_matches_reference(self, n, c, cout, hw, k, s, p, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(n, c, hw, hw))
        w = rng.normal(size=(cout, c, k, k))
        got = conv2d(x, w, None, stride=(s, s), padding=(p, p))
        want = naive_conv2d(x, w, None, stride=(s, s), padding=(p, p))
        np.testing.assert_allclose(got, want, atol=1e-9)


class TestPointwiseConv:
    def test_equals_matmul_per_pixel(self, rng):
        x = rng.normal(size=(2, 5, 4, 4))
        w2d = rng.normal(size=(3, 5))
        got = pointwise_conv(x, w2d)
        want = np.einsum("oc,nchw->nohw", w2d, x)
        np.testing.assert_allclose(got, want, atol=1e-12)

    def test_bias(self, rng):
        x = rng.normal(size=(1, 2, 2, 2))
        w2d = rng.normal(size=(2, 2))
        b = np.array([10.0, -10.0])
        got = pointwise_conv(x, w2d, b)
        np.testing.assert_allclose(got - pointwise_conv(x, w2d),
                                   b[None, :, None, None] * np.ones_like(got))


class TestConvTranspose:
    def test_inverts_spatial_downsampling_shape(self, rng):
        x = rng.normal(size=(2, 6, 5, 5))
        w = rng.normal(size=(6, 4, 2, 2))
        out = conv_transpose2d(x, w, stride=(2, 2))
        assert out.shape == (2, 4, 10, 10)

    def test_stride1_equals_full_correlation(self, rng):
        # stride-1 transpose conv == conv with flipped kernel, full padding
        x = rng.normal(size=(1, 3, 6, 6))
        w = rng.normal(size=(3, 2, 3, 3))
        got = conv_transpose2d(x, w)
        flipped = w[:, :, ::-1, ::-1].transpose(1, 0, 2, 3)
        want = naive_conv2d(x, flipped, padding=(2, 2))
        np.testing.assert_allclose(got, want, atol=1e-10)

    def test_adjointness(self, rng):
        # <conv(x), y> == <x, conv_transpose(y)> — the defining property.
        # Stride-1 same-padding keeps the shapes aligned exactly.
        x = rng.normal(size=(1, 3, 8, 8))
        y = rng.normal(size=(1, 5, 8, 8))
        w = rng.normal(size=(5, 3, 3, 3))
        fwd = conv2d(x, w, None, stride=(1, 1), padding=(1, 1))
        # conv_transpose weight layout: (Cin of adjoint input = 5, Cout = 3)
        back = conv_transpose2d(y, w, None, stride=(1, 1), padding=(1, 1))
        lhs = float((fwd * y).sum())
        rhs = float((x * back).sum())
        assert lhs == pytest.approx(rhs, rel=1e-10)

    def test_channel_mismatch_raises(self, rng):
        x = rng.normal(size=(1, 3, 4, 4))
        w = rng.normal(size=(5, 2, 2, 2))
        with pytest.raises(ValueError, match="in-channels"):
            conv_transpose2d(x, w)
