"""TimeSeriesStore windowed queries + MetricsScraper behaviour."""

import pytest

from repro.obs import MetricsScraper, TimeSeriesStore


class FakeClock:
    """Deterministic injectable clock: tests advance it explicitly."""

    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> float:
        self.t += dt
        return self.t


class TestStore:
    def test_record_and_series_roundtrip(self):
        clock = FakeClock()
        store = TimeSeriesStore(8, clock=clock)
        store.record("a", 1.0)
        clock.advance(1.0)
        store.record("a", 2.0)
        assert store.series("a") == [(0.0, 1.0), (1.0, 2.0)]
        assert store.latest("a") == 2.0
        assert store.latest("missing", default=-1.0) == -1.0

    def test_ring_buffer_evicts_oldest(self):
        clock = FakeClock()
        store = TimeSeriesStore(4, clock=clock)
        for i in range(10):
            store.record("a", float(i), t=float(i))
        points = store.series("a")
        assert len(points) == 4
        assert points[0] == (6.0, 6.0) and points[-1] == (9.0, 9.0)

    def test_ingest_stamps_one_instant(self):
        clock = FakeClock(5.0)
        store = TimeSeriesStore(8, clock=clock)
        store.ingest({"a": 1.0, "b": 2.0})
        assert store.series("a") == [(5.0, 1.0)]
        assert store.series("b") == [(5.0, 2.0)]

    def test_names_sorted_and_prefixed(self):
        store = TimeSeriesStore(8, clock=FakeClock())
        for name in ("serve.b", "fleet.a", "serve.a"):
            store.record(name, 0.0)
        assert store.names() == ["fleet.a", "serve.a", "serve.b"]
        assert store.names("serve.") == ["serve.a", "serve.b"]

    def test_window_filters_by_time(self):
        clock = FakeClock()
        store = TimeSeriesStore(32, clock=clock)
        for i in range(10):
            store.record("a", float(i), t=float(i))
        clock.t = 9.0
        assert [v for _, v in store.window("a", 3.0)] == [6.0, 7.0, 8.0, 9.0]

    def test_rate_over_window(self):
        clock = FakeClock()
        store = TimeSeriesStore(32, clock=clock)
        # a counter climbing 2/s for 5 seconds
        for i in range(6):
            store.record("completed", 2.0 * i, t=float(i))
        clock.t = 5.0
        assert store.rate("completed", 5.0) == pytest.approx(2.0)

    def test_rate_needs_two_samples_and_clamps_resets(self):
        clock = FakeClock()
        store = TimeSeriesStore(8, clock=clock)
        assert store.rate("a", 5.0) == 0.0
        store.record("a", 100.0, t=0.0)
        clock.t = 1.0
        assert store.rate("a", 5.0) == 0.0  # one sample
        # counter reset (replica restart): never a negative rate
        store.record("a", 3.0, t=1.0)
        assert store.rate("a", 5.0) == 0.0

    def test_flat_series_rates_as_zero(self):
        clock = FakeClock()
        store = TimeSeriesStore(8, clock=clock)
        for i in range(4):
            store.record("a", 7.0, t=float(i))
        clock.t = 3.0
        assert store.rate("a", 10.0) == 0.0

    def test_delta_over_window(self):
        clock = FakeClock()
        store = TimeSeriesStore(8, clock=clock)
        store.record("drops", 1.0, t=0.0)
        store.record("drops", 6.0, t=2.0)
        clock.t = 2.0
        assert store.delta("drops", 5.0) == pytest.approx(5.0)
        assert store.delta("drops", 0.5) == 0.0  # only one sample inside

    def test_percentile_and_mean(self):
        clock = FakeClock()
        store = TimeSeriesStore(256, clock=clock)
        for i in range(101):
            store.record("lat", float(i), t=float(i))
        clock.t = 100.0
        assert store.percentile("lat", 0.5) == pytest.approx(50.0)
        assert store.percentile("lat", 0.95) == pytest.approx(95.0)
        assert store.mean("lat") == pytest.approx(50.0)
        # windowed variants see only the tail
        assert store.percentile("lat", 0.0, seconds=10.0) == 90.0
        assert store.mean("lat", seconds=10.0) == pytest.approx(95.0)

    def test_percentile_validates_q(self):
        store = TimeSeriesStore(8, clock=FakeClock())
        with pytest.raises(ValueError, match="quantile"):
            store.percentile("a", 1.5)

    def test_bad_max_samples_rejected(self):
        with pytest.raises(ValueError, match="max_samples"):
            TimeSeriesStore(1)

    def test_to_dict_is_json_shaped(self):
        clock = FakeClock(2.0)
        store = TimeSeriesStore(8, clock=clock)
        store.record("a", 1.5)
        doc = store.to_dict()
        assert doc["max_samples"] == 8
        assert doc["series"] == {"a": [[2.0, 1.5]]}


class TestScraper:
    def test_scrape_once_ingests_and_counts(self):
        store = TimeSeriesStore(8, clock=FakeClock())
        scraper = MetricsScraper(lambda: {"a": 1.0}, store)
        assert scraper.scrape_once()
        assert scraper.scrapes == 1 and scraper.errors == 0
        assert store.latest("a") == 1.0

    def test_source_errors_counted_not_raised(self):
        store = TimeSeriesStore(8, clock=FakeClock())

        def dying():
            raise RuntimeError("replica went away")

        scraper = MetricsScraper(dying, store)
        assert not scraper.scrape_once()
        assert scraper.errors == 1 and scraper.scrapes == 0

    def test_hook_runs_after_ingest_and_errors_counted(self):
        store = TimeSeriesStore(8, clock=FakeClock())
        seen: list[float] = []
        scraper = MetricsScraper(
            lambda: {"a": 42.0}, store,
            hook=lambda: seen.append(store.latest("a")))
        scraper.scrape_once()
        assert seen == [42.0]  # the hook observes the fresh sample

        def bad_hook():
            raise RuntimeError("detector bug")

        scraper.hook = bad_hook
        assert scraper.scrape_once()  # the scrape itself still succeeds
        assert scraper.errors == 1

    def test_background_thread_scrapes_repeatedly(self):
        import time

        store = TimeSeriesStore(64)
        with MetricsScraper(lambda: {"a": 1.0}, store,
                            interval_s=0.01) as scraper:
            deadline = time.monotonic() + 5.0
            while scraper.scrapes < 3 and time.monotonic() < deadline:
                time.sleep(0.01)
        assert scraper.scrapes >= 3
        assert len(store.series("a")) >= 3

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError, match="interval_s"):
            MetricsScraper(dict, TimeSeriesStore(8), interval_s=0.0)
