"""The fused kernels vs running the layers separately (Listing 1 claim)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import (avgpool2d, fused_block, fused_restore,
                           fused_scratch_bytes, get_activation, maxpool2d,
                           pointwise_conv, upsample_nearest)


@pytest.fixture
def rng():
    return np.random.default_rng(3)


def reference_chain(x, w1, b1, w2, b2, act=None, pool=None, upsample=0):
    """lconv → act → resample → fconv, each as a separate full kernel."""
    full = pointwise_conv(x, w1, b1)
    if act is not None:
        full = get_activation(act)(full)
    if pool is not None:
        fn = maxpool2d if pool["kind"] == "max" else avgpool2d
        full = fn(full, pool["kernel"], pool.get("stride", pool["kernel"]),
                  pool.get("padding", 0))
    elif upsample:
        full = upsample_nearest(full, upsample)
    if w2 is None:
        return full
    return pointwise_conv(full, w2, b2)


class TestFusedBlock:
    @pytest.mark.parametrize("act", [None, "relu", "silu", "sigmoid", "tanh"])
    def test_matches_reference(self, rng, act):
        x = rng.normal(size=(2, 4, 6, 6))
        w1, b1 = rng.normal(size=(24, 4)), rng.normal(size=24)
        w2, b2 = rng.normal(size=(5, 24)), rng.normal(size=5)
        got = fused_block(x, w1, b1, w2, b2, act=act, block_size=7)
        want = reference_chain(x, w1, b1, w2, b2, act=act)
        np.testing.assert_allclose(got, want, atol=1e-10)

    @pytest.mark.parametrize("kind", ["max", "avg"])
    def test_with_pool(self, rng, kind):
        x = rng.normal(size=(2, 4, 8, 8))
        w1, b1 = rng.normal(size=(16, 4)), rng.normal(size=16)
        w2, b2 = rng.normal(size=(3, 16)), rng.normal(size=3)
        pool = {"kind": kind, "kernel": (2, 2), "stride": (2, 2), "padding": (0, 0)}
        got = fused_block(x, w1, b1, w2, b2, act="relu", pool=pool, block_size=5)
        want = reference_chain(x, w1, b1, w2, b2, act="relu", pool=pool)
        np.testing.assert_allclose(got, want, atol=1e-10)

    def test_with_upsample(self, rng):
        x = rng.normal(size=(1, 3, 4, 4))
        w1 = rng.normal(size=(12, 3))
        w2 = rng.normal(size=(2, 12))
        got = fused_block(x, w1, None, w2, None, act="relu", upsample=2,
                          block_size=4)
        want = reference_chain(x, w1, None, w2, None, act="relu", upsample=2)
        np.testing.assert_allclose(got, want, atol=1e-10)

    def test_block_size_invariance(self, rng):
        x = rng.normal(size=(1, 5, 6, 6))
        w1, b1 = rng.normal(size=(17, 5)), rng.normal(size=17)
        w2, b2 = rng.normal(size=(4, 17)), rng.normal(size=4)
        reference = fused_block(x, w1, b1, w2, b2, act="relu", block_size=17)
        for block in (1, 2, 3, 5, 16, 100):
            got = fused_block(x, w1, b1, w2, b2, act="relu", block_size=block)
            np.testing.assert_allclose(got, reference, atol=1e-10)

    def test_pool_and_upsample_rejected(self, rng):
        x = rng.normal(size=(1, 2, 4, 4))
        with pytest.raises(ValueError, match="cannot both"):
            fused_block(x, rng.normal(size=(4, 2)), None,
                        rng.normal(size=(2, 4)), None,
                        pool={"kind": "max", "kernel": (2, 2)}, upsample=2)

    def test_weight_shape_mismatch_rejected(self, rng):
        x = rng.normal(size=(1, 2, 4, 4))
        with pytest.raises(ValueError, match="w1 in-channels"):
            fused_block(x, rng.normal(size=(4, 3)), None,
                        rng.normal(size=(2, 4)), None)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000), block=st.integers(1, 40),
           cprime=st.integers(1, 33))
    def test_property_blocked_equals_dense(self, seed, block, cprime):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(1, 3, 4, 4))
        w1 = rng.normal(size=(cprime, 3))
        w2 = rng.normal(size=(2, cprime))
        got = fused_block(x, w1, None, w2, None, act="relu", block_size=block)
        want = reference_chain(x, w1, None, w2, None, act="relu")
        np.testing.assert_allclose(got, want, atol=1e-9)


class TestFusedRestore:
    @pytest.mark.parametrize("act", ["relu", "silu"])
    def test_matches_reference(self, rng, act):
        x = rng.normal(size=(2, 3, 6, 6))
        w1, b1 = rng.normal(size=(20, 3)), rng.normal(size=20)
        got = fused_restore(x, w1, b1, act=act, block_size=6)
        want = reference_chain(x, w1, b1, None, None, act=act)
        np.testing.assert_allclose(got, want, atol=1e-10)

    def test_with_maxpool(self, rng):
        x = rng.normal(size=(1, 4, 8, 8))
        w1 = rng.normal(size=(10, 4))
        pool = {"kind": "max", "kernel": (3, 3), "stride": (2, 2), "padding": (1, 1)}
        got = fused_restore(x, w1, None, act="relu", pool=pool, block_size=3)
        want = reference_chain(x, w1, None, None, None, act="relu", pool=pool)
        np.testing.assert_allclose(got, want, atol=1e-10)

    def test_with_upsample(self, rng):
        x = rng.normal(size=(1, 2, 3, 3))
        w1 = rng.normal(size=(5, 2))
        got = fused_restore(x, w1, None, act="tanh", upsample=3, block_size=2)
        want = reference_chain(x, w1, None, None, None, act="tanh", upsample=3)
        np.testing.assert_allclose(got, want, atol=1e-10)


class TestScratchAccounting:
    def test_scratch_scales_with_block(self):
        shape = (4, 8, 10, 10)
        small = fused_scratch_bytes(shape, 4, block_size=4)
        large = fused_scratch_bytes(shape, 4, block_size=16)
        assert large == 4 * small
        assert small == 4 * 4 * 10 * 10 * 4

    def test_scratch_clamped_by_cprime(self):
        shape = (1, 8, 10, 10)
        assert fused_scratch_bytes(shape, 4, block_size=64, c_prime=5) == \
            fused_scratch_bytes(shape, 4, block_size=5)
