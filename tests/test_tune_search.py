"""repro.tune.search: greedy hill-climb over synthetic cost surfaces."""

import pytest

from repro.tune import Trial, greedy_search
from repro.tune.cost_model import CostEstimate


def make_grid(blocks=(4, 8, 16, 32, 64), tiles=(0, 8)):
    """Candidates whose predicted score prefers large blocks."""
    return [CostEstimate(block_size=b, spatial_tile=t,
                         scratch_bytes=b * 1024, flops=1000,
                         traffic_bytes=10 ** 6 // b, blocks=64 // b)
            for t in tiles for b in blocks]


class TestGreedySearch:
    def test_finds_global_optimum_on_unimodal_surface(self):
        cands = make_grid()
        # true optimum at block 16, tile 8 — not the predicted best
        def measure(block, tile):
            return abs(block - 16) + (5 if tile != 8 else 0)

        result = greedy_search(cands, measure, budget=20)
        assert result.best.key == (16, 8)

    def test_budget_is_respected(self):
        cands = make_grid()
        calls = []

        def measure(block, tile):
            calls.append((block, tile))
            return float(block)

        result = greedy_search(cands, measure, budget=3)
        assert len(calls) == 3
        assert result.measured == 3

    def test_no_candidate_measured_twice(self):
        cands = make_grid()
        calls = []

        def measure(block, tile):
            calls.append((block, tile))
            return 1.0

        greedy_search(cands, measure, budget=50)
        assert len(calls) == len(set(calls))

    def test_seeds_measured_first(self):
        cands = make_grid()
        calls = []

        def measure(block, tile):
            calls.append((block, tile))
            return 1.0

        greedy_search(cands, measure, budget=10, seeds=[(8, 0)])
        assert calls[0] == (8, 0)

    def test_invalid_seed_ignored(self):
        cands = make_grid()
        result = greedy_search(cands, lambda b, t: float(b), budget=4,
                               seeds=[(999, 7)])
        assert result.measured == 4

    def test_on_trial_sees_every_measurement(self):
        cands = make_grid()
        seen = []
        result = greedy_search(cands, lambda b, t: float(b), budget=5,
                               on_trial=seen.append)
        assert seen == result.trials
        assert all(isinstance(t, Trial) for t in seen)

    def test_patience_stops_early(self):
        cands = make_grid(blocks=(1, 2, 4, 8, 16, 32, 64), tiles=(0,))
        calls = []

        def measure(block, tile):
            calls.append(block)
            return 1.0  # flat surface: nothing ever improves

        greedy_search(cands, measure, budget=50, patience=1)
        assert len(calls) < len(cands)

    def test_trial_for_lookup(self):
        cands = make_grid()
        result = greedy_search(cands, lambda b, t: float(b), budget=4)
        some = result.trials[0]
        assert result.trial_for(some.key) is some
        assert result.trial_for((123, 456)) is None

    def test_empty_candidates_raise(self):
        with pytest.raises(ValueError):
            greedy_search([], lambda b, t: 1.0)

    def test_single_candidate(self):
        cands = make_grid(blocks=(8,), tiles=(0,))
        result = greedy_search(cands, lambda b, t: 2.5, budget=10)
        assert result.best.key == (8, 0)
        assert result.measured == 1
