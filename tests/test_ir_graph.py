"""Unit tests for Graph construction, queries, rewriting and validation."""

import numpy as np
import pytest

from repro.ir import Graph, GraphBuilder, Node, Value, format_graph, summarize_graph
from repro.ir.emit import make_node

from _graph_fixtures import make_chain_graph, make_skip_graph


class TestGraphBuilder:
    def test_builds_valid_graph(self):
        g = make_chain_graph()
        g.validate()
        assert len(g.inputs) == 1
        assert len(g.outputs) == 1

    def test_deterministic_weights(self):
        g1 = make_chain_graph(seed=5)
        g2 = make_chain_graph(seed=5)
        w1 = g1.find_node("c1").params["weight"]
        w2 = g2.find_node("c1").params["weight"]
        np.testing.assert_array_equal(w1, w2)

    def test_different_seeds_differ(self):
        g1 = make_chain_graph(seed=1)
        g2 = make_chain_graph(seed=2)
        assert not np.array_equal(g1.find_node("c1").params["weight"],
                                  g2.find_node("c1").params["weight"])

    def test_explicit_weight_used_verbatim(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 2, 4, 4))
        w = np.ones((3, 2, 1, 1), np.float32)
        b.conv2d(x, 3, 1, weight=w, name="c")
        assert np.array_equal(b.graph.find_node("c").params["weight"], w)


class TestGraphQueries:
    def test_producer_and_consumers(self):
        g = make_chain_graph()
        c1 = g.find_node("c1")
        relu = g.consumers_of(c1.output)
        assert len(relu) == 1 and relu[0].op == "relu"
        assert g.producer_of(c1.output) is c1
        assert g.producer_of(g.inputs[0]) is None

    def test_predecessors_successors(self):
        g = make_skip_graph()
        join = g.find_node("join")
        preds = g.predecessors(join)
        assert len(preds) == 2
        succs = g.successors(join)
        assert len(succs) == 1 and succs[0].op == "conv2d"

    def test_weight_bytes_matches_params(self):
        g = make_chain_graph()
        expected = sum(p.nbytes for n in g.nodes for p in n.params.values())
        assert g.weight_bytes() == expected

    def test_find_value_missing_raises(self):
        g = make_chain_graph()
        with pytest.raises(KeyError):
            g.find_value("nope")


class TestGraphRewriting:
    def test_replace_uses(self):
        g = make_skip_graph()
        join = g.find_node("join")
        old = join.inputs[0]
        new = make_node(g, "identity", [old], name="alias")
        g.insert_before(join, [new])
        count = g.replace_uses(old, new.output, where=lambda n: n is join)
        assert count == 1
        assert join.inputs[0] is new.output
        g.validate()

    def test_dead_code_elimination(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 4, 4, 4))
        live = b.relu(x)
        b.conv2d(x, 8, 1, name="dead1")  # unused
        g = b.finish(live)
        removed = g.dead_code_eliminate()
        assert removed == 1
        assert all(n.name != "dead1" for n in g.nodes)
        g.validate()

    def test_dce_removes_chains(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 4, 4, 4))
        live = b.relu(x)
        dead = b.conv2d(x, 8, 1, name="dead1")
        b.relu(dead, name="dead2")
        g = b.finish(live)
        assert g.dead_code_eliminate() == 2

    def test_clone_is_independent(self):
        g = make_chain_graph()
        clone = g.clone("copy")
        clone.remove_node(clone.nodes[-1])
        assert len(clone.nodes) == len(g.nodes) - 1
        # weights are shared (no copy)
        assert clone.find_node("c1").params["weight"] is g.find_node("c1").params["weight"]

    def test_clone_preserves_outputs(self, rng):
        from repro.runtime import execute
        g = make_skip_graph()
        clone = g.clone()
        inp = {"x": rng.normal(size=g.inputs[0].shape).astype(np.float32)}
        np.testing.assert_array_equal(
            execute(g, inp).output(), execute(clone, inp).output())


class TestValidation:
    def test_use_before_def_rejected(self):
        g = make_chain_graph()
        # move the last node to the front: breaks the schedule
        node = g.nodes.pop()
        g.nodes.insert(0, node)
        with pytest.raises(ValueError, match="before its definition"):
            g.validate()

    def test_duplicate_node_name_rejected(self):
        g = make_chain_graph()
        g.nodes[1].name = g.nodes[0].name
        with pytest.raises(ValueError, match="duplicate node name"):
            g.validate()

    def test_undefined_output_rejected(self):
        g = make_chain_graph()
        g.outputs = [Value("ghost", (1,))]
        with pytest.raises(ValueError, match="undefined"):
            g.validate()

    def test_wrong_output_shape_rejected(self):
        g = make_chain_graph()
        g.nodes[0].output.shape = (9, 9)
        with pytest.raises(ValueError, match="shape"):
            g.validate()


class TestPrinter:
    def test_format_graph_mentions_every_node(self):
        g = make_skip_graph()
        text = format_graph(g)
        for node in g.nodes:
            assert node.output.name in text
        assert "return" in text

    def test_summarize_counts_params(self):
        g = make_chain_graph()
        s = summarize_graph(g)
        assert "conv2d" in s and "params" in s
