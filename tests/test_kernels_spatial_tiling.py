"""Spatial tiling of the fused kernels (Listing 1's 3D blocking)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import fused_block, fused_restore, fused_scratch_bytes


@pytest.fixture
def rng():
    return np.random.default_rng(9)


def _weights(rng, c_prime=20, r_in=5, r_out=3):
    return (rng.normal(size=(c_prime, r_in)), rng.normal(size=c_prime),
            rng.normal(size=(r_out, c_prime)), rng.normal(size=r_out))


class TestSpatialTiling:
    @pytest.mark.parametrize("tile", [2, 4, 8])
    def test_matches_untiled(self, rng, tile):
        x = rng.normal(size=(2, 5, 8, 8))
        w1, b1, w2, b2 = _weights(rng)
        dense = fused_block(x, w1, b1, w2, b2, act="relu")
        tiled = fused_block(x, w1, b1, w2, b2, act="relu", spatial_tile=tile)
        np.testing.assert_allclose(tiled, dense, atol=1e-10)

    def test_with_nonoverlapping_pool(self, rng):
        x = rng.normal(size=(1, 5, 8, 8))
        w1, b1, w2, b2 = _weights(rng)
        pool = {"kind": "max", "kernel": (2, 2), "stride": (2, 2),
                "padding": (0, 0)}
        dense = fused_block(x, w1, b1, w2, b2, act="relu", pool=pool)
        tiled = fused_block(x, w1, b1, w2, b2, act="relu", pool=pool,
                            spatial_tile=4)
        np.testing.assert_allclose(tiled, dense, atol=1e-10)

    def test_with_upsample(self, rng):
        x = rng.normal(size=(1, 5, 8, 8))
        w1, b1, w2, b2 = _weights(rng)
        dense = fused_block(x, w1, b1, w2, b2, act="silu", upsample=2)
        tiled = fused_block(x, w1, b1, w2, b2, act="silu", upsample=2,
                            spatial_tile=4)
        np.testing.assert_allclose(tiled, dense, atol=1e-10)

    def test_overlapping_pool_falls_back(self, rng):
        # overlapping/padded pooling cannot tile exactly; the kernel must
        # fall back to the dense path and still be correct
        x = rng.normal(size=(1, 5, 8, 8))
        w1, b1, w2, b2 = _weights(rng)
        pool = {"kind": "max", "kernel": (3, 3), "stride": (2, 2),
                "padding": (1, 1)}
        dense = fused_block(x, w1, b1, w2, b2, act="relu", pool=pool)
        tiled = fused_block(x, w1, b1, w2, b2, act="relu", pool=pool,
                            spatial_tile=4)
        np.testing.assert_allclose(tiled, dense, atol=1e-10)

    def test_non_dividing_tile_falls_back(self, rng):
        x = rng.normal(size=(1, 5, 10, 10))
        w1, b1, w2, b2 = _weights(rng)
        dense = fused_block(x, w1, b1, w2, b2, act="relu")
        tiled = fused_block(x, w1, b1, w2, b2, act="relu", spatial_tile=3)
        np.testing.assert_allclose(tiled, dense, atol=1e-10)

    def test_restore_epilogue_tiled(self, rng):
        x = rng.normal(size=(2, 4, 8, 8))
        w1 = rng.normal(size=(12, 4))
        dense = fused_restore(x, w1, None, act="relu")
        tiled = fused_restore(x, w1, None, act="relu", spatial_tile=2)
        np.testing.assert_allclose(tiled, dense, atol=1e-12)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 5000), tile=st.sampled_from([1, 2, 3, 4, 6, 8]),
           block=st.integers(1, 25))
    def test_property_tiling_invariance(self, seed, tile, block):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(1, 3, 12, 12))
        w1 = rng.normal(size=(7, 3))
        w2 = rng.normal(size=(2, 7))
        dense = fused_block(x, w1, None, w2, None, act="tanh",
                            block_size=block)
        tiled = fused_block(x, w1, None, w2, None, act="tanh",
                            block_size=block, spatial_tile=tile)
        np.testing.assert_allclose(tiled, dense, atol=1e-9)


class TestTiledScratch:
    def test_scratch_shrinks_with_spatial_tile(self):
        shape = (1, 8, 16, 16)
        full = fused_scratch_bytes(shape, 4, block_size=8)
        tiled = fused_scratch_bytes(shape, 4, block_size=8, spatial_tile=4)
        assert tiled == full // 16

    def test_non_dividing_tile_keeps_full_scratch(self):
        shape = (1, 8, 10, 10)
        full = fused_scratch_bytes(shape, 4, block_size=8)
        assert fused_scratch_bytes(shape, 4, block_size=8, spatial_tile=3) == full
