"""Parallel batch-sharded inference."""

import numpy as np
import pytest

from repro.obs import Tracer, use_tracer
from repro.runtime import ParallelRunner, execute, shard_batch
from repro.runtime.parallel import PARALLEL_TID_BASE

from _graph_fixtures import make_chain_graph, random_input


class TestShardBatch:
    def test_even_split(self):
        inputs = {"x": np.arange(8).reshape(8, 1)}
        shards = shard_batch(inputs, 4)
        assert [s["x"].shape[0] for s in shards] == [2, 2, 2, 2]
        np.testing.assert_array_equal(
            np.concatenate([s["x"] for s in shards]), inputs["x"])

    def test_uneven_split(self):
        inputs = {"x": np.arange(7).reshape(7, 1)}
        shards = shard_batch(inputs, 3)
        assert sum(s["x"].shape[0] for s in shards) == 7
        # linspace bounds: sizes differ by at most one, order preserved
        sizes = [s["x"].shape[0] for s in shards]
        assert max(sizes) - min(sizes) <= 1
        np.testing.assert_array_equal(
            np.concatenate([s["x"] for s in shards]), inputs["x"])

    def test_uneven_split_never_returns_empty_shards(self):
        for batch in range(1, 9):
            for num in range(1, 9):
                shards = shard_batch(
                    {"x": np.arange(batch).reshape(batch, 1)}, num)
                assert all(s["x"].shape[0] >= 1 for s in shards)
                assert len(shards) == min(num, batch)

    def test_more_shards_than_batch(self):
        inputs = {"x": np.arange(2).reshape(2, 1)}
        shards = shard_batch(inputs, 8)
        assert len(shards) == 2

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            shard_batch({"x": np.zeros((0, 1))}, 2)

    def test_inconsistent_batches_rejected(self):
        with pytest.raises(ValueError, match="inconsistent"):
            shard_batch({"x": np.zeros((2, 1)), "y": np.zeros((3, 1))}, 2)


class TestParallelRunner:
    def test_matches_serial(self):
        g = make_chain_graph(batch=2)
        big = {"x": np.random.default_rng(0).normal(
            size=(6, 16, 12, 12)).astype(np.float32)}
        with ParallelRunner(g, num_workers=2) as runner:
            par = runner.run(big)
        serial = np.concatenate([
            execute(g, {"x": big["x"][i:i + 2]}).output() for i in (0, 2, 4)])
        np.testing.assert_allclose(par[g.outputs[0].name], serial, atol=1e-6)

    def test_indivisible_batch_rejected(self):
        g = make_chain_graph(batch=2)
        with ParallelRunner(g, num_workers=2) as runner:
            with pytest.raises(ValueError, match="not divisible"):
                runner.run({"x": np.zeros((3, 16, 12, 12), np.float32)})

    def test_runs_without_pool_when_single_shard(self):
        g = make_chain_graph(batch=2)
        runner = ParallelRunner(g, num_workers=2)  # no __enter__: local path
        out = runner.run(random_input(g))
        assert out[g.outputs[0].name].shape == g.outputs[0].shape

    def test_bad_worker_count_rejected(self):
        g = make_chain_graph()
        with pytest.raises(ValueError, match="num_workers"):
            ParallelRunner(g, num_workers=0)


class TestCrossProcessTracePropagation:
    def test_worker_shard_traces_are_absorbed(self):
        g = make_chain_graph(batch=2)
        big = {"x": np.random.default_rng(0).normal(
            size=(4, 16, 12, 12)).astype(np.float32)}
        tracer = Tracer()
        with use_tracer(tracer):
            with ParallelRunner(g, num_workers=2) as runner:
                out = runner.run(big, trace_id="feedc0de00000000")
        assert out[g.outputs[0].name].shape[0] == 4

        # the parent records the fan-out span with the propagated id
        (run_span,) = [s for s in tracer.spans if s.name == "parallel.run"]
        assert run_span.args["trace_id"] == "feedc0de00000000"
        assert run_span.args["shards"] == 2

        # each worker's shard timeline lands on its own labeled row,
        # every absorbed span tagged with the run's trace id
        shard_spans = [s for s in tracer.spans if s.tid >= PARALLEL_TID_BASE]
        tids = {s.tid for s in shard_spans}
        assert tids == {PARALLEL_TID_BASE, PARALLEL_TID_BASE + 1}
        assert tracer.thread_names[PARALLEL_TID_BASE] == "shard-0"
        assert tracer.thread_names[PARALLEL_TID_BASE + 1] == "shard-1"
        assert all(s.args["trace_id"] == "feedc0de00000000"
                   for s in shard_spans)
        assert {s.args["shard"] for s in shard_spans} == {0, 1}

        # per-op executor spans crossed the process boundary
        for shard in (0, 1):
            ops = [s for s in shard_spans
                   if s.args["shard"] == shard and "op" in s.args]
            assert len(ops) == len(g.nodes)
        # and a shard-root span frames each worker timeline
        roots = [s for s in shard_spans if s.name == "parallel.shard"]
        assert len(roots) == 2

    def test_fresh_trace_id_when_none_given(self):
        g = make_chain_graph(batch=2)
        tracer = Tracer()
        with use_tracer(tracer):
            runner = ParallelRunner(g, num_workers=2)  # poolless local path
            runner.run(random_input(g))
        (run_span,) = [s for s in tracer.spans if s.name == "parallel.run"]
        assert len(run_span.args["trace_id"]) == 16
        # local fallback still tags executor spans with the trace id
        ops = [s for s in tracer.spans if "op" in s.args]
        assert ops
        assert all(s.args["trace_id"] == run_span.args["trace_id"]
                   for s in ops)

    def test_untraced_run_records_nothing(self):
        g = make_chain_graph(batch=2)
        runner = ParallelRunner(g, num_workers=2)
        runner.run(random_input(g))  # ambient NoopTracer: must not blow up


class TestParallelRunnerLifecycle:
    def test_close_is_idempotent(self):
        g = make_chain_graph(batch=2)
        runner = ParallelRunner(g, num_workers=2)
        runner.__enter__()
        assert runner._pool is not None
        runner.close()
        assert runner._pool is None
        runner.close()  # second close: no-op, no error
        assert runner._pool is None

    def test_close_without_enter_is_safe(self):
        g = make_chain_graph(batch=2)
        ParallelRunner(g, num_workers=2).close()

    def test_runs_after_close_fall_back_to_local(self):
        g = make_chain_graph(batch=2)
        with ParallelRunner(g, num_workers=2) as runner:
            pass
        out = runner.run(random_input(g))
        assert out[g.outputs[0].name].shape == g.outputs[0].shape

    def test_reenter_after_close(self):
        g = make_chain_graph(batch=2)
        runner = ParallelRunner(g, num_workers=2)
        big = {"x": np.random.default_rng(1).normal(
            size=(4, 16, 12, 12)).astype(np.float32)}
        with runner:
            first = runner.run(big)
        with runner:
            second = runner.run(big)
        np.testing.assert_array_equal(first[g.outputs[0].name],
                                      second[g.outputs[0].name])

    def test_worker_exception_propagates_through_pool_map(self):
        g = make_chain_graph(batch=2)
        bad = {"wrong_name": np.zeros((4, 16, 12, 12), np.float32)}
        with ParallelRunner(g, num_workers=2) as runner:
            with pytest.raises(KeyError, match="missing input"):
                runner.run(bad)
        # and identically on the poolless local path
        runner = ParallelRunner(g, num_workers=2)
        with pytest.raises(KeyError, match="missing input"):
            runner.run(bad)
