"""Cross-registry invariants: ops ↔ kernels ↔ gradients ↔ printer.

These pin the contracts that keep the system extensible: every op the
IR accepts must be executable; every executable op must infer shapes;
trainable coverage is explicit; public modules export what they claim.
"""

import importlib

import numpy as np
import pytest

from repro.ir import ops
from repro.kernels import KERNELS
from repro.train.gradients import BACKWARD


class TestOpKernelParity:
    def test_every_registered_op_has_a_kernel(self):
        missing = set(ops.REGISTRY) - set(KERNELS)
        assert not missing, f"ops without kernels: {sorted(missing)}"

    def test_every_kernel_has_a_registered_op(self):
        missing = set(KERNELS) - set(ops.REGISTRY)
        assert not missing, f"kernels without op specs: {sorted(missing)}"

    def test_every_op_has_backward_or_explicit_exclusion(self):
        # ops must either be trainable or raise UntrainableOpError via
        # an explicit BACKWARD entry — silent omission is a bug
        missing = set(ops.REGISTRY) - set(BACKWARD)
        assert not missing, f"ops without a backward policy: {sorted(missing)}"

    def test_activation_ops_all_registered_and_fusable(self):
        from repro.kernels import get_activation
        for name in ops.ACTIVATION_OPS:
            assert name in ops.REGISTRY
            assert name in KERNELS
            get_activation(name)  # must exist in the kernel activation table

    def test_inplace_sets_agree(self):
        from repro.core.liveness import INPLACE_CAPABLE_OPS
        from repro.runtime.executor import _INPLACE_OPS
        assert INPLACE_CAPABLE_OPS == _INPLACE_OPS

    def test_flops_nonnegative_defaults(self):
        # every spec's flops hook must be callable on a minimal node
        from repro.ir import GraphBuilder
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 4, 8, 8))
        h = b.relu(x)
        g = b.finish(h)
        assert ops.node_flops(g.nodes[0]) >= 0


class TestPublicAPI:
    @pytest.mark.parametrize("module", [
        "repro", "repro.ir", "repro.kernels", "repro.runtime",
        "repro.decompose", "repro.core", "repro.models", "repro.data",
        "repro.train", "repro.bench",
    ])
    def test_all_exports_resolve(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.__all__ lists missing {name!r}"

    @pytest.mark.parametrize("module", [
        "repro.ir.graph", "repro.ir.ops", "repro.kernels.fused",
        "repro.runtime.executor", "repro.runtime.arena",
        "repro.decompose.tucker", "repro.core.skip_opt", "repro.core.fusion",
        "repro.core.transform", "repro.core.pipeline", "repro.core.scheduling",
        "repro.train.autodiff", "repro.bench.figures",
    ])
    def test_modules_documented(self, module):
        mod = importlib.import_module(module)
        assert mod.__doc__ and len(mod.__doc__) > 80, \
            f"{module} is missing a real module docstring"

    def test_public_functions_documented(self):
        import repro
        undocumented = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if callable(obj) and not isinstance(obj, type):
                if not (obj.__doc__ or "").strip():
                    undocumented.append(name)
        assert not undocumented, undocumented

    def test_version_defined(self):
        import repro
        parts = repro.__version__.split(".")
        assert len(parts) == 3 and all(p.isdigit() for p in parts)
