"""Allocator invariants, including hypothesis-driven alloc/free traces."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import DType, Value
from repro.runtime import AllocationError, TensorAllocator


def v(name, elems):
    return Value(name, (elems,), DType.float32)


class TestAllocatorBasics:
    def test_peak_tracks_high_water_mark(self):
        a = TensorAllocator()
        a.alloc(v("x", 100))     # 400 B
        a.alloc(v("y", 50))      # +200 B
        a.free(v("x", 100))
        a.alloc(v("z", 10))
        assert a.peak_bytes == 600
        assert a.current_bytes == 240

    def test_peak_live_set_snapshot(self):
        a = TensorAllocator()
        a.alloc(v("x", 100))
        a.alloc(v("y", 50))
        a.free(v("y", 50))
        assert set(a.peak_live_set) == {"x", "y"}

    def test_double_alloc_rejected(self):
        a = TensorAllocator()
        a.alloc(v("x", 1))
        with pytest.raises(AllocationError, match="allocated twice"):
            a.alloc(v("x", 1))

    def test_free_unknown_rejected(self):
        a = TensorAllocator()
        with pytest.raises(AllocationError, match="not live"):
            a.free(v("ghost", 1))

    def test_leak_check(self):
        a = TensorAllocator()
        a.alloc(v("x", 1))
        with pytest.raises(AllocationError, match="leaked"):
            a.assert_empty()
        a.assert_empty(keep={"x"})

    def test_scratch_bumps_peak_without_residency(self):
        a = TensorAllocator()
        a.alloc(v("x", 100))  # 400 B
        a.charge_scratch(1000)
        assert a.peak_bytes == 1400
        assert a.current_bytes == 400
        assert a.peak_live_set.get("<scratch>") == 1000

    def test_scratch_below_peak_is_ignored(self):
        a = TensorAllocator()
        a.alloc(v("x", 1000))
        a.free(v("x", 1000))
        a.charge_scratch(10)
        assert a.peak_bytes == 4000

    def test_allocation_traffic(self):
        a = TensorAllocator()
        a.alloc(v("x", 10))
        a.free(v("x", 10))
        a.alloc(v("y", 10))
        assert a.num_allocations == 2
        assert a.total_allocated_bytes == 80


@settings(max_examples=50, deadline=None)
@given(ops=st.lists(st.tuples(st.booleans(), st.integers(0, 9),
                              st.integers(1, 100)), max_size=60))
def test_property_peak_is_max_of_current(ops):
    """Replay random alloc/free traces; peak must equal the running max
    of the live total, and the live total must never go negative."""
    a = TensorAllocator()
    live: dict[int, Value] = {}
    running_max = 0
    for is_alloc, slot, elems in ops:
        if is_alloc and slot not in live:
            val = v(f"s{slot}", elems)
            live[slot] = val
            a.alloc(val)
        elif not is_alloc and slot in live:
            a.free(live.pop(slot))
        running_max = max(running_max, a.current_bytes)
        assert a.current_bytes == sum(x.nbytes for x in live.values())
    assert a.peak_bytes == running_max
