"""Executor semantics: correctness, memory accounting, leak freedom."""

import numpy as np
import pytest

from repro.core import estimate_peak_internal
from repro.ir import GraphBuilder
from repro.runtime import InferenceSession, execute

from _graph_fixtures import (make_chain_graph, make_residual_graph, make_skip_graph,
                      random_input)


class TestExecution:
    def test_missing_input_raises(self):
        g = make_chain_graph()
        with pytest.raises(KeyError, match="missing input"):
            execute(g, {})

    def test_wrong_shape_raises(self, rng):
        g = make_chain_graph()
        with pytest.raises(ValueError, match="shape"):
            execute(g, {"x": rng.normal(size=(1, 1, 1, 1)).astype(np.float32)})

    def test_output_matches_manual_composition(self, rng):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (2, 3, 4, 4))
        h = b.relu(b.conv2d(x, 5, 1, name="c"))
        g = b.finish(h)
        inp = rng.normal(size=(2, 3, 4, 4)).astype(np.float32)
        out = execute(g, {"x": inp}).output()
        w = g.find_node("c").params["weight"][:, :, 0, 0]
        want = np.maximum(np.einsum("oc,nchw->nohw", w, inp), 0)
        np.testing.assert_allclose(out, want, atol=1e-6)

    def test_multi_output_graph(self, rng):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 2, 4, 4))
        a = b.relu(x)
        c = b.sigmoid(x)
        g = b.finish(a, c)
        res = execute(g, random_input(g))
        assert len(res.outputs) == 2

    def test_unused_input_allowed(self, rng):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 2, 2, 2))
        unused = b.input("aux", (1, 1, 1, 1))
        g = b.finish(b.relu(x))
        res = execute(g, random_input(g))
        assert res.output().shape == (1, 2, 2, 2)

    def test_timings_recorded(self):
        g = make_chain_graph()
        res = execute(g, random_input(g), record_timings=True)
        assert len(res.timings) == len(g.nodes)
        assert all(t.seconds >= 0 for t in res.timings)
        assert res.total_seconds > 0


class TestMemoryAccounting:
    def test_events_one_per_node(self):
        g = make_skip_graph()
        res = execute(g, random_input(g))
        assert len(res.memory.events) == len(g.nodes)

    def test_measured_peak_equals_static_estimate(self):
        for factory in (make_chain_graph, make_skip_graph, make_residual_graph):
            g = factory()
            res = execute(g, random_input(g))
            assert res.memory.peak_internal_bytes == estimate_peak_internal(g), \
                f"mismatch for {g.name}"

    def test_peak_event_consistent(self):
        g = make_skip_graph()
        profile = execute(g, random_input(g)).memory
        assert profile.peak_event().live_bytes == profile.peak_internal_bytes

    def test_weight_bytes_reported(self):
        g = make_chain_graph()
        profile = execute(g, random_input(g)).memory
        assert profile.weight_bytes == g.weight_bytes()

    def test_peak_live_set_sums_to_peak(self):
        g = make_skip_graph()
        profile = execute(g, random_input(g)).memory
        assert sum(profile.peak_live_set.values()) == profile.peak_internal_bytes

    def test_input_counted_while_used(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 8, 8, 8))       # 2048 B
        h = b.relu(x)                         # input + output live: 4096 B
        g = b.finish(h)
        profile = execute(g, random_input(g)).memory
        assert profile.peak_internal_bytes == 2 * 8 * 8 * 8 * 4

    def test_skip_connection_extends_liveness(self):
        # the concat join must see both operands resident
        g = make_skip_graph()
        profile = execute(g, random_input(g)).memory
        join_event = next(e for e in profile.events if e.node_name == "join")
        join_node = g.find_node("join")
        operand_bytes = sum(v.nbytes for v in join_node.inputs)
        assert join_event.live_bytes >= operand_bytes + join_node.output.nbytes

    def test_timeline_monotone_indices(self):
        g = make_chain_graph()
        profile = execute(g, random_input(g)).memory
        indices = [i for i, _ in profile.timeline()]
        assert indices == sorted(indices)


class TestInferenceSession:
    def test_bare_array_binding(self, rng):
        g = make_chain_graph()
        session = InferenceSession(g)
        out = session.run(rng.normal(size=g.inputs[0].shape).astype(np.float32))
        assert out.output().shape == g.outputs[0].shape

    def test_bare_array_rejected_for_multi_input(self, rng):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 1, 2, 2))
        y = b.input("y", (1, 1, 2, 2))
        g = b.finish(b.add(x, y))
        session = InferenceSession(g)
        with pytest.raises(ValueError, match="pass a dict"):
            session.run(np.zeros((1, 1, 2, 2), np.float32))

    def test_time_inference(self):
        g = make_chain_graph()
        session = InferenceSession(g)
        timing = session.time_inference(random_input(g), warmup=1, repeats=3)
        assert len(timing.seconds_per_run) == 3
        assert timing.best <= timing.median <= max(timing.seconds_per_run)

    def test_invalid_graph_rejected_at_construction(self):
        g = make_chain_graph()
        g.nodes[0].output.shape = (1, 2, 3)
        with pytest.raises(ValueError):
            InferenceSession(g)
