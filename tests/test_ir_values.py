"""Unit tests for IR values, dtypes and naming."""

import numpy as np
import pytest

from repro.ir import DType, Value, ValueNamer


class TestDType:
    def test_numpy_round_trip(self):
        for dt in (DType.float32, DType.float64, DType.int32, DType.int64):
            assert DType.from_numpy(dt.np) is dt

    def test_bool_maps_to_bool_(self):
        assert DType.from_numpy(np.bool_) is DType.bool_

    def test_itemsize(self):
        assert DType.float32.itemsize == 4
        assert DType.float64.itemsize == 8
        assert DType.int64.itemsize == 8

    def test_unsupported_dtype_raises(self):
        with pytest.raises(TypeError):
            DType.from_numpy(np.complex128)


class TestValue:
    def test_nbytes(self):
        v = Value("x", (2, 3, 4, 5), DType.float32)
        assert v.num_elements == 120
        assert v.nbytes == 480

    def test_scalar_shape(self):
        v = Value("s", ())
        assert v.num_elements == 1
        assert v.nbytes == 4

    def test_negative_dim_rejected(self):
        with pytest.raises(ValueError):
            Value("bad", (2, -1))

    def test_shape_normalized_to_ints(self):
        v = Value("x", (np.int64(2), np.int64(3)))
        assert v.shape == (2, 3)
        assert all(isinstance(d, int) for d in v.shape)

    def test_identity_hash(self):
        a = Value("x", (1,))
        b = Value("x", (1,))
        assert hash(a) != hash(b) or a is not b
        assert len({a, b}) == 2

    def test_with_shape(self):
        v = Value("x", (2, 3), DType.float64)
        w = v.with_shape((4, 5), name="y")
        assert w.name == "y" and w.shape == (4, 5) and w.dtype == DType.float64

    def test_repr_contains_shape(self):
        assert "2x3" in repr(Value("x", (2, 3)))


class TestValueNamer:
    def test_fresh_returns_base_when_free(self):
        namer = ValueNamer()
        assert namer.fresh("a") == "a"

    def test_fresh_suffixes_on_collision(self):
        namer = ValueNamer()
        assert namer.fresh("a") == "a"
        assert namer.fresh("a") == "a.copy1"
        assert namer.fresh("a") == "a.copy2"

    def test_reserved_names_are_avoided(self):
        namer = ValueNamer(iter(["a", "a.copy1"]))
        assert namer.fresh("a") == "a.copy2"

    def test_independent_bases(self):
        namer = ValueNamer()
        namer.fresh("a")
        assert namer.fresh("b") == "b"
