"""Extra model variants: build, run, and full TeMCO compatibility."""

import numpy as np
import pytest

from repro.core import optimize
from repro.decompose import DecompositionConfig, decompose_graph
from repro.models import EXTRA_MODELS, build_extra
from repro.runtime import execute

from _graph_fixtures import random_input


class TestExtraRegistry:
    def test_three_extras(self):
        assert set(EXTRA_MODELS) == {"resnet_bottleneck", "vgg11_silu",
                                     "unet_transpose"}

    def test_unknown_rejected(self):
        with pytest.raises(KeyError, match="unknown extra"):
            build_extra("resnext")


@pytest.mark.parametrize("name", sorted(EXTRA_MODELS))
class TestExtraModels:
    def test_builds_and_runs(self, name):
        g = build_extra(name, batch=1, hw=32)
        g.validate()
        out = execute(g, random_input(g)).output()
        assert np.isfinite(out).all()

    def test_temco_end_to_end(self, name):
        g = build_extra(name, batch=1, hw=32)
        dg = decompose_graph(g, DecompositionConfig(ratio=0.25))
        opt, report = optimize(dg)
        inp = random_input(g)
        a = execute(dg, inp).output()
        b = execute(opt, inp).output()
        scale = max(1e-6, float(np.abs(a).max()))
        assert np.abs(a - b).max() <= 5e-4 * scale + 1e-6
        assert report.peak_after <= report.peak_before


class TestExtraSpecifics:
    def test_bottleneck_has_pointwise_pairs(self):
        from repro.ir import ops
        g = build_extra("resnet_bottleneck", batch=1, hw=32)
        pointwise = [n for n in g.nodes if n.op == "conv2d"
                     and n.params["weight"].shape[2:] == (1, 1)]
        assert len(pointwise) >= 6  # reduce/expand per block

    def test_vgg_silu_uses_silu(self):
        g = build_extra("vgg11_silu", batch=1, hw=32)
        assert sum(1 for n in g.nodes if n.op == "silu") >= 8
        # only the classifier head's hidden layer may use relu
        assert sum(1 for n in g.nodes if n.op == "relu") <= 1

    def test_vgg_silu_fusion_produces_silu_kernels(self):
        g = build_extra("vgg11_silu", batch=1, hw=32)
        dg = decompose_graph(g, DecompositionConfig(ratio=0.25))
        opt, report = optimize(dg)
        fused_acts = {n.attrs.get("act") for n in opt.nodes
                      if n.op.startswith("fused")}
        assert "silu" in fused_acts

    def test_unet_transpose_keeps_transpose_convs(self):
        g = build_extra("unet_transpose", batch=1, hw=32)
        assert any(n.op == "conv_transpose2d" for n in g.nodes)
