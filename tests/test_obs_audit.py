"""Conformance auditor: clean passes, injected faults, arena track."""

import pytest

from repro.obs import Tracer, use_tracer
from repro.obs.audit import (AuditFinding, audit_graph, audit_model,
                             ledger_findings)
from repro.runtime import AllocationLedger


class TestAuditGraph:
    def test_zoo_model_passes_clean(self):
        from repro.models import build_model
        graph = build_model("alexnet", batch=2, hw=32)
        audit = audit_graph(graph, model="alexnet", variant="original")
        assert audit.passed, [f.message for f in audit.findings]
        assert audit.measured_peak_bytes == audit.predicted_peak_bytes
        assert audit.deviation_pct == 0.0
        assert audit.measured_peak_bytes <= audit.arena_lower_bound_bytes
        assert audit.arena_lower_bound_bytes <= audit.arena_bytes
        assert audit.ledger_events > 0

    def test_to_dict_round_trips_the_essentials(self):
        from repro.models import build_model
        graph = build_model("alexnet", batch=1, hw=32)
        doc = audit_graph(graph, model="alexnet").to_dict()
        assert doc["passed"] is True
        assert doc["measured_peak_bytes"] == doc["predicted_peak_bytes"]
        assert doc["findings"] == []

    def test_tolerance_validates_exactness_not_slack(self):
        # tolerance is a *bound*: a 0.0 default must still pass because
        # the executor implements the liveness model exactly
        from repro.models import build_model
        graph = build_model("unet_small", batch=2, hw=32)
        audit = audit_graph(graph, tolerance=0.0)
        assert audit.passed


class TestAuditModel:
    def test_original_and_optimized_both_audited(self):
        result = audit_model("alexnet", batch=2, hw=32)
        assert result.passed
        assert result.original.variant == "original"
        assert result.optimized.variant != "original"
        assert (result.optimized.measured_peak_bytes
                < result.original.measured_peak_bytes)
        assert result.reduction_pct > 0.0

    def test_no_reduction_cross_check_fires(self):
        # equal peaks demote to a warning, not an error
        result = audit_model("alexnet", batch=2, hw=32)
        result.optimized.measured_peak_bytes = \
            result.original.measured_peak_bytes
        # re-derive the cross-check the way audit_model does
        from repro.obs.audit import AuditFinding
        findings = []
        if (result.optimized.measured_peak_bytes
                > result.original.measured_peak_bytes):
            findings.append(AuditFinding("no_reduction", "error", "x", ""))
        elif (result.optimized.measured_peak_bytes
                == result.original.measured_peak_bytes):
            findings.append(AuditFinding("no_reduction", "warning", "x", ""))
        assert findings and findings[0].severity == "warning"


class TestLedgerFindings:
    def test_corrupted_ledger_becomes_error_finding(self):
        ledger = AllocationLedger()
        ledger.record("alloc", "x", 100, 100)
        ledger.record("alloc", "y", 50, 999)  # lies about the total
        findings = ledger_findings(ledger, keep={"x", "y"}, subject="t")
        assert findings
        assert all(isinstance(f, AuditFinding) for f in findings)
        assert all(f.kind == "ledger_inconsistent" for f in findings)
        assert all(f.severity == "error" for f in findings)


class TestArenaTrack:
    def test_audit_emits_aligned_arena_counter_track(self):
        from repro.models import build_model
        graph = build_model("alexnet", batch=2, hw=32)
        tracer = Tracer()
        with use_tracer(tracer):
            audit = audit_graph(graph, model="alexnet")
        assert audit.passed
        arena_samples = [s for s in tracer.counters if s.track == "arena"]
        assert arena_samples, "audit under a tracer must emit the arena track"
        occupied = [s.values["occupied_bytes"] for s in arena_samples]
        assert max(occupied) == audit.arena_lower_bound_bytes
        assert all(s.values["arena_bytes"] == audit.arena_bytes
                   for s in arena_samples)
        # samples are timestamped inside the recorded span window
        span_end = max(s.start_us + s.duration_us for s in tracer.spans)
        assert all(0 <= s.ts_us <= span_end for s in arena_samples)
        verdicts = [i for i in tracer.instants if i.name == "audit_verdict"]
        assert len(verdicts) == 1 and verdicts[0].args["passed"] is True

    def test_no_tracer_no_track(self):
        from repro.models import build_model
        graph = build_model("alexnet", batch=1, hw=32)
        audit = audit_graph(graph)  # ambient tracer is the no-op
        assert audit.passed


class TestDeviationPct:
    def test_zero_predicted_peak_edge(self):
        audit_zero = pytest.importorskip("repro.obs.audit")
        ga = audit_zero.GraphAudit(
            model="m", variant="v", graph_name="g",
            measured_peak_bytes=0, predicted_peak_bytes=0,
            arena_bytes=0, arena_lower_bound_bytes=0,
            ledger_events=0, num_allocations=0)
        assert ga.deviation_pct == 0.0
        assert ga.passed
