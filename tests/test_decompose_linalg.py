"""Multilinear algebra primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.decompose import (fold, khatri_rao, mode_dot, multi_mode_dot,
                             relative_error, truncated_svd, unfold)


@pytest.fixture
def rng():
    return np.random.default_rng(11)


class TestUnfoldFold:
    @pytest.mark.parametrize("mode", [0, 1, 2, 3])
    def test_fold_inverts_unfold(self, rng, mode):
        t = rng.normal(size=(3, 4, 5, 2))
        np.testing.assert_array_equal(fold(unfold(t, mode), mode, t.shape), t)

    def test_unfold_shape(self, rng):
        t = rng.normal(size=(3, 4, 5))
        assert unfold(t, 1).shape == (4, 15)

    def test_unfold_rows_are_mode_fibers(self, rng):
        t = rng.normal(size=(2, 3, 4))
        m = unfold(t, 1)
        # row j of the unfolding collects every element with index j in mode 1
        for j in range(3):
            np.testing.assert_array_equal(np.sort(m[j]),
                                          np.sort(t[:, j, :].ravel()))


class TestModeDot:
    def test_matches_einsum(self, rng):
        t = rng.normal(size=(3, 4, 5))
        m = rng.normal(size=(7, 4))
        np.testing.assert_allclose(mode_dot(t, m, 1),
                                   np.einsum("iak,ja->ijk", t, m), atol=1e-12)

    def test_dim_mismatch_raises(self, rng):
        with pytest.raises(ValueError, match="mode-0"):
            mode_dot(rng.normal(size=(3, 4)), rng.normal(size=(2, 5)), 0)

    def test_multi_mode_dot_composes(self, rng):
        t = rng.normal(size=(3, 4, 5))
        a = rng.normal(size=(2, 3))
        b = rng.normal(size=(6, 5))
        got = multi_mode_dot(t, [a, b], [0, 2])
        want = mode_dot(mode_dot(t, a, 0), b, 2)
        np.testing.assert_allclose(got, want, atol=1e-12)


class TestTruncatedSVD:
    def test_full_rank_reconstructs(self, rng):
        m = rng.normal(size=(6, 9))
        u, s, vt = truncated_svd(m, 6)
        np.testing.assert_allclose(u @ np.diag(s) @ vt, m, atol=1e-10)

    def test_rank_clamped(self, rng):
        m = rng.normal(size=(4, 3))
        u, s, vt = truncated_svd(m, 100)
        assert u.shape == (4, 3) and s.shape == (3,)

    def test_truncation_is_best_approximation(self, rng):
        # Eckart–Young: rank-k SVD error equals the tail singular values
        m = rng.normal(size=(8, 8))
        _, s_full, _ = truncated_svd(m, 8)
        u, s, vt = truncated_svd(m, 3)
        err = np.linalg.norm(m - u @ np.diag(s) @ vt)
        np.testing.assert_allclose(err, np.linalg.norm(s_full[3:]), atol=1e-8)

    def test_bad_rank_rejected(self, rng):
        with pytest.raises(ValueError, match="rank"):
            truncated_svd(rng.normal(size=(3, 3)), 0)


class TestKhatriRao:
    def test_columnwise_kronecker(self, rng):
        a = rng.normal(size=(3, 4))
        b = rng.normal(size=(2, 4))
        kr = khatri_rao(a, b)
        assert kr.shape == (6, 4)
        for r in range(4):
            np.testing.assert_allclose(kr[:, r], np.kron(a[:, r], b[:, r]))

    def test_rank_mismatch_raises(self, rng):
        with pytest.raises(ValueError, match="rank mismatch"):
            khatri_rao(rng.normal(size=(3, 4)), rng.normal(size=(2, 5)))


class TestRelativeError:
    def test_zero_for_identical(self, rng):
        t = rng.normal(size=(3, 3))
        assert relative_error(t, t) == 0.0

    def test_scale_invariant(self, rng):
        t = rng.normal(size=(4, 4))
        p = t + rng.normal(size=(4, 4)) * 0.1
        assert relative_error(t, p) == pytest.approx(
            relative_error(10 * t, 10 * p))

    def test_zero_original(self):
        z = np.zeros((2, 2))
        assert relative_error(z, z) == 0.0
        assert relative_error(z, np.ones((2, 2))) == 2.0


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 9999), mode=st.integers(0, 2))
def test_property_mode_dot_linearity(seed, mode):
    rng = np.random.default_rng(seed)
    t = rng.normal(size=(3, 4, 5))
    dims = t.shape[mode]
    a = rng.normal(size=(2, dims))
    b = rng.normal(size=(2, dims))
    np.testing.assert_allclose(mode_dot(t, a + b, mode),
                               mode_dot(t, a, mode) + mode_dot(t, b, mode),
                               atol=1e-10)
