"""Model zoo: structure, determinism, and end-to-end TeMCO compatibility."""

import numpy as np
import pytest

from repro.core import estimate_peak_internal, optimize
from repro.decompose import DecompositionConfig, decompose_graph
from repro.models import (MODEL_ZOO, build_densenet, build_model, build_resnet,
                          build_unet, build_vgg, model_names)
from repro.runtime import execute

from _graph_fixtures import random_input

SMALL = {"alexnet": 32, "vgg11": 32, "vgg13": 32, "vgg16": 32, "vgg19": 32,
         "resnet18": 32, "resnet34": 32, "densenet": 32, "unet": 32,
         "unet_small": 32, "wavenet2d": 32, "fractalnet": 32}


class TestZooRegistry:
    def test_twelve_models_seven_families(self):
        # the paper's 10 models of 5 families, plus the two long-skip
        # stacks that exercise the budget planner
        assert len(MODEL_ZOO) == 12
        assert len({spec.family for spec in MODEL_ZOO.values()}) == 7

    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError, match="unknown model"):
            build_model("resnet50")

    def test_specs_declare_skip_connections_correctly(self):
        from repro.core import find_skip_connections
        for name, spec in MODEL_ZOO.items():
            g = build_model(name, batch=1, hw=SMALL[name])
            # a ResNet basic block is only ~4 nodes once BN is folded, so
            # probe with a slightly tighter threshold than the default
            has_skips = bool(find_skip_connections(g, 3))
            assert has_skips == spec.has_skip_connections, name


@pytest.mark.parametrize("name", model_names())
class TestEveryModel:
    def test_builds_and_validates(self, name):
        g = build_model(name, batch=1, hw=SMALL[name])
        g.validate()
        assert g.inputs[0].shape[0] == 1

    def test_deterministic(self, name):
        g1 = build_model(name, batch=1, hw=SMALL[name], seed=3)
        g2 = build_model(name, batch=1, hw=SMALL[name], seed=3)
        for n1, n2 in zip(g1.nodes, g2.nodes):
            assert n1.name == n2.name
            for k in n1.params:
                np.testing.assert_array_equal(n1.params[k], n2.params[k])

    def test_runs_and_produces_finite_output(self, name):
        g = build_model(name, batch=1, hw=SMALL[name])
        out = execute(g, random_input(g)).output()
        assert np.isfinite(out).all()
        if MODEL_ZOO[name].task == "classification":
            assert out.shape == (1, 10)
        else:
            assert out.shape[1] == 1
            assert ((out >= 0) & (out <= 1)).all()  # sigmoid mask

    def test_no_batchnorm_remains(self, name):
        g = build_model(name, batch=1, hw=SMALL[name])
        assert not any(n.op == "batchnorm2d" for n in g.nodes)

    def test_decompose_and_optimize_preserve_outputs(self, name):
        g = build_model(name, batch=1, hw=SMALL[name])
        dg = decompose_graph(g, DecompositionConfig(ratio=0.25))
        opt, report = optimize(dg)
        inp = random_input(g)
        a = execute(dg, inp).output()
        b = execute(opt, inp).output()
        scale = max(1e-6, float(np.abs(a).max()))
        assert np.abs(a - b).max() <= 5e-4 * scale + 1e-6
        assert report.peak_after <= report.peak_before


class TestBuilderValidation:
    def test_vgg_bad_variant(self):
        with pytest.raises(ValueError, match="unknown VGG"):
            build_vgg("vgg7")

    def test_vgg_bad_resolution(self):
        with pytest.raises(ValueError, match="divisible by 32"):
            build_vgg("vgg11", hw=40)

    def test_resnet_bad_variant(self):
        with pytest.raises(ValueError, match="unknown ResNet"):
            build_resnet("resnet99")

    def test_densenet_bad_variant(self):
        with pytest.raises(ValueError, match="unknown DenseNet"):
            build_densenet("densenet161")

    def test_unet_bad_resolution(self):
        with pytest.raises(ValueError, match="divisible"):
            build_unet(hw=50)

    def test_unet_transpose_variant(self):
        g = build_unet(batch=1, hw=32, depth=2, base_channels=8,
                       use_transpose=True)
        assert any(n.op == "conv_transpose2d" for n in g.nodes)
        out = execute(g, random_input(g)).output()
        assert np.isfinite(out).all()

    def test_densenet_channel_growth(self):
        g = build_densenet(batch=1, hw=32)
        concats = [n for n in g.nodes if n.op == "concat"]
        widths = [n.output.shape[1] for n in concats]
        # widths grow within each dense block
        assert any(b > a for a, b in zip(widths, widths[1:]))
