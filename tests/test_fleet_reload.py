"""Rolling reload: zero-downtime spec swaps under live traffic."""

import threading
import time

import numpy as np

from repro.fleet import PoolConfig, ReplicaPool, ReplicaSpec, Router
from repro.serve import ServerConfig

from _graph_fixtures import make_chain_graph


def _fleet(replicas=3, **pool_kwargs):
    graph = make_chain_graph(batch=4)
    pool_kwargs.setdefault("server", ServerConfig(max_wait_s=0.0))
    pool_kwargs.setdefault("health_interval_s", 0.01)
    pool = ReplicaPool(graph, PoolConfig(replicas=replicas, **pool_kwargs))
    return Router(pool)


def _payload(graph, seed=0):
    rng = np.random.default_rng(seed)
    v = graph.inputs[0]
    return {v.name: rng.normal(size=(1,) + v.shape[1:]).astype(v.dtype.np)}


class _ReadyMonitor:
    """Samples pool.ready_count() on a tight loop, keeps the minimum."""

    def __init__(self, pool):
        self.pool = pool
        self.min_ready = pool.config.replicas
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        while not self._stop.is_set():
            self.min_ready = min(self.min_ready, self.pool.ready_count())
            time.sleep(0.001)

    def __enter__(self):
        self._thread.start()
        return self

    def __exit__(self, *exc):
        self._stop.set()
        self._thread.join(timeout=5.0)


class TestRollingReload:
    def test_restart_keeps_n_minus_one_ready(self):
        with _fleet(replicas=3) as fleet:
            with _ReadyMonitor(fleet.pool) as monitor:
                assert fleet.rolling_reload(timeout=10.0)
            assert monitor.min_ready >= 2
            assert [r.generation for r in fleet.pool.replicas] == [1, 1, 1]
            assert fleet.metrics.get("fleet.reloads") == 3

    def test_reload_under_traffic_zero_client_errors(self):
        with _fleet(replicas=3) as fleet:
            errors = []
            served = [0]
            stop = threading.Event()

            def _client():
                i = 0
                while not stop.is_set():
                    try:
                        fleet.infer(_payload(fleet.graph, seed=i),
                                    timeout=10.0)
                        served[0] += 1
                    except Exception as exc:  # pragma: no cover
                        errors.append(exc)
                    i += 1

            client = threading.Thread(target=_client, daemon=True)
            with _ReadyMonitor(fleet.pool) as monitor:
                client.start()
                assert fleet.rolling_reload(timeout=10.0)
                stop.set()
                client.join(timeout=10.0)
            assert errors == []
            assert served[0] > 0
            assert monitor.min_ready >= 2
            assert fleet.healthy()

    def test_reload_swaps_spec_fleet_wide(self):
        with _fleet(replicas=2) as fleet:
            old = fleet.pool.replicas[0].spec
            new_spec = ReplicaSpec(
                graph=old.graph,
                server_config=ServerConfig(num_workers=2, max_wait_s=0.0),
                memory_plan=old.memory_plan)
            assert fleet.rolling_reload(new_spec, timeout=10.0)
            for replica in fleet.pool.replicas:
                assert replica.spec is new_spec
                assert replica.server.config.num_workers == 2
                assert replica.ready

    def test_reload_is_idempotent_across_rounds(self):
        with _fleet(replicas=2) as fleet:
            assert fleet.rolling_reload(timeout=10.0)
            assert fleet.rolling_reload(timeout=10.0)
            assert [r.generation for r in fleet.pool.replicas] == [2, 2]
            assert fleet.pool.ready_count() == 2
