"""Random CNN generator for differential property testing.

Generates structurally diverse, always-valid inference graphs: chains
with random activations, pools, skip connections joined by add/concat,
and occasional upsampling — the full surface TeMCO's passes pattern-
match on.  Deterministic given the seed.
"""

from __future__ import annotations

import numpy as np

from repro.ir import Graph, GraphBuilder

ACTS = ("relu", "silu", "sigmoid", "tanh", "leaky_relu", "elu",
        "hardswish", "gelu")


def random_cnn(seed: int, *, max_blocks: int = 5, hw: int = 16,
               batch: int = 1, base_channels: int = 8) -> Graph:
    """A random small CNN with skip connections.

    Structure: a stem conv, then up to ``max_blocks`` blocks, each
    randomly one of {plain conv+act, conv+act+pool, residual add,
    branch+concat}; spatial dims shrink only via pools so adds/concats
    always align.
    """
    rng = np.random.default_rng(seed)
    b = GraphBuilder(f"fuzz{seed}", seed=seed)
    x = b.input("x", (batch, 3, hw, hw))
    channels = base_channels * int(rng.integers(1, 3))
    h = b.conv2d(x, channels, 3, padding=1, name="stem")
    h = getattr(b, str(rng.choice(ACTS)))(h)

    cur_hw = hw
    num_blocks = int(rng.integers(1, max_blocks + 1))
    for i in range(num_blocks):
        kind = int(rng.integers(0, 4))
        act = str(rng.choice(ACTS))
        if kind == 0:  # plain conv + act
            channels = base_channels * int(rng.integers(1, 5))
            h = b.conv2d(h, channels, 3, padding=1, name=f"b{i}.conv")
            h = getattr(b, act)(h)
        elif kind == 1 and cur_hw >= 8:  # conv + act + pool
            channels = base_channels * int(rng.integers(1, 5))
            h = b.conv2d(h, channels, 3, padding=1, name=f"b{i}.conv")
            h = getattr(b, act)(h)
            h = b.maxpool2d(h, 2) if rng.integers(0, 2) else b.avgpool2d(h, 2)
            cur_hw //= 2
        elif kind == 2:  # residual add (same width)
            skip = h
            h = b.conv2d(h, channels, 3, padding=1, name=f"b{i}.c1")
            h = getattr(b, act)(h)
            h = b.conv2d(h, channels, 3, padding=1, name=f"b{i}.c2")
            h = getattr(b, act)(b.add(h, skip))
        else:  # two branches joined by concat
            left = b.conv2d(h, base_channels, 3, padding=1, name=f"b{i}.l")
            left = getattr(b, act)(left)
            right = b.conv2d(h, base_channels, 1, name=f"b{i}.r")
            right = getattr(b, act)(right)
            h = b.concat(left, right, name=f"b{i}.cat")
            channels = h.shape[1]
            if rng.integers(0, 2):
                h = b.conv2d(h, channels, 1, name=f"b{i}.mix")
    return b.finish(h)
