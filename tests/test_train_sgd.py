"""SGD trainer: losses go down, and the paper's accuracy workflow holds."""

import numpy as np
import pytest

from repro.core import optimize
from repro.data import classification_batch, topk_accuracy
from repro.decompose import DecompositionConfig, decompose_graph
from repro.ir import GraphBuilder
from repro.runtime import execute
from repro.train import (SGDConfig, bce_with_probs, mse, softmax_cross_entropy,
                         train, train_classifier, train_segmenter)


def tiny_classifier(hw=16, channels=8, num_classes=4, batch=16, seed=0):
    b = GraphBuilder("tinycls", seed=seed)
    x = b.input("image", (batch, 3, hw, hw))
    h = b.relu(b.conv2d(x, channels, 3, padding=1, name="c1"))
    h = b.maxpool2d(h, 2)
    h = b.relu(b.conv2d(h, 2 * channels, 3, padding=1, name="c2"))
    h = b.flatten(b.global_avgpool(h))
    return b.finish(b.linear(h, num_classes, name="fc"))


def tiny_segmenter(hw=16, batch=8, seed=0):
    b = GraphBuilder("tinyseg", seed=seed)
    x = b.input("image", (batch, 3, hw, hw))
    h = b.relu(b.conv2d(x, 8, 3, padding=1, name="c1"))
    h = b.relu(b.conv2d(h, 8, 3, padding=1, name="c2"))
    return b.finish(b.sigmoid(b.conv2d(h, 1, 1, name="head")))


class TestLosses:
    def test_cross_entropy_value_and_grad(self):
        logits = np.array([[10.0, 0.0], [0.0, 10.0]])
        labels = np.array([0, 1])
        value, grad = softmax_cross_entropy(logits, labels)
        assert value < 1e-3
        assert grad.shape == logits.shape

    def test_cross_entropy_grad_matches_fd(self):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(3, 5))
        labels = rng.integers(0, 5, 3)
        _, grad = softmax_cross_entropy(logits, labels)
        eps = 1e-6
        for idx in [(0, 0), (1, 3), (2, 4)]:
            up = logits.copy(); up[idx] += eps
            down = logits.copy(); down[idx] -= eps
            fd = (softmax_cross_entropy(up, labels)[0]
                  - softmax_cross_entropy(down, labels)[0]) / (2 * eps)
            assert grad[idx] == pytest.approx(fd, abs=1e-6)

    def test_bce_grad_matches_fd(self):
        rng = np.random.default_rng(1)
        probs = rng.uniform(0.1, 0.9, size=(2, 1, 3, 3))
        target = (rng.random((2, 1, 3, 3)) > 0.5).astype(float)
        _, grad = bce_with_probs(probs, target)
        eps = 1e-7
        idx = (0, 0, 1, 1)
        up = probs.copy(); up[idx] += eps
        down = probs.copy(); down[idx] -= eps
        fd = (bce_with_probs(up, target)[0] - bce_with_probs(down, target)[0]) / (2 * eps)
        assert grad[idx] == pytest.approx(fd, rel=1e-4)

    def test_mse(self):
        a = np.zeros((2, 2))
        b = np.ones((2, 2))
        value, grad = mse(a, b)
        assert value == 1.0
        np.testing.assert_allclose(grad, -2.0 / 4)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            mse(np.zeros(3), np.zeros(4))
        with pytest.raises(ValueError):
            bce_with_probs(np.zeros((2, 2)), np.zeros((3, 2)))


class TestSGD:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            SGDConfig(learning_rate=0)
        with pytest.raises(ValueError):
            SGDConfig(momentum=1.0)

    def test_classifier_loss_decreases(self):
        g = tiny_classifier()
        result = train_classifier(g, steps=25, num_classes=4,
                                  config=SGDConfig(learning_rate=0.05))
        assert result.improved(), f"losses: {result.losses[:3]}...{result.losses[-3:]}"

    def test_classifier_learns_synthetic_task(self):
        g = tiny_classifier(batch=32)
        train_classifier(g, steps=60, num_classes=4,
                         config=SGDConfig(learning_rate=0.08))
        held_out = classification_batch(64, hw=16, num_classes=4, seed=9999)
        # run at the eval batch size by rebuilding graph inputs
        eval_g = tiny_classifier(batch=64)
        for node, trained in zip(eval_g.nodes, g.nodes):
            node.params = trained.params
        logits = execute(eval_g, {"image": held_out.images}).output()
        acc = topk_accuracy(logits, held_out.labels, k=1)
        assert acc > 0.5, f"top-1 accuracy only {acc:.2f}"

    def test_segmenter_loss_decreases(self):
        g = tiny_segmenter()
        result = train_segmenter(g, steps=15, config=SGDConfig(learning_rate=0.2))
        assert result.improved()

    def test_weight_decay_shrinks_weights(self):
        g = tiny_classifier()
        before = float(np.abs(g.find_node("c1").params["weight"]).sum())
        train_classifier(g, steps=5, num_classes=4,
                         config=SGDConfig(learning_rate=1e-6, weight_decay=0.5,
                                          momentum=0.0))
        after = float(np.abs(g.find_node("c1").params["weight"]).sum())
        assert after < before


class TestPaperWorkflow:
    """Decompose → train → TeMCO: accuracy is preserved exactly (§4.4)."""

    def test_trained_decomposed_model_survives_temco(self):
        g = tiny_classifier(batch=16)
        dg = decompose_graph(g, DecompositionConfig(ratio=0.5))
        train_classifier(dg, steps=30, num_classes=4,
                         config=SGDConfig(learning_rate=0.05))
        optimized, report = optimize(dg)
        data = classification_batch(16, hw=16, num_classes=4, seed=321)
        logits_dec = execute(dg, {"image": data.images}).output()
        logits_opt = execute(optimized, {"image": data.images}).output()
        acc_dec = topk_accuracy(logits_dec, data.labels, k=1)
        acc_opt = topk_accuracy(logits_opt, data.labels, k=1)
        assert acc_opt == acc_dec
        np.testing.assert_allclose(logits_opt, logits_dec, atol=1e-4)
        assert report.peak_after <= report.peak_before
