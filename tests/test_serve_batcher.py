"""Micro-batch packing: coalesce / split / pad, and exact scatter."""

import numpy as np
import pytest

from repro.serve import assemble, request_samples, scatter

from _graph_fixtures import make_chain_graph


def _req(k: int, seed: int, channels: int = 16, hw: int = 12):
    rng = np.random.default_rng(seed)
    return {"x": rng.normal(size=(k, channels, hw, hw)).astype(np.float32)}


class TestRequestSamples:
    def test_counts_samples(self):
        g = make_chain_graph(batch=4)
        assert request_samples(g, _req(3, 0)) == 3

    def test_missing_input_rejected(self):
        g = make_chain_graph(batch=4)
        with pytest.raises(ValueError, match="missing inputs"):
            request_samples(g, {})

    def test_unknown_input_rejected(self):
        g = make_chain_graph(batch=4)
        with pytest.raises(ValueError, match="unknown inputs"):
            request_samples(g, {**_req(1, 0), "y": np.zeros((1, 2))})

    def test_wrong_sample_shape_rejected(self):
        g = make_chain_graph(batch=4)
        with pytest.raises(ValueError, match="per-sample shape"):
            request_samples(g, {"x": np.zeros((1, 16, 9, 9), np.float32)})

    def test_zero_samples_rejected(self):
        g = make_chain_graph(batch=4)
        with pytest.raises(ValueError, match="zero samples"):
            request_samples(g, {"x": np.zeros((0, 16, 12, 12), np.float32)})


class TestAssemble:
    def test_coalesces_single_samples_in_fifo_order(self):
        g = make_chain_graph(batch=4)
        reqs = [(i, _req(1, i)) for i in range(4)]
        shards = assemble(g, reqs)
        assert len(shards) == 1
        shard = shards[0]
        assert shard.padding == 0 and shard.live_samples == 4
        assert [s.request for s in shard.segments] == [0, 1, 2, 3]
        for i, (_, inputs) in enumerate(reqs):
            np.testing.assert_array_equal(shard.inputs["x"][i:i + 1],
                                          inputs["x"])

    def test_pads_short_batch_with_zeros(self):
        g = make_chain_graph(batch=4)
        shards = assemble(g, [(0, _req(1, 0))])
        assert len(shards) == 1 and shards[0].padding == 3
        assert not shards[0].inputs["x"][1:].any()

    def test_splits_oversized_request_across_shards(self):
        g = make_chain_graph(batch=4)
        big = _req(10, 7)
        shards = assemble(g, [("big", big)])
        assert [s.live_samples for s in shards] == [4, 4, 2]
        assert shards[-1].padding == 2
        rebuilt = np.concatenate(
            [s.inputs["x"][:s.live_samples] for s in shards])
        np.testing.assert_array_equal(rebuilt, big["x"])

    def test_mixed_sizes_pack_greedily(self):
        g = make_chain_graph(batch=4)
        shards = assemble(g, [("a", _req(3, 0)), ("b", _req(2, 1)),
                              ("c", _req(1, 2))])
        # a(3) + b's first sample fill shard 0; b's second + c pad shard 1
        assert [s.live_samples for s in shards] == [4, 2]
        assert [(s.request, s.length) for s in shards[0].segments] == \
            [("a", 3), ("b", 1)]
        assert [(s.request, s.length) for s in shards[1].segments] == \
            [("b", 1), ("c", 1)]


class TestScatter:
    def test_roundtrip_identity(self):
        """scatter(assemble(x)) reassembles every request exactly."""
        g = make_chain_graph(batch=4)
        reqs = [("a", _req(3, 0)), ("b", _req(6, 1)), ("c", _req(1, 2))]
        totals = {h: inputs["x"].shape[0] for h, inputs in reqs}
        buffers, filled, completed = {}, {}, []
        for shard in assemble(g, reqs):
            # "run" an identity model: output == input
            completed += scatter(shard, {"x": shard.inputs["x"]},
                                 buffers, filled, totals)
        assert completed == ["a", "b", "c"]
        for handle, inputs in reqs:
            np.testing.assert_array_equal(buffers[handle]["x"], inputs["x"])

    def test_split_request_completes_only_when_fully_scattered(self):
        g = make_chain_graph(batch=4)
        reqs = [("big", _req(6, 3))]
        totals = {"big": 6}
        shards = assemble(g, reqs)
        buffers, filled = {}, {}
        first = scatter(shards[0], {"x": shards[0].inputs["x"]},
                        buffers, filled, totals)
        assert first == []
        second = scatter(shards[1], {"x": shards[1].inputs["x"]},
                         buffers, filled, totals)
        assert second == ["big"]
