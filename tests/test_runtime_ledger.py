"""AllocationLedger: recording, replay, lifetimes, tamper detection."""

import dataclasses

import numpy as np
import pytest

from repro.models import build_model
from repro.runtime import AllocationLedger, plan_arena
from repro.runtime.executor import execute


def _inputs(graph, seed=0):
    rng = np.random.default_rng(seed)
    return {v.name: rng.normal(size=v.shape).astype(v.dtype.np)
            for v in graph.inputs}


@pytest.fixture(scope="module")
def alexnet_run():
    graph = build_model("alexnet", batch=2, hw=32)
    result = execute(graph, _inputs(graph), record_ledger=True)
    return graph, result


class TestRecording:
    def test_manual_record_and_replay(self):
        ledger = AllocationLedger()
        ledger.position(0, "conv1")
        ledger.record("alloc", "a", 100, 100)
        ledger.record("alloc", "b", 50, 150)
        ledger.position(1, "conv2")
        ledger.record("free", "a", 100, 50)
        assert ledger.replay() == [100, 150, 50]
        assert ledger.peak_bytes == 150
        assert ledger.max_live_bytes == 150
        assert ledger.live_at_end() == {"b": 50}
        assert ledger.verify(keep={"b"}) == []

    def test_scratch_is_transient(self):
        ledger = AllocationLedger()
        ledger.position(0, "fused")
        ledger.record("alloc", "out", 100, 100)
        ledger.record("scratch", "<scratch>", 40, 140)
        assert ledger.replay() == [100, 140]
        assert ledger.peak_bytes == 140
        # scratch never stays resident
        assert ledger.max_live_bytes == 100

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError, match="unknown ledger action"):
            AllocationLedger().record("realloc", "x", 1, 1)

    def test_events_carry_schedule_position(self, alexnet_run):
        graph, result = alexnet_run
        ledger = result.memory.ledger
        # input binding happens at position -1, before any node
        assert ledger.events[0].node_index == -1
        names = {node.name for node in graph.nodes}
        assert all(e.node_name in names for e in ledger.events
                   if e.node_index >= 0)

    def test_timestamps_monotonic(self, alexnet_run):
        _graph, result = alexnet_run
        ts = [e.ts_us for e in result.memory.ledger.events]
        assert all(b >= a for a, b in zip(ts, ts[1:]))


class TestExecutorIntegration:
    def test_ledger_off_by_default(self):
        graph = build_model("alexnet", batch=1, hw=32)
        result = execute(graph, _inputs(graph))
        assert result.memory.ledger is None

    def test_replayed_peak_matches_profile(self, alexnet_run):
        _graph, result = alexnet_run
        ledger = result.memory.ledger
        assert ledger.peak_bytes == result.memory.peak_internal_bytes

    def test_verify_clean_run(self, alexnet_run):
        graph, result = alexnet_run
        ledger = result.memory.ledger
        keep = {v.name for v in graph.outputs}
        assert ledger.verify(
            expected_peak=result.memory.peak_internal_bytes,
            keep=keep) == []

    def test_lifetimes_cover_every_alloc(self, alexnet_run):
        graph, result = alexnet_run
        ledger = result.memory.ledger
        lifetimes = ledger.lifetimes()
        allocs = [e for e in ledger.events if e.action == "alloc"]
        assert len(lifetimes) == len(allocs)
        outputs = {v.name for v in graph.outputs}
        for lt in lifetimes:
            if lt.value in outputs:
                assert lt.free_index is None
                assert lt.lifetime_indices is None
            else:
                assert lt.free_index is not None
                assert lt.lifetime_indices >= 0
                assert lt.free_ts_us >= lt.alloc_ts_us

    def test_lifetimes_annotated_with_arena_offsets(self, alexnet_run):
        graph, result = alexnet_run
        plan = plan_arena(graph)
        planned = {slot.value_name for slot in plan.slots}
        lifetimes = result.memory.ledger.lifetimes(plan)
        annotated = [lt for lt in lifetimes if lt.value in planned]
        assert annotated, "arena plan covers no ledger tensor?"
        for lt in annotated:
            assert lt.offset is not None
            assert 0 <= lt.offset < plan.arena_bytes


class TestTamperDetection:
    """A deliberately corrupted ledger must be caught by verify()."""

    def _clean_ledger(self):
        graph = build_model("alexnet", batch=1, hw=32)
        result = execute(graph, _inputs(graph), record_ledger=True)
        keep = {v.name for v in graph.outputs}
        ledger = result.memory.ledger
        assert ledger.verify(keep=keep) == []
        return ledger, keep

    def test_corrupted_live_total_is_caught(self):
        ledger, keep = self._clean_ledger()
        victim = ledger.events[3]
        ledger.events[3] = dataclasses.replace(
            victim, live_bytes=victim.live_bytes + 4096)
        problems = ledger.verify(keep=keep)
        assert any("the replay gives" in p for p in problems)

    def test_understated_size_is_caught(self):
        ledger, keep = self._clean_ledger()
        # shrink one alloc's nbytes: the claimed totals downstream no
        # longer replay, and the matching free disagrees on size
        index = next(i for i, e in enumerate(ledger.events)
                     if e.action == "alloc" and e.node_index >= 0)
        victim = ledger.events[index]
        ledger.events[index] = dataclasses.replace(
            victim, nbytes=victim.nbytes // 2)
        assert ledger.verify(keep=keep) != []

    def test_dropped_free_is_caught(self):
        ledger, keep = self._clean_ledger()
        index = next(i for i, e in enumerate(ledger.events)
                     if e.action == "free")
        del ledger.events[index]
        problems = ledger.verify(keep=keep)
        assert any("never freed" in p or "replay gives" in p
                   for p in problems)

    def test_double_alloc_is_caught(self):
        ledger = AllocationLedger()
        ledger.record("alloc", "x", 10, 10)
        ledger.record("alloc", "x", 10, 20)
        assert any("double alloc" in p for p in ledger.verify(keep={"x"}))

    def test_stray_free_is_caught(self):
        ledger = AllocationLedger()
        ledger.record("free", "ghost", 10, -10)
        problems = ledger.verify()
        assert any("non-live" in p for p in problems)
        assert any("negative" in p for p in problems)

    def test_wrong_expected_peak_is_caught(self):
        ledger, keep = self._clean_ledger()
        problems = ledger.verify(expected_peak=ledger.peak_bytes + 1,
                                 keep=keep)
        assert any("expected" in p for p in problems)
