"""The fleet router: balancing, failover, hedging, typed errors."""

import threading
import time

import numpy as np
import pytest

from repro.fleet import (FaultPolicy, PoolConfig, ReplicaPool, Router,
                         RouterConfig)
from repro.serve import (DeadlineExceeded, InferenceServer, LoadgenConfig,
                         Overloaded, ServerClosed, ServerConfig,
                         ServerDraining, run_loadgen)

from _graph_fixtures import make_chain_graph


def _fleet(replicas=2, *, graph=None, fault=None, router=None, **pool_kwargs):
    graph = graph or make_chain_graph(batch=4)
    pool_kwargs.setdefault("server", ServerConfig(max_wait_s=0.0))
    pool_kwargs.setdefault("health_interval_s", 0.01)
    pool_kwargs.setdefault("readmit_backoff_s", 0.05)
    pool = ReplicaPool(graph, PoolConfig(replicas=replicas, **pool_kwargs))
    return Router(pool, router, fault=fault)


def _payload(graph, seed=0, samples=1):
    rng = np.random.default_rng(seed)
    v = graph.inputs[0]
    return {v.name: rng.normal(size=(samples,) + v.shape[1:])
            .astype(v.dtype.np)}


class TestRouting:
    def test_infer_matches_single_server_bitwise(self):
        g = make_chain_graph(batch=4)
        payloads = [_payload(g, seed=i) for i in range(6)]
        with InferenceServer(g, ServerConfig(max_wait_s=0.0)) as single:
            expected = [single.infer(p, timeout=10.0) for p in payloads]
        with _fleet(replicas=3, graph=g) as fleet:
            for payload, reference in zip(payloads, expected):
                outputs = fleet.infer(payload, timeout=10.0)
                assert set(outputs) == set(reference)
                for name in outputs:
                    assert np.array_equal(outputs[name], reference[name])

    def test_requests_spread_across_replicas(self):
        # hold batches open so outstanding counts stay visible, and
        # stagger submits so each request picks against settled counts
        # — otherwise instant completions make the spread racy
        config = RouterConfig(hedge=False)
        with _fleet(replicas=3, server=ServerConfig(max_wait_s=0.3),
                    router=config) as fleet:
            futures = []
            for i in range(6):
                futures.append(fleet.submit(_payload(fleet.graph, seed=i)))
                time.sleep(0.02)
            for future in futures:
                future.result(10.0)
            routed = [r.routed for r in fleet.pool.replicas]
            assert sum(routed) >= 6
            assert all(n > 0 for n in routed)

    def test_served_by_and_attempts_recorded(self):
        with _fleet(replicas=2) as fleet:
            future = fleet.submit(_payload(fleet.graph))
            future.result(10.0)
            assert future.served_by in (0, 1)
            assert future.attempts >= 1
            assert future.trace_id

    def test_submit_after_close_raises(self):
        fleet = _fleet(replicas=1).start()
        fleet.close()
        with pytest.raises(ServerClosed):
            fleet.submit(_payload(fleet.graph))


class TestFailover:
    def test_kill_mid_run_zero_client_errors_and_identical_outputs(self):
        g = make_chain_graph(batch=4)
        payloads = [_payload(g, seed=i) for i in range(10)]
        with InferenceServer(g, ServerConfig(max_wait_s=0.0)) as single:
            expected = [single.infer(p, timeout=10.0) for p in payloads]
        fault = FaultPolicy(replica=0, kind="kill", after=2)
        with _fleet(replicas=2, graph=g, fault=fault) as fleet:
            for payload, reference in zip(payloads, expected):
                outputs = fleet.infer(payload, timeout=10.0)  # never raises
                for name in outputs:
                    assert np.array_equal(outputs[name], reference[name])
            stats = fleet.stats()
            assert stats["fleet.faults.reason.kill"] == 1
            assert stats["fleet.completed"] == 10
            assert stats.get("fleet.retries.reason.replica_closed", 0) >= 1
            # the corpse is ejected with backoff, then re-admitted
            replica = fleet.pool.replicas[0]
            deadline = time.monotonic() + 5.0
            while not replica.ready and time.monotonic() < deadline:
                time.sleep(0.01)
            assert replica.ready and replica.generation == 1
            assert fleet.metrics.get("fleet.readmissions") >= 1

    def test_stalled_replica_rescued_by_hedge(self):
        fault = FaultPolicy(replica=0, kind="stall", after=1)
        config = RouterConfig(hedge_delay_s=0.02, attempt_timeout_s=2.0)
        with _fleet(replicas=2, fault=fault, router=config) as fleet:
            outputs = fleet.infer(_payload(fleet.graph), timeout=10.0)
            assert outputs
            assert fleet.metrics.get("fleet.hedges") >= 1
            assert fleet.metrics.get("fleet.hedge_wins") >= 1

    def test_slow_replica_hedged_around(self):
        fault = FaultPolicy(replica=0, kind="slow", after=1, slow_s=0.2)
        config = RouterConfig(hedge_delay_s=0.02, attempt_timeout_s=5.0)
        with _fleet(replicas=2, fault=fault, router=config) as fleet:
            start = time.monotonic()
            for i in range(4):
                fleet.infer(_payload(fleet.graph, seed=i), timeout=10.0)
            # 4 requests against a 200 ms-slow replica would take 800 ms
            # if pinned there; hedging keeps the run well under that
            assert time.monotonic() - start < 0.8
            assert fleet.metrics.get("fleet.faults.reason.slow") == 1

    def test_no_ready_replica_surfaces_overloaded(self):
        config = RouterConfig(max_attempts=2, retry_backoff_s=0.005,
                              hedge=False)
        with _fleet(replicas=1, readmit_backoff_s=30.0,
                    router=config) as fleet:
            fleet.pool.eject(fleet.pool.replicas[0], "test")
            future = fleet.submit(_payload(fleet.graph))
            with pytest.raises(Overloaded):
                future.result(10.0)
            assert fleet.metrics.get("fleet.failed") == 1
            assert fleet.metrics.get(
                "fleet.retries.reason.no_ready_replica") >= 1

    def test_deadline_expires_as_typed_error(self):
        config = RouterConfig(max_attempts=8, retry_backoff_s=0.05,
                              hedge=False)
        with _fleet(replicas=1, readmit_backoff_s=30.0,
                    router=config) as fleet:
            fleet.pool.eject(fleet.pool.replicas[0], "test")
            future = fleet.submit(_payload(fleet.graph), deadline_s=0.02)
            with pytest.raises(DeadlineExceeded):
                future.result(10.0)

    def test_loadgen_over_fleet_counts_overload_as_rejected(self):
        config = RouterConfig(max_attempts=2, retry_backoff_s=0.005,
                              hedge=False)
        with _fleet(replicas=1, readmit_backoff_s=30.0,
                    router=config) as fleet:
            fleet.pool.eject(fleet.pool.replicas[0], "test")
            report = run_loadgen(fleet, LoadgenConfig(requests=4,
                                                      concurrency=2))
            assert report.errors == 0
            assert report.rejected == 4


class TestDrain:
    def test_drain_finishes_in_flight_then_rejects(self):
        with _fleet(replicas=2) as fleet:
            futures = [fleet.submit(_payload(fleet.graph, seed=i))
                       for i in range(6)]
            assert fleet.drain(timeout=10.0)
            for future in futures:
                assert future.result(0)  # all in-flight work completed
            with pytest.raises(ServerClosed):  # drain ends fully closed
                fleet.submit(_payload(fleet.graph))
            assert fleet.closed

    def test_drain_flips_health(self):
        fleet = _fleet(replicas=1).start()
        try:
            assert fleet.healthy()
            assert fleet.health_doc()["status"] == "ok"
            fleet._draining = True
            assert not fleet.healthy()
            assert fleet.health_doc()["status"] == "draining"
            with pytest.raises(ServerDraining):
                fleet.submit(_payload(fleet.graph))
        finally:
            fleet._draining = False
            fleet.close()
        assert fleet.health_doc()["status"] == "unavailable"


class TestServableSurface:
    def test_health_doc_lists_replicas(self):
        with _fleet(replicas=3) as fleet:
            doc = fleet.health_doc()
            assert doc["status"] == "ok" and doc["ready"] == 3
            assert [r["id"] for r in doc["replicas"]] == [0, 1, 2]

    def test_stats_and_metrics_text_cover_fleet_families(self):
        with _fleet(replicas=2) as fleet:
            fleet.infer(_payload(fleet.graph), timeout=10.0)
            stats = fleet.stats()
            assert stats["fleet.requests"] >= 1
            assert stats["fleet.ready_replicas"] == 2.0
            text = fleet.metrics_text()
            assert 'repro_fleet_replica_up{replica="0"}' in text
            assert 'repro_build_info{version=' in text
            assert "repro_fleet_requests_total" in text

    def test_tracing_tags_spans_with_replica(self):
        from repro.obs import Tracer, use_tracer

        g = make_chain_graph(batch=4)
        tracer = Tracer()
        with use_tracer(tracer):
            with _fleet(replicas=2, graph=g) as fleet:
                fleet.infer(_payload(g), timeout=10.0)
        names = {s.name for s in tracer.spans}
        assert "fleet.admit" in names
        assert any(s.name == "serve.batch"
                   and s.args.get("replica") is not None
                   for s in tracer.spans)
        instants = {e.name for e in tracer.instants}
        assert "fleet.attempt" in instants
        assert "fleet.request_done" in instants
