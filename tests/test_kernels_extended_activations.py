"""Extended activation set: kernels, gradients, fusion integration."""

import numpy as np
import pytest

from repro.core import FusionConfig, assert_equivalent, fuse_activation_layers
from repro.ir import GraphBuilder
from repro.kernels import elu, gelu, get_activation, hardswish, leaky_relu
from repro.train import forward_with_tape, grad_check

from _graph_fixtures import random_input

EXTENDED = ("leaky_relu", "elu", "hardswish", "gelu")


@pytest.fixture
def rng():
    return np.random.default_rng(17)


class TestKernels:
    def test_leaky_relu(self):
        x = np.array([-2.0, 0.0, 3.0])
        np.testing.assert_allclose(leaky_relu(x), [-0.02, 0.0, 3.0])
        np.testing.assert_allclose(leaky_relu(x, 0.5), [-1.0, 0.0, 3.0])

    def test_elu(self):
        x = np.array([-1.0, 0.0, 2.0])
        np.testing.assert_allclose(elu(x), [np.expm1(-1.0), 0.0, 2.0])

    def test_elu_alpha_scales_negative_branch(self):
        x = np.array([-1.0])
        np.testing.assert_allclose(elu(x, alpha=2.0), 2 * np.expm1(-1.0))

    def test_hardswish_boundaries(self):
        x = np.array([-4.0, -3.0, 0.0, 3.0, 4.0])
        np.testing.assert_allclose(hardswish(x), [0.0, 0.0, 0.0, 3.0, 4.0])

    def test_gelu_matches_definition(self, rng):
        x = rng.normal(size=100)
        c = np.sqrt(2.0 / np.pi)
        want = 0.5 * x * (1 + np.tanh(c * (x + 0.044715 * x ** 3)))
        np.testing.assert_allclose(gelu(x), want)

    @pytest.mark.parametrize("name", EXTENDED)
    def test_registered(self, name, rng):
        fn = get_activation(name)
        x = rng.normal(size=(2, 3))
        assert fn(x).shape == (2, 3)

    @pytest.mark.parametrize("name", EXTENDED)
    def test_elementwise_tiling_safe(self, name, rng):
        # the property activation layer fusion depends on
        fn = get_activation(name)
        x = rng.normal(size=(2, 6, 4, 4))
        whole = fn(x)
        parts = np.concatenate([fn(x[:, i:i + 2]) for i in range(0, 6, 2)],
                               axis=1)
        np.testing.assert_allclose(whole, parts, atol=1e-12)


class TestGradients:
    @pytest.mark.parametrize("name", EXTENDED)
    def test_gradient_matches_fd(self, name):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (2, 3, 5, 5))
        h = b.conv2d(x, 4, 3, padding=1, name="c")
        h = getattr(b, name)(h)
        g = b.finish(h)
        for v in g.values():
            v.dtype = type(v.dtype)("float64")
        for node in g.nodes:
            node.params = {k: p.astype(np.float64) for k, p in node.params.items()}
        rng = np.random.default_rng(0)
        inputs = {"x": rng.normal(size=(2, 3, 5, 5))}
        weight = g.find_node("c").params["weight"]
        indices = [np.unravel_index(i, weight.shape)
                   for i in rng.choice(weight.size, size=5, replace=False)]
        analytic, numeric = grad_check(g, inputs, node_name="c",
                                       param="weight", indices=indices,
                                       eps=1e-5)
        np.testing.assert_allclose(analytic, numeric, atol=2e-3, rtol=1e-3)


class TestFusionIntegration:
    @pytest.mark.parametrize("name", EXTENDED)
    def test_fused_block_with_extended_activation(self, name):
        b = GraphBuilder("t", seed=3)
        x = b.input("x", (1, 4, 8, 8))
        up = b.conv2d(x, 24, 1, name="up")
        act = getattr(b, name)(up)
        down = b.conv2d(act, 3, 1, name="down")
        g = b.finish(down)
        before = g.clone("before")
        stats = fuse_activation_layers(g, FusionConfig(block_size=7))
        assert stats.fused == 1
        assert g.nodes[-1].attrs["act"] == name
        assert_equivalent(before, g, random_input(g), rtol=1e-4)
