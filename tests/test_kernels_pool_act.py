"""Pooling, activation, linear and batchnorm kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import (avgpool2d, batchnorm2d, get_activation,
                           global_avgpool, linear, maxpool2d, relu, sigmoid,
                           silu, softmax, tanh, upsample_nearest)


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestPooling:
    def test_maxpool_basic(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = maxpool2d(x, (2, 2))
        np.testing.assert_array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_maxpool_padding_uses_neg_inf(self):
        x = -np.ones((1, 1, 2, 2), dtype=np.float32)
        out = maxpool2d(x, (2, 2), stride=(2, 2), padding=(1, 1))
        # padded corners must pick the real -1 values, not 0
        assert (out == -1).all()

    def test_avgpool_includes_padding(self):
        x = np.full((1, 1, 2, 2), 4.0, dtype=np.float32)
        out = avgpool2d(x, (2, 2), stride=(2, 2), padding=(1, 1))
        # each window has one real cell (4.0) and three zero pad cells
        assert out.shape == (1, 1, 2, 2)
        np.testing.assert_allclose(out, 1.0)

    def test_maxpool_overlapping_windows(self, rng):
        x = rng.normal(size=(2, 3, 7, 7)).astype(np.float32)
        out = maxpool2d(x, (3, 3), stride=(2, 2), padding=(1, 1))
        assert out.shape == (2, 3, 4, 4)
        # reference: explicit loop
        xp = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)),
                    constant_values=np.finfo(np.float32).min)
        for oy in range(4):
            for ox in range(4):
                ref = xp[:, :, 2 * oy:2 * oy + 3, 2 * ox:2 * ox + 3].max(axis=(2, 3))
                np.testing.assert_array_equal(out[:, :, oy, ox], ref)

    def test_global_avgpool(self, rng):
        x = rng.normal(size=(2, 5, 3, 3))
        out = global_avgpool(x)
        assert out.shape == (2, 5, 1, 1)
        np.testing.assert_allclose(out[:, :, 0, 0], x.mean(axis=(2, 3)))

    def test_upsample_nearest(self):
        x = np.array([[1.0, 2.0], [3.0, 4.0]]).reshape(1, 1, 2, 2)
        out = upsample_nearest(x, 2)
        np.testing.assert_array_equal(
            out[0, 0], [[1, 1, 2, 2], [1, 1, 2, 2], [3, 3, 4, 4], [3, 3, 4, 4]])

    def test_upsample_scale_one_is_identity(self, rng):
        x = rng.normal(size=(1, 2, 3, 3))
        assert upsample_nearest(x, 1) is x


class TestActivations:
    def test_relu(self):
        x = np.array([-2.0, 0.0, 3.0])
        np.testing.assert_array_equal(relu(x), [0, 0, 3])

    def test_sigmoid_range_and_symmetry(self, rng):
        x = rng.normal(scale=10, size=1000)
        s = sigmoid(x)
        assert ((s > 0) & (s < 1)).all()
        np.testing.assert_allclose(sigmoid(-x), 1 - s, atol=1e-12)

    def test_sigmoid_extreme_values_stable(self):
        x = np.array([-1000.0, 1000.0])
        s = sigmoid(x)
        assert np.isfinite(s).all()
        np.testing.assert_allclose(s, [0.0, 1.0], atol=1e-12)

    def test_silu_definition(self, rng):
        x = rng.normal(size=100)
        np.testing.assert_allclose(silu(x), x * sigmoid(x), atol=1e-12)

    def test_tanh(self, rng):
        x = rng.normal(size=50)
        np.testing.assert_allclose(tanh(x), np.tanh(x))

    def test_softmax_rows_sum_to_one(self, rng):
        x = rng.normal(scale=50, size=(4, 10))
        s = softmax(x, axis=1)
        np.testing.assert_allclose(s.sum(axis=1), 1.0, atol=1e-12)
        assert np.isfinite(s).all()

    def test_get_activation_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown activation"):
            get_activation("mish")

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_activations_elementwise(self, seed):
        # applying to a tensor == applying to each element (tiling safety,
        # the property activation layer fusion relies on)
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(2, 4, 3, 3))
        for name in ("relu", "silu", "sigmoid", "tanh"):
            fn = get_activation(name)
            whole = fn(x)
            parts = np.concatenate([fn(x[:, i:i + 1]) for i in range(4)], axis=1)
            np.testing.assert_allclose(whole, parts, atol=1e-12)


class TestLinearBatchnorm:
    def test_linear(self, rng):
        x = rng.normal(size=(3, 5))
        w = rng.normal(size=(2, 5))
        b = rng.normal(size=2)
        np.testing.assert_allclose(linear(x, w, b), x @ w.T + b)

    def test_batchnorm_identity_stats(self, rng):
        x = rng.normal(size=(2, 3, 4, 4))
        out = batchnorm2d(x, np.ones(3), np.zeros(3), np.zeros(3), np.ones(3),
                          eps=0.0)
        np.testing.assert_allclose(out, x)

    def test_batchnorm_normalizes(self, rng):
        x = rng.normal(loc=5.0, scale=2.0, size=(1, 1, 100, 100))
        mean = np.array([5.0])
        var = np.array([4.0])
        out = batchnorm2d(x, np.ones(1), np.zeros(1), mean, var, eps=0.0)
        assert abs(out.mean()) < 0.1
        assert abs(out.std() - 1.0) < 0.1
