"""The JSON/HTTP frontend: endpoints, typed error mapping."""

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.runtime import InferenceSession
from repro.serve import InferenceServer, ServerConfig, serve_http

from _graph_fixtures import make_chain_graph


@pytest.fixture
def served():
    g = make_chain_graph(batch=4)
    with InferenceServer(g, ServerConfig(max_wait_s=0.0)) as server:
        with serve_http(server, port=0) as frontend:
            host, port = frontend.address
            yield g, server, f"http://{host}:{port}"


def _get(url: str) -> tuple[int, dict]:
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, json.load(response)
    except urllib.error.HTTPError as exc:
        return exc.code, json.load(exc)


def _post(url: str, payload: dict) -> tuple[int, dict]:
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.load(response)
    except urllib.error.HTTPError as exc:
        return exc.code, json.load(exc)


class TestEndpoints:
    def test_healthz_ok_while_serving(self, served):
        g, _server, base = served
        status, doc = _get(f"{base}/healthz")
        assert status == 200
        assert doc["status"] == "ok" and doc["model"] == g.name
        assert doc["graph_batch"] == 4

    def test_infer_matches_session_run(self, served):
        g, _server, base = served
        rng = np.random.default_rng(0)
        x = rng.normal(size=(1, 16, 12, 12)).astype(np.float32)
        status, doc = _post(f"{base}/infer", {"inputs": {"x": x.tolist()}})
        assert status == 200
        out_name = g.outputs[0].name
        padded = np.concatenate([x, np.zeros((3, 16, 12, 12), np.float32)])
        reference = InferenceSession(g).run({"x": padded}).outputs[out_name]
        np.testing.assert_allclose(np.asarray(doc["outputs"][out_name],
                                              dtype=np.float32),
                                   reference[:1], rtol=0, atol=1e-6)
        assert doc["latency_ms"] > 0

    def test_stats_reflect_served_requests(self, served):
        _g, _server, base = served
        x = np.zeros((1, 16, 12, 12), np.float32).tolist()
        _post(f"{base}/infer", {"inputs": {"x": x}})
        status, doc = _get(f"{base}/stats")
        assert status == 200
        assert doc["stats"]["serve.completed"] >= 1

    def test_bad_shape_is_400(self, served):
        _g, _server, base = served
        status, doc = _post(f"{base}/infer",
                            {"inputs": {"x": [[1.0, 2.0]]}})
        assert status == 400
        assert "error" in doc

    def test_missing_inputs_key_is_400(self, served):
        _g, _server, base = served
        status, _doc = _post(f"{base}/infer", {"nope": 1})
        assert status == 400

    def test_unknown_endpoint_is_404(self, served):
        _g, _server, base = served
        assert _get(f"{base}/nope")[0] == 404
        assert _post(f"{base}/nope", {})[0] == 404

    def test_metrics_is_valid_prometheus_exposition(self, served):
        from test_obs_prometheus import parse_exposition

        _g, _server, base = served
        x = np.zeros((1, 16, 12, 12), np.float32).tolist()
        _post(f"{base}/infer", {"inputs": {"x": x}})
        request = urllib.request.Request(f"{base}/metrics")
        with urllib.request.urlopen(request, timeout=10) as response:
            assert response.status == 200
            content_type = response.headers["Content-Type"]
            body = response.read().decode()
        assert content_type.startswith("text/plain")
        assert "version=0.0.4" in content_type
        samples = parse_exposition(body)
        assert samples[("repro_serve_completed_total", "")] >= 1.0
        assert samples[("repro_serve_requests_total", "")] >= 1.0
        assert ("repro_serve_latency_ms", '{quantile="0.99"}') in samples
        # the point-in-time extras ride along as gauges
        assert samples[("repro_serve_workers", "")] == 1.0
        assert ("repro_serve_in_flight", "") in samples
        assert samples[("repro_serve_graph_batch", "")] == 4.0

    def test_healthz_unavailable_after_close(self):
        g = make_chain_graph(batch=4)
        server = InferenceServer(g, ServerConfig(max_wait_s=0.0)).start()
        frontend = serve_http(server, port=0)
        host, port = frontend.address
        server.close()
        try:
            status, doc = _get(f"http://{host}:{port}/healthz")
            assert status == 503
            assert doc["status"] == "unavailable"
        finally:
            frontend.close()


class TestBodyLimits:
    def test_oversized_body_is_413(self):
        g = make_chain_graph(batch=4)
        with InferenceServer(g, ServerConfig(max_wait_s=0.0)) as server:
            with serve_http(server, port=0) as frontend:
                # shrink the limit so the test doesn't ship 32 MiB
                frontend.httpd.RequestHandlerClass.max_body_bytes = 64
                host, port = frontend.address
                payload = {"inputs": {"x": [0.0] * 256}}
                status, doc = _post(f"http://{host}:{port}/infer", payload)
        assert status == 413
        assert "limit" in doc["error"]

    def test_negative_content_length_is_400(self):
        import http.client

        g = make_chain_graph(batch=4)
        with InferenceServer(g, ServerConfig(max_wait_s=0.0)) as server:
            with serve_http(server, port=0) as frontend:
                host, port = frontend.address
                conn = http.client.HTTPConnection(host, port, timeout=10)
                conn.putrequest("POST", "/infer")
                conn.putheader("Content-Length", "-5")
                conn.endheaders()
                status = conn.getresponse().status
                conn.close()
        assert status == 400


class TestHealthzDuringDrain:
    def test_healthz_503_draining_while_server_drains(self):
        g = make_chain_graph(batch=4)
        with InferenceServer(g, ServerConfig(max_wait_s=0.0)) as server:
            with serve_http(server, port=0) as frontend:
                host, port = frontend.address
                base = f"http://{host}:{port}"
                assert _get(f"{base}/healthz")[0] == 200
                # freeze mid-drain (the live window is too brief to
                # poll): the frontend must flip to 503/"draining" so a
                # balancer stops routing before the socket goes away
                server._draining = True
                try:
                    status, doc = _get(f"{base}/healthz")
                    assert status == 503
                    assert doc["status"] == "draining"
                    assert _post(f"{base}/infer", {"inputs": {
                        "x": np.zeros((1, 16, 12, 12)).tolist()}})[0] == 503
                finally:
                    server._draining = False
                assert _get(f"{base}/healthz")[0] == 200
