"""Memory-aware execution scheduling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (assert_equivalent, estimate_peak_internal, greedy_order,
                        reschedule, schedule_peak)
from repro.ir import GraphBuilder
from repro.runtime import execute

from _graph_fixtures import (make_chain_graph, make_residual_graph,
                             make_skip_graph, random_input)


def diamond_graph(heavy_first: bool = True, seed: int = 0):
    """Two independent branches of very different sizes joined at the end.

    The schedule matters: computing the heavy branch first keeps its big
    result resident while the light branch runs.
    """
    b = GraphBuilder("diamond", seed=seed)
    x = b.input("x", (1, 8, 16, 16))
    if heavy_first:
        heavy = b.relu(b.conv2d(x, 64, 3, padding=1, name="heavy"))
        light = b.relu(b.conv2d(heavy, 8, 1, name="light"))
        light2 = b.relu(b.conv2d(x, 8, 1, name="light2"))
        mix = b.conv2d(b.concat(light, light2), 8, 1, name="mix")
    else:
        light2 = b.relu(b.conv2d(x, 8, 1, name="light2"))
        heavy = b.relu(b.conv2d(x, 64, 3, padding=1, name="heavy"))
        light = b.relu(b.conv2d(heavy, 8, 1, name="light"))
        mix = b.conv2d(b.concat(light, light2), 8, 1, name="mix")
    return b.finish(mix)


class TestSchedulePeak:
    def test_matches_estimator_for_original_order(self):
        for factory in (make_chain_graph, make_skip_graph, make_residual_graph):
            g = factory()
            assert schedule_peak(g, list(g.nodes)) == estimate_peak_internal(g)

    def test_detects_order_sensitivity(self):
        g = diamond_graph(heavy_first=False)
        original = list(g.nodes)
        # move light2 after the heavy chain: frees nothing early
        reordered = [original[1], original[2], original[3], original[4],
                     original[0], original[5], original[6], original[7]]
        assert {id(n) for n in reordered} == {id(n) for n in original}
        p1 = schedule_peak(g, original)
        p2 = schedule_peak(g, reordered)
        assert p1 != p2


class TestGreedyOrder:
    def test_is_topological(self):
        g = make_skip_graph()
        order = greedy_order(g)
        seen = {v.name for v in g.inputs}
        for node in order:
            for v in node.inputs:
                assert v.name in seen, f"{node.name} scheduled before {v.name}"
            seen.add(node.output.name)

    def test_permutation_of_nodes(self):
        g = make_residual_graph()
        order = greedy_order(g)
        assert sorted(n.name for n in order) == sorted(n.name for n in g.nodes)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 300))
    def test_property_never_worse_after_reschedule(self, seed):
        g = make_skip_graph(seed=seed)
        before = estimate_peak_internal(g)
        stats = reschedule(g)
        assert stats.peak_after <= before
        assert estimate_peak_internal(g) == stats.peak_after


class TestReschedule:
    def test_improves_bad_order(self):
        g = diamond_graph(heavy_first=False)
        # craft a worse order manually: light2 early extends its lifetime
        # while the heavy chain runs
        baseline = estimate_peak_internal(g)
        stats = reschedule(g)
        assert stats.peak_after <= baseline
        g.validate()

    def test_noop_when_already_optimal(self):
        g = make_chain_graph()  # pure chain: only one topological order
        stats = reschedule(g)
        assert not stats.changed
        assert stats.reduction == 0.0

    def test_semantics_preserved(self):
        g = diamond_graph(heavy_first=False)
        before = g.clone("before")
        reschedule(g)
        assert_equivalent(before, g, random_input(g), rtol=1e-5)

    def test_measured_peak_matches_after(self):
        g = diamond_graph(heavy_first=False)
        stats = reschedule(g)
        measured = execute(g, random_input(g)).memory.peak_internal_bytes
        assert measured == stats.peak_after
