"""Dilated convolutions: kernel, IR integration, training guard."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import GraphBuilder
from repro.kernels import conv2d
from repro.runtime import execute
from repro.train import UntrainableOpError, backward, forward_with_tape

from _graph_fixtures import random_input


def naive_dilated(x, w, stride, padding, dilation):
    n, c, h, wd = x.shape
    cout, _, kh, kw = w.shape
    sh, sw = stride
    ph, pw = padding
    dh, dw = dilation
    xp = np.zeros((n, c, h + 2 * ph, wd + 2 * pw))
    xp[:, :, ph:ph + h, pw:pw + wd] = x
    oh = (h + 2 * ph - dh * (kh - 1) - 1) // sh + 1
    ow = (wd + 2 * pw - dw * (kw - 1) - 1) // sw + 1
    out = np.zeros((n, cout, oh, ow))
    for ni in range(n):
        for o in range(cout):
            for ci in range(c):
                for i in range(oh):
                    for j in range(ow):
                        for ki in range(kh):
                            for kj in range(kw):
                                out[ni, o, i, j] += (
                                    xp[ni, ci, i * sh + dh * ki, j * sw + dw * kj]
                                    * w[o, ci, ki, kj])
    return out


class TestDilatedConv:
    @pytest.mark.parametrize("dilation,stride,padding", [
        ((2, 2), (1, 1), (2, 2)),
        ((2, 2), (2, 2), (0, 0)),
        ((3, 1), (1, 1), (3, 0)),
    ])
    def test_matches_naive(self, dilation, stride, padding):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(2, 3, 10, 10))
        w = rng.normal(size=(4, 3, 3, 3))
        got = conv2d(x, w, None, stride=stride, padding=padding,
                     dilation=dilation)
        want = naive_dilated(x, w, stride, padding, dilation)
        np.testing.assert_allclose(got, want, atol=1e-10)

    def test_dilation_one_unchanged(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(1, 2, 6, 6))
        w = rng.normal(size=(2, 2, 3, 3))
        np.testing.assert_array_equal(
            conv2d(x, w, None, padding=(1, 1)),
            conv2d(x, w, None, padding=(1, 1), dilation=(1, 1)))

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 1000), d=st.integers(1, 3))
    def test_property_matches_naive(self, seed, d):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(1, 2, 9, 9))
        w = rng.normal(size=(2, 2, 3, 3))
        got = conv2d(x, w, None, padding=(d, d), dilation=(d, d))
        want = naive_dilated(x, w, (1, 1), (d, d), (d, d))
        np.testing.assert_allclose(got, want, atol=1e-9)


class TestDilatedInIR:
    def test_graph_shape_and_execution_agree(self):
        b = GraphBuilder("dil", seed=0)
        x = b.input("x", (1, 4, 12, 12))
        h = b.conv2d(x, 8, 3, padding=2, dilation=2, name="dconv")
        g = b.finish(b.relu(h))
        assert g.find_node("dconv").output.shape == (1, 8, 12, 12)
        out = execute(g, random_input(g)).output()
        assert out.shape == (1, 8, 12, 12)
        assert np.isfinite(out).all()

    def test_training_dilated_conv_raises(self):
        b = GraphBuilder("dil", seed=0)
        x = b.input("x", (1, 4, 8, 8))
        h = b.conv2d(x, 8, 3, padding=2, dilation=2, name="dconv")
        g = b.finish(h)
        tape = forward_with_tape(g, random_input(g))
        out = g.outputs[0].name
        with pytest.raises(UntrainableOpError, match="dilated"):
            backward(tape, {out: np.ones_like(tape.env[out])})
