"""InferenceServer: batching equivalence, backpressure, deadlines."""

import time

import numpy as np
import pytest

from repro.runtime import InferenceSession
from repro.serve import (DeadlineExceeded, InferenceServer, Overloaded,
                         ServeError, ServerClosed, ServerConfig)

from _graph_fixtures import make_chain_graph


def _sample(seed: int, channels: int = 16, hw: int = 12, k: int = 1):
    rng = np.random.default_rng(seed)
    return {"x": rng.normal(size=(k, channels, hw, hw)).astype(np.float32)}


class TestServedNumerics:
    def test_coalesced_outputs_bitwise_equal_session_run(self):
        """B single-sample requests == session.run on the assembled batch."""
        g = make_chain_graph(batch=4)
        out_name = g.outputs[0].name
        samples = [_sample(i) for i in range(4)]
        # generous max_wait so all four coalesce into one shard, in
        # submission order (single submitter => deterministic FIFO)
        config = ServerConfig(num_workers=1, max_wait_s=0.5)
        with InferenceServer(g, config) as server:
            futures = [server.submit(s) for s in samples]
            served = [f.result(10.0) for f in futures]
        reference = InferenceSession(g).run(
            {"x": np.concatenate([s["x"] for s in samples])}).outputs[out_name]
        for i, outputs in enumerate(served):
            assert np.array_equal(outputs[out_name], reference[i:i + 1])

    def test_padded_outputs_bitwise_equal_session_run(self):
        """Zero-padding the tail shard must not change served numerics."""
        g = make_chain_graph(batch=4)
        out_name = g.outputs[0].name
        samples = [_sample(i + 100) for i in range(3)]
        config = ServerConfig(num_workers=1, max_wait_s=0.5)
        with InferenceServer(g, config) as server:
            futures = [server.submit(s) for s in samples]
            served = [f.result(10.0) for f in futures]
        padded = np.concatenate([s["x"] for s in samples]
                                + [np.zeros((1, 16, 12, 12), np.float32)])
        reference = InferenceSession(g).run({"x": padded}).outputs[out_name]
        for i, outputs in enumerate(served):
            assert np.array_equal(outputs[out_name], reference[i:i + 1])

    def test_full_batch_request_matches_session_run(self):
        g = make_chain_graph(batch=4)
        inputs = _sample(7, k=4)
        with InferenceServer(g, ServerConfig(max_wait_s=0.0)) as server:
            served = server.infer(inputs, timeout=10.0)
        reference = InferenceSession(g).run(inputs).outputs
        for name, arr in reference.items():
            assert np.array_equal(served[name], arr)

    def test_oversized_request_split_and_reassembled(self):
        g = make_chain_graph(batch=4)
        inputs = _sample(9, k=10)
        with InferenceServer(g, ServerConfig(max_wait_s=0.0)) as server:
            served = server.infer(inputs, timeout=10.0)
        out_name = g.outputs[0].name
        assert served[out_name].shape[0] == 10
        session = InferenceSession(g)
        padded = np.concatenate([inputs["x"],
                                 np.zeros((2, 16, 12, 12), np.float32)])
        reference = np.concatenate(
            [session.run({"x": padded[lo:lo + 4]}).outputs[out_name]
             for lo in (0, 4, 8)])
        assert np.array_equal(served[out_name], reference[:10])

    def test_bare_array_convenience(self):
        g = make_chain_graph(batch=4)
        with InferenceServer(g, ServerConfig(max_wait_s=0.0)) as server:
            served = server.infer(_sample(3)["x"], timeout=10.0)
        assert served[g.outputs[0].name].shape[0] == 1


class TestBackpressure:
    def test_full_queue_rejects_typed_and_does_not_enqueue(self):
        g = make_chain_graph(batch=4)
        server = InferenceServer(g, ServerConfig(max_queue=2))
        # not started: nothing drains, so admission is deterministic
        server.submit(_sample(0))
        server.submit(_sample(1))
        with pytest.raises(Overloaded, match="queue full"):
            server.submit(_sample(2))
        stats = server.stats()
        assert stats["serve.rejected"] == 1
        assert stats["serve.queue_depth"] == 2
        server.close()

    def test_close_rejects_queued_requests(self):
        g = make_chain_graph(batch=4)
        server = InferenceServer(g, ServerConfig(max_queue=4))
        futures = [server.submit(_sample(i)) for i in range(2)]
        server.close()
        for future in futures:
            with pytest.raises(ServerClosed):
                future.result(1.0)
        with pytest.raises(ServerClosed):
            server.submit(_sample(9))

    def test_close_is_idempotent(self):
        g = make_chain_graph(batch=4)
        server = InferenceServer(g).start()
        server.close()
        server.close()
        assert not server.healthy()


class TestDeadlines:
    def test_expired_request_is_shed_and_counted(self):
        g = make_chain_graph(batch=4)
        server = InferenceServer(g, ServerConfig(max_wait_s=0.0))
        future = server.submit(_sample(0), deadline_s=0.0)
        time.sleep(0.01)  # guarantee expiry before the workers start
        server.start()
        with pytest.raises(DeadlineExceeded, match="expired"):
            future.result(5.0)
        assert server.stats()["serve.shed"] == 1
        server.close()

    def test_unexpired_deadline_serves_normally(self):
        g = make_chain_graph(batch=4)
        with InferenceServer(g, ServerConfig(max_wait_s=0.0)) as server:
            outputs = server.infer(_sample(0), deadline_s=30.0, timeout=10.0)
        assert g.outputs[0].name in outputs

    def test_default_deadline_from_config(self):
        g = make_chain_graph(batch=4)
        server = InferenceServer(
            g, ServerConfig(max_wait_s=0.0, default_deadline_s=0.0))
        future = server.submit(_sample(0))
        time.sleep(0.01)
        server.start()
        with pytest.raises(DeadlineExceeded):
            future.result(5.0)
        server.close()


class TestBatchingThroughput:
    def test_batching_beats_one_request_at_a_time(self):
        """The acceptance A/B: equal workers, batching on vs off."""
        g = make_chain_graph(batch=8)
        requests = 32

        def drive(batching: bool) -> tuple[float, float]:
            config = ServerConfig(num_workers=1, max_queue=requests,
                                  max_wait_s=0.05, batching=batching)
            with InferenceServer(g, config) as server:
                start = time.perf_counter()
                futures = [server.submit(_sample(i)) for i in range(requests)]
                for future in futures:
                    future.result(60.0)
                elapsed = time.perf_counter() - start
                batches = server.stats()["serve.batches"]
            return elapsed, batches

        batched_s, batched_runs = drive(batching=True)
        serial_s, serial_runs = drive(batching=False)
        # one graph run per request without batching; ~requests/8 with
        assert serial_runs == requests
        assert batched_runs < requests
        assert batched_s < serial_s, (
            f"batched {batched_s:.3f}s not faster than serial {serial_s:.3f}s")


class TestWorkerResilience:
    def test_worker_failure_rejects_batch_not_server(self):
        g = make_chain_graph(batch=4)
        server = InferenceServer(g, ServerConfig(max_wait_s=0.0))
        boom = {"armed": True}
        real_run = server._sessions[0].run

        def failing_run(inputs, **kwargs):
            if boom["armed"]:
                boom["armed"] = False
                raise RuntimeError("injected kernel failure")
            return real_run(inputs, **kwargs)

        server._sessions[0].run = failing_run
        server.start()
        with pytest.raises(ServeError, match="inference failed"):
            server.infer(_sample(0), timeout=10.0)
        # the worker survives and serves the next request
        outputs = server.infer(_sample(1), timeout=10.0)
        assert g.outputs[0].name in outputs
        assert server.stats()["serve.failed"] == 1
        server.close()


class TestStatsAndConfig:
    def test_stats_carry_latency_quantiles_and_batch_distribution(self):
        g = make_chain_graph(batch=4)
        with InferenceServer(g, ServerConfig(max_wait_s=0.01)) as server:
            futures = [server.submit(_sample(i)) for i in range(8)]
            for future in futures:
                future.result(10.0)
            stats = server.stats()
        assert stats["serve.completed"] == 8
        for key in ("serve.latency_ms.p50", "serve.latency_ms.p95",
                    "serve.latency_ms.p99", "serve.batch_samples.max"):
            assert key in stats
        assert stats["serve.latency_ms.p50"] > 0

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError, match="num_workers"):
            ServerConfig(num_workers=0)
        with pytest.raises(ValueError, match="max_queue"):
            ServerConfig(max_queue=0)
        with pytest.raises(ValueError, match="max_wait_s"):
            ServerConfig(max_wait_s=-1.0)


class TestWorkerAttribution:
    def test_spans_and_instants_carry_worker_and_request_ids(self):
        from repro.obs import Tracer

        g = make_chain_graph(batch=4)
        tracer = Tracer()
        config = ServerConfig(num_workers=2, max_wait_s=0.0)
        with InferenceServer(g, config, tracer=tracer) as server:
            futures = [server.submit(_sample(i)) for i in range(6)]
            for future in futures:
                future.result(10.0)
        batches = [s for s in tracer.spans if s.name == "serve.batch"]
        assert batches
        served_ids = [i for s in batches for i in s.args["request_ids"]]
        assert sorted(served_ids) == list(range(6))
        assert all(s.args["worker_id"] in (0, 1) for s in batches)
        # every executor node span inherits its worker's tag
        node_spans = [s for s in tracer.spans if "index" in s.args]
        assert node_spans
        assert all(s.args["worker_id"] in (0, 1) for s in node_spans)
        done = [i for i in tracer.instants if i.name == "serve.request_done"]
        assert sorted(i.args["request_id"] for i in done) == list(range(6))
        assert all("worker_id" in i.args for i in done)

    def test_untraced_server_records_nothing(self):
        from repro.obs import NOOP_TRACER

        g = make_chain_graph(batch=4)
        with InferenceServer(g, ServerConfig(max_wait_s=0.0),
                             tracer=NOOP_TRACER) as server:
            server.submit(_sample(0)).result(10.0)
        # sessions got the no-op tracer: nothing to assert beyond "works"
        assert server.stats()["serve.completed"] == 1


class TestDrain:
    def test_drain_finishes_in_flight_and_flips_health(self):
        from repro.serve import ServerDraining

        g = make_chain_graph(batch=4)
        # a hold-open window keeps the request in flight long enough
        # for the drain to start with work outstanding
        config = ServerConfig(num_workers=1, max_wait_s=0.2)
        with InferenceServer(g, config) as server:
            assert server.healthy()
            assert server.health_doc()["status"] == "ok"
            future = server.submit(_sample(0))
            assert server.drain(timeout=10.0)
            assert future.done() and future.result(0)
            assert not server.healthy()
            with pytest.raises(ServerClosed):
                server.submit(_sample(1))

    def test_submit_while_draining_is_typed_rejection(self):
        from repro.serve import ServerDraining

        g = make_chain_graph(batch=4)
        with InferenceServer(g, ServerConfig(max_wait_s=0.0)) as server:
            # freeze the server in its draining state: drain() holds it
            # there only as long as work is in flight, which is too
            # brief to assert against reliably
            server._draining = True
            try:
                assert server.draining
                assert server.health_doc()["status"] == "draining"
                assert not server.healthy()
                with pytest.raises(ServerDraining):
                    server.submit(_sample(1))
            finally:
                server._draining = False
            assert server.drain(timeout=10.0)

    def test_drain_on_idle_server_is_immediate(self):
        g = make_chain_graph(batch=4)
        with InferenceServer(g, ServerConfig(max_wait_s=0.0)) as server:
            start = time.monotonic()
            assert server.drain(timeout=10.0)
            assert time.monotonic() - start < 2.0

    def test_drain_is_idempotent(self):
        g = make_chain_graph(batch=4)
        with InferenceServer(g, ServerConfig(max_wait_s=0.0)) as server:
            assert server.drain(timeout=10.0)
            assert server.drain(timeout=10.0)  # already closed: still True
