"""Regression: oversized block_size is clamped, not silently degenerate.

Before the clamp, ``block_size=10**6`` on a 48-channel site ran exactly
like unblocked execution (correct) but ``fused_scratch_bytes`` without
a ``c_prime`` hint reported a tile of a million channels (misleading),
and the fused node attrs advertised the fictitious size.
"""

import numpy as np
import pytest

from repro.core import FusionConfig, TeMCOConfig, optimize
from repro.decompose import DecompositionConfig, decompose_graph
from repro.kernels import fused_block, fused_restore, fused_scratch_bytes
from repro.runtime import InferenceSession

from _graph_fixtures import make_chain_graph, random_input


@pytest.fixture(scope="module")
def decomposed():
    return decompose_graph(make_chain_graph(), DecompositionConfig(seed=0))


class TestKernelClamp:
    def _site(self, c_prime=48, r_in=8, r_out=8, n=2, hw=6, seed=0):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(n, r_in, hw, hw)).astype(np.float32)
        w1 = rng.normal(size=(c_prime, r_in)).astype(np.float32)
        w2 = rng.normal(size=(r_out, c_prime)).astype(np.float32)
        return x, w1, w2

    def test_oversized_block_matches_exact_block(self):
        x, w1, w2 = self._site()
        big = fused_block(x, w1, None, w2, None, act="relu", block_size=10**6)
        exact = fused_block(x, w1, None, w2, None, act="relu", block_size=48)
        np.testing.assert_array_equal(big, exact)

    def test_oversized_block_fused_restore(self):
        x, w1, _ = self._site()
        big = fused_restore(x, w1, None, act="relu", block_size=10**6)
        exact = fused_restore(x, w1, None, act="relu", block_size=48)
        np.testing.assert_array_equal(big, exact)

    def test_scratch_report_clamps_with_c_prime(self):
        shape = (2, 8, 6, 6)
        assert (fused_scratch_bytes(shape, 4, block_size=10**6, c_prime=48)
                == fused_scratch_bytes(shape, 4, block_size=48, c_prime=48))


class TestFusionConfigValidation:
    def test_rejects_nonpositive_block(self):
        with pytest.raises(ValueError, match="block_size"):
            FusionConfig(block_size=0)

    def test_rejects_negative_spatial_tile(self):
        with pytest.raises(ValueError, match="spatial_tile"):
            FusionConfig(spatial_tile=-1)

    def test_rejects_bad_override(self):
        with pytest.raises(ValueError, match="override"):
            FusionConfig(site_overrides={"c1": (0, 0)})

    def test_tile_for_falls_back_to_global(self):
        cfg = FusionConfig(block_size=16, spatial_tile=8,
                           site_overrides={"c1": (4, 0)})
        assert cfg.tile_for("c1") == (4, 0)
        assert cfg.tile_for("c2") == (16, 8)


class TestFusedNodeAttrs:
    def test_attrs_carry_clamped_block_size(self, decomposed):
        optimized, report = optimize(decomposed, TeMCOConfig(
            fusion=FusionConfig(block_size=10**6)))
        fused = [n for n in optimized.nodes
                 if n.op in ("fused_block", "fused_restore")]
        assert fused, "chain graph should fuse"
        for node in fused:
            assert node.attrs["block_size"] == node.params["w1"].shape[0]

    def test_clamped_attrs_scratch_matches_unblocked(self, decomposed):
        graph = decomposed.clone()
        big, _ = optimize(graph, TeMCOConfig(
            fusion=FusionConfig(block_size=10**6)))
        full, _ = optimize(graph, TeMCOConfig(
            fusion=FusionConfig(block_size=4096)))
        inputs = random_input(big)
        scratch_big = InferenceSession(big).run(inputs).memory.peak_scratch_bytes
        scratch_full = InferenceSession(full).run(inputs).memory.peak_scratch_bytes
        assert scratch_big == scratch_full > 0

    def test_site_overrides_reach_the_attrs(self, decomposed):
        default, _ = optimize(decomposed, TeMCOConfig())
        fused = [n for n in default.nodes if n.op == "fused_block"]
        assert fused
        site = fused[0].attrs["fused_from"][0]
        tuned, _ = optimize(decomposed, TeMCOConfig(
            fusion=FusionConfig(site_overrides={site: (4, 0)})))
        target = [n for n in tuned.nodes
                  if n.op == "fused_block" and n.attrs["fused_from"][0] == site]
        assert target and target[0].attrs["block_size"] == 4
        inputs = random_input(default)
        np.testing.assert_allclose(
            InferenceSession(tuned).run(inputs).output(),
            InferenceSession(default).run(inputs).output(),
            rtol=1e-4, atol=1e-4)
