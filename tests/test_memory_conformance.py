"""MemoryProfile <-> arena consistency across the model zoo.

The invariant chain the whole memory story rests on, checked end to
end on real measured runs (not estimates):

    measured peak == static liveness prediction
    measured max-live <= arena plan lower bound <= arena total bytes
    optimized measured peak < original measured peak
"""

import pytest

from repro.bench import build_variants, variant_names_for
from repro.core import estimate_peak_internal
from repro.runtime import InferenceSession, plan_arena
from repro.runtime.executor import execute

#: one plain CNN, one residual-skip net, one concat-skip net
MODELS = ("alexnet", "resnet18", "unet_small")


@pytest.fixture(scope="module", params=MODELS)
def variants(request):
    return build_variants(request.param, batch=2, hw=32)


class TestMeasuredVsArena:
    def test_measured_max_live_never_exceeds_arena(self, variants):
        inputs = variants.input_batch()
        for name in variant_names_for(variants.model):
            graph = variants.graphs[name]
            result = execute(graph, inputs, record_ledger=True)
            plan = plan_arena(graph)
            max_live = result.memory.ledger.max_live_bytes
            assert max_live <= plan.peak_lower_bound, (variants.model, name)
            assert plan.peak_lower_bound <= plan.arena_bytes

    def test_measured_peak_equals_static_prediction(self, variants):
        inputs = variants.input_batch()
        for name in variant_names_for(variants.model):
            graph = variants.graphs[name]
            profile = InferenceSession(graph).run(inputs).memory
            assert profile.peak_internal_bytes == \
                estimate_peak_internal(graph), (variants.model, name)


class TestOptimizedStrictlyLower:
    def test_best_variant_measures_strictly_below_original(self, variants):
        inputs = variants.input_batch()
        best = variant_names_for(variants.model)[-1]
        original = InferenceSession(
            variants.graphs["original"]).run(inputs).memory
        optimized = InferenceSession(
            variants.graphs[best]).run(inputs).memory
        assert optimized.peak_internal_bytes < original.peak_internal_bytes, \
            variants.model


class TestAuditZoo:
    def test_audit_model_passes_for_each(self, variants):
        from repro.obs.audit import audit_model
        result = audit_model(variants.model, batch=2, hw=32)
        assert result.passed, [f.message for f in result.all_findings()]
        assert result.reduction_pct > 0.0
