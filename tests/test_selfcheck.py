"""The install self-check scorecard."""

from repro.selfcheck import CHECKS, run_selfcheck


class TestSelfcheck:
    def test_all_checks_pass(self, capsys):
        results = run_selfcheck(verbose=True)
        out = capsys.readouterr().out
        assert all(r.passed for r in results), [r.detail for r in results
                                                if not r.passed]
        assert "PASS" in out and "FAIL" not in out

    def test_covers_every_registered_check(self):
        results = run_selfcheck(verbose=False)
        assert [r.name for r in results] == [name for name, _ in CHECKS]
        assert all(r.seconds >= 0 for r in results)

    def test_failures_are_reported_not_raised(self, monkeypatch):
        import repro.selfcheck as sc

        def boom():
            raise RuntimeError("injected")

        monkeypatch.setattr(sc, "CHECKS", [("boom", boom)])
        results = sc.run_selfcheck(verbose=False)
        assert len(results) == 1
        assert not results[0].passed
        assert "injected" in results[0].detail
