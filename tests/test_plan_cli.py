"""The planner's user-facing surfaces: `repro plan`, `--budget` on
run/memcheck/bench, the /metrics counter names, and the bench
document's informational budgeted column."""

import json

import pytest

from repro.bench import BenchConfig, collect_bench
from repro.cli import main
from repro.obs import MetricsRegistry, prometheus_metric_name, prometheus_text

#: small-but-plannable CLI workload shared by every test here
WAVENET = ["wavenet2d", "--batch", "1", "--hw", "16"]


class TestPlanCommand:
    def test_table_lists_actions_and_totals(self, capsys):
        assert main(["plan", *WAVENET, "--budget", "60%"]) == 0
        out = capsys.readouterr().out
        assert "spill" in out
        assert "baseline peak" in out and "planned peak" in out
        assert "floor" in out

    def test_json_document_is_machine_parseable(self, capsys):
        assert main(["plan", *WAVENET, "--budget", "60%", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["feasible"] is True
        assert doc["planned_peak_bytes"] <= doc["budget_bytes"]
        assert doc["floor_bytes"] <= doc["planned_peak_bytes"]
        kinds = {a["kind"] for a in doc["actions"]}
        assert "spill" in kinds and "keep" in kinds

    def test_no_budget_is_the_analysis_view(self, capsys):
        assert main(["plan", *WAVENET, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["budget_bytes"] is None
        assert doc["planned_peak_bytes"] == doc["baseline_peak_bytes"]

    def test_infeasible_budget_fails_fast_with_residual(self, capsys):
        assert main(["plan", *WAVENET, "--budget", "10%"]) == 1
        err = capsys.readouterr().err
        assert "infeasible" in err and "residual" in err
        assert "floor" in err  # the hint telling the user what could fit

    def test_infeasible_budget_json_reports_residual(self, capsys):
        assert main(["plan", *WAVENET, "--budget", "10%", "--json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["feasible"] is False
        assert doc["residual_bytes"] > 0

    def test_bad_budget_spelling_is_a_usage_error(self, capsys):
        assert main(["plan", *WAVENET, "--budget", "banana"]) == 2
        assert "budget" in capsys.readouterr().err


class TestRunWithBudget:
    def test_budgeted_run_reports_within_budget(self, capsys):
        assert main(["run", *WAVENET, "--repeats", "1",
                     "--budget", "60%"]) == 0
        out = capsys.readouterr().out
        assert "budgeted peak" in out and "within budget" in out
        assert "spill" in out

    def test_infeasible_budget_aborts_the_run(self, capsys):
        assert main(["run", *WAVENET, "--repeats", "1",
                     "--budget", "10%"]) == 1
        assert "infeasible" in capsys.readouterr().err


class TestMemcheckBudget:
    def test_budget_conformance_passes_on_the_long_skip_models(self, capsys):
        assert main(["memcheck", "wavenet2d", "fractalnet",
                     "--batch", "1", "--hw", "16", "--budget", "60%"]) == 0
        out = capsys.readouterr().out
        assert "PASS wavenet2d" in out and "PASS fractalnet" in out
        assert "memcheck passed" in out

    def test_budget_conformance_json(self, capsys):
        assert main(["memcheck", "wavenet2d", "--batch", "1",
                     "--hw", "16", "--budget", "60%", "--json"]) == 0
        docs = json.loads(capsys.readouterr().out)
        assert len(docs) == 1
        assert docs[0]["model"] == "wavenet2d"
        assert docs[0]["measured_peak_bytes"] <= docs[0]["budget_bytes"]
        assert docs[0]["findings"] == []

    def test_infeasible_budget_is_a_failed_audit(self, capsys):
        assert main(["memcheck", "wavenet2d", "--batch", "1",
                     "--hw", "16", "--budget", "1KiB"]) == 1
        out = capsys.readouterr().out
        assert "infeasible_budget" in out


class TestPlanMetricNames:
    def test_counters_expose_the_documented_prometheus_names(self):
        registry = MetricsRegistry()
        registry.inc("plan.spilled_bytes", 4096)
        registry.inc("plan.remat", 2)
        text = prometheus_text(registry)
        assert "repro_plan_spilled_bytes_total 4096" in text
        assert "repro_plan_remat_total 2" in text

    def test_name_conversion_is_stable(self):
        assert prometheus_metric_name("plan.spilled_bytes") == \
            "repro_plan_spilled_bytes"
        assert prometheus_metric_name("plan.remat") == "repro_plan_remat"


class TestBenchBudgetedColumn:
    @pytest.fixture(scope="class")
    def doc(self):
        config = BenchConfig(models=("wavenet2d",), batch=1, hw=16,
                             repeats=1, warmup=0, budget="60%")
        return collect_bench(config, name="test")

    def test_budgeted_entry_present_and_informational(self, doc):
        entry = doc["models"]["wavenet2d"]["variants"]["original"]["budgeted"]
        assert entry["feasible"] is True
        assert entry["measured_peak_bytes"] <= entry["budget_bytes"]
        assert entry["measured_peak_bytes"] == entry["planned_peak_bytes"]
        assert entry["spills"] > 0

    def test_infeasible_variant_reports_residual_not_crash(self, doc):
        # 60% of the already-optimized variant's own peak sits below its
        # floor; the column must report that, never fail the suite
        best = doc["models"]["wavenet2d"]["best_variant"]
        entry = doc["models"]["wavenet2d"]["variants"][best]["budgeted"]
        if not entry["feasible"]:
            assert entry["residual_bytes"] > 0

    def test_budget_recorded_in_config_for_reproduction(self, doc):
        assert doc["config"]["budget"] == "60%"

    def test_config_without_budget_still_loads(self, doc):
        legacy = dict(doc["config"])
        legacy.pop("budget")
        config = BenchConfig.from_dict(legacy)
        assert config.budget is None

    def test_no_budget_means_no_column(self):
        config = BenchConfig(models=("wavenet2d",), batch=1, hw=16,
                             repeats=1, warmup=0)
        doc = collect_bench(config, name="test")
        variants = doc["models"]["wavenet2d"]["variants"]
        assert all("budgeted" not in v for v in variants.values())
