"""Graph factories shared across the test suite (unique module name)."""

from __future__ import annotations

import numpy as np

from repro.ir import GraphBuilder


def make_chain_graph(seed: int = 0, batch: int = 2, channels: int = 16,
                     hw: int = 12):
    """conv-relu-pool-conv-relu: the Figure 3 scenario."""
    b = GraphBuilder("chain", seed=seed)
    x = b.input("x", (batch, channels, hw, hw))
    h = b.relu(b.conv2d(x, 2 * channels, 3, padding=1, name="c1"))
    h = b.maxpool2d(h, 2)
    h = b.relu(b.conv2d(h, 2 * channels, 3, padding=1, name="c2"))
    return b.finish(h)


def make_skip_graph(seed: int = 0, batch: int = 2, channels: int = 16,
                    hw: int = 16):
    """A UNet-style concat skip: Figure 7's running example."""
    b = GraphBuilder("skipnet", seed=seed)
    x = b.input("x", (batch, channels, hw, hw))
    e1 = b.relu(b.conv2d(x, 2 * channels, 3, padding=1, name="enc1"))
    h = b.maxpool2d(e1, 2)
    h = b.relu(b.conv2d(h, 4 * channels, 3, padding=1, name="enc2"))
    h = b.upsample_nearest(h, 2)
    h = b.concat(e1, h, name="join")
    h = b.relu(b.conv2d(h, 2 * channels, 3, padding=1, name="dec"))
    return b.finish(h)


def make_residual_graph(seed: int = 0, batch: int = 2, channels: int = 16,
                        hw: int = 12, blocks: int = 2):
    """ResNet-style add skips."""
    b = GraphBuilder("resnetish", seed=seed)
    x = b.input("x", (batch, channels, hw, hw))
    h = b.relu(b.conv2d(x, 2 * channels, 3, padding=1, name="stem"))
    for i in range(blocks):
        identity = h
        y = b.relu(b.conv2d(h, 2 * channels, 3, padding=1, name=f"b{i}.c1"))
        y = b.conv2d(y, 2 * channels, 3, padding=1, name=f"b{i}.c2")
        h = b.relu(b.add(y, identity))
    return b.finish(h)


def random_input(graph, seed: int = 0) -> dict[str, np.ndarray]:
    rng = np.random.default_rng(seed)
    return {v.name: rng.normal(size=v.shape).astype(v.dtype.np)
            for v in graph.inputs}
