"""Failure injection for the spill store: a failed spill write must
degrade to keep-resident (the request stays correct), a transient fetch
failure must be retried, and lost data must surface as a typed error —
never as silently wrong outputs."""

import numpy as np
import pytest

from repro.core import estimate_peak_internal
from repro.models import build_wavenet2d
from repro.plan import (PrefetchWorker, SpillStore, SpillStoreError,
                        plan_memory)
from repro.runtime.executor import execute


@pytest.fixture(scope="module")
def planned_wavenet():
    graph = build_wavenet2d(batch=1, hw=16, channels=8, layers=6)
    rng = np.random.default_rng(0)
    inputs = {v.name: rng.standard_normal(v.shape).astype(np.float32)
              for v in graph.inputs}
    reference = execute(graph, inputs)
    plan = plan_memory(graph, int(0.60 * estimate_peak_internal(graph)))
    assert plan.spills  # the injection below must have something to break
    return graph, inputs, reference, plan


class _WriteFailStore(SpillStore):
    """Every spill write fails; nothing ever reaches the store."""

    def put(self, name, array):
        raise SpillStoreError(f"injected write failure for {name!r}")


class _FlakyFetchStore(SpillStore):
    """The first fetch of each tensor fails (transient I/O); the
    enforcer's synchronous retry then succeeds."""

    def __init__(self):
        super().__init__()
        self.failed_once: set[str] = set()

    def fetch(self, name):
        if name not in self.failed_once:
            self.failed_once.add(name)
            raise SpillStoreError(f"injected transient fetch of {name!r}")
        return super().fetch(name)


class _DeadFetchStore(SpillStore):
    """Writes land but every read fails: the data is gone."""

    def fetch(self, name):
        raise SpillStoreError(f"injected permanent fetch loss of {name!r}")


class TestSpillWriteFailure:
    def test_falls_back_to_keep_resident_and_stays_correct(
            self, planned_wavenet):
        graph, inputs, reference, plan = planned_wavenet
        result = execute(graph, inputs, plan=plan,
                         spill_store=_WriteFailStore())
        for name, array in reference.outputs.items():
            assert np.array_equal(result.outputs[name], array), name
        stats = result.memory.plan_stats
        assert stats.spill_failures == len(plan.spills)
        assert stats.spills == 0 and stats.prefetches == 0
        # nothing left residence, so the run measures the unplanned peak
        assert result.memory.peak_internal_bytes == \
            reference.memory.peak_internal_bytes


class TestTransientFetchFailure:
    def test_synchronous_retry_recovers(self, planned_wavenet):
        graph, inputs, reference, plan = planned_wavenet
        store = _FlakyFetchStore()
        result = execute(graph, inputs, plan=plan, spill_store=store)
        for name, array in reference.outputs.items():
            assert np.array_equal(result.outputs[name], array), name
        stats = result.memory.plan_stats
        assert stats.fetch_retries == len(plan.spills)
        assert stats.prefetches == len(plan.spills)
        # retries do not change the enforced memory shape
        assert result.memory.peak_internal_bytes == plan.planned_peak_bytes


class TestPermanentFetchFailure:
    def test_lost_data_surfaces_as_typed_error(self, planned_wavenet):
        graph, inputs, _, plan = planned_wavenet
        with pytest.raises(SpillStoreError):
            execute(graph, inputs, plan=plan, spill_store=_DeadFetchStore())


class TestSpillStoreContract:
    def test_directory_store_round_trips_losslessly(self, tmp_path):
        store = SpillStore(directory=tmp_path)
        array = np.random.default_rng(1).standard_normal((3, 4)).astype(
            np.float32)
        assert store.put("conv/1.out", array) == array.nbytes
        assert store.held_bytes == array.nbytes
        fetched = store.fetch("conv/1.out")
        assert np.array_equal(fetched, array)
        store.discard("conv/1.out")
        assert len(store) == 0 and store.held_bytes == 0
        assert not any(tmp_path.iterdir())

    def test_unwritable_directory_raises_typed_error(self, tmp_path):
        blocker = tmp_path / "occupied"
        blocker.write_text("not a directory")
        store = SpillStore(directory=blocker)
        with pytest.raises(SpillStoreError, match="write"):
            store.put("t", np.zeros(4, np.float32))

    def test_fetch_of_never_spilled_tensor_raises(self):
        with pytest.raises(SpillStoreError, match="never spilled"):
            SpillStore().fetch("ghost")

    def test_wait_without_issue_raises(self):
        worker = PrefetchWorker(SpillStore())
        with pytest.raises(SpillStoreError, match="no prefetch issued"):
            worker.wait("ghost")
        worker.close()
