"""graph_fingerprint: rename/attr-order invariance, change sensitivity."""

import numpy as np
import pytest

from repro.ir import Graph, GraphBuilder, graph_fingerprint
from repro.ir.node import Node
from repro.ir.value import Value


def _build(name="g", seed=0, attr_order="ab", node_suffix="",
           channels=8, weight_bump=0.0):
    """Two-conv chain with controllable names / attr ordering / weights."""
    rng = np.random.default_rng(seed)
    w1 = rng.normal(size=(channels, 4, 3, 3)).astype(np.float32) + weight_bump
    w2 = rng.normal(size=(channels, channels, 3, 3)).astype(np.float32)
    x = Value(f"x{node_suffix}", (2, 4, 8, 8))
    g = Graph(name, [x])
    if attr_order == "ab":
        attrs1 = {"stride": [1, 1], "padding": [1, 1], "groups": 1}
    else:  # same mapping, different insertion order
        attrs1 = {"groups": 1, "padding": [1, 1], "stride": [1, 1]}
    v1 = Value(f"h1{node_suffix}", (2, channels, 8, 8))
    g.add_node(Node(name=f"c1{node_suffix}", op="conv2d", inputs=[x],
                    output=v1, attrs=attrs1, params={"weight": w1}))
    v2 = Value(f"h2{node_suffix}", (2, channels, 8, 8))
    g.add_node(Node(name=f"c2{node_suffix}", op="conv2d", inputs=[v1],
                    output=v2,
                    attrs={"stride": [1, 1], "padding": [1, 1], "groups": 1},
                    params={"weight": w2}))
    g.outputs = [v2]
    g.validate()
    return g


class TestFingerprintInvariance:
    def test_deterministic(self):
        assert graph_fingerprint(_build()) == graph_fingerprint(_build())

    def test_node_and_value_renaming_is_invisible(self):
        a = _build()
        b = _build(name="renamed", node_suffix=".copy7")
        assert graph_fingerprint(a) == graph_fingerprint(b)

    def test_attr_dict_insertion_order_is_invisible(self):
        a = _build(attr_order="ab")
        b = _build(attr_order="ba")
        assert graph_fingerprint(a) == graph_fingerprint(b)

    def test_clone_preserves_fingerprint(self):
        g = _build()
        assert graph_fingerprint(g.clone("other-name")) == graph_fingerprint(g)

    def test_fused_from_provenance_names_are_invisible(self):
        # fused_from carries layer *names*; renaming them must not matter
        a, b = _build(), _build(node_suffix=".v2")
        a.nodes[0].attrs["fused_from"] = ["c1", "relu_1"]
        b.nodes[0].attrs["fused_from"] = ["c1.v2", "relu_1.v2"]
        assert graph_fingerprint(a) == graph_fingerprint(b)


class TestFingerprintSensitivity:
    def test_weight_edit_changes_digest(self):
        assert (graph_fingerprint(_build())
                != graph_fingerprint(_build(weight_bump=0.5)))

    def test_weight_edit_invisible_without_param_values(self):
        a, b = _build(), _build(weight_bump=0.5)
        assert (graph_fingerprint(a, include_param_values=False)
                == graph_fingerprint(b, include_param_values=False))

    def test_shape_change_changes_digest(self):
        assert (graph_fingerprint(_build(channels=8))
                != graph_fingerprint(_build(channels=16)))

    def test_attr_value_change_changes_digest(self):
        g = _build()
        base = graph_fingerprint(g)
        g.nodes[0].attrs["stride"] = [2, 2]
        assert graph_fingerprint(g) != base

    def test_op_change_changes_digest(self):
        g = _build()
        base = graph_fingerprint(g)
        g.nodes[1].op = "lconv_marker"  # structural only; no re-validate
        assert graph_fingerprint(g) != base

    def test_batch_is_part_of_the_digest(self):
        b1 = GraphBuilder("m", seed=0)
        x = b1.input("image", (1, 4, 8, 8))
        g1 = b1.finish(b1.relu(b1.conv2d(x, 8, 3, padding=1)))
        b2 = GraphBuilder("m", seed=0)
        x = b2.input("image", (2, 4, 8, 8))
        g2 = b2.finish(b2.relu(b2.conv2d(x, 8, 3, padding=1)))
        assert (graph_fingerprint(g1, include_param_values=False)
                != graph_fingerprint(g2, include_param_values=False))
