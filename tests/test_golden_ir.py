"""Golden IR snapshots: the printed form of key transformations.

These freeze the *structure* TeMCO produces on the canonical Figure-3
and Figure-7 scenarios.  If a pass changes behaviour, the diff here
shows exactly what moved — much faster to review than debugging a
memory number.
"""

import numpy as np

from repro.core import optimize
from repro.decompose import DecompositionConfig, decompose_graph
from repro.ir import GraphBuilder, format_graph


def _ops_signature(graph) -> list[str]:
    """Op kinds + role tags in schedule order (names elided: they carry
    counters that legitimately vary)."""
    out = []
    for node in graph.nodes:
        role = node.attrs.get("role")
        tag = f"{node.op}[{role}]" if role else node.op
        out.append(tag)
    return out


class TestGoldenStructures:
    def test_figure3_decomposition_structure(self):
        b = GraphBuilder("fig3", seed=0)
        x = b.input("x", (1, 16, 8, 8))
        h = b.conv2d(x, 32, 3, padding=1, name="conv1")
        h = b.relu(h)
        h = b.conv2d(h, 32, 3, padding=1, name="conv2")
        g = b.finish(h)
        dg = decompose_graph(g, DecompositionConfig(ratio=0.25))
        assert _ops_signature(dg) == [
            "conv2d[fconv]", "conv2d[core]", "conv2d[lconv]",
            "relu",
            "conv2d[fconv]", "conv2d[core]", "conv2d[lconv]",
        ]

    def test_figure5_fused_structure(self):
        b = GraphBuilder("fig5", seed=0)
        x = b.input("x", (1, 16, 8, 8))
        h = b.conv2d(x, 32, 3, padding=1, name="conv1")
        h = b.relu(h)
        h = b.conv2d(h, 32, 3, padding=1, name="conv2")
        g = b.finish(h)
        dg = decompose_graph(g, DecompositionConfig(ratio=0.25))
        opt, _ = optimize(dg)
        # lconv1-relu-fconv2 collapse into one fused block; the final
        # lconv (feeding the output) stays materialized
        assert _ops_signature(opt) == [
            "conv2d[fconv]", "conv2d[core]",
            "fused_block",
            "conv2d[core]", "conv2d[lconv]",
        ]

    def test_figure7_skip_structure(self):
        # Figure 7's running example: b = relu(a) is a skip connection
        b = GraphBuilder("fig7", seed=0)
        x = b.input("x", (1, 16, 8, 8))
        a = b.relu(b.conv2d(x, 32, 3, padding=1, name="conv1"))
        h = a
        for i in range(3):
            h = b.relu(b.conv2d(h, 32, 3, padding=1, name=f"mid{i}"))
        e = b.concat(a, h, name="e")
        out = b.relu(b.conv2d(e, 32, 3, padding=1, name="f"))
        g = b.finish(out)
        dg = decompose_graph(g, DecompositionConfig(ratio=0.25))
        opt, report = optimize(dg)
        sig = _ops_signature(opt)
        # the concat now joins *reduced* tensors and a merged lconv
        # (or its fusion) replaced the full-width join
        assert "concat" in sig
        concat_node = next(n for n in opt.nodes if n.op == "concat")
        full_width = 32 + 32
        assert concat_node.output.shape[1] < full_width
        assert report.peak_after < report.peak_before

    def test_printed_form_is_stable_for_fig3(self):
        b = GraphBuilder("fig3", seed=1)
        x = b.input("x", (1, 16, 8, 8))
        g = b.finish(b.conv2d(x, 32, 3, padding=1, name="conv1"))
        dg = decompose_graph(g, DecompositionConfig(ratio=0.25))
        text = format_graph(dg)
        assert text.splitlines()[0] == "graph fig3.tucker:"
        assert "conv1.fconv.out = conv2d[role=fconv](x)  # 1x4x8x8" in text
        assert "conv1.lconv.out = conv2d[role=lconv](conv1.core.out)  # 1x32x8x8" in text
