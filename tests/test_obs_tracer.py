"""Tracer core: spans, decisions, counters, metrics, ambient state,
and the zero-cost guarantee of the no-op default."""

import pytest

from repro.obs import (NOOP_TRACER, MetricsRegistry, NoopTracer, TaggedTracer,
                       Tracer, get_tracer, set_tracer, use_tracer)
from repro.runtime import execute

from _graph_fixtures import make_chain_graph, random_input


class ManualClock:
    """Deterministic clock the test advances explicitly."""

    def __init__(self) -> None:
        self.seconds = 0.0

    def __call__(self) -> float:
        return self.seconds

    def advance(self, seconds: float) -> None:
        self.seconds += seconds


class TestSpans:
    def test_nesting_depth_and_containment(self):
        clock = ManualClock()
        t = Tracer(clock=clock)
        with t.span("outer"):
            clock.advance(1.0)
            with t.span("inner"):
                clock.advance(0.5)
            clock.advance(1.0)
        # inner closes first
        inner, outer = t.spans
        assert inner.name == "inner" and outer.name == "outer"
        assert inner.depth == 1 and outer.depth == 0
        assert outer.start_us <= inner.start_us
        assert inner.end_us <= outer.end_us

    def test_timing_from_injected_clock(self):
        clock = ManualClock()
        t = Tracer(clock=clock)
        clock.advance(2.0)
        with t.span("work"):
            clock.advance(3.0)
        (span,) = t.spans
        assert span.start_us == pytest.approx(2.0e6)
        assert span.duration_us == pytest.approx(3.0e6)

    def test_span_depth_restored_after_exception(self):
        t = Tracer()
        with pytest.raises(RuntimeError):
            with t.span("failing"):
                raise RuntimeError("boom")
        with t.span("after"):
            pass
        assert [s.depth for s in t.spans] == [0, 0]

    def test_complete_records_at_current_depth(self):
        t = Tracer()
        with t.span("outer"):
            t.complete("node", 10.0, 5.0, category="conv2d", index=3)
        node = t.spans[0]
        assert node.name == "node" and node.depth == 1
        assert node.args["index"] == 3

    def test_span_carries_args(self):
        t = Tracer()
        with t.span("skip_opt", category="compiler", graph="g"):
            pass
        assert t.spans[0].args == {"graph": "g"}
        assert t.spans[0].category == "compiler"


class TestEventsAndMetrics:
    def test_decision_log_and_filter(self):
        t = Tracer()
        t.decision("skip_opt", "v1", "accept", "ok", skip_bytes=64)
        t.decision("skip_opt", "v2", "reject", "compute_overhead",
                   copy_flops=100)
        t.decision("fusion", "f1", "fuse", "lconv_act_fconv")
        rejects = t.decisions_for("skip_opt", verdict="reject")
        assert [d.subject for d in rejects] == ["v2"]
        assert rejects[0].quantities["copy_flops"] == 100
        assert rejects[0].rejected
        assert not t.decisions_for("skip_opt", verdict="accept")[0].rejected
        # decisions also feed the metrics registry
        assert t.metrics.get("skip_opt.accept") == 1
        assert t.metrics.get("skip_opt.reject") == 1

    def test_counter_series(self):
        t = Tracer()
        t.counter("memory", live_bytes=10, scratch_bytes=0)
        t.counter("memory", live_bytes=30, scratch_bytes=4)
        t.counter("other", live_bytes=99)
        assert t.counter_series("memory", "live_bytes") == [10, 30]
        assert t.counter_series("memory", "scratch_bytes") == [0, 4]

    def test_metrics_registry(self):
        m = MetricsRegistry()
        m.inc("runs")
        m.inc("runs")
        m.inc("bytes", 100)
        m.gauge("peak", 42)
        m.gauge("peak", 50)
        snap = m.snapshot()
        assert snap["runs"] == 2 and snap["bytes"] == 100 and snap["peak"] == 50
        assert list(snap) == sorted(snap)


class TestAmbientTracer:
    def test_default_is_the_noop_singleton(self):
        assert get_tracer() is NOOP_TRACER
        assert not get_tracer().enabled

    def test_use_tracer_installs_and_restores(self):
        t = Tracer()
        with use_tracer(t) as installed:
            assert installed is t
            assert get_tracer() is t
        assert get_tracer() is NOOP_TRACER

    def test_use_tracer_restores_on_exception(self):
        t = Tracer()
        with pytest.raises(ValueError):
            with use_tracer(t):
                raise ValueError
        assert get_tracer() is NOOP_TRACER

    def test_set_tracer_none_restores_noop(self):
        t = Tracer()
        set_tracer(t)
        try:
            assert get_tracer() is t
        finally:
            set_tracer(None)
        assert get_tracer() is NOOP_TRACER


class TestTaggedTracer:
    def test_tags_stamped_on_every_record_kind(self):
        inner = Tracer()
        t = TaggedTracer(inner, worker_id=3)
        with t.span("serve.batch", category="serve", request_ids=[1, 2]):
            pass
        t.complete("node", 0.0, 1.0, index=0)
        t.instant("serve.request_done", request_id=1)
        t.decision("fusion", "f", "fuse")
        assert all(s.args["worker_id"] == 3 for s in inner.spans)
        assert inner.spans[0].args["request_ids"] == [1, 2]
        assert inner.instants[0].args == {"request_id": 1, "worker_id": 3}
        assert inner.decisions[0].quantities["worker_id"] == 3

    def test_counters_forward_untagged(self):
        inner = Tracer()
        TaggedTracer(inner, worker_id=3).counter("memory", live_bytes=10)
        assert inner.counters[0].values == {"live_bytes": 10}

    def test_explicit_tags_win_over_callsite_args(self):
        inner = Tracer()
        t = TaggedTracer(inner, worker_id=3)
        t.instant("i", worker_id=99)
        assert inner.instants[0].args["worker_id"] == 3

    def test_tagged_returns_merged_proxy_on_same_inner(self):
        inner = Tracer()
        t = TaggedTracer(inner, worker_id=1).tagged(request_id=7)
        t.instant("i")
        assert inner.instants[0].args == {"worker_id": 1, "request_id": 7}

    def test_enabled_and_metrics_forward(self):
        inner = Tracer()
        t = TaggedTracer(inner, worker_id=0)
        assert t.enabled is True
        assert t.metrics is inner.metrics
        assert TaggedTracer(NOOP_TRACER, worker_id=0).enabled is False


class _ExplodingDisabledTracer(NoopTracer):
    """enabled=False tracer whose record methods all raise: proves the
    executor's hot path never touches a disabled tracer."""

    def _boom(self, *a, **k):
        raise AssertionError("disabled tracer was invoked on the hot path")

    span = _boom
    complete = _boom
    instant = _boom
    counter = _boom
    decision = _boom
    now_us = _boom


class TestNoopOverhead:
    def test_noop_span_is_a_shared_singleton(self):
        n = NoopTracer()
        assert n.span("a") is n.span("b", category="c", x=1)

    def test_noop_methods_record_nothing_and_return_none(self):
        n = NoopTracer()
        with n.span("a"):
            pass
        assert n.instant("i") is None
        assert n.counter("memory", live_bytes=1) is None
        assert n.decision("p", "s", "accept") is None

    def test_executor_hot_path_skips_disabled_tracer(self):
        graph = make_chain_graph()
        probe = _ExplodingDisabledTracer()
        result = execute(graph, random_input(graph), tracer=probe)
        assert result.memory.peak_internal_bytes > 0

    def test_execution_identical_with_and_without_tracing(self):
        graph = make_chain_graph()
        inputs = random_input(graph)
        plain = execute(graph, inputs)
        traced_tracer = Tracer()
        traced = execute(graph, inputs, tracer=traced_tracer)
        assert plain.memory.peak_internal_bytes == traced.memory.peak_internal_bytes
        assert [e.live_bytes for e in plain.memory.events] == \
            [e.live_bytes for e in traced.memory.events]
        for k, v in plain.outputs.items():
            assert (v == traced.outputs[k]).all()
        # the traced run recorded one span and one counter sample per node
        assert len(traced_tracer.spans) == len(graph.nodes)
        assert len([c for c in traced_tracer.counters
                    if c.track == "memory"]) == len(graph.nodes)
