"""CLI commands run in-process."""

import numpy as np
import pytest

from repro.cli import main


class TestCLI:
    def test_models(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "vgg16" in out and "unet" in out

    def test_inspect(self, capsys):
        assert main(["inspect", "unet_small", "--batch", "1", "--hw", "32"]) == 0
        out = capsys.readouterr().out
        assert "peak internal" in out and "arena" in out

    def test_inspect_with_ir(self, capsys):
        assert main(["inspect", "alexnet", "--batch", "1", "--hw", "32",
                     "--ir"]) == 0
        out = capsys.readouterr().out
        assert "conv2d" in out and "return" in out

    def test_optimize_and_save(self, capsys, tmp_path):
        out_path = tmp_path / "opt.npz"
        assert main(["optimize", "unet_small", "--batch", "1", "--hw", "32",
                     "--ratio", "0.25", "-o", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "reduction" in out
        assert out_path.exists()
        # the saved graph round-trips through inspect
        assert main(["inspect", str(out_path)]) == 0

    def test_optimize_cp_method(self, capsys):
        assert main(["optimize", "unet_small", "--batch", "1", "--hw", "32",
                     "--method", "tt", "--ratio", "0.25"]) == 0
        assert "reduction" in capsys.readouterr().out

    def test_run(self, capsys):
        assert main(["run", "alexnet", "--batch", "1", "--hw", "32",
                     "--repeats", "1"]) == 0
        out = capsys.readouterr().out
        assert "wall-clock" in out

    def test_bench_fig10_single_model(self, capsys):
        assert main(["bench", "fig10", "--model", "unet_small",
                     "--batch", "1"]) == 0
        out = capsys.readouterr().out
        assert "Skip-Opt+Fusion" in out

    def test_bench_fig12_single_model(self, capsys):
        assert main(["bench", "fig12", "--model", "alexnet", "--batch", "2"]) == 0
        out = capsys.readouterr().out
        assert "agreement" in out

    def test_export_dot(self, capsys, tmp_path):
        out = tmp_path / "g.dot"
        assert main(["export", "alexnet", "dot", "--batch", "1", "--hw", "32",
                     "-o", str(out)]) == 0
        assert out.read_text().startswith("digraph")

    def test_export_timeline(self, capsys, tmp_path):
        out = tmp_path / "t.csv"
        assert main(["export", "unet_small", "timeline", "--batch", "1",
                     "--hw", "32", "-o", str(out)]) == 0
        assert out.read_text().startswith("index,node,op")

    def test_export_report(self, capsys, tmp_path):
        out = tmp_path / "r.md"
        assert main(["export", "unet_small", "report", "--batch", "1",
                     "--hw", "32", "-o", str(out)]) == 0
        assert "peak internal" in out.read_text()

    def test_extra_model_via_cli(self, capsys):
        assert main(["inspect", "vgg11_silu", "--batch", "1", "--hw", "32"]) == 0
        assert "peak internal" in capsys.readouterr().out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            main(["inspect", "resnet50"])

    def test_optimize_energy_policy(self, capsys):
        assert main(["optimize", "unet_small", "--batch", "1", "--hw", "32",
                     "--rank-policy", "energy", "--energy", "0.7"]) == 0
        assert "reduction" in capsys.readouterr().out

    def test_selfcheck_passes(self, capsys):
        assert main(["selfcheck"]) == 0
        out = capsys.readouterr().out
        assert "6/6 checks passed" in out
