"""CLI commands run in-process."""

import json

import numpy as np
import pytest

from repro.cli import main


class TestCLI:
    def test_models(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "vgg16" in out and "unet" in out

    def test_inspect(self, capsys):
        assert main(["inspect", "unet_small", "--batch", "1", "--hw", "32"]) == 0
        out = capsys.readouterr().out
        assert "peak internal" in out and "arena" in out

    def test_inspect_with_ir(self, capsys):
        assert main(["inspect", "alexnet", "--batch", "1", "--hw", "32",
                     "--ir"]) == 0
        out = capsys.readouterr().out
        assert "conv2d" in out and "return" in out

    def test_optimize_and_save(self, capsys, tmp_path):
        out_path = tmp_path / "opt.npz"
        assert main(["optimize", "unet_small", "--batch", "1", "--hw", "32",
                     "--ratio", "0.25", "-o", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "reduction" in out
        assert out_path.exists()
        # the saved graph round-trips through inspect
        assert main(["inspect", str(out_path)]) == 0

    def test_optimize_cp_method(self, capsys):
        assert main(["optimize", "unet_small", "--batch", "1", "--hw", "32",
                     "--method", "tt", "--ratio", "0.25"]) == 0
        assert "reduction" in capsys.readouterr().out

    def test_run(self, capsys):
        assert main(["run", "alexnet", "--batch", "1", "--hw", "32",
                     "--repeats", "1"]) == 0
        out = capsys.readouterr().out
        assert "wall-clock" in out

    def test_bench_fig10_single_model(self, capsys):
        assert main(["bench", "fig10", "--model", "unet_small",
                     "--batch", "1"]) == 0
        out = capsys.readouterr().out
        assert "Skip-Opt+Fusion" in out

    def test_bench_fig12_single_model(self, capsys):
        assert main(["bench", "fig12", "--model", "alexnet", "--batch", "2"]) == 0
        out = capsys.readouterr().out
        assert "agreement" in out

    def test_export_dot(self, capsys, tmp_path):
        out = tmp_path / "g.dot"
        assert main(["export", "alexnet", "dot", "--batch", "1", "--hw", "32",
                     "-o", str(out)]) == 0
        assert out.read_text().startswith("digraph")

    def test_export_timeline(self, capsys, tmp_path):
        out = tmp_path / "t.csv"
        assert main(["export", "unet_small", "timeline", "--batch", "1",
                     "--hw", "32", "-o", str(out)]) == 0
        assert out.read_text().startswith("index,node,op")

    def test_export_report(self, capsys, tmp_path):
        out = tmp_path / "r.md"
        assert main(["export", "unet_small", "report", "--batch", "1",
                     "--hw", "32", "-o", str(out)]) == 0
        assert "peak internal" in out.read_text()

    def test_extra_model_via_cli(self, capsys):
        assert main(["inspect", "vgg11_silu", "--batch", "1", "--hw", "32"]) == 0
        assert "peak internal" in capsys.readouterr().out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            main(["inspect", "resnet50"])

    def test_optimize_energy_policy(self, capsys):
        assert main(["optimize", "unet_small", "--batch", "1", "--hw", "32",
                     "--rank-policy", "energy", "--energy", "0.7"]) == 0
        assert "reduction" in capsys.readouterr().out

    def test_selfcheck_passes(self, capsys):
        assert main(["selfcheck"]) == 0
        out = capsys.readouterr().out
        assert "6/6 checks passed" in out


@pytest.fixture(scope="module")
def tuned_cache(tmp_path_factory):
    """A tune cache populated once for alexnet @ batch 1, hw 16."""
    cache_dir = tmp_path_factory.mktemp("tune-cache")
    assert main(["tune", "alexnet", "--batch", "1", "--hw", "16",
                 "--budget", "2", "--repeats", "1",
                 "--cache-dir", str(cache_dir)]) == 0
    return cache_dir


class TestTuneCLI:
    def test_tune_miss_then_hit(self, capsys, tmp_path):
        args = ["tune", "alexnet", "--batch", "1", "--hw", "16",
                "--budget", "2", "--repeats", "1",
                "--cache-dir", str(tmp_path)]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "tune cache miss" in out and "tuned tiles" in out
        assert list(tmp_path.glob("*.json")) and \
            list(tmp_path.glob("*.plan.npz"))
        assert main(args) == 0
        assert "tune cache hit" in capsys.readouterr().out

    def test_tune_force_retunes(self, capsys, tuned_cache):
        assert main(["tune", "alexnet", "--batch", "1", "--hw", "16",
                     "--budget", "2", "--repeats", "1", "--force",
                     "--cache-dir", str(tuned_cache)]) == 0
        assert "tune cache miss" in capsys.readouterr().out

    def test_run_tuned_uses_cached_plan(self, capsys, tuned_cache):
        assert main(["run", "alexnet", "--batch", "1", "--hw", "16",
                     "--repeats", "1", "--tuned",
                     "--cache-dir", str(tuned_cache)]) == 0
        out = capsys.readouterr().out
        assert "tune cache hit: executing cached compiled plan" in out
        assert "wall-clock" in out

    def test_run_tuned_no_tune_on_empty_cache(self, capsys, tmp_path):
        assert main(["run", "alexnet", "--batch", "1", "--hw", "16",
                     "--repeats", "1", "--tuned", "--no-tune",
                     "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "tune cache miss (--no-tune)" in out
        assert not list(tmp_path.glob("*.json"))  # lookup-only: no tuning

    def test_optimize_tuned_applies_cached_tiles(self, capsys, tuned_cache):
        assert main(["optimize", "alexnet", "--batch", "1", "--hw", "16",
                     "--tuned", "--no-tune",
                     "--cache-dir", str(tuned_cache)]) == 0
        out = capsys.readouterr().out
        assert "tune cache hit" in out and "reduction" in out

    def test_bench_tuned_consults_cache(self, capsys, tuned_cache):
        assert main(["bench", "fig10", "--model", "alexnet", "--batch", "1",
                     "--tuned", "--cache-dir", str(tuned_cache)]) == 0
        out = capsys.readouterr().out
        assert "consulting tune cache" in out and "Fusion" in out

    def test_tune_trace_carries_trial_decisions(self, capsys, tmp_path):
        trace = tmp_path / "tune.trace.json"
        assert main(["tune", "alexnet", "--batch", "1", "--hw", "16",
                     "--budget", "2", "--repeats", "1",
                     "--cache-dir", str(tmp_path / "cache"),
                     "--trace", str(trace)]) == 0
        doc = json.loads(trace.read_text())
        marks = [e for e in doc["traceEvents"]
                 if e.get("args", {}).get("pass_name") == "tune"]
        verdicts = {e["args"]["verdict"] for e in marks}
        assert {"trial", "select", "cache_store"} <= verdicts
        assert any(e["name"] == "tune.site" for e in doc["traceEvents"]
                   if e["ph"] == "X")


class TestServeCLI:
    def test_loadgen_json_report(self, capsys):
        assert main(["loadgen", "unet_small", "--batch", "2", "--hw", "16",
                     "--requests", "6", "--concurrency", "3", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["mode"] == "closed"
        assert doc["offered"] == 6 and doc["completed"] == 6
        assert doc["rejected"] == 0 and doc["errors"] == 0
        assert set(doc["latency_ms"]) >= {"p50", "p95", "p99"}
        assert doc["server"]["serve.completed"] == 6
        assert doc["server"]["serve.batch_samples.max"] >= 1

    def test_loadgen_text_summary(self, capsys):
        assert main(["loadgen", "unet_small", "--batch", "2", "--hw", "16",
                     "--requests", "4", "--concurrency", "2"]) == 0
        out = capsys.readouterr().out
        assert "p50" in out and "p95" in out and "p99" in out
        assert "server metrics" in out and "serve.batches" in out

    def test_loadgen_open_mode(self, capsys):
        assert main(["loadgen", "unet_small", "--batch", "2", "--hw", "16",
                     "--mode", "open", "--requests", "4", "--rate", "500",
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["mode"] == "open"
        assert doc["completed"] + doc["rejected"] + doc["shed"] == 4

    def test_loadgen_no_batching_runs_one_request_per_batch(self, capsys):
        assert main(["loadgen", "unet_small", "--batch", "2", "--hw", "16",
                     "--requests", "4", "--concurrency", "4",
                     "--no-batching", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["server"]["serve.batches"] == 4

    def test_loadgen_tuned_empty_cache_reports_miss(self, capsys, tmp_path):
        assert main(["loadgen", "unet_small", "--batch", "2", "--hw", "16",
                     "--requests", "2", "--concurrency", "2", "--tuned",
                     "--cache-dir", str(tmp_path)]) == 0
        assert "tune cache miss" in capsys.readouterr().out

    def test_run_prints_latency_percentiles(self, capsys):
        assert main(["run", "alexnet", "--batch", "1", "--hw", "32",
                     "--repeats", "3"]) == 0
        out = capsys.readouterr().out
        assert "latency percentiles" in out
        assert "p50" in out and "p95" in out and "p99" in out


class TestObservabilityCLI:
    def test_trace_writes_valid_chrome_trace(self, capsys, tmp_path):
        out = tmp_path / "trace.json"
        assert main(["trace", "unet_small", "--batch", "1", "--hw", "32",
                     "--ratio", "0.25", "--trace", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert "memory counter track matches" in stdout
        doc = json.loads(out.read_text())
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert phases <= {"X", "i", "C", "M"}
        # the memory counter track reproduces the profile peak
        samples = [e["args"]["live_bytes"] for e in doc["traceEvents"]
                   if e["ph"] == "C" and e["name"] == "memory"]
        assert samples and max(samples) == \
            doc["otherData"]["metrics"]["executor.peak_internal_bytes"]
        # the compiler decision log made it into the trace
        assert any(e.get("args", {}).get("pass_name") == "skip_opt"
                   for e in doc["traceEvents"] if e["ph"] == "i")

    def test_trace_default_output_path(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["trace", "alexnet", "--batch", "1", "--hw", "32",
                     "--ratio", "0.25"]) == 0
        assert (tmp_path / "alexnet.trace.json").exists()

    def test_trace_jsonl_output(self, capsys, tmp_path):
        out = tmp_path / "trace.jsonl"
        assert main(["trace", "alexnet", "--batch", "1", "--hw", "32",
                     "--ratio", "0.25", "--trace", str(out)]) == 0
        records = [json.loads(line)
                   for line in out.read_text().splitlines()]
        assert {"span", "decision", "counter"} <= {r["type"] for r in records}

    def test_optimize_with_trace_flag(self, capsys, tmp_path):
        out = tmp_path / "opt.trace.json"
        assert main(["optimize", "unet_small", "--batch", "1", "--hw", "32",
                     "--ratio", "0.25", "--trace", str(out),
                     "--log-level", "warning"]) == 0
        doc = json.loads(out.read_text())
        assert any(e["name"] == "pipeline" for e in doc["traceEvents"])

    def test_bench_fig11_hw_and_repeats_flags(self, capsys):
        assert main(["bench", "fig11", "--model", "alexnet", "--batch", "1",
                     "--hw", "16", "--repeats", "1"]) == 0
        out = capsys.readouterr().out
        assert "overhead" in out.lower()

    def test_bench_with_trace_flag(self, capsys, tmp_path):
        out = tmp_path / "bench.trace.json"
        assert main(["bench", "fig12", "--model", "alexnet", "--batch", "1",
                     "--hw", "16", "--trace", str(out)]) == 0
        assert "traceEvents" in json.loads(out.read_text())


class TestMemcheckCLI:
    def test_memcheck_passes_on_small_models(self, capsys):
        assert main(["memcheck", "alexnet", "unet_small"]) == 0
        out = capsys.readouterr().out
        assert "memcheck passed" in out
        assert "PASS alexnet" in out and "PASS unet_small" in out
        # both variants of each model appear in the table
        assert "original" in out and "fusion" in out

    def test_memcheck_json_output(self, capsys):
        assert main(["memcheck", "alexnet", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc[0]["model"] == "alexnet" and doc[0]["passed"] is True
        assert doc[0]["original"]["measured_peak_bytes"] == \
            doc[0]["original"]["predicted_peak_bytes"]

    def test_memcheck_unknown_model_is_an_error(self, capsys):
        assert main(["memcheck", "nope"]) == 2
        assert "unknown zoo model" in capsys.readouterr().err

    def test_memcheck_trace_carries_arena_track(self, capsys, tmp_path):
        out = tmp_path / "memcheck.trace.json"
        assert main(["memcheck", "alexnet", "--trace", str(out)]) == 0
        events = json.loads(out.read_text())["traceEvents"]
        tracks = {e["name"] for e in events if e.get("ph") == "C"}
        assert {"memory", "arena"} <= tracks


class TestBenchSuiteCLI:
    def test_suite_writes_json_and_gate_round_trips(self, capsys, tmp_path):
        baseline = tmp_path / "BENCH_base.json"
        assert main(["bench", "--json", "--name", "base",
                     "--models", "alexnet", "--batch", "2",
                     "--repeats", "2", "--out", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "peak reduction" in out and baseline.exists()
        assert main(["bench", "--compare", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out and "+0.00%" in out

    def test_gate_fails_on_seeded_regression(self, capsys, tmp_path):
        baseline = tmp_path / "BENCH_base.json"
        assert main(["bench", "--json", "--name", "base",
                     "--models", "alexnet", "--batch", "2",
                     "--repeats", "2", "--out", str(baseline)]) == 0
        capsys.readouterr()
        doc = json.loads(baseline.read_text())
        for variant in doc["models"]["alexnet"]["variants"].values():
            variant["peak_bytes"] //= 2  # current peaks now look higher
        baseline.write_text(json.dumps(doc))
        assert main(["bench", "--compare", str(baseline)]) == 1
        assert "FAIL" in capsys.readouterr().out


class TestProfileCLI:
    def test_profile_prints_hot_tables(self, capsys):
        assert main(["profile", "unet_small", "--batch", "1", "--hw", "16",
                     "--repeats", "1"]) == 0
        out = capsys.readouterr().out
        assert "hot op" in out and "hot layer" in out
        assert "FLOP/B" in out and "GFLOP/s" in out
        assert "traced run" in out

    def test_profile_json_report(self, capsys):
        assert main(["profile", "unet_small", "--batch", "1", "--hw", "16",
                     "--repeats", "2", "--no-optimize", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["runs"] == 2
        ops = {row["key"]: row for row in doc["by_op"]}
        assert "conv2d" in ops
        assert ops["conv2d"]["flops"] > 0
        assert ops["conv2d"]["total_bytes"] > 0

    def test_profile_flamegraph_and_trace(self, capsys, tmp_path):
        fg = tmp_path / "profile.collapsed"
        tr = tmp_path / "profile.trace.json"
        assert main(["profile", "unet_small", "--batch", "1", "--hw", "16",
                     "--repeats", "1", "--flamegraph", str(fg),
                     "--trace", str(tr)]) == 0
        lines = fg.read_text().splitlines()
        assert lines
        # collapsed-stack format: "frame;frame;... <self_us>"
        assert all(ln.rsplit(" ", 1)[1].isdigit() for ln in lines)
        assert any(ln.startswith("repro;inference;") for ln in lines)
        assert "traceEvents" in json.loads(tr.read_text())


class TestServeSLOCLI:
    def test_loadgen_slo_pass(self, capsys):
        assert main(["loadgen", "unet_small", "--batch", "2", "--hw", "16",
                     "--requests", "4", "--concurrency", "2",
                     "--slo", "availability:0.5", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["slo_ok"] is True
        (status,) = doc["slo"]
        assert status["name"] == "availability_50"
        assert status["healthy"] is True and status["good"] == 4

    def test_loadgen_slo_violation_exits_nonzero(self, capsys):
        # a 1 us latency objective is unmeetable: every completion burns
        # budget, so the run must fail with the violation spelled out
        assert main(["loadgen", "unet_small", "--batch", "2", "--hw", "16",
                     "--requests", "4", "--concurrency", "2",
                     "--slo", "latency:0.001:0.99"]) == 1
        out = capsys.readouterr().out
        assert "VIOLATED" in out and "SLO VIOLATED" in out
        assert "latency_0.001ms_99" in out

    def test_loadgen_text_summary_lists_objectives(self, capsys):
        assert main(["loadgen", "unet_small", "--batch", "2", "--hw", "16",
                     "--requests", "4", "--concurrency", "2",
                     "--slo", "availability:0.9",
                     "--slo", "latency:60000:0.9"]) == 0
        out = capsys.readouterr().out
        assert "slo [ok] availability_90" in out
        assert "burn rate" in out

    def test_serve_trace_flag_writes_request_waterfall(self, tmp_path):
        # loadgen shares the serve pipeline; its --trace must carry the
        # per-request async waterfall and the fan-in flow arrows
        out = tmp_path / "serve.trace.json"
        assert main(["loadgen", "unet_small", "--batch", "2", "--hw", "16",
                     "--requests", "4", "--concurrency", "2",
                     "--trace", str(out)]) == 0
        events = json.loads(out.read_text())["traceEvents"]
        phases = {e["ph"] for e in events}
        assert {"b", "e", "s", "f"} <= phases
        lanes = {e["name"] for e in events if e["ph"] == "b"}
        assert {"request", "queue_wait", "execute"} <= lanes
        labels = {e["args"]["name"] for e in events
                  if e["ph"] == "M" and e["name"] == "thread_name"}
        assert "worker-0" in labels
