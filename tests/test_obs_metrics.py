"""MetricsRegistry histograms + thread safety."""

import threading

import pytest

from repro.obs import Histogram, MetricsRegistry


class TestHistogram:
    def test_exact_stats_below_reservoir_bound(self):
        h = Histogram()
        for v in [1.0, 2.0, 3.0, 4.0]:
            h.observe(v)
        assert h.count == 4
        assert h.mean == pytest.approx(2.5)
        assert h.min == 1.0 and h.max == 4.0
        assert h.quantile(0.0) == 1.0
        assert h.quantile(1.0) == 4.0
        assert h.quantile(0.5) == pytest.approx(2.5)

    def test_quantile_interpolates(self):
        h = Histogram()
        for v in range(101):  # 0..100
            h.observe(float(v))
        assert h.quantile(0.95) == pytest.approx(95.0)
        assert h.quantile(0.99) == pytest.approx(99.0)

    def test_reservoir_bounds_memory(self):
        h = Histogram(max_samples=64)
        for v in range(10_000):
            h.observe(float(v))
        assert h.count == 10_000
        assert len(h._samples) == 64
        assert h.min == 0.0 and h.max == 9999.0
        # the reservoir is a uniform sample: the median estimate must
        # land well inside the range
        assert 1000 < h.quantile(0.5) < 9000

    def test_empty_histogram(self):
        h = Histogram()
        assert h.quantile(0.5) == 0.0
        assert h.mean == 0.0
        # empty snapshot carries the full key set, all zero — scrapers
        # and the Prometheus renderer never see a shape change
        snap = h.snapshot()
        assert set(snap) == {"count", "sum", "mean", "min", "max",
                             "p50", "p95", "p99"}
        assert all(v == 0.0 for v in snap.values())

    def test_single_sample_histogram(self):
        h = Histogram()
        h.observe(7.0)
        snap = h.snapshot()
        assert snap["count"] == 1 and snap["sum"] == 7.0
        # every quantile of a single-sample series is that sample
        assert snap["p50"] == snap["p95"] == snap["p99"] == 7.0
        assert snap["min"] == snap["max"] == 7.0

    def test_bad_args_rejected(self):
        with pytest.raises(ValueError, match="max_samples"):
            Histogram(max_samples=0)
        with pytest.raises(ValueError, match="quantile"):
            Histogram().quantile(1.5)

    def test_snapshot_shape(self):
        h = Histogram()
        h.observe(10.0)
        snap = h.snapshot()
        assert set(snap) == {"count", "sum", "mean", "min", "max",
                             "p50", "p95", "p99"}

    def test_fraction_below(self):
        h = Histogram()
        for v in range(1, 11):  # 1..10
            h.observe(float(v))
        assert h.fraction_below(10.0) == 1.0  # inclusive threshold
        assert h.fraction_below(5.0) == pytest.approx(0.5)
        assert h.fraction_below(0.5) == 0.0

    def test_fraction_below_empty_is_vacuously_one(self):
        assert Histogram().fraction_below(1.0) == 1.0


class TestRegistryHistograms:
    def test_observe_creates_and_accumulates(self):
        m = MetricsRegistry()
        m.observe("latency_ms", 5.0)
        m.observe("latency_ms", 15.0)
        q = m.quantiles("latency_ms")
        assert q["count"] == 2 and q["p50"] == pytest.approx(10.0)

    def test_quantiles_of_unknown_histogram(self):
        q = MetricsRegistry().quantiles("nope")
        assert q["count"] == 0.0 and q["p99"] == 0.0
        assert set(q) == {"count", "sum", "mean", "min", "max",
                          "p50", "p95", "p99"}

    def test_export_groups_by_kind(self):
        m = MetricsRegistry()
        m.inc("runs")
        m.gauge("peak", 7)
        m.observe("lat", 3.0)
        counters, gauges, histograms = m.export()
        assert counters == {"runs": 1.0}
        assert gauges == {"peak": 7.0}
        assert histograms["lat"]["count"] == 1

    def test_snapshot_flattens_histograms_sorted(self):
        m = MetricsRegistry()
        m.inc("runs")
        m.gauge("peak", 7)
        m.observe("lat", 3.0)
        snap = m.snapshot()
        assert snap["runs"] == 1 and snap["peak"] == 7
        assert snap["lat.count"] == 1 and snap["lat.p99"] == 3.0
        assert list(snap) == sorted(snap)

    def test_clear_drops_histograms(self):
        m = MetricsRegistry()
        m.observe("lat", 1.0)
        m.clear()
        assert m.snapshot() == {}


class TestThreadSafety:
    def test_concurrent_increments_do_not_tear(self):
        m = MetricsRegistry()
        per_thread, threads = 2_000, 8

        def hammer():
            for _ in range(per_thread):
                m.inc("hits")
                m.observe("lat", 1.0)

        workers = [threading.Thread(target=hammer) for _ in range(threads)]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        assert m.get("hits") == per_thread * threads
        assert m.quantiles("lat")["count"] == per_thread * threads

    def test_concurrent_observe_with_concurrent_readers(self):
        """The serving workers observe() while the metrics endpoint
        snapshots — reservoir state must never tear or lose counts."""
        m = MetricsRegistry()
        per_thread, writers = 1_000, 6
        stop = threading.Event()
        snapshots: list[dict] = []

        def write(worker: int):
            for i in range(per_thread):
                m.observe("serve.latency_ms", float(worker * per_thread + i))

        def read():
            while not stop.is_set():
                snap = m.snapshot()
                # counts only grow, quantiles stay within observed range
                if snap:
                    assert 0 <= snap["serve.latency_ms.count"] \
                        <= per_thread * writers
                    assert (snap["serve.latency_ms.min"]
                            <= snap["serve.latency_ms.p50"]
                            <= snap["serve.latency_ms.max"])
                snapshots.append(snap)

        threads = [threading.Thread(target=write, args=(w,))
                   for w in range(writers)]
        readers = [threading.Thread(target=read) for _ in range(2)]
        for t in readers + threads:
            t.start()
        for t in threads:
            t.join()
        stop.set()
        for t in readers:
            t.join()
        final = m.quantiles("serve.latency_ms")
        assert final["count"] == per_thread * writers
        assert final["min"] == 0.0
        assert final["max"] == per_thread * writers - 1
        assert snapshots, "readers must have run concurrently"
