"""MetricsRegistry histograms, merge semantics + thread safety."""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import Histogram, MetricsRegistry, MetricsScraper, TimeSeriesStore


class TestHistogram:
    def test_exact_stats_below_reservoir_bound(self):
        h = Histogram()
        for v in [1.0, 2.0, 3.0, 4.0]:
            h.observe(v)
        assert h.count == 4
        assert h.mean == pytest.approx(2.5)
        assert h.min == 1.0 and h.max == 4.0
        assert h.quantile(0.0) == 1.0
        assert h.quantile(1.0) == 4.0
        assert h.quantile(0.5) == pytest.approx(2.5)

    def test_quantile_interpolates(self):
        h = Histogram()
        for v in range(101):  # 0..100
            h.observe(float(v))
        assert h.quantile(0.95) == pytest.approx(95.0)
        assert h.quantile(0.99) == pytest.approx(99.0)

    def test_reservoir_bounds_memory(self):
        h = Histogram(max_samples=64)
        for v in range(10_000):
            h.observe(float(v))
        assert h.count == 10_000
        assert len(h._samples) == 64
        assert h.min == 0.0 and h.max == 9999.0
        # the reservoir is a uniform sample: the median estimate must
        # land well inside the range
        assert 1000 < h.quantile(0.5) < 9000

    def test_empty_histogram(self):
        h = Histogram()
        assert h.quantile(0.5) == 0.0
        assert h.mean == 0.0
        # empty snapshot carries the full key set, all zero — scrapers
        # and the Prometheus renderer never see a shape change
        snap = h.snapshot()
        assert set(snap) == {"count", "sum", "mean", "min", "max",
                             "p50", "p95", "p99"}
        assert all(v == 0.0 for v in snap.values())

    def test_single_sample_histogram(self):
        h = Histogram()
        h.observe(7.0)
        snap = h.snapshot()
        assert snap["count"] == 1 and snap["sum"] == 7.0
        # every quantile of a single-sample series is that sample
        assert snap["p50"] == snap["p95"] == snap["p99"] == 7.0
        assert snap["min"] == snap["max"] == 7.0

    def test_bad_args_rejected(self):
        with pytest.raises(ValueError, match="max_samples"):
            Histogram(max_samples=0)
        with pytest.raises(ValueError, match="quantile"):
            Histogram().quantile(1.5)

    def test_snapshot_shape(self):
        h = Histogram()
        h.observe(10.0)
        snap = h.snapshot()
        assert set(snap) == {"count", "sum", "mean", "min", "max",
                             "p50", "p95", "p99"}

    def test_fraction_below(self):
        h = Histogram()
        for v in range(1, 11):  # 1..10
            h.observe(float(v))
        assert h.fraction_below(10.0) == 1.0  # inclusive threshold
        assert h.fraction_below(5.0) == pytest.approx(0.5)
        assert h.fraction_below(0.5) == 0.0

    def test_fraction_below_empty_is_vacuously_one(self):
        assert Histogram().fraction_below(1.0) == 1.0


class TestRegistryHistograms:
    def test_observe_creates_and_accumulates(self):
        m = MetricsRegistry()
        m.observe("latency_ms", 5.0)
        m.observe("latency_ms", 15.0)
        q = m.quantiles("latency_ms")
        assert q["count"] == 2 and q["p50"] == pytest.approx(10.0)

    def test_quantiles_of_unknown_histogram(self):
        q = MetricsRegistry().quantiles("nope")
        assert q["count"] == 0.0 and q["p99"] == 0.0
        assert set(q) == {"count", "sum", "mean", "min", "max",
                          "p50", "p95", "p99"}

    def test_export_groups_by_kind(self):
        m = MetricsRegistry()
        m.inc("runs")
        m.gauge("peak", 7)
        m.observe("lat", 3.0)
        counters, gauges, histograms = m.export()
        assert counters == {"runs": 1.0}
        assert gauges == {"peak": 7.0}
        assert histograms["lat"]["count"] == 1

    def test_snapshot_flattens_histograms_sorted(self):
        m = MetricsRegistry()
        m.inc("runs")
        m.gauge("peak", 7)
        m.observe("lat", 3.0)
        snap = m.snapshot()
        assert snap["runs"] == 1 and snap["peak"] == 7
        assert snap["lat.count"] == 1 and snap["lat.p99"] == 3.0
        assert list(snap) == sorted(snap)

    def test_clear_drops_histograms(self):
        m = MetricsRegistry()
        m.observe("lat", 1.0)
        m.clear()
        assert m.snapshot() == {}


class TestHistogramMerge:
    def test_exact_stats_add(self):
        a, b = Histogram(), Histogram()
        for v in (1.0, 2.0):
            a.observe(v)
        for v in (10.0, 20.0):
            b.observe(v)
        a.merge(b)
        assert a.count == 4
        assert a.total == pytest.approx(33.0)
        assert a.min == 1.0 and a.max == 20.0
        # the donor is only read, never mutated
        assert b.count == 2 and b.min == 10.0

    def test_merge_empty_is_noop(self):
        a = Histogram()
        a.observe(5.0)
        before = a.snapshot()
        a.merge(Histogram())
        assert a.snapshot() == before

    def test_merge_into_empty_copies(self):
        a, b = Histogram(), Histogram()
        for v in (1.0, 2.0, 3.0):
            b.observe(v)
        a.merge(b)
        assert a.snapshot() == b.snapshot()

    def test_self_merge_rejected(self):
        h = Histogram()
        with pytest.raises(ValueError, match="itself"):
            h.merge(h)

    def test_copy_is_independent(self):
        a = Histogram()
        a.observe(1.0)
        c = a.copy()
        c.observe(99.0)
        assert a.count == 1 and a.max == 1.0
        assert c.count == 2 and c.max == 99.0

    def test_overfull_merge_downsamples_proportionally(self):
        a, b = Histogram(max_samples=64), Histogram(max_samples=64)
        for v in range(1000):
            a.observe(float(v))        # low half
        for v in range(1000, 2000):
            b.observe(float(v))        # high half
        a.merge(b)
        assert a.count == 2000
        assert len(a._samples) <= 64
        assert a.min == 0.0 and a.max == 1999.0
        # equal counts → the reservoir keeps both halves represented
        assert any(v < 1000 for v in a._samples)
        assert any(v >= 1000 for v in a._samples)

    @settings(max_examples=30, deadline=None)
    @given(left=st.lists(st.floats(-1e6, 1e6), max_size=200),
           right=st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=200))
    def test_merge_conserves_count_sum_and_bounds(self, left, right):
        a, b = Histogram(max_samples=128), Histogram(max_samples=128)
        for v in left:
            a.observe(v)
        for v in right:
            b.observe(v)
        a.merge(b)
        combined = left + right
        assert a.count == len(combined)
        assert a.total == pytest.approx(sum(combined))
        assert a.min == min(combined) and a.max == max(combined)
        # any quantile of the merged reservoir stays inside the true
        # combined range
        for q in (0.0, 0.5, 0.95, 1.0):
            assert a.min <= a.quantile(q) <= a.max


class TestRegistryMerge:
    def _replica(self, completed: int, lat: float) -> MetricsRegistry:
        m = MetricsRegistry()
        m.inc("serve.completed", completed)
        m.gauge("serve.queue_depth", 2)
        m.observe("serve.latency_ms", lat)
        return m

    def test_unlabeled_merge_aggregates(self):
        out = MetricsRegistry()
        out.merge(self._replica(3, 5.0))
        out.merge(self._replica(4, 15.0))
        assert out.get("serve.completed") == 7
        assert out.quantiles("serve.latency_ms")["count"] == 2

    def test_labeled_merge_keeps_aggregate_and_per_replica(self):
        out = MetricsRegistry()
        out.merge(self._replica(3, 5.0), label="replica.0")
        out.merge(self._replica(4, 15.0), label="replica.1")
        snap = out.snapshot()
        # aggregate families
        assert snap["serve.completed"] == 7
        assert snap["serve.latency_ms.count"] == 2
        # labeled families (render as {replica="0"} on /metrics)
        assert snap["serve.completed.replica.0"] == 3
        assert snap["serve.completed.replica.1"] == 4
        assert snap["serve.latency_ms.replica.0.p50"] == 5.0
        assert snap["serve.latency_ms.replica.1.p50"] == 15.0
        # labeled gauges take the labeled name only
        assert snap["serve.queue_depth.replica.0"] == 2

    def test_merge_does_not_mutate_source(self):
        source = self._replica(3, 5.0)
        out = MetricsRegistry()
        out.merge(source, label="replica.0")
        out.observe("serve.latency_ms", 99.0)
        out.inc("serve.completed", 10)
        assert source.get("serve.completed") == 3
        assert source.quantiles("serve.latency_ms")["count"] == 1

    def test_self_merge_rejected(self):
        m = MetricsRegistry()
        with pytest.raises(ValueError, match="itself"):
            m.merge(m)

    @settings(max_examples=20, deadline=None)
    @given(counts=st.lists(st.integers(0, 50), min_size=1, max_size=5))
    def test_count_conservation_across_replicas(self, counts):
        out = MetricsRegistry()
        for rid, n in enumerate(counts):
            replica = MetricsRegistry()
            for i in range(n):
                replica.observe("lat", float(i))
                replica.inc("done")
            out.merge(replica, label=f"replica.{rid}")
        snap = out.snapshot()
        total = sum(counts)
        assert snap.get("done", 0.0) == total
        assert snap.get("lat.count", 0.0) == total
        labeled = sum(snap.get(f"done.replica.{rid}", 0.0)
                      for rid in range(len(counts)))
        assert labeled == total


class TestThreadSafety:
    def test_concurrent_increments_do_not_tear(self):
        m = MetricsRegistry()
        per_thread, threads = 2_000, 8

        def hammer():
            for _ in range(per_thread):
                m.inc("hits")
                m.observe("lat", 1.0)

        workers = [threading.Thread(target=hammer) for _ in range(threads)]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        assert m.get("hits") == per_thread * threads
        assert m.quantiles("lat")["count"] == per_thread * threads

    def test_concurrent_observe_with_concurrent_readers(self):
        """The serving workers observe() while the metrics endpoint
        snapshots — reservoir state must never tear or lose counts."""
        m = MetricsRegistry()
        per_thread, writers = 1_000, 6
        stop = threading.Event()
        snapshots: list[dict] = []

        def write(worker: int):
            for i in range(per_thread):
                m.observe("serve.latency_ms", float(worker * per_thread + i))

        def read():
            while not stop.is_set():
                snap = m.snapshot()
                # counts only grow, quantiles stay within observed range
                if snap:
                    assert 0 <= snap["serve.latency_ms.count"] \
                        <= per_thread * writers
                    assert (snap["serve.latency_ms.min"]
                            <= snap["serve.latency_ms.p50"]
                            <= snap["serve.latency_ms.max"])
                snapshots.append(snap)

        threads = [threading.Thread(target=write, args=(w,))
                   for w in range(writers)]
        readers = [threading.Thread(target=read) for _ in range(2)]
        for t in readers + threads:
            t.start()
        for t in threads:
            t.join()
        stop.set()
        for t in readers:
            t.join()
        final = m.quantiles("serve.latency_ms")
        assert final["count"] == per_thread * writers
        assert final["min"] == 0.0
        assert final["max"] == per_thread * writers - 1
        assert snapshots, "readers must have run concurrently"

    def test_scraper_snapshots_while_workers_observe(self):
        """The fleet-view path: a MetricsScraper thread snapshotting
        the registry into a TimeSeriesStore while worker threads
        observe()/gauge()/inc() — no tearing, no lost counts, and the
        store only ever sees monotone counter values."""
        m = MetricsRegistry()
        store = TimeSeriesStore(4096)
        per_thread, writers = 1_000, 4

        def write(worker: int):
            for i in range(per_thread):
                m.inc("serve.completed")
                m.gauge("serve.queue_depth", i % 7)
                m.observe("serve.latency_ms", float(i))

        threads = [threading.Thread(target=write, args=(w,))
                   for w in range(writers)]
        with MetricsScraper(m.snapshot, store, interval_s=0.001) as scraper:
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            scraper.scrape_once()  # deterministic final sample
        assert scraper.errors == 0
        completed = [v for _, v in store.series("serve.completed")]
        assert completed[-1] == per_thread * writers
        # a counter snapshot can never go backwards
        assert all(a <= b for a, b in zip(completed, completed[1:]))
        for _, p50 in store.series("serve.latency_ms.p50"):
            assert 0.0 <= p50 <= per_thread - 1

    def test_concurrent_labeled_merges(self):
        """FleetView.merged_registry runs per scrape while replicas
        keep writing — merging under load must stay consistent."""
        replicas = [MetricsRegistry() for _ in range(3)]
        stop = threading.Event()

        def write(m: MetricsRegistry):
            while not stop.is_set():
                m.inc("serve.completed")
                m.observe("serve.latency_ms", 1.0)

        writers = [threading.Thread(target=write, args=(m,))
                   for m in replicas]
        for w in writers:
            w.start()
        try:
            for _ in range(25):
                out = MetricsRegistry()
                for rid, m in enumerate(replicas):
                    out.merge(m, label=f"replica.{rid}")
                snap = out.snapshot()
                labeled = sum(snap.get(f"serve.completed.replica.{r}", 0.0)
                              for r in range(3))
                # the aggregate equals the labeled sum within one scrape
                assert snap.get("serve.completed", 0.0) == labeled
        finally:
            stop.set()
            for w in writers:
                w.join()
