"""DOT export and report emitters."""

import csv
import io

import numpy as np
import pytest

from repro.core import optimize
from repro.decompose import DecompositionConfig, decompose_graph
from repro.ir import save_dot, to_dot
from repro.obs import MetricsRegistry
from repro.runtime import (TimingResult, compare_markdown, execute,
                           metrics_markdown, op_breakdown, profile_markdown,
                           timeline_csv, timing_markdown)
from repro.runtime.memory_profile import MemoryEvent, MemoryProfile

from _graph_fixtures import make_chain_graph, make_skip_graph, random_input


class TestDot:
    def test_contains_every_node_and_edge(self):
        g = make_skip_graph()
        dot = to_dot(g)
        for node in g.nodes:
            assert f'"{node.name}"' in dot
        assert dot.count("->") >= sum(len(n.inputs) for n in g.nodes)
        assert dot.startswith("digraph")

    def test_roles_colored(self):
        g = decompose_graph(make_chain_graph(), DecompositionConfig(ratio=0.25))
        dot = to_dot(g)
        assert "fconv" in dot and "lconv" in dot

    def test_fused_nodes_annotated(self):
        g = decompose_graph(make_chain_graph(), DecompositionConfig(ratio=0.25))
        opt, _ = optimize(g)
        dot = to_dot(opt)
        assert "fused_block" in dot

    def test_save(self, tmp_path):
        path = tmp_path / "g.dot"
        save_dot(make_chain_graph(), path)
        assert path.read_text().startswith("digraph")


class TestReports:
    def _profile(self, factory=make_skip_graph):
        g = factory()
        return execute(g, random_input(g)).memory

    def test_timeline_csv_parses(self):
        profile = self._profile()
        rows = list(csv.DictReader(io.StringIO(timeline_csv(profile))))
        assert len(rows) == len(profile.events)
        assert int(rows[0]["live_bytes"]) > 0

    def test_profile_markdown_mentions_peak(self):
        profile = self._profile()
        md = profile_markdown(profile, title="T")
        assert "## T" in md and "peak internal" in md
        peak = profile.peak_event()
        assert peak.node_name in md

    def test_compare_markdown(self):
        a = self._profile(make_chain_graph)
        b = self._profile(make_skip_graph)
        md = compare_markdown({"one": a, "two": b})
        assert md.count("|") > 8
        assert "one" in md and "two" in md

    def test_op_breakdown_sorted(self):
        profile = self._profile()
        breakdown = op_breakdown(profile)
        values = list(breakdown.values())
        assert values == sorted(values, reverse=True)
        assert "concat" in breakdown

    def test_op_breakdown_ranks_by_total_bytes(self):
        # fused op B peaks higher once scratch is charged, despite the
        # smaller live set — total_bytes ranking must put it first
        profile = MemoryProfile(events=[
            MemoryEvent(0, "a", "conv2d", live_bytes=100, scratch_bytes=0),
            MemoryEvent(1, "b", "fused_block", live_bytes=60,
                        scratch_bytes=200),
        ], peak_internal_bytes=100)
        breakdown = op_breakdown(profile)
        assert list(breakdown) == ["fused_block", "conv2d"]
        assert breakdown["fused_block"] == 260
        assert breakdown["conv2d"] == 100

    def test_metrics_markdown_table(self):
        registry = MetricsRegistry()
        registry.inc("executor.runs", 2)
        registry.gauge("executor.peak_internal_bytes", 3 * 1024 * 1024)
        md = metrics_markdown(registry, title="M")
        assert "## M" in md
        assert "`executor.runs` | 2" in md
        assert "3.000" in md  # bytes metrics get a MiB column


class TestTimingPercentiles:
    def test_percentile_interpolates(self):
        timing = TimingResult(seconds_per_run=[i / 1000 for i in range(101)])
        assert timing.percentile(0) == 0.0
        assert timing.percentile(100) == pytest.approx(0.1)
        assert timing.p50 == pytest.approx(0.050)
        assert timing.p95 == pytest.approx(0.095)
        assert timing.p99 == pytest.approx(0.099)

    def test_single_run_percentiles_collapse(self):
        timing = TimingResult(seconds_per_run=[0.25])
        assert timing.p50 == timing.p95 == timing.p99 == 0.25

    def test_bad_percentile_rejected(self):
        timing = TimingResult(seconds_per_run=[0.1])
        with pytest.raises(ValueError, match="percentile"):
            timing.percentile(101)
        with pytest.raises(ValueError, match="percentile"):
            timing.percentile(-1)

    def test_percentiles_ordered(self):
        times = list(np.random.default_rng(0).uniform(0.001, 0.1, size=40))
        timing = TimingResult(seconds_per_run=times)
        assert min(times) <= timing.p50 <= timing.p95 <= timing.p99 <= max(times)

    def test_timing_markdown_table(self):
        timing = TimingResult(seconds_per_run=[0.010, 0.020, 0.030])
        md = timing_markdown(timing, title="T")
        assert "## T" in md and "runs: 3" in md
        for stat in ("best", "median", "mean", "p50", "p95", "p99"):
            assert f"| {stat} |" in md
        assert "| best | 10.000 |" in md
        assert "| p50 | 20.000 |" in md
