"""repro.tune.tuner: search drivers, cache integration, compiler hook."""

import numpy as np
import pytest

from repro.core import estimate_peak_internal, optimize
from repro.decompose import DecompositionConfig, decompose_graph
from repro.obs import Tracer, use_tracer
from repro.runtime import InferenceSession
from repro.tune import (TuneCache, TuneConfig, apply_overrides,
                        cached_overrides, collect_sites, load_cached_plan,
                        tune_graph, tune_model)

from _graph_fixtures import make_chain_graph, random_input

FAST = TuneConfig(budget=2, repeats=1)


def optimized_chain(**kwargs):
    graph = make_chain_graph(**kwargs)
    optimized, _report = optimize(
        decompose_graph(graph, DecompositionConfig(seed=0)))
    return graph, optimized


class TestTuneGraph:
    def test_covers_every_site(self):
        _graph, optimized = optimized_chain()
        result = tune_graph(optimized, FAST)
        assert {s.node for s in result.sites} == \
            {n.name for n in collect_sites(optimized)}
        assert result.total_trials >= len(result.sites)

    def test_does_not_modify_graph(self):
        _graph, optimized = optimized_chain()
        before = {n.name: (n.attrs.get("block_size"),
                           n.attrs.get("spatial_tile"))
                  for n in collect_sites(optimized)}
        tune_graph(optimized, FAST)
        after = {n.name: (n.attrs.get("block_size"),
                          n.attrs.get("spatial_tile"))
                 for n in collect_sites(optimized)}
        assert before == after

    def test_no_sites_is_a_noop(self):
        graph = make_chain_graph()  # unfused: no fused_block nodes
        result = tune_graph(graph, FAST)
        assert result.sites == []

    def test_global_mode_shares_one_choice(self):
        _graph, optimized = optimized_chain()
        result = tune_graph(optimized, TuneConfig(mode="global", budget=2,
                                                  repeats=1))
        tiles = {s.spatial_tile for s in result.sites}
        assert len(tiles) == 1

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            TuneConfig(mode="psychic")
        with pytest.raises(ValueError):
            TuneConfig(budget=0)


class TestApplyOverrides:
    def test_patches_matching_sites(self):
        _graph, optimized = optimized_chain()
        sites = collect_sites(optimized)
        key = sites[0].attrs["fused_from"][0]
        assert apply_overrides(optimized, {key: (2, 0)}) == 1
        assert sites[0].attrs["block_size"] == 2

    def test_clamps_oversized_block(self):
        _graph, optimized = optimized_chain()
        sites = collect_sites(optimized)
        key = sites[0].attrs["fused_from"][0]
        apply_overrides(optimized, {key: (10 ** 6, 0)})
        assert sites[0].attrs["block_size"] == sites[0].params["w1"].shape[0]

    def test_unknown_keys_ignored(self):
        _graph, optimized = optimized_chain()
        assert apply_overrides(optimized, {"nope": (4, 0)}) == 0

    def test_tiles_do_not_change_outputs(self):
        graph, optimized = optimized_chain()
        x = random_input(optimized)
        want = InferenceSession(optimized).run(x).outputs
        overrides = {n.attrs["fused_from"][0]: (3, 8)
                     for n in collect_sites(optimized)}
        work = optimized.clone()
        assert apply_overrides(work, overrides) == len(overrides)
        got = InferenceSession(work).run(x).outputs
        for name in want:
            np.testing.assert_allclose(got[name], want[name],
                                       rtol=1e-4, atol=1e-5)


class TestTuneModel:
    def test_miss_then_hit(self, tmp_path):
        cache = TuneCache(tmp_path)
        graph = make_chain_graph()
        plan1, rec1, hit1 = tune_model(graph, cache=cache, config=FAST)
        assert not hit1
        assert cache.record_path(rec1.key).is_file()
        assert cache.plan_path(rec1.key).is_file()
        plan2, rec2, hit2 = tune_model(graph, cache=cache, config=FAST)
        assert hit2 and rec2.key == rec1.key
        assert [n.name for n in plan2.nodes] == [n.name for n in plan1.nodes]

    def test_graph_edit_invalidates(self, tmp_path):
        cache = TuneCache(tmp_path)
        graph = make_chain_graph()
        tune_model(graph, cache=cache, config=FAST)
        edited = graph.clone()
        node = next(n for n in edited.nodes if "weight" in n.params)
        node.params["weight"] = node.params["weight"] * np.float32(1.01)
        _plan, _rec, hit = tune_model(edited, cache=cache, config=FAST)
        assert not hit

    def test_force_retunes(self, tmp_path):
        cache = TuneCache(tmp_path)
        graph = make_chain_graph()
        tune_model(graph, cache=cache, config=FAST)
        _plan, _rec, hit = tune_model(graph, cache=cache, config=FAST,
                                      force=True)
        assert not hit

    def test_plan_matches_default_compile_numerically(self, tmp_path):
        cache = TuneCache(tmp_path)
        graph = make_chain_graph()
        plan, _rec, _hit = tune_model(graph, cache=cache, config=FAST)
        reference, _report = optimize(
            decompose_graph(graph, DecompositionConfig(seed=0)))
        x = random_input(reference)
        want = InferenceSession(reference).run(x).outputs
        got = InferenceSession(plan).run(x).outputs
        for name in want:
            np.testing.assert_allclose(got[name], want[name],
                                       rtol=1e-4, atol=1e-5)

    def test_peak_internal_bytes_never_regress(self, tmp_path):
        cache = TuneCache(tmp_path)
        graph = make_chain_graph()
        _plan, rec, _hit = tune_model(graph, cache=cache, config=FAST)
        reference, _report = optimize(
            decompose_graph(graph, DecompositionConfig(seed=0)))
        assert rec.peak_internal_bytes == estimate_peak_internal(reference)

    def test_ab_guard_falls_back_when_tuned_loses(self, tmp_path, monkeypatch):
        from repro.kernels import DEFAULT_BLOCK_SIZE
        from repro.tune import tuner as tuner_mod
        # whole-graph timings: default fast, tuned slow
        seconds = iter([0.001, 0.1])
        monkeypatch.setattr(tuner_mod, "_graph_seconds",
                            lambda *a, **k: next(seconds))
        cache = TuneCache(tmp_path)
        _plan, rec, _hit = tune_model(make_chain_graph(), cache=cache,
                                      config=FAST)
        assert rec.fell_back_to_default
        assert all(s.block_size == DEFAULT_BLOCK_SIZE and s.spatial_tile == 0
                   for s in rec.sites)

    def test_emits_tune_decisions(self, tmp_path):
        cache = TuneCache(tmp_path)
        graph = make_chain_graph()
        tracer = Tracer()
        with use_tracer(tracer):
            tune_model(graph, cache=cache, config=FAST)
            tune_model(graph, cache=cache, config=FAST)
        verdicts = {d.verdict for d in tracer.decisions
                    if d.pass_name == "tune"}
        assert {"cache_miss", "trial", "select",
                "cache_store", "cache_hit"} <= verdicts
        assert any(s.name == "tune.site" for s in tracer.spans)


class TestLookupHooks:
    def test_cached_overrides_miss_is_none(self, tmp_path):
        assert cached_overrides(make_chain_graph(),
                                cache=TuneCache(tmp_path),
                                config=FAST) is None

    def test_cached_overrides_hit(self, tmp_path):
        cache = TuneCache(tmp_path)
        graph = make_chain_graph()
        _plan, rec, _hit = tune_model(graph, cache=cache, config=FAST)
        overrides = cached_overrides(graph, cache=cache, config=FAST)
        if rec.fell_back_to_default:
            assert overrides == {}
        else:
            assert overrides == rec.overrides

    def test_load_cached_plan(self, tmp_path):
        cache = TuneCache(tmp_path)
        graph = make_chain_graph()
        assert load_cached_plan(graph, cache=cache, config=FAST) is None
        plan, rec, _hit = tune_model(graph, cache=cache, config=FAST)
        cached = load_cached_plan(graph, cache=cache, config=FAST)
        assert cached is not None
        got_plan, got_rec = cached
        assert got_rec.key == rec.key
        assert [n.name for n in got_plan.nodes] == [n.name for n in plan.nodes]


class TestCompilerHook:
    def test_optimize_applies_tuner_overrides(self):
        graph = make_chain_graph()
        decomposed = decompose_graph(graph, DecompositionConfig(seed=0))
        plain, _report = optimize(decomposed)
        overrides = {n.attrs["fused_from"][0]: (2, 0)
                     for n in collect_sites(plain)}
        tracer = Tracer()
        with use_tracer(tracer):
            tuned, _report = optimize(decomposed, tuner=lambda g: overrides)
        assert all(n.attrs["block_size"] == 2 for n in collect_sites(tuned))
        assert any(d.verdict == "tuned_fusion" for d in tracer.decisions)

    def test_none_and_empty_tuner_results_are_noops(self):
        graph = make_chain_graph()
        decomposed = decompose_graph(graph, DecompositionConfig(seed=0))
        plain, _report = optimize(decomposed)
        for result in (None, {}):
            tuned, _report = optimize(decomposed, tuner=lambda g: result)
            assert {(n.name, n.attrs["block_size"])
                    for n in collect_sites(tuned)} == \
                {(n.name, n.attrs["block_size"])
                 for n in collect_sites(plain)}


class TestHarnessHook:
    def test_use_tuned_fusion_patches_variants(self):
        from repro.bench import build_variants, use_tuned_fusion

        def fused_tiles(vs):
            return {n.name: n.attrs["block_size"]
                    for n in vs.graphs["fusion"].nodes
                    if n.op.startswith("fused")}

        untuned = build_variants("alexnet", batch=1, hw=16)
        keys = [n.attrs["fused_from"][0]
                for n in untuned.graphs["fusion"].nodes
                if n.op.startswith("fused")]
        assert keys
        calls = []

        def lookup(original, config):
            calls.append(original.name)
            return {k: (5, 0) for k in keys}

        with use_tuned_fusion(lookup):
            tuned = build_variants("alexnet", batch=1, hw=16)
        assert calls
        for node in tuned.graphs["fusion"].nodes:
            if node.op.startswith("fused"):
                assert node.attrs["block_size"] == \
                    min(5, node.params["w1"].shape[0])
        # memo cache cleared on exit: untuned builds come back untouched
        after = build_variants("alexnet", batch=1, hw=16)
        assert fused_tiles(after) == fused_tiles(untuned)

    def test_lookup_miss_builds_untuned(self):
        from repro.bench import build_variants, use_tuned_fusion
        untuned = build_variants("alexnet", batch=1, hw=16)
        with use_tuned_fusion(lambda original, config: None):
            vs = build_variants("alexnet", batch=1, hw=16)
        assert {n.name: n.attrs.get("block_size")
                for n in vs.graphs["fusion"].nodes} == \
            {n.name: n.attrs.get("block_size")
             for n in untuned.graphs["fusion"].nodes}
