"""Anomaly detectors + monitor over a synthetic time-series store."""

from repro.obs import (AnomalyMonitor, DropSpikeDetector,
                       LatencyRegressionDetector, MemoryDriftDetector,
                       MetricsRegistry, ReplicaOutlierDetector,
                       TimeSeriesStore, default_detectors)
from repro.obs.anomaly import replica_series

from test_obs_timeseries import FakeClock


def _store(clock=None) -> TimeSeriesStore:
    return TimeSeriesStore(256, clock=clock or FakeClock())


class TestReplicaSeries:
    def test_both_naming_shapes_resolve(self):
        store = _store()
        # router-side flattened histogram shape
        store.record("fleet.attempt_ms.replica.0.p95", 1.0)
        # replica-suffixed server stat shape
        store.record("serve.latency_ms.p95.replica.1", 1.0)
        assert replica_series(store, "fleet.attempt_ms", "p95") == {
            "0": "fleet.attempt_ms.replica.0.p95"}
        assert replica_series(store, "serve.latency_ms", "p95") == {
            "1": "serve.latency_ms.p95.replica.1"}

    def test_other_stats_not_matched(self):
        store = _store()
        store.record("fleet.attempt_ms.replica.0.p50", 1.0)
        assert replica_series(store, "fleet.attempt_ms", "p95") == {}


class TestLatencyRegression:
    def _fill(self, store, clock, baseline_ms, recent_ms):
        # 30 s of baseline then 5 s of recent, one sample per second
        for i in range(30):
            store.record("serve.latency_ms.p95", baseline_ms, t=float(i))
        for i in range(30, 36):
            store.record("serve.latency_ms.p95", recent_ms, t=float(i))
        clock.t = 35.0

    def test_regression_fires(self):
        clock = FakeClock()
        store = _store(clock)
        self._fill(store, clock, baseline_ms=10.0, recent_ms=50.0)
        findings = LatencyRegressionDetector().check(store)
        assert len(findings) == 1
        f = findings[0]
        assert f.kind == "latency-regression"
        assert f.subject == "serve.latency_ms.p95"
        assert f.value > f.threshold

    def test_steady_latency_is_quiet(self):
        clock = FakeClock()
        store = _store(clock)
        self._fill(store, clock, baseline_ms=10.0, recent_ms=11.0)
        assert LatencyRegressionDetector().check(store) == []

    def test_min_ms_floor_suppresses_fast_model_noise(self):
        clock = FakeClock()
        store = _store(clock)
        # 5x regression, but both sides under the 5 ms floor
        self._fill(store, clock, baseline_ms=0.5, recent_ms=2.5)
        assert LatencyRegressionDetector().check(store) == []

    def test_needs_enough_history(self):
        clock = FakeClock()
        store = _store(clock)
        store.record("serve.latency_ms.p95", 100.0, t=0.0)
        store.record("serve.latency_ms.p95", 100.0, t=1.0)
        clock.t = 1.0
        assert LatencyRegressionDetector().check(store) == []


class TestMemoryDrift:
    def test_watermark_breach_is_critical(self):
        store = _store()
        store.record("serve.measured_peak_bytes", 95.0)
        store.record("plan.budget_bytes", 100.0)
        findings = MemoryDriftDetector().check(store)
        assert [f.severity for f in findings] == ["critical"]
        assert findings[0].kind == "memory-drift"

    def test_plan_divergence_is_warning(self):
        store = _store()
        store.record("serve.measured_peak_bytes", 120.0)
        store.record("plan.planned_peak_bytes", 100.0)
        findings = MemoryDriftDetector().check(store)
        assert [f.severity for f in findings] == ["warning"]

    def test_within_plan_is_quiet(self):
        store = _store()
        store.record("serve.measured_peak_bytes", 100.0)
        store.record("plan.planned_peak_bytes", 100.0)
        store.record("plan.budget_bytes", 200.0)
        assert MemoryDriftDetector().check(store) == []

    def test_per_replica_suffix_tracked_separately(self):
        store = _store()
        store.record("serve.measured_peak_bytes.replica.1", 99.0)
        store.record("plan.budget_bytes.replica.1", 100.0)
        findings = MemoryDriftDetector().check(store)
        assert [f.subject for f in findings] == ["replica.1"]


class TestDropSpike:
    def test_burst_fires(self):
        clock = FakeClock()
        store = _store(clock)
        store.record("serve.dropped.reason.overload", 0.0, t=0.0)
        store.record("serve.dropped.reason.overload", 5.0, t=2.0)
        clock.t = 2.0
        findings = DropSpikeDetector().check(store)
        assert len(findings) == 1
        assert findings[0].kind == "drop-spike"
        assert findings[0].value == 5.0

    def test_slow_trickle_is_quiet(self):
        clock = FakeClock()
        store = _store(clock)
        store.record("serve.dropped.reason.deadline", 0.0, t=0.0)
        store.record("serve.dropped.reason.deadline", 2.0, t=2.0)
        clock.t = 2.0
        assert DropSpikeDetector().check(store) == []


class TestReplicaOutlier:
    def test_slow_replica_flagged_against_peer_median(self):
        store = _store()
        store.record("fleet.attempt_ms.replica.0.p95", 150.0)
        store.record("fleet.attempt_ms.replica.1.p95", 10.0)
        store.record("fleet.attempt_ms.replica.2.p95", 12.0)
        findings = ReplicaOutlierDetector().check(store)
        assert [f.subject for f in findings] == ["replica.0"]
        assert findings[0].kind == "replica-outlier"

    def test_two_replica_fleet_judges_against_the_healthy_peer(self):
        # with 2 replicas a self-including median would be dragged up
        # by the sick replica itself and never fire
        store = _store()
        store.record("fleet.attempt_ms.replica.0.p95", 150.0)
        store.record("fleet.attempt_ms.replica.1.p95", 10.0)
        findings = ReplicaOutlierDetector().check(store)
        assert [f.subject for f in findings] == ["replica.0"]

    def test_single_replica_never_fires(self):
        store = _store()
        store.record("fleet.attempt_ms.replica.0.p95", 500.0)
        assert ReplicaOutlierDetector().check(store) == []

    def test_balanced_fleet_is_quiet(self):
        store = _store()
        for rid in range(3):
            store.record(f"fleet.attempt_ms.replica.{rid}.p95", 10.0 + rid)
        assert ReplicaOutlierDetector().check(store) == []

    def test_flagged_once_across_bases(self):
        store = _store()
        store.record("fleet.attempt_ms.replica.0.p95", 150.0)
        store.record("fleet.attempt_ms.replica.1.p95", 10.0)
        store.record("serve.latency_ms.p95.replica.0", 150.0)
        store.record("serve.latency_ms.p95.replica.1", 10.0)
        findings = ReplicaOutlierDetector().check(store)
        assert [f.subject for f in findings] == ["replica.0"]


class TestMonitor:
    def test_counters_and_dedup(self):
        store = _store()
        store.record("fleet.attempt_ms.replica.0.p95", 150.0)
        store.record("fleet.attempt_ms.replica.1.p95", 10.0)
        registry = MetricsRegistry()
        monitor = AnomalyMonitor(store, [ReplicaOutlierDetector()],
                                 registry=registry)
        first = monitor.check()
        second = monitor.check()
        assert len(first) == len(second) == 1
        # same (kind, subject, severity) → counted once, kept once
        assert registry.get("anomaly.kind.replica-outlier") == 1
        assert len(monitor.findings()) == 1
        assert monitor.checks == 2

    def test_detector_exceptions_counted_not_raised(self):
        class Broken:
            def check(self, store):
                raise RuntimeError("detector bug")

        registry = MetricsRegistry()
        monitor = AnomalyMonitor(_store(), [Broken()], registry=registry)
        assert monitor.check() == []
        assert registry.get("anomaly.detector_errors") == 1

    def test_tracer_instant_on_fresh_finding(self):
        from repro.obs import Tracer

        store = _store()
        store.record("fleet.attempt_ms.replica.0.p95", 150.0)
        store.record("fleet.attempt_ms.replica.1.p95", 10.0)
        tracer = Tracer()
        monitor = AnomalyMonitor(store, [ReplicaOutlierDetector()],
                                 tracer=tracer)
        monitor.check()
        monitor.check()  # repeat firing emits no second instant
        anomalies = [i for i in tracer.instants if i.name == "anomaly"]
        assert len(anomalies) == 1
        assert anomalies[0].args["kind"] == "replica-outlier"

    def test_default_detector_set(self):
        kinds = {type(d).__name__ for d in default_detectors()}
        assert kinds == {"LatencyRegressionDetector", "MemoryDriftDetector",
                         "DropSpikeDetector", "ReplicaOutlierDetector"}

    def test_finding_to_dict_is_json_shaped(self):
        store = _store()
        store.record("fleet.attempt_ms.replica.0.p95", 150.0)
        store.record("fleet.attempt_ms.replica.1.p95", 10.0)
        monitor = AnomalyMonitor(store, [ReplicaOutlierDetector()])
        monitor.check()
        doc = monitor.findings()[0].to_dict()
        assert set(doc) == {"kind", "severity", "subject", "message",
                            "value", "threshold", "at"}
