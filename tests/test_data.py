"""Synthetic datasets and metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (classification_batch, dice_score, prediction_agreement,
                        segmentation_batch, topk_accuracy)


class TestClassificationData:
    def test_shapes_and_dtypes(self):
        batch = classification_batch(8, hw=32, num_classes=5, seed=0)
        assert batch.images.shape == (8, 3, 32, 32)
        assert batch.images.dtype == np.float32
        assert batch.labels.shape == (8,)
        assert batch.labels.dtype == np.int64
        assert batch.labels.max() < 5

    def test_deterministic(self):
        a = classification_batch(4, seed=7)
        b = classification_batch(4, seed=7)
        np.testing.assert_array_equal(a.images, b.images)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_class_patterns_are_separable(self):
        # noiseless images of the same class must be identical; different
        # classes must differ — a linear probe could learn this task
        batch = classification_batch(64, hw=16, num_classes=3, seed=1, noise=0.0)
        by_class = {}
        for img, label in zip(batch.images, batch.labels):
            by_class.setdefault(int(label), []).append(img)
        for imgs in by_class.values():
            for other in imgs[1:]:
                np.testing.assert_array_equal(imgs[0], other)
        classes = sorted(by_class)
        assert not np.array_equal(by_class[classes[0]][0], by_class[classes[1]][0])

    def test_bad_args_rejected(self):
        with pytest.raises(ValueError):
            classification_batch(0)
        with pytest.raises(ValueError):
            classification_batch(4, num_classes=1)


class TestSegmentationData:
    def test_shapes(self):
        batch = segmentation_batch(3, hw=48, seed=0)
        assert batch.images.shape == (3, 3, 48, 48)
        assert batch.masks.shape == (3, 1, 48, 48)
        assert set(np.unique(batch.masks)) <= {0.0, 1.0}

    def test_masks_nonempty_and_not_full(self):
        batch = segmentation_batch(5, hw=64, seed=2)
        for mask in batch.masks:
            frac = mask.mean()
            assert 0.01 < frac < 0.9

    def test_blob_is_brighter_than_background(self):
        batch = segmentation_batch(4, hw=64, seed=3, noise=0.0)
        for img, mask in zip(batch.images, batch.masks):
            inside = img[:, mask[0] > 0.5].mean()
            outside = img[:, mask[0] <= 0.5].mean()
            assert inside > outside


class TestMetrics:
    def test_topk_perfect(self):
        logits = np.eye(4)
        labels = np.arange(4)
        assert topk_accuracy(logits, labels, k=1) == 1.0

    def test_topk_k_matters(self):
        logits = np.array([[0.0, 1.0, 2.0]])
        labels = np.array([0])
        assert topk_accuracy(logits, labels, k=1) == 0.0
        assert topk_accuracy(logits, labels, k=3) == 1.0

    def test_topk_shape_validation(self):
        with pytest.raises(ValueError):
            topk_accuracy(np.zeros((2, 3, 4)), np.zeros(2))
        with pytest.raises(ValueError):
            topk_accuracy(np.zeros((2, 3)), np.zeros(3))

    def test_dice_identical_masks(self):
        m = (np.random.default_rng(0).random((2, 1, 8, 8)) > 0.5).astype(float)
        assert dice_score(m, m) == 1.0

    def test_dice_disjoint_masks(self):
        a = np.zeros((1, 1, 4, 4))
        a[..., :2] = 1
        b = np.zeros((1, 1, 4, 4))
        b[..., 2:] = 1
        assert dice_score(a, b) == 0.0

    def test_dice_both_empty_is_one(self):
        z = np.zeros((1, 1, 4, 4))
        assert dice_score(z, z) == 1.0

    def test_dice_shape_mismatch(self):
        with pytest.raises(ValueError):
            dice_score(np.zeros((1, 1, 4, 4)), np.zeros((1, 1, 5, 5)))

    def test_agreement(self):
        a = np.array([[1.0, 0.0], [0.0, 1.0]])
        b = np.array([[2.0, 0.0], [1.0, 0.0]])
        assert prediction_agreement(a, b) == 0.5

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 999), k=st.integers(1, 10))
    def test_property_topk_monotone_in_k(self, seed, k):
        rng = np.random.default_rng(seed)
        logits = rng.normal(size=(16, 10))
        labels = rng.integers(0, 10, size=16)
        acc_k = topk_accuracy(logits, labels, k=k)
        acc_k1 = topk_accuracy(logits, labels, k=k + 1)
        assert acc_k1 >= acc_k
