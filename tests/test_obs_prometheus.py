"""Prometheus text exposition: grammar, values, endpoint round-trip."""

import re

from repro.obs import MetricsRegistry, prometheus_metric_name, prometheus_text
from repro.obs.prometheus import CONTENT_TYPE

#: exposition grammar: a sample line is NAME{labels} VALUE
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})? "
    r"(?P<value>-?(?:\d+\.?\d*(?:e-?\d+)?|[+-]?Inf|NaN))$")


def parse_exposition(text: str) -> dict[tuple[str, str], float]:
    """Parse samples; every non-comment line must match the grammar."""
    samples: dict[tuple[str, str], float] = {}
    for line in text.strip().splitlines():
        if line.startswith("#"):
            assert re.match(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* ",
                            line), line
            continue
        match = _SAMPLE.match(line)
        assert match, f"invalid exposition line: {line!r}"
        samples[(match["name"], match["labels"] or "")] = \
            float(match["value"])
    return samples


class TestMetricName:
    def test_dotted_names_flatten_and_namespace(self):
        assert prometheus_metric_name("serve.latency_ms") == \
            "repro_serve_latency_ms"

    def test_invalid_chars_become_underscores(self):
        name = prometheus_metric_name("a-b c/d.e")
        assert re.fullmatch(r"[a-zA-Z_:][a-zA-Z0-9_:]*", name)

    def test_leading_digit_guarded(self):
        name = prometheus_metric_name("9lives", namespace="")
        assert not name[0].isdigit()


class TestExposition:
    def test_counters_gauges_histograms_render(self):
        m = MetricsRegistry()
        m.inc("serve.requests", 3)
        m.gauge("serve.queue_depth", 7)
        for v in (5.0, 15.0, 25.0):
            m.observe("serve.latency_ms", v)
        samples = parse_exposition(prometheus_text(m))
        assert samples[("repro_serve_requests_total", "")] == 3.0
        assert samples[("repro_serve_queue_depth", "")] == 7.0
        assert samples[("repro_serve_latency_ms",
                        '{quantile="0.5"}')] == 15.0
        assert samples[("repro_serve_latency_ms_sum", "")] == 45.0
        assert samples[("repro_serve_latency_ms_count", "")] == 3.0
        assert samples[("repro_serve_latency_ms_min", "")] == 5.0
        assert samples[("repro_serve_latency_ms_max", "")] == 25.0

    def test_large_byte_counts_not_truncated(self):
        m = MetricsRegistry()
        m.gauge("peak_bytes", 1_572_864_123)
        text = prometheus_text(m)
        assert "1572864123" in text

    def test_empty_registry_is_valid_empty_document(self):
        assert prometheus_text(MetricsRegistry()) == "\n"

    def test_single_sample_histogram_renders_that_sample(self):
        m = MetricsRegistry()
        m.observe("lat", 4.5)
        samples = parse_exposition(prometheus_text(m))
        for quantile in ("0.5", "0.95", "0.99"):
            assert samples[("repro_lat",
                            f'{{quantile="{quantile}"}}')] == 4.5

    def test_extra_gauges_merge(self):
        m = MetricsRegistry()
        samples = parse_exposition(prometheus_text(
            m, extra_gauges={"serve.in_flight": 2.0}))
        assert samples[("repro_serve_in_flight", "")] == 2.0

    def test_type_lines_precede_samples(self):
        m = MetricsRegistry()
        m.inc("runs")
        lines = prometheus_text(m).strip().splitlines()
        type_at = next(i for i, l in enumerate(lines)
                       if l.startswith("# TYPE repro_runs_total"))
        sample_at = next(i for i, l in enumerate(lines)
                         if l.startswith("repro_runs_total "))
        assert type_at < sample_at

    def test_content_type_declares_004(self):
        assert "version=0.0.4" in CONTENT_TYPE


class TestBuildInfo:
    def test_build_info_gauge_leads_the_document(self):
        m = MetricsRegistry()
        m.inc("serve.requests")
        text = prometheus_text(m, build_info="1.2.3")
        first_sample = next(line for line in text.splitlines()
                            if not line.startswith("#"))
        assert first_sample == 'repro_build_info{version="1.2.3"} 1'
        samples = parse_exposition(text)
        assert samples[("repro_build_info", '{version="1.2.3"}')] == 1.0

    def test_no_build_info_no_gauge(self):
        m = MetricsRegistry()
        m.inc("serve.requests")
        assert "repro_build_info" not in prometheus_text(m)


class TestDottedLabels:
    def test_reason_and_replica_collapse_into_label_families(self):
        m = MetricsRegistry()
        m.inc("fleet.retries.reason.replica_closed", 2)
        m.inc("fleet.retries.reason.deadline")
        m.gauge("fleet.replica_up.replica.0", 1)
        m.gauge("fleet.replica_up.replica.1", 0)
        samples = parse_exposition(prometheus_text(m))
        assert samples[("repro_fleet_retries_total",
                        '{reason="replica_closed"}')] == 2.0
        assert samples[("repro_fleet_retries_total",
                        '{reason="deadline"}')] == 1.0
        assert samples[("repro_fleet_replica_up", '{replica="0"}')] == 1.0
        assert samples[("repro_fleet_replica_up", '{replica="1"}')] == 0.0

    def test_labeled_family_shares_one_type_header(self):
        m = MetricsRegistry()
        m.inc("fleet.retries.reason.a")
        m.inc("fleet.retries.reason.b")
        text = prometheus_text(m)
        type_lines = [line for line in text.splitlines()
                      if line.startswith("# TYPE repro_fleet_retries_total")]
        assert len(type_lines) == 1

    def test_anomaly_kind_counters_collapse_to_kind_label(self):
        m = MetricsRegistry()
        m.inc("anomaly.kind.replica-outlier")
        m.inc("anomaly.kind.drop-spike", 2)
        samples = parse_exposition(prometheus_text(m))
        assert samples[("repro_anomaly_total",
                        '{kind="replica-outlier"}')] == 1.0
        assert samples[("repro_anomaly_total",
                        '{kind="drop-spike"}')] == 2.0

    def test_labeled_summaries_render_per_replica(self):
        m = MetricsRegistry()
        for v in (5.0, 15.0):
            m.observe("serve.latency_ms.replica.0", v)
        m.observe("serve.latency_ms.replica.1", 40.0)
        samples = parse_exposition(prometheus_text(m))
        assert samples[("repro_serve_latency_ms",
                        '{replica="0",quantile="0.5"}')] == 10.0
        assert samples[("repro_serve_latency_ms",
                        '{replica="1",quantile="0.5"}')] == 40.0
        assert samples[("repro_serve_latency_ms_sum",
                        '{replica="0"}')] == 20.0
        assert samples[("repro_serve_latency_ms_count",
                        '{replica="1"}')] == 1.0


class TestLabelEscaping:
    """Label values are operator-controlled strings (drop reasons,
    version strings) — backslash, double-quote and newline must be
    escaped per the exposition format or one weird reason corrupts
    the whole scrape."""

    def test_quote_in_reason_escaped(self):
        m = MetricsRegistry()
        m.inc('serve.dropped.reason.bad"reason')
        text = prometheus_text(m)
        assert '{reason="bad\\"reason"}' in text

    def test_backslash_in_reason_escaped(self):
        m = MetricsRegistry()
        m.inc("serve.dropped.reason.a\\b")
        text = prometheus_text(m)
        assert '{reason="a\\\\b"}' in text

    def test_newline_in_label_value_never_splits_a_line(self):
        m = MetricsRegistry()
        m.inc("serve.dropped.reason.two\nlines")
        text = prometheus_text(m)
        assert '{reason="two\\nlines"}' in text
        # every physical line still parses under the grammar
        parse_exposition(text)

    def test_build_info_version_escaped(self):
        m = MetricsRegistry()
        text = prometheus_text(m, build_info='v"1\n\\x')
        line = next(l for l in text.splitlines()
                    if l.startswith("repro_build_info"))
        assert line == 'repro_build_info{version="v\\"1\\n\\\\x"} 1'

    def test_escaped_document_stays_grammatical(self):
        m = MetricsRegistry()
        m.inc('serve.dropped.reason.oops"\\')
        m.gauge("fleet.replica_up.replica.0", 1)
        samples = parse_exposition(prometheus_text(m))
        assert samples  # nothing got mangled into an unparseable line
