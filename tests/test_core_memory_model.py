"""The paper's Equations 1–4 against graphs measured by the executor."""

import numpy as np
import pytest

from repro.core import (ConvPairSpec, eq1_weight_elems_original,
                        eq2_weight_elems_decomposed,
                        eq3_peak_internal_original,
                        eq4_peak_internal_decomposed, fused_peak_internal)
from repro.core.fusion import FusionConfig, fuse_activation_layers
from repro.decompose import DecompositionConfig, decompose_graph
from repro.ir import GraphBuilder
from repro.runtime import execute


def _figure3_graph(spec: ConvPairSpec, seed: int = 0):
    """conv1 → relu → conv2, matching the paper's Figure 3a shapes."""
    b = GraphBuilder("fig3", seed=seed)
    x = b.input("x", (spec.batch, spec.c, spec.h, spec.w))
    h = b.conv2d(x, spec.c_prime, spec.k, stride=spec.h // spec.h_prime,
                 padding=spec.k // 2, bias=False, name="conv1")
    h = b.relu(h)
    h = b.conv2d(h, spec.c_dprime, spec.k_prime,
                 stride=spec.h_prime // spec.h_dprime,
                 padding=spec.k_prime // 2, bias=False, name="conv2")
    return b.finish(h)


@pytest.fixture
def spec():
    return ConvPairSpec(c=16, h=16, w=16, k=3,
                        c_prime=32, h_prime=16, w_prime=16, k_prime=3,
                        c_dprime=32, h_dprime=8, w_dprime=8,
                        c1=4, c2=8, c3=8, c4=8, batch=2)


class TestWeightEquations:
    def test_eq1_matches_graph(self, spec):
        g = _figure3_graph(spec)
        assert g.num_params() == eq1_weight_elems_original(spec)

    def test_eq2_matches_decomposed_graph(self, spec):
        g = _figure3_graph(spec)
        dg = decompose_graph(g, DecompositionConfig(ratio=0.25))
        # read the actual ranks the planner chose and rebuild the spec
        fconvs = [n for n in dg.nodes if n.attrs.get("role") == "fconv"]
        lconvs = [n for n in dg.nodes if n.attrs.get("role") == "lconv"]
        actual = ConvPairSpec(
            c=spec.c, h=spec.h, w=spec.w, k=spec.k,
            c_prime=spec.c_prime, h_prime=spec.h_prime, w_prime=spec.w_prime,
            k_prime=spec.k_prime, c_dprime=spec.c_dprime,
            h_dprime=spec.h_dprime, w_dprime=spec.w_dprime,
            c1=fconvs[0].params["weight"].shape[0],
            c2=lconvs[0].params["weight"].shape[1],
            c3=fconvs[1].params["weight"].shape[0],
            c4=lconvs[1].params["weight"].shape[1],
            batch=spec.batch)
        assert dg.num_params() == eq2_weight_elems_decomposed(actual)

    def test_decomposition_shrinks_weights(self, spec):
        assert eq2_weight_elems_decomposed(spec) < eq1_weight_elems_original(spec)


class TestPeakEquations:
    def test_eq3_matches_measured_original(self, spec):
        g = _figure3_graph(spec)
        rng = np.random.default_rng(0)
        inp = {"x": rng.normal(size=g.inputs[0].shape).astype(np.float32)}
        measured = execute(g, inp).memory.peak_internal_bytes
        assert measured == eq3_peak_internal_original(spec) * 4  # f32 bytes

    def test_eq4_matches_measured_decomposed(self, spec):
        g = _figure3_graph(spec)
        dg = decompose_graph(g, DecompositionConfig(ratio=0.25))
        fconvs = [n for n in dg.nodes if n.attrs.get("role") == "fconv"]
        lconvs = [n for n in dg.nodes if n.attrs.get("role") == "lconv"]
        actual = ConvPairSpec(
            c=spec.c, h=spec.h, w=spec.w, k=spec.k,
            c_prime=spec.c_prime, h_prime=spec.h_prime, w_prime=spec.w_prime,
            k_prime=spec.k_prime, c_dprime=spec.c_dprime,
            h_dprime=spec.h_dprime, w_dprime=spec.w_dprime,
            c1=fconvs[0].params["weight"].shape[0],
            c2=lconvs[0].params["weight"].shape[1],
            c3=fconvs[1].params["weight"].shape[0],
            c4=lconvs[1].params["weight"].shape[1],
            batch=spec.batch)
        rng = np.random.default_rng(0)
        inp = {"x": rng.normal(size=dg.inputs[0].shape).astype(np.float32)}
        measured = execute(dg, inp).memory.peak_internal_bytes
        assert measured == eq4_peak_internal_decomposed(actual) * 4

    def test_eq4_collapses_to_activation_pair(self, spec):
        """The paper's §2.2 observation: with reduced ranks, Eq. 4 equals
        2·C'·H'·W' — decomposition alone does not shrink the peak."""
        assert spec.ranks_are_reduced()
        assert eq4_peak_internal_decomposed(spec) == \
            2 * spec.batch * spec.c_prime * spec.h_prime * spec.w_prime

    def test_fused_peak_strictly_smaller(self, spec):
        assert fused_peak_internal(spec) < eq4_peak_internal_decomposed(spec)

    def test_fused_matches_measured_fused_graph(self, spec):
        g = _figure3_graph(spec)
        dg = decompose_graph(g, DecompositionConfig(ratio=0.25))
        fconvs = [n for n in dg.nodes if n.attrs.get("role") == "fconv"]
        lconvs = [n for n in dg.nodes if n.attrs.get("role") == "lconv"]
        actual = ConvPairSpec(
            c=spec.c, h=spec.h, w=spec.w, k=spec.k,
            c_prime=spec.c_prime, h_prime=spec.h_prime, w_prime=spec.w_prime,
            k_prime=spec.k_prime, c_dprime=spec.c_dprime,
            h_dprime=spec.h_dprime, w_dprime=spec.w_dprime,
            c1=fconvs[0].params["weight"].shape[0],
            c2=lconvs[0].params["weight"].shape[1],
            c3=fconvs[1].params["weight"].shape[0],
            c4=lconvs[1].params["weight"].shape[1],
            batch=spec.batch)
        fuse_activation_layers(dg, FusionConfig(allow_epilogue=False))
        rng = np.random.default_rng(0)
        inp = {"x": rng.normal(size=dg.inputs[0].shape).astype(np.float32)}
        measured = execute(dg, inp).memory.peak_internal_bytes
        assert measured == fused_peak_internal(actual) * 4
