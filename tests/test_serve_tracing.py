"""Request-lifecycle tracing and SLO wiring through the server."""

import numpy as np
import pytest

from repro.obs import (SLOMonitor, SLObjective, Tracer, chrome_trace_events,
                       new_trace_id)
from repro.serve import (DeadlineExceeded, InferenceServer, Overloaded,
                         ServerConfig)

from _graph_fixtures import make_chain_graph


def _payload(graph, samples=1, seed=0):
    rng = np.random.default_rng(seed)
    return {graph.inputs[0].name:
            rng.normal(size=(samples,) + graph.inputs[0].shape[1:])
            .astype(np.float32)}


class TestTraceIds:
    def test_new_trace_id_format(self):
        tid = new_trace_id()
        assert len(tid) == 16
        int(tid, 16)  # hex
        assert tid != new_trace_id()

    def test_future_carries_trace_id(self):
        g = make_chain_graph(batch=2)
        with InferenceServer(g, ServerConfig()) as server:
            future = server.submit(_payload(g))
            future.result(10.0)
        assert len(future.trace_id) == 16


class TestServeTracing:
    def test_lifecycle_spans_share_the_trace_id(self):
        g = make_chain_graph(batch=2)
        tracer = Tracer()
        with InferenceServer(g, ServerConfig(), tracer=tracer) as server:
            future = server.submit(_payload(g))
            future.result(10.0)
        tid = future.trace_id

        admits = [s for s in tracer.spans if s.name == "serve.admit"
                  and s.args.get("trace_id") == tid]
        assert len(admits) == 1
        assert admits[0].tid == 0  # admission on the main row

        batches = [s for s in tracer.spans if s.name == "serve.batch"
                   and tid in s.args.get("trace_ids", [])]
        assert len(batches) == 1
        assert batches[0].tid == 1  # worker 0's row
        assert batches[0].args["worker_id"] == 0
        assert "padding" in batches[0].args

        # per-op executor spans carry the batch's trace ids on the
        # worker's row
        ops = [s for s in tracer.spans if "op" in s.args
               and tid in s.args.get("trace_ids", [])]
        assert len(ops) == len(g.nodes)
        assert all(s.tid == 1 for s in ops)

    def test_fanin_flow_arrows(self):
        g = make_chain_graph(batch=2)
        tracer = Tracer()
        with InferenceServer(g, ServerConfig(), tracer=tracer) as server:
            futures = [server.submit(_payload(g, seed=i)) for i in range(3)]
            for f in futures:
                f.result(10.0)
        # every request contributes exactly one start + one finish
        # endpoint, keyed by its request id
        for f in futures:
            phases = sorted(fl.phase for fl in tracer.flows
                            if fl.flow_id == f.request_id)
            assert phases == ["finish", "start"]

    def test_waterfall_slices(self):
        g = make_chain_graph(batch=2)
        tracer = Tracer()
        with InferenceServer(g, ServerConfig(), tracer=tracer) as server:
            future = server.submit(_payload(g))
            future.result(10.0)
        slices = {ae.name for ae in tracer.async_events
                  if ae.aid == future.request_id}
        assert {"request", "queue_wait", "execute"} <= slices
        begins = {ae.name: ae for ae in tracer.async_events
                  if ae.aid == future.request_id and ae.phase == "begin"}
        assert begins["request"].args["outcome"] == "ok"
        assert begins["request"].args["trace_id"] == future.trace_id
        # begin/end pairs are balanced
        phases = [ae.phase for ae in tracer.async_events
                  if ae.aid == future.request_id]
        assert phases.count("begin") == phases.count("end")

    def test_worker_rows_are_named(self):
        g = make_chain_graph(batch=2)
        tracer = Tracer()
        with InferenceServer(g, ServerConfig(num_workers=2),
                             tracer=tracer) as server:
            server.submit(_payload(g)).result(10.0)
        assert tracer.thread_names[1] == "worker-0"
        assert tracer.thread_names[2] == "worker-1"
        events = chrome_trace_events(tracer)
        labels = {e["tid"]: e["args"]["name"] for e in events
                  if e["ph"] == "M" and e["name"] == "thread_name"}
        assert labels[1] == "worker-0" and labels[2] == "worker-1"

    def test_untraced_serving_records_nothing(self):
        g = make_chain_graph(batch=2)
        with InferenceServer(g, ServerConfig()) as server:
            future = server.submit(_payload(g))
            future.result(10.0)
        # NoopTracer path: no crash, and the future still resolves with
        # a trace id assigned at admission
        assert future.trace_id


class TestDropAccounting:
    def test_queue_full_reason_counter(self):
        g = make_chain_graph(batch=2)
        config = ServerConfig(max_queue=1)
        server = InferenceServer(g, config)  # never started: queue fills
        server.submit(_payload(g))
        with pytest.raises(Overloaded):
            server.submit(_payload(g))
        stats = server.stats()
        assert stats["serve.dropped.reason.queue_full"] == 1
        server.close()
        # the queued request is rejected on close, with its own reason
        stats = server.stats()
        assert stats["serve.dropped.reason.server_closed"] == 1

    def test_deadline_reason_counter_and_slo(self):
        g = make_chain_graph(batch=2)
        slo = SLOMonitor(SLObjective("avail", target=0.5))
        server = InferenceServer(g, ServerConfig(), slo=slo)  # not started
        future = server.submit(_payload(g), deadline_s=0.0)
        import time
        time.sleep(0.01)
        server.start()
        with pytest.raises(DeadlineExceeded):
            future.result(10.0)
        server.close()
        stats = server.stats()
        assert stats["serve.dropped.reason.deadline_expired"] == 1
        (status,) = slo.evaluate()
        assert status.bad >= 1


class TestServeSLO:
    def test_completions_feed_the_monitor(self):
        g = make_chain_graph(batch=2)
        slo = SLOMonitor([SLObjective("avail", target=0.9),
                          SLObjective("lat", target=0.9,
                                      latency_threshold_ms=60_000.0)])
        with InferenceServer(g, ServerConfig(), slo=slo) as server:
            for i in range(4):
                server.submit(_payload(g, seed=i)).result(10.0)
            stats = server.stats()
        avail, lat = slo.evaluate()
        assert avail.events == 4 and avail.good == 4
        assert lat.good == 4  # nothing takes a minute
        # stats() re-exported the burn-rate gauges
        assert stats["slo.avail.burn_rate"] == 0.0
        assert stats["slo.avail.healthy"] == 1.0
        assert stats["slo.lat.events"] == 4.0
