"""Energy-based (VBMF-style) automatic rank selection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.decompose import (DecompositionConfig, decompose_graph,
                             plan_ranks_energy, rank_by_energy)
from repro.ir import GraphBuilder

from _graph_fixtures import make_chain_graph


class TestRankByEnergy:
    def test_full_energy_is_full_rank(self):
        rng = np.random.default_rng(0)
        m = rng.normal(size=(8, 20))
        assert rank_by_energy(m, 1.0) == 8

    def test_low_rank_matrix_detected(self):
        rng = np.random.default_rng(1)
        # exactly rank-3 matrix: 3 components capture 100% of the energy
        m = rng.normal(size=(16, 3)) @ rng.normal(size=(3, 24))
        assert rank_by_energy(m, 0.999) == 3

    def test_monotone_in_energy(self):
        rng = np.random.default_rng(2)
        m = rng.normal(size=(12, 30))
        ranks = [rank_by_energy(m, e) for e in (0.3, 0.6, 0.9, 0.99)]
        assert ranks == sorted(ranks)

    def test_zero_matrix(self):
        assert rank_by_energy(np.zeros((4, 4)), 0.9) == 1

    def test_bad_energy_rejected(self):
        with pytest.raises(ValueError, match="energy"):
            rank_by_energy(np.eye(2), 0.0)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 1000), energy=st.floats(0.1, 1.0))
    def test_property_rank_bounds(self, seed, energy):
        rng = np.random.default_rng(seed)
        m = rng.normal(size=(6, 15))
        r = rank_by_energy(m, energy)
        assert 1 <= r <= 6


class TestPlanRanksEnergy:
    def test_structured_kernel_compresses_harder(self):
        rng = np.random.default_rng(3)
        # kernel whose output channels live in a rank-4 subspace
        basis = rng.normal(size=(32, 4))
        coeffs = rng.normal(size=(4, 16 * 9))
        low = (basis @ coeffs).reshape(32, 16, 3, 3)
        full = rng.normal(size=(32, 16, 3, 3))
        plan_low = plan_ranks_energy(low, 0.999)
        plan_full = plan_ranks_energy(full, 0.999)
        assert plan_low.rank_out == 4
        assert plan_full.rank_out > plan_low.rank_out

    def test_non_4d_rejected(self):
        with pytest.raises(ValueError, match="4D"):
            plan_ranks_energy(np.zeros((3, 3)), 0.9)


class TestEnergyPolicyEndToEnd:
    def test_config_validation(self):
        with pytest.raises(ValueError, match="rank_policy"):
            DecompositionConfig(rank_policy="vbmf")
        with pytest.raises(ValueError, match="energy"):
            DecompositionConfig(rank_policy="energy", energy=1.5)

    def test_energy_policy_produces_valid_graph(self):
        g = make_chain_graph()
        dg = decompose_graph(g, DecompositionConfig(rank_policy="energy",
                                                    energy=0.8))
        dg.validate()
        assert any(n.attrs.get("role") == "lconv" for n in dg.nodes)

    def test_higher_energy_means_more_params(self):
        g = make_chain_graph()
        lo = decompose_graph(g, DecompositionConfig(rank_policy="energy",
                                                    energy=0.5))
        hi = decompose_graph(g, DecompositionConfig(rank_policy="energy",
                                                    energy=0.99))
        assert hi.num_params() > lo.num_params()

    def test_energy_policy_better_fit_than_matched_ratio(self):
        """At a matched parameter budget, per-layer adaptive ranks should
        fit at least as well overall as the uniform ratio."""
        from repro.decompose import decomposition_records
        g = make_chain_graph(seed=9)
        dg = decompose_graph(g, DecompositionConfig(rank_policy="energy",
                                                    energy=0.9))
        records = decomposition_records(dg)
        assert all(r.fit_error < 0.5 for r in records)
