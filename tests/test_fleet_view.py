"""FleetView: merged snapshots, fleet doc, stitched traces, /fleetz."""

import json
import urllib.error
import urllib.request

import numpy as np

from repro.fleet import FaultPolicy, RouterConfig
from repro.obs import FleetView, Tracer, render_dashboard, use_tracer
from repro.serve import InferenceServer, ServerConfig, serve_http

from _graph_fixtures import make_chain_graph
from test_fleet_router import _fleet, _payload


def _drive(backend, n=6, seed0=0):
    for i in range(n):
        backend.infer(_payload(backend.graph, seed=seed0 + i), timeout=30.0)


class TestSnapshot:
    def test_replica_stats_suffixed(self):
        with _fleet(replicas=2) as fleet:
            _drive(fleet, 4)
            view = FleetView(fleet)
            snap = view.snapshot()
            assert snap["fleet.completed"] == 4
            # per-replica serve counters carry the .replica.<id> suffix;
            # a hedge can complete a request on both replicas, so the
            # replica total may exceed the fleet total
            per_replica = [snap.get(f"serve.completed.replica.{r}", 0.0)
                           for r in (0, 1)]
            assert sum(per_replica) >= 4

    def test_single_server_backend_is_pseudo_replica(self):
        g = make_chain_graph(batch=4)
        with InferenceServer(g, ServerConfig(max_wait_s=0.0)) as server:
            _drive(server, 1)  # counters exist only after the first inc
            view = FleetView(server)
            snap = view.snapshot()
            # a lone server: its own stats, no replica suffixes
            assert snap["serve.completed"] == 1
            assert not any(".replica." in k for k in snap)
            doc = view.fleet_doc()
            assert [r["id"] for r in doc["replicas"]] == [0]


class TestMergedRegistry:
    def test_replica_families_labeled(self):
        with _fleet(replicas=2) as fleet:
            _drive(fleet, 4)
            merged = FleetView(fleet).merged_registry()
            snap = merged.snapshot()
            assert snap["fleet.completed"] == 4
            total = snap["serve.completed"]  # aggregate across replicas
            labeled = sum(snap.get(f"serve.completed.replica.{r}", 0.0)
                          for r in (0, 1))
            assert total == labeled == 4

    def test_attaching_a_view_never_changes_outputs(self):
        g = make_chain_graph(batch=4)
        payloads = [_payload(g, seed=i) for i in range(5)]
        with InferenceServer(g, ServerConfig(max_wait_s=0.0)) as single:
            expected = [single.infer(p, timeout=30.0) for p in payloads]
        with _fleet(replicas=2, graph=g) as fleet:
            with FleetView(fleet, interval_s=0.02):
                for payload, reference in zip(payloads, expected):
                    outputs = fleet.infer(payload, timeout=30.0)
                    for name in outputs:
                        assert np.array_equal(outputs[name], reference[name])


class TestFleetDoc:
    def test_doc_shape_and_per_replica_fields(self):
        with _fleet(replicas=2) as fleet:
            _drive(fleet, 6)
            view = FleetView(fleet)
            doc = view.fleet_doc()
            assert doc["model"] == fleet.graph.name
            assert doc["fleet"]["replicas"] == 2
            assert doc["fleet"]["completed"] == 6
            assert len(doc["replicas"]) == 2
            for replica in doc["replicas"]:
                assert {"id", "state", "qps", "latency_ms", "queue_depth",
                        "planned_peak_bytes", "measured_peak_bytes",
                        "attempt_p95_ms"} <= set(replica)
            assert doc["anomalies"] == []
            assert doc["ts"]["series"] > 0

    def test_doc_renders_as_dashboard(self):
        with _fleet(replicas=2) as fleet:
            _drive(fleet, 3)
            doc = FleetView(fleet).fleet_doc()
        frame = render_dashboard(doc, color=False)
        assert fleet.graph.name in frame
        assert "replica" in frame or " id " in frame
        colored = render_dashboard(doc, color=True)
        assert "\x1b[" in colored

    def test_measured_peak_reported(self):
        with _fleet(replicas=2) as fleet:
            _drive(fleet, 4)
            doc = FleetView(fleet).fleet_doc()
            served = [r for r in doc["replicas"] if r["completed"] > 0]
            assert served
            assert all(r["measured_peak_bytes"] > 0 for r in served)


class TestStitchedTrace:
    def test_replica_rows_and_cross_replica_flows(self):
        tracer = Tracer()
        fault = FaultPolicy(replica=0, kind="slow", after=1, slow_s=0.25)
        config = RouterConfig(hedge_delay_s=0.02, attempt_timeout_s=10.0)
        with use_tracer(tracer):
            fleet = _fleet(replicas=2, fault=fault, router=config)
        with fleet:
            _drive(fleet, 6)
            view = FleetView(fleet)
            trace = view.stitched_trace()
        assert trace is not None
        events = trace["traceEvents"]
        rows = {e["args"]["name"] for e in events
                if e.get("name") == "thread_name"}
        assert "fleet" in rows
        assert any(r.startswith("replica-") for r in rows)
        # the slow fault forces hedges: those requests touch two
        # replicas and get stitched with flow arrows
        flows = [e for e in events if e.get("ph") in ("s", "f")
                 and e.get("name") == "fleet.cross_replica"]
        assert flows, "hedged requests must produce cross-replica arrows"
        starts = sum(1 for e in flows if e["ph"] == "s")
        finishes = sum(1 for e in flows if e["ph"] == "f")
        assert starts == finishes > 0

    def test_untraced_backend_has_no_stitched_trace(self):
        with _fleet(replicas=2) as fleet:
            assert FleetView(fleet).stitched_trace() is None


class TestFleetzEndpoint:
    def _get(self, port, path):
        req = urllib.request.Request(f"http://127.0.0.1:{port}{path}")
        try:
            with urllib.request.urlopen(req, timeout=10.0) as resp:
                return resp.status, json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read())

    def test_fleetz_serves_the_doc(self):
        with _fleet(replicas=2) as fleet:
            _drive(fleet, 3)
            fleet.view = FleetView(fleet)
            with serve_http(fleet, port=0) as frontend:
                status, doc = self._get(frontend.address[1], "/fleetz")
        assert status == 200
        assert doc["fleet"]["completed"] == 3
        assert len(doc["replicas"]) == 2

    def test_fleetz_404_without_a_view(self):
        g = make_chain_graph(batch=4)
        with InferenceServer(g, ServerConfig(max_wait_s=0.0)) as server:
            with serve_http(server, port=0) as frontend:
                status, doc = self._get(frontend.address[1], "/fleetz")
        assert status == 404
        assert "fleet view" in doc["error"]
