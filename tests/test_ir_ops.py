"""Unit tests for the op registry: shape inference, validation, FLOPs."""

import numpy as np
import pytest

from repro.ir import GraphBuilder, ops
from repro.ir.emit import make_node
from repro.ir.graph import Graph
from repro.ir.value import Value


def _graph_with_input(shape=(2, 8, 10, 10)):
    g = Graph("t", [Value("x", shape)])
    return g, g.inputs[0]


class TestConvShapeInference:
    @pytest.mark.parametrize("hw,k,s,p,expected", [
        (10, 3, 1, 1, 10),
        (10, 3, 2, 1, 5),
        (10, 1, 1, 0, 10),
        (10, 5, 1, 2, 10),
        (11, 3, 2, 1, 6),
        (7, 7, 1, 3, 7),
    ])
    def test_spatial_dims(self, hw, k, s, p, expected):
        oh, ow = ops.conv_output_hw(hw, hw, k, s, p)
        assert (oh, ow) == (expected, expected)

    def test_window_too_large_raises(self):
        with pytest.raises(ValueError):
            ops.conv_output_hw(2, 2, kernel=5, stride=1, padding=0)

    def test_conv2d_output_channels(self):
        g, x = _graph_with_input()
        node = make_node(g, "conv2d", [x],
                         attrs={"stride": [1, 1], "padding": [1, 1], "groups": 1},
                         params={"weight": np.zeros((16, 8, 3, 3), np.float32)})
        assert node.output.shape == (2, 16, 10, 10)

    def test_conv2d_channel_mismatch_raises(self):
        g, x = _graph_with_input()
        with pytest.raises(ValueError, match="in-channels"):
            make_node(g, "conv2d", [x],
                      attrs={"stride": [1, 1], "padding": [0, 0], "groups": 1},
                      params={"weight": np.zeros((16, 4, 3, 3), np.float32)})

    def test_depthwise_groups(self):
        g, x = _graph_with_input()
        node = make_node(g, "conv2d", [x],
                         attrs={"stride": [1, 1], "padding": [1, 0], "groups": 8},
                         params={"weight": np.zeros((8, 1, 3, 1), np.float32)})
        assert node.output.shape == (2, 8, 10, 10)

    def test_conv_transpose_doubles_spatial(self):
        g, x = _graph_with_input()
        node = make_node(g, "conv_transpose2d", [x],
                         attrs={"stride": [2, 2], "padding": [0, 0],
                                "output_padding": [0, 0]},
                         params={"weight": np.zeros((8, 4, 2, 2), np.float32)})
        assert node.output.shape == (2, 4, 20, 20)

    def test_conv_flops(self):
        g, x = _graph_with_input()
        node = make_node(g, "conv2d", [x],
                         attrs={"stride": [1, 1], "padding": [1, 1], "groups": 1},
                         params={"weight": np.zeros((16, 8, 3, 3), np.float32)})
        assert ops.node_flops(node) == 2 * 2 * 16 * 10 * 10 * 8 * 9


class TestElementwiseOps:
    def test_add_shape_mismatch_raises(self):
        g = Graph("t", [Value("a", (2, 3)), Value("b", (2, 4))])
        with pytest.raises(ValueError, match="add operands differ"):
            make_node(g, "add", list(g.inputs))

    def test_concat_axis1(self):
        g = Graph("t", [Value("a", (2, 3, 4, 4)), Value("b", (2, 5, 4, 4))])
        node = make_node(g, "concat", list(g.inputs), attrs={"axis": 1})
        assert node.output.shape == (2, 8, 4, 4)

    def test_concat_non_axis_mismatch_raises(self):
        g = Graph("t", [Value("a", (2, 3, 4, 4)), Value("b", (2, 5, 5, 4))])
        with pytest.raises(ValueError, match="mismatch"):
            make_node(g, "concat", list(g.inputs), attrs={"axis": 1})

    def test_activations_preserve_shape(self):
        for act in ops.ACTIVATION_OPS:
            g, x = _graph_with_input()
            node = make_node(g, act, [x])
            assert node.output.shape == x.shape

    def test_flatten(self):
        g, x = _graph_with_input((2, 8, 3, 3))
        node = make_node(g, "flatten", [x], attrs={"start_dim": 1})
        assert node.output.shape == (2, 72)

    def test_upsample(self):
        g, x = _graph_with_input((2, 8, 5, 5))
        node = make_node(g, "upsample_nearest", [x], attrs={"scale": 3})
        assert node.output.shape == (2, 8, 15, 15)

    def test_global_avgpool(self):
        g, x = _graph_with_input()
        node = make_node(g, "global_avgpool", [x])
        assert node.output.shape == (2, 8, 1, 1)

    def test_unknown_op_raises(self):
        g, x = _graph_with_input()
        with pytest.raises(KeyError, match="unknown op"):
            make_node(g, "conv3d", [x])


class TestFusedOps:
    def test_fused_block_shapes(self):
        g, x = _graph_with_input((2, 4, 8, 8))
        node = make_node(g, "fused_block", [x],
                         attrs={"act": "relu",
                                "pool": {"kind": "max", "kernel": [2, 2],
                                         "stride": [2, 2], "padding": [0, 0]}},
                         params={"w1": np.zeros((32, 4), np.float32),
                                 "w2": np.zeros((6, 32), np.float32)})
        assert node.output.shape == (2, 6, 4, 4)

    def test_fused_block_rejects_pool_and_upsample(self):
        g, x = _graph_with_input((2, 4, 8, 8))
        with pytest.raises(ValueError, match="cannot both"):
            make_node(g, "fused_block", [x],
                      attrs={"act": "relu", "upsample": 2,
                             "pool": {"kind": "max", "kernel": [2, 2]}},
                      params={"w1": np.zeros((32, 4), np.float32),
                              "w2": np.zeros((6, 32), np.float32)})

    def test_fused_block_weight_mismatch(self):
        g, x = _graph_with_input((2, 4, 8, 8))
        with pytest.raises(ValueError, match="w2 in-channels"):
            make_node(g, "fused_block", [x],
                      attrs={"act": "relu"},
                      params={"w1": np.zeros((32, 4), np.float32),
                              "w2": np.zeros((6, 16), np.float32)})

    def test_fused_restore_upsample(self):
        g, x = _graph_with_input((2, 4, 8, 8))
        node = make_node(g, "fused_restore", [x],
                         attrs={"act": "relu", "upsample": 2},
                         params={"w1": np.zeros((32, 4), np.float32)})
        assert node.output.shape == (2, 32, 16, 16)

    def test_fused_restore_must_absorb_something(self):
        g, x = _graph_with_input((2, 4, 8, 8))
        with pytest.raises(ValueError, match="absorb"):
            make_node(g, "fused_restore", [x], attrs={},
                      params={"w1": np.zeros((32, 4), np.float32)})


class TestStructuralPredicates:
    def test_is_lconv_and_fconv(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 8, 4, 4))
        up = b.conv2d(x, 32, 1, name="up")
        down = b.conv2d(up, 4, 1, name="down")
        spatial = b.conv2d(down, 16, 3, padding=1, name="spatial")
        g = b.finish(spatial)
        up_node = g.find_node("up")
        down_node = g.find_node("down")
        spatial_node = g.find_node("spatial")
        assert ops.is_lconv(up_node) and not ops.is_fconv(up_node)
        assert ops.is_fconv(down_node) and not ops.is_lconv(down_node)
        assert not ops.is_lconv(spatial_node)
        assert not ops.is_fconv(spatial_node)

    def test_strided_pointwise_is_not_lconv(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 8, 4, 4))
        strided = b.conv2d(x, 32, 1, stride=2, name="strided")
        g = b.finish(strided)
        assert not ops.is_lconv(g.find_node("strided"))
