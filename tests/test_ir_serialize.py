"""Graph serialization round-trips."""

import numpy as np
import pytest

from repro.core import optimize
from repro.decompose import DecompositionConfig, decompose_graph
from repro.ir import graph_from_dict, graph_to_dict, load_graph, save_graph
from repro.runtime import execute

from _graph_fixtures import make_chain_graph, make_skip_graph, random_input


class TestDictRoundTrip:
    def test_structure_preserved(self):
        g = make_skip_graph()
        structure, weights = graph_to_dict(g)
        rebuilt = graph_from_dict(structure, weights)
        assert [n.name for n in rebuilt.nodes] == [n.name for n in g.nodes]
        assert [n.op for n in rebuilt.nodes] == [n.op for n in g.nodes]
        assert [v.name for v in rebuilt.outputs] == [v.name for v in g.outputs]

    def test_outputs_preserved_numerically(self):
        g = make_skip_graph()
        structure, weights = graph_to_dict(g)
        rebuilt = graph_from_dict(structure, weights)
        inp = random_input(g)
        np.testing.assert_array_equal(execute(g, inp).output(),
                                      execute(rebuilt, inp).output())

    def test_structure_is_json_safe(self):
        import json
        g = make_chain_graph()
        structure, _ = graph_to_dict(g)
        json.dumps(structure)  # must not raise

    def test_optimized_graph_round_trips(self):
        g = decompose_graph(make_skip_graph(), DecompositionConfig(ratio=0.25))
        opt, _ = optimize(g)
        structure, weights = graph_to_dict(opt)
        rebuilt = graph_from_dict(structure, weights)
        inp = random_input(opt)
        np.testing.assert_array_equal(execute(opt, inp).output(),
                                      execute(rebuilt, inp).output())


class TestFileRoundTrip:
    def test_save_load(self, tmp_path):
        g = make_chain_graph()
        path = tmp_path / "model.npz"
        save_graph(g, path)
        rebuilt = load_graph(path)
        inp = random_input(g)
        np.testing.assert_array_equal(execute(g, inp).output(),
                                      execute(rebuilt, inp).output())
