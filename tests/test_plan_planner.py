"""The budget planner: grammar, simulation fidelity, greedy relief,
and the typed infeasibility contract."""

import pytest

from repro.core import estimate_peak_floor, estimate_peak_internal
from repro.ir.ops import node_flops
from repro.models import build_wavenet2d
from repro.plan import (BudgetSyntaxError, InfeasibleBudget, KeepAction,
                        MemoryPlan, PlanCostModel, RematAction, SpillAction,
                        format_bytes, parse_budget, plan_memory,
                        simulate_plan)


@pytest.fixture(scope="module")
def wavenet():
    # small enough to plan in milliseconds, long-skip enough that the
    # peak sits well above the single-node floor
    return build_wavenet2d(batch=1, hw=16, channels=8, layers=6)


class TestBudgetGrammar:
    def test_plain_integers_and_byte_suffix(self):
        assert parse_budget("1048576") == 1048576
        assert parse_budget("1048576B") == 1048576
        assert parse_budget(4096) == 4096

    def test_binary_and_decimal_units(self):
        assert parse_budget("64KiB") == 64 * 1024
        assert parse_budget("1.5MiB") == int(1.5 * 1024 ** 2)
        assert parse_budget("2GiB") == 2 * 1024 ** 3
        assert parse_budget("64KB") == 64_000
        assert parse_budget("2GB") == 2_000_000_000

    def test_units_are_case_insensitive(self):
        assert parse_budget("64kib") == parse_budget("64KIB")

    def test_percentage_needs_a_reference(self):
        assert parse_budget("60%", reference=1000) == 600
        with pytest.raises(BudgetSyntaxError, match="reference"):
            parse_budget("60%")

    def test_percentage_floors_to_whole_bytes(self):
        # a budget is a ceiling: never round up past what was asked
        assert parse_budget("33%", reference=100) == 33
        assert parse_budget("0.1%", reference=1000) == 1

    def test_rejects_garbage_and_non_positive(self):
        for bad in ("", "banana", "12XB", "-5", "0"):
            with pytest.raises(BudgetSyntaxError):
                parse_budget(bad)
        with pytest.raises(BudgetSyntaxError):
            parse_budget(0)
        with pytest.raises(BudgetSyntaxError):
            parse_budget(-1)

    def test_format_bytes(self):
        assert format_bytes(512) == "512 B"
        assert format_bytes(64 * 1024) == "64.00 KiB"
        assert format_bytes(int(1.5 * 1024 ** 2)) == "1.50 MiB"


class TestSimulation:
    def test_empty_plan_matches_static_peak_estimate(self, wavenet):
        _, peak, _ = simulate_plan(wavenet, {})
        assert peak == estimate_peak_internal(wavenet)

    def test_planned_live_has_one_sample_per_node(self, wavenet):
        planned, peak, peak_index = simulate_plan(wavenet, {})
        assert len(planned) == len(wavenet.nodes)
        assert 0 <= peak_index < len(wavenet.nodes)
        # pre-free samples bound the peak from below, never above
        assert max(planned) <= peak

    def test_plan_actions_replay_to_the_planned_peak(self, wavenet):
        budget = int(0.7 * estimate_peak_internal(wavenet))
        plan = plan_memory(wavenet, budget)
        actions = {a.value.name: a for a in plan.actions}
        _, peak, _ = simulate_plan(wavenet, actions)
        assert peak == plan.planned_peak_bytes


class TestPlanMemory:
    def test_no_budget_is_the_all_keep_analysis_view(self, wavenet):
        plan = plan_memory(wavenet)
        assert plan.budget_bytes is None
        assert not plan.spills and not plan.remats
        assert plan.planned_peak_bytes == plan.baseline_peak_bytes
        assert plan.within_budget
        assert plan.relief_bytes == 0

    @pytest.mark.parametrize("fraction", [0.9, 0.75, 0.6, 0.5])
    def test_planned_peak_fits_any_feasible_budget(self, wavenet, fraction):
        baseline = estimate_peak_internal(wavenet)
        budget = int(fraction * baseline)
        plan = plan_memory(wavenet, budget)
        assert plan.planned_peak_bytes <= budget
        assert plan.within_budget
        assert plan.baseline_peak_bytes == baseline
        assert plan.relief_bytes == baseline - plan.planned_peak_bytes
        assert plan.spills or plan.remats

    def test_actions_are_ordered_spills_remats_keeps(self, wavenet):
        plan = plan_memory(wavenet, int(0.6 * estimate_peak_internal(wavenet)))
        rank = {"spill": 0, "remat": 1, "keep": 2}
        ranks = [rank[a.kind] for a in plan.actions]
        assert ranks == sorted(ranks)
        assert all(isinstance(a, (SpillAction, RematAction, KeepAction))
                   for a in plan.actions)

    def test_spill_schedule_is_internally_consistent(self, wavenet):
        plan = plan_memory(wavenet, int(0.6 * estimate_peak_internal(wavenet)))
        for a in plan.spills:
            assert a.spill_after < a.prefetch_issue <= a.next_use
            assert a.nbytes == a.value.nbytes

    def test_remat_chain_bookkeeping(self, wavenet):
        # remat actions (when chosen) must carry a schedule-ordered
        # chain whose flop/byte totals match the chain itself
        baseline = estimate_peak_internal(wavenet)
        index_of = {n.name: i for i, n in enumerate(wavenet.nodes)}
        for fraction in (0.9, 0.7, 0.55):
            plan = plan_memory(wavenet, int(fraction * baseline))
            for a in plan.remats:
                order = [index_of[n.name] for n in a.chain]
                assert order == sorted(order)
                assert a.chain[-1].output.name == a.value.name
                assert a.recompute_flops == sum(node_flops(n) for n in a.chain)
                assert a.transient_bytes == \
                    sum(n.output.nbytes for n in a.chain)
                assert a.drop_after < a.remat_before

    def test_overhead_prediction_follows_the_cost_model(self, wavenet):
        cm = PlanCostModel(spill_bandwidth_bytes_per_s=1e9)
        plan = plan_memory(wavenet, int(0.6 * estimate_peak_internal(wavenet)),
                           cost_model=cm)
        expected = sum(a.cost_seconds(cm) for a in plan.actions)
        assert plan.predicted_overhead_seconds == pytest.approx(expected)
        assert plan.predicted_overhead_seconds > 0

    def test_to_dict_is_json_shaped(self, wavenet):
        plan = plan_memory(wavenet, int(0.6 * estimate_peak_internal(wavenet)))
        doc = plan.to_dict()
        for key in ("graph", "budget_bytes", "baseline_peak_bytes",
                    "planned_peak_bytes", "relief_bytes", "actions",
                    "planned_live", "cost_model", "within_budget"):
            assert key in doc
        assert len(doc["actions"]) == len(plan.actions)
        assert all(a["kind"] in ("spill", "remat", "keep")
                   for a in doc["actions"])

    def test_non_positive_budget_rejected(self, wavenet):
        with pytest.raises(ValueError, match="positive"):
            plan_memory(wavenet, 0)
        with pytest.raises(ValueError, match="positive"):
            plan_memory(wavenet, -4096)


class TestInfeasibleBudget:
    def test_below_floor_raises_with_residual(self, wavenet):
        floor = estimate_peak_floor(wavenet)
        budget = floor // 2
        with pytest.raises(InfeasibleBudget) as exc_info:
            plan_memory(wavenet, budget)
        exc = exc_info.value
        assert exc.budget_bytes == budget
        assert exc.predicted_peak_bytes > budget
        assert exc.residual_bytes == exc.predicted_peak_bytes - budget
        assert "residual" in str(exc)

    def test_floor_never_exceeds_baseline_peak(self, wavenet):
        assert estimate_peak_floor(wavenet) <= estimate_peak_internal(wavenet)

    def test_plan_type_is_memory_plan(self, wavenet):
        assert isinstance(plan_memory(wavenet), MemoryPlan)
