"""Runtime enforcement of memory plans: budgeted runs stay bitwise
identical, the ledger measures exactly the planned peak, and the
budgeted conformance audit cross-checks the whole chain."""

import numpy as np
import pytest

from repro.bench import build_variants, variant_names_for
from repro.core import estimate_peak_internal
from repro.ir import GraphBuilder
from repro.models import build_model
from repro.obs.audit import BudgetAudit, audit_budgeted
from repro.plan import InfeasibleBudget, plan_memory
from repro.runtime.executor import execute

#: the two long-skip zoo models whose peak sits far above the
#: single-node floor — the acceptance models for `repro run --budget`
BUDGET_MODELS = ("wavenet2d", "fractalnet")


def _inputs_for(graph, seed=0):
    rng = np.random.default_rng(seed)
    return {v.name: rng.standard_normal(v.shape).astype(np.float32)
            for v in graph.inputs}


@pytest.fixture(scope="module", params=BUDGET_MODELS)
def budgeted_run(request):
    """One unplanned reference + one 60%-budget enforced run."""
    graph = build_model(request.param, batch=1, hw=32)
    inputs = _inputs_for(graph)
    reference = execute(graph, inputs)
    budget = int(0.60 * reference.memory.peak_internal_bytes)
    plan = plan_memory(graph, budget)
    planned = execute(graph, inputs, plan=plan, record_ledger=True)
    return graph, reference, budget, plan, planned


class TestBudgetedZooRuns:
    def test_outputs_bitwise_identical(self, budgeted_run):
        _, reference, _, _, planned = budgeted_run
        assert set(planned.outputs) == set(reference.outputs)
        for name, array in reference.outputs.items():
            assert np.array_equal(planned.outputs[name], array), name

    def test_measured_peak_within_budget(self, budgeted_run):
        _, reference, budget, _, planned = budgeted_run
        assert planned.memory.peak_internal_bytes <= budget
        assert planned.memory.peak_internal_bytes < \
            reference.memory.peak_internal_bytes

    def test_measured_peak_equals_planned_peak(self, budgeted_run):
        # the planner's simulation is byte-exact: the enforced ledger
        # must replay to exactly the predicted peak, not merely under it
        _, _, _, plan, planned = budgeted_run
        assert planned.memory.peak_internal_bytes == plan.planned_peak_bytes

    def test_ledger_replays_clean_with_plan_events(self, budgeted_run):
        graph, _, _, plan, planned = budgeted_run
        ledger = planned.memory.ledger
        outputs = {v.name for v in graph.outputs}
        assert ledger.verify(expected_peak=plan.planned_peak_bytes,
                             keep=outputs) == []
        actions = {e.action for e in ledger.events}
        assert "spill" in actions and "prefetch" in actions

    def test_plan_stats_account_for_every_action(self, budgeted_run):
        _, _, _, plan, planned = budgeted_run
        stats = planned.memory.plan_stats
        assert stats is not None
        assert stats.spills == len(plan.spills)
        assert stats.prefetches == stats.spills
        assert stats.spilled_bytes == plan.spilled_bytes
        assert stats.spill_failures == 0 and stats.fetch_retries == 0
        assert stats.planned_peak_bytes == plan.planned_peak_bytes


def _remat_graph():
    """A cheap idle tensor whose producer input stays resident, so the
    planner prefers recomputation over a spill round-trip."""
    b = GraphBuilder("rematdemo", seed=0)
    x = b.input("x", (1, 8, 16, 16))
    a = b.relu(x, name="cheap")
    h = b.conv2d(x, 32, 3, padding=1, name="c0")
    for i in range(1, 5):
        h = b.conv2d(h, 32, 3, padding=1, name=f"c{i}")
    h = b.conv2d(h, 8, 1, name="down")
    return b.finish(b.add(h, a, x, name="join"))


class TestRematEnforcement:
    def test_planner_chooses_remat_for_cheap_resident_chain(self):
        graph = _remat_graph()
        plan = plan_memory(graph, int(0.92 * estimate_peak_internal(graph)))
        assert [a.value.name for a in plan.remats] == ["cheap.out"]
        assert not plan.spills

    def test_remat_run_is_bitwise_identical_and_ledger_clean(self):
        graph = _remat_graph()
        inputs = _inputs_for(graph)
        reference = execute(graph, inputs)
        plan = plan_memory(graph, int(0.92 * estimate_peak_internal(graph)))
        planned = execute(graph, inputs, plan=plan, record_ledger=True)
        assert np.array_equal(planned.outputs["join.out"],
                              reference.outputs["join.out"])
        assert planned.memory.plan_stats.remats == 1
        assert planned.memory.plan_stats.remat_flops == plan.remat_flops
        ledger = planned.memory.ledger
        assert any(e.action == "remat" for e in ledger.events)
        assert ledger.verify(expected_peak=plan.planned_peak_bytes,
                             keep={"join.out"}) == []


class TestOptimizedVariantSweep:
    """Regression for stale restore chains: planning the TeMCO-optimized
    wavenet variant used to emit remat chains whose frontier inputs a
    *later* planner step evicted, crashing enforcement with a KeyError.
    Every feasible plan across the sweep must now execute bitwise-clean.
    """

    def test_every_feasible_plan_executes_identically(self):
        vs = build_variants("wavenet2d", batch=1, hw=16)
        best = variant_names_for("wavenet2d")[-1]
        graph = vs.graphs[best]
        inputs = vs.input_batch()
        reference = execute(graph, inputs)
        baseline = reference.memory.peak_internal_bytes
        feasible = 0
        for fraction in (0.95, 0.85, 0.75, 0.65, 0.60):
            try:
                plan = plan_memory(graph, int(fraction * baseline))
            except InfeasibleBudget:
                continue
            feasible += 1
            planned = execute(graph, inputs, plan=plan)
            for name, array in reference.outputs.items():
                assert np.array_equal(planned.outputs[name], array), \
                    (fraction, name)
            assert planned.memory.peak_internal_bytes == \
                plan.planned_peak_bytes, fraction
        assert feasible > 0  # the sweep must exercise at least one plan


class TestBudgetedAudit:
    def test_audit_passes_on_feasible_budget(self):
        graph = build_model("wavenet2d", batch=1, hw=16)
        budget = int(0.60 * estimate_peak_internal(graph))
        audit = audit_budgeted(graph, budget, model="wavenet2d")
        assert isinstance(audit, BudgetAudit)
        assert audit.passed, [f.message for f in audit.findings]
        assert audit.measured_peak_bytes <= budget
        assert audit.measured_peak_bytes == audit.planned_peak_bytes
        assert audit.spills > 0

    def test_audit_reports_infeasible_budget_as_typed_finding(self):
        graph = build_model("wavenet2d", batch=1, hw=16)
        audit = audit_budgeted(graph, 4096, model="wavenet2d")
        assert not audit.passed
        kinds = [f.kind for f in audit.findings]
        assert "infeasible_budget" in kinds

    def test_audit_to_dict_round_trips_the_verdict(self):
        graph = build_model("wavenet2d", batch=1, hw=16)
        budget = int(0.60 * estimate_peak_internal(graph))
        doc = audit_budgeted(graph, budget, model="wavenet2d").to_dict()
        for key in ("model", "budget_bytes", "planned_peak_bytes",
                    "measured_peak_bytes", "spills", "remats", "findings"):
            assert key in doc
