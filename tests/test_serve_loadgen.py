"""Load generator: closed/open loops, reporting, percentiles."""

import json

import numpy as np
import pytest

from repro.serve import (InferenceServer, LoadgenConfig, LoadgenReport,
                         ServerConfig, request_inputs, run_loadgen)

from _graph_fixtures import make_chain_graph


class TestConfig:
    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            LoadgenConfig(mode="sideways")

    def test_bad_counts_rejected(self):
        with pytest.raises(ValueError, match="requests"):
            LoadgenConfig(requests=0)
        with pytest.raises(ValueError, match="concurrency"):
            LoadgenConfig(concurrency=0)
        with pytest.raises(ValueError, match="rate"):
            LoadgenConfig(mode="open", rate=0)


class TestRequestInputs:
    def test_matches_graph_signature(self):
        g = make_chain_graph(batch=4)
        inputs = request_inputs(g, samples=2, seed=3)
        assert inputs["x"].shape == (2, 16, 12, 12)
        assert inputs["x"].dtype == np.float32

    def test_seed_reproducible(self):
        g = make_chain_graph(batch=4)
        a = request_inputs(g, seed=5)
        b = request_inputs(g, seed=5)
        np.testing.assert_array_equal(a["x"], b["x"])


class TestClosedLoop:
    def test_all_requests_complete(self):
        g = make_chain_graph(batch=4)
        with InferenceServer(g, ServerConfig(max_wait_s=0.005)) as server:
            report = run_loadgen(server, LoadgenConfig(
                mode="closed", requests=16, concurrency=8))
        assert report.offered == 16
        assert report.completed == 16
        assert report.rejected == 0 and report.shed == 0 and report.errors == 0
        assert report.throughput_rps > 0
        assert len(report.latencies_s) == 16

    def test_report_carries_percentiles(self):
        g = make_chain_graph(batch=4)
        with InferenceServer(g, ServerConfig(max_wait_s=0.005)) as server:
            report = run_loadgen(server, LoadgenConfig(
                requests=8, concurrency=4))
        lat = report.latency
        assert 0 < lat.p50 <= lat.p95 <= lat.p99

    def test_batches_actually_coalesce(self):
        g = make_chain_graph(batch=4)
        with InferenceServer(g, ServerConfig(max_wait_s=0.01)) as server:
            run_loadgen(server, LoadgenConfig(requests=16, concurrency=8))
            stats = server.stats()
        assert stats["serve.batch_samples.max"] > 1


class TestOpenLoop:
    def test_poisson_arrivals_complete(self):
        g = make_chain_graph(batch=4)
        with InferenceServer(g, ServerConfig(max_wait_s=0.005,
                                             max_queue=64)) as server:
            report = run_loadgen(server, LoadgenConfig(
                mode="open", requests=12, rate=2000.0))
        assert report.mode == "open"
        assert report.completed + report.rejected + report.shed == 12
        assert report.completed > 0


class TestReport:
    def test_json_roundtrip(self):
        report = LoadgenReport(mode="closed", offered=4, completed=3,
                               rejected=1, shed=0, errors=0, duration_s=0.5,
                               latencies_s=[0.01, 0.02, 0.03])
        doc = json.loads(report.to_json())
        assert doc["completed"] == 3
        assert doc["throughput_rps"] == pytest.approx(6.0)
        assert set(doc["latency_ms"]) == {"best", "mean", "p50", "p95", "p99"}
        assert doc["latency_ms"]["p50"] == pytest.approx(20.0)

    def test_summary_mentions_percentiles(self):
        report = LoadgenReport(mode="closed", offered=1, completed=1,
                               rejected=0, shed=0, errors=0, duration_s=1.0,
                               latencies_s=[0.004])
        text = report.summary()
        assert "p50" in text and "p95" in text and "p99" in text
