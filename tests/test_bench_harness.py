"""Benchmark harness: variant building, tables, figure drivers (small sizes)."""

import numpy as np
import pytest

from repro.bench import (build_variants, figure4, figure10, figure12,
                         format_table, geomean, internal_reduction_geomean,
                         overhead_ratios, variant_names_for)
from repro.bench.figures import Figure11Row
from repro.core import assert_equivalent


class TestHarness:
    def test_variant_names_follow_paper(self):
        assert variant_names_for("vgg16") == ["original", "decomposed", "fusion"]
        assert variant_names_for("unet") == ["original", "decomposed",
                                             "skip_opt", "skip_opt_fusion"]

    def test_build_variants_cached(self):
        a = build_variants("unet_small", batch=1, hw=32)
        b = build_variants("unet_small", batch=1, hw=32)
        assert a is b

    def test_variants_are_equivalent(self):
        vs = build_variants("unet_small", batch=1, hw=32)
        inputs = vs.input_batch()
        assert_equivalent(vs.graphs["decomposed"], vs.graphs["skip_opt_fusion"],
                          inputs, rtol=2e-3)

    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_format_table(self):
        text = format_table(["a", "bb"], [["x", 1.5], ["y", 2.0]], title="T")
        assert "T" in text and "1.500" in text and "bb" in text


class TestFigureDrivers:
    def test_figure4_structure(self):
        result = figure4("unet_small", batch=1, hw=32)
        assert set(result.timelines) == {"original", "decomposed"}
        assert result.peaks["decomposed"] > 0
        assert 0.0 <= result.skip_share_decomposed <= 1.0
        for series in result.timelines.values():
            assert len(series) > 10

    def test_figure10_rows_and_reduction(self):
        rows = figure10(models=["alexnet", "unet_small"], batch=1, hw=32)
        models = {r.model for r in rows}
        assert models == {"alexnet", "unet_small"}
        for row in rows:
            assert row.weight_mib > 0 and row.internal_mib > 0
        reduction = internal_reduction_geomean(rows)
        assert 0.0 < reduction < 1.0

    def test_figure12_agreement_is_perfect(self):
        rows = figure12(models=["unet_small"], batch=2, hw=32)
        for row in rows:
            assert row.agreement_with_decomposed == pytest.approx(1.0)

    def test_overhead_ratio_math(self):
        rows = [
            Figure11Row("m1", "decomposed", 4, 1.0),
            Figure11Row("m1", "fusion", 4, 1.5),
            Figure11Row("m2", "decomposed", 4, 2.0),
            Figure11Row("m2", "fusion", 4, 2.0),
        ]
        ratios = overhead_ratios(rows)
        assert ratios[4] == pytest.approx((1.5 * 1.0) ** 0.5)
