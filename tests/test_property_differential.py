"""Differential property tests over randomly generated CNNs.

For arbitrary structurally-diverse graphs, the whole stack must agree
with itself:

- every decomposition method lowers to a sequence matching its
  reconstructed kernel (semantics within float tolerance),
- the full TeMCO pipeline preserves outputs and never raises the peak,
- the static estimator equals the executor's measurement (both
  accounting policies),
- serialization round-trips optimized graphs bit-exactly,
- arena plans stay valid on optimized graphs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import compare_graphs, estimate_peak_internal, optimize
from repro.decompose import DecompositionConfig, decompose_graph
from repro.ir import graph_from_dict, graph_to_dict
from repro.runtime import execute, plan_arena

from _fuzz import random_cnn
from _graph_fixtures import random_input


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_pipeline_preserves_semantics_on_random_cnns(seed):
    g = random_cnn(seed)
    dg = decompose_graph(g, DecompositionConfig(ratio=0.3))
    opt, report = optimize(dg)
    opt.validate()
    inp = random_input(dg, seed)
    eq = compare_graphs(dg, opt, inp)
    assert eq.within(rtol=3e-3, atol=1e-5), \
        f"seed {seed}: max err {eq.max_abs_error} / scale {eq.output_scale}"
    assert report.peak_after <= report.peak_before


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(0, 10_000),
       method=st.sampled_from(["tucker", "cp", "tt"]))
def test_every_method_optimizable(seed, method):
    g = random_cnn(seed, max_blocks=3)
    dg = decompose_graph(g, DecompositionConfig(method=method, ratio=0.4,
                                                cp_iters=8, seed=seed))
    opt, report = optimize(dg)
    eq = compare_graphs(dg, opt, random_input(dg, seed))
    assert eq.within(rtol=3e-3, atol=1e-5)
    assert report.peak_after <= report.peak_before


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000), inplace=st.booleans())
def test_estimator_parity_on_optimized_random_cnns(seed, inplace):
    g = random_cnn(seed)
    dg = decompose_graph(g, DecompositionConfig(ratio=0.3))
    opt, _ = optimize(dg)
    measured = execute(opt, random_input(opt, seed),
                       inplace_activations=inplace).memory.peak_internal_bytes
    assert estimate_peak_internal(opt, inplace_activations=inplace) == measured


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_serialization_roundtrip_on_optimized_random_cnns(seed):
    g = random_cnn(seed, max_blocks=3)
    dg = decompose_graph(g, DecompositionConfig(ratio=0.3))
    opt, _ = optimize(dg)
    structure, weights = graph_to_dict(opt)
    rebuilt = graph_from_dict(structure, weights)
    inp = random_input(opt, seed)
    np.testing.assert_array_equal(execute(opt, inp).output(),
                                  execute(rebuilt, inp).output())


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_pipeline_idempotent_on_random_cnns(seed):
    """Optimizing an already-optimized graph must be safe and not regress."""
    g = random_cnn(seed, max_blocks=3)
    dg = decompose_graph(g, DecompositionConfig(ratio=0.3))
    once, r1 = optimize(dg)
    twice, r2 = optimize(once)
    assert r2.peak_after <= r1.peak_after
    eq = compare_graphs(once, twice, random_input(once, seed))
    assert eq.within(rtol=3e-3, atol=1e-5)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_arena_execution_on_random_cnns(seed):
    """Arena-backed execution must agree with the normal executor —
    the planner's non-overlap guarantee proven by running in it."""
    from repro.runtime import execute_in_arena
    g = random_cnn(seed, max_blocks=3)
    inp = random_input(g, seed)
    want = execute(g, inp).output()
    outputs, _plan = execute_in_arena(g, inp)
    np.testing.assert_allclose(outputs[g.outputs[0].name], want, atol=1e-5)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_arena_valid_on_optimized_random_cnns(seed):
    g = random_cnn(seed)
    dg = decompose_graph(g, DecompositionConfig(ratio=0.3))
    opt, _ = optimize(dg)
    plan = plan_arena(opt)
    plan.validate()
    assert plan.fragmentation < 1.0
