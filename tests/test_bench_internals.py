"""Benchmark-harness internals not covered by the driver tests."""

import numpy as np
import pytest

from repro.bench import (PAPER_LABELS, bar_chart, build_variants, fast_mode,
                         geomean, overhead_ratios, variant_names_for)
from repro.bench.figures import Figure10Row, Figure11Row, internal_reduction_geomean
from repro.models import MODEL_ZOO


class TestLabels:
    def test_every_variant_has_a_paper_label(self):
        for model in MODEL_ZOO:
            for variant in variant_names_for(model):
                assert variant in PAPER_LABELS

    def test_figure10_row_totals(self):
        row = Figure10Row(model="m", variant="fusion", weight_mib=1.5,
                          internal_mib=2.5)
        assert row.total_mib == 4.0
        assert row.label == "Fusion"


class TestOverheadRatios:
    def test_ignores_models_missing_a_side(self):
        rows = [Figure11Row("a", "decomposed", 4, 1.0)]  # no optimized pair
        assert overhead_ratios(rows) == {}

    def test_multiple_batches_kept_separate(self):
        rows = [
            Figure11Row("a", "decomposed", 4, 1.0),
            Figure11Row("a", "fusion", 4, 2.0),
            Figure11Row("a", "decomposed", 32, 1.0),
            Figure11Row("a", "fusion", 32, 3.0),
        ]
        ratios = overhead_ratios(rows)
        assert ratios[4] == pytest.approx(2.0)
        assert ratios[32] == pytest.approx(3.0)


class TestGeomeanReduction:
    def test_uses_best_temco_variant(self):
        rows = [
            Figure10Row("m", "original", 0.0, 10.0),
            Figure10Row("m", "decomposed", 0.0, 10.0),
            Figure10Row("m", "skip_opt", 0.0, 8.0),
            Figure10Row("m", "skip_opt_fusion", 0.0, 2.0),
        ]
        assert internal_reduction_geomean(rows) == pytest.approx(0.8)


class TestBarChart:
    def test_proportional_bars(self):
        chart = bar_chart([("big", 4.0), ("small", 1.0)], width=40)
        lines = chart.splitlines()
        assert lines[0].count("#") == 40
        assert lines[1].count("#") == 10

    def test_empty_items(self):
        assert bar_chart([], title="t") == "t"

    def test_zero_values_render(self):
        chart = bar_chart([("z", 0.0), ("one", 1.0)])
        assert "z" in chart and "one" in chart


class TestFastMode:
    def test_env_toggle(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_FAST", "1")
        assert fast_mode()
        monkeypatch.setenv("REPRO_BENCH_FAST", "0")
        assert not fast_mode()
        monkeypatch.delenv("REPRO_BENCH_FAST")
        assert not fast_mode()


class TestVariantSet:
    def test_input_batch_shape_matches_graph(self):
        vs = build_variants("unet_small", batch=1, hw=32)
        batch = vs.input_batch()
        assert batch["image"].shape == vs.graphs["original"].inputs[0].shape
        assert batch["image"].dtype == np.float32

    def test_geomean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([2.0, -1.0])
