"""The `repro top` / `repro diag` CLI and loadgen anomaly flags."""

import json
import tarfile

import pytest

from repro.cli import main
from repro.fleet import RouterConfig  # noqa: F401 — fleet import sanity
from repro.ir import save_graph
from repro.obs import FleetView
from repro.serve import serve_http

from _graph_fixtures import make_chain_graph
from test_fleet_router import _fleet, _payload


@pytest.fixture()
def graph_file(tmp_path):
    path = tmp_path / "chain.npz"
    save_graph(make_chain_graph(batch=4), path)
    return str(path)


class TestTopCommand:
    def test_once_json_reports_the_fleet(self, capsys):
        with _fleet(replicas=2) as fleet:
            for i in range(4):
                fleet.infer(_payload(fleet.graph, seed=i), timeout=30.0)
            fleet.view = FleetView(fleet)
            with serve_http(fleet, port=0) as frontend:
                url = f"http://127.0.0.1:{frontend.address[1]}/fleetz"
                assert main(["top", "--url", url, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["fleet"]["completed"] == 4
        assert {r["id"] for r in doc["replicas"]} == {0, 1}
        for replica in doc["replicas"]:
            assert "qps" in replica and "attempt_p95_ms" in replica

    def test_once_renders_a_frame(self, capsys):
        with _fleet(replicas=2) as fleet:
            fleet.infer(_payload(fleet.graph), timeout=30.0)
            fleet.view = FleetView(fleet)
            with serve_http(fleet, port=0) as frontend:
                url = f"http://127.0.0.1:{frontend.address[1]}/fleetz"
                assert main(["top", "--url", url, "--once",
                             "--no-color"]) == 0
        out = capsys.readouterr().out
        assert fleet.graph.name in out
        assert "\x1b[" not in out  # --no-color means no ANSI

    def test_unreachable_endpoint_exits_nonzero(self, capsys):
        rc = main(["top", "--url", "http://127.0.0.1:9/fleetz",
                   "--once", "--timeout", "0.5"])
        assert rc == 1
        assert "cannot fetch" in capsys.readouterr().err


class TestDiagCommand:
    def test_single_server_bundle(self, graph_file, tmp_path, capsys):
        out = tmp_path / "diag.tar.gz"
        assert main(["diag", graph_file, "--requests", "4",
                     "-o", str(out)]) == 0
        with tarfile.open(out) as tar:
            members = set(tar.getnames())
            assert {"MANIFEST.json", "fleetz.json", "timeseries.json",
                    "metrics.prom", "slo.json", "anomalies.json",
                    "config.json", "trace.json"} <= members
            manifest = json.loads(
                tar.extractfile("MANIFEST.json").read())
            fleetz = json.loads(tar.extractfile("fleetz.json").read())
            prom = tar.extractfile("metrics.prom").read().decode()
        assert sorted(manifest["members"]) == sorted(members)
        assert fleetz["fleet"]["completed"] == 4
        assert "repro_build_info" in prom
        assert "wrote diag bundle" in capsys.readouterr().out

    def test_fleet_bundle_stitches_replica_rows(self, graph_file, tmp_path):
        out = tmp_path / "fleet-diag.tar.gz"
        assert main(["diag", graph_file, "--replicas", "2",
                     "--requests", "4", "-o", str(out)]) == 0
        with tarfile.open(out) as tar:
            trace = json.loads(tar.extractfile("trace.json").read())
            fleetz = json.loads(tar.extractfile("fleetz.json").read())
        rows = {e["args"]["name"] for e in trace["traceEvents"]
                if e.get("name") == "thread_name"}
        assert "fleet" in rows
        assert any(r.startswith("replica-") for r in rows)
        assert len(fleetz["replicas"]) == 2

    def test_fleet_rejects_per_replica_budget(self, graph_file, capsys):
        assert main(["diag", graph_file, "--replicas", "2",
                     "--budget", "90%"]) == 2
        assert "--host-budget" in capsys.readouterr().err


class TestLoadgenAnomalyFlags:
    def test_detect_anomalies_lands_in_json(self, graph_file, capsys):
        assert main(["loadgen", graph_file, "--fleet", "2",
                     "--requests", "6", "--concurrency", "2",
                     "--detect-anomalies", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert "anomalies" in doc
        assert isinstance(doc["anomalies"], list)

    def test_fail_on_anomaly_passes_on_healthy_run(self, graph_file, capsys):
        assert main(["loadgen", graph_file, "--requests", "6",
                     "--concurrency", "2", "--fail-on-anomaly",
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["errors"] == 0

    def test_without_flag_no_anomalies_key(self, graph_file, capsys):
        assert main(["loadgen", graph_file, "--requests", "4",
                     "--concurrency", "2", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert "anomalies" not in doc
