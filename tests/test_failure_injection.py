"""Failure injection: malformed inputs must fail loudly, degenerate
inputs must degrade to no-ops — never to silent corruption."""

import numpy as np
import pytest

from repro.core import (SkipOptConfig, TeMCOConfig, estimate_peak_internal,
                        fuse_activation_layers, optimize,
                        optimize_skip_connections)
from repro.decompose import DecompositionConfig, decompose_graph
from repro.ir import Graph, GraphBuilder, Node, Value, ops
from repro.runtime import InferenceSession, execute

from _graph_fixtures import make_chain_graph, random_input


class TestMalformedGraphs:
    def test_cycle_rejected(self):
        g = make_chain_graph()
        # wire the first node's input to the last node's output
        g.nodes[0].inputs[0] = g.nodes[-1].output
        with pytest.raises(ValueError, match="before its definition"):
            g.validate()

    def test_dangling_input_rejected(self):
        g = make_chain_graph()
        g.nodes[1].inputs[0] = Value("ghost", g.nodes[1].inputs[0].shape)
        with pytest.raises(ValueError, match="ghost"):
            g.validate()

    def test_wrong_weight_rank_rejected(self):
        g = make_chain_graph()
        g.find_node("c1").params["weight"] = np.zeros((4, 4), np.float32)
        with pytest.raises(ValueError, match="4D"):
            g.validate()

    def test_missing_bias_is_fine_but_bad_shape_is_not(self):
        g = make_chain_graph()
        node = g.find_node("c1")
        node.params.pop("bias")
        g.validate()  # bias optional
        node.params["bias"] = np.zeros(3, np.float32)
        with pytest.raises(ValueError, match="bias shape"):
            g.validate()

    def test_executor_checks_kernel_shape_agreement(self):
        g = make_chain_graph()
        # corrupt the declared output shape after validation time
        node = g.nodes[0]
        node.output.shape = (node.output.shape[0], node.output.shape[1],
                             node.output.shape[2], node.output.shape[3] - 1)
        with pytest.raises(RuntimeError, match="produced shape"):
            execute(g, random_input(g), check_leaks=False)


class TestDegenerateInputs:
    def test_optimize_graph_without_convs(self):
        b = GraphBuilder("noconv", seed=0)
        x = b.input("x", (1, 4, 8, 8))
        g = b.finish(b.relu(b.sigmoid(x)))
        opt, report = optimize(g)
        assert report.peak_after <= report.peak_before
        np.testing.assert_allclose(
            execute(g, random_input(g)).output(),
            execute(opt, random_input(opt)).output())

    def test_decompose_graph_without_eligible_convs(self):
        b = GraphBuilder("tiny", seed=0)
        x = b.input("x", (1, 2, 8, 8))
        g = b.finish(b.conv2d(x, 4, 3, padding=1))  # below min_out_channels
        dg = decompose_graph(g)
        assert [n.op for n in dg.nodes] == [n.op for n in g.nodes]

    def test_single_node_graph(self):
        b = GraphBuilder("one", seed=0)
        x = b.input("x", (1, 1, 2, 2))
        g = b.finish(b.relu(x))
        assert estimate_peak_internal(g) == 2 * x.nbytes
        opt, _ = optimize(g)
        assert len(opt.nodes) == 1

    def test_skip_opt_on_chain_is_noop(self):
        g = make_chain_graph()
        names = [n.name for n in g.nodes]
        stats = optimize_skip_connections(g, SkipOptConfig())
        assert stats.candidates == 0
        assert [n.name for n in g.nodes] == names

    def test_fusion_on_undecomposed_graph_is_noop(self):
        g = make_chain_graph()  # no lconvs: plain 3x3 convs
        stats = fuse_activation_layers(g)
        assert stats.fused == 0

    def test_batch_one_pixel_one(self):
        b = GraphBuilder("px", seed=0)
        x = b.input("x", (1, 16, 1, 1))
        h = b.relu(b.conv2d(x, 32, 1, name="c"))
        g = b.finish(h)
        out = execute(g, random_input(g)).output()
        assert out.shape == (1, 32, 1, 1)

    def test_rank1_decomposition(self):
        # ratio small enough that every rank floors at 1
        b = GraphBuilder("r1", seed=0)
        x = b.input("x", (1, 16, 8, 8))
        g = b.finish(b.conv2d(x, 16, 3, padding=1, name="c"))
        dg = decompose_graph(g, DecompositionConfig(ratio=0.001))
        fconv = next(n for n in dg.nodes if n.attrs.get("role") == "fconv")
        assert fconv.params["weight"].shape[0] == 1
        out = execute(dg, random_input(dg)).output()
        assert np.isfinite(out).all()


class TestNumericRobustness:
    def test_extreme_inputs_stay_finite(self):
        g = decompose_graph(make_chain_graph(), DecompositionConfig(ratio=0.25))
        opt, _ = optimize(g)
        big = {"x": np.full(g.inputs[0].shape, 1e10, np.float32)}
        for graph in (g, opt):
            out = execute(graph, big).output()
            assert not np.isnan(out).any()

    def test_zero_input(self):
        g = decompose_graph(make_chain_graph(), DecompositionConfig(ratio=0.25))
        opt, _ = optimize(g)
        zero = {"x": np.zeros(g.inputs[0].shape, np.float32)}
        np.testing.assert_allclose(execute(g, zero).output(),
                                   execute(opt, zero).output(), atol=1e-6)

    def test_float64_graph_executes(self):
        from repro.ir import DType
        b = GraphBuilder("dbl", seed=0, dtype=DType.float64)
        x = b.input("x", (1, 4, 6, 6))
        g = b.finish(b.relu(b.conv2d(x, 8, 3, padding=1)))
        out = execute(g, {"x": np.zeros((1, 4, 6, 6))}).output()
        assert out.dtype == np.float64
        # the allocator charges 8 bytes per element
        assert estimate_peak_internal(g) % 8 == 0


class TestFiniteChecking:
    def test_check_finite_names_the_culprit(self):
        b = GraphBuilder("nan", seed=0)
        x = b.input("x", (1, 2, 2, 2))
        h = b.conv2d(x, 2, 1, name="poisoned")
        g = b.finish(b.relu(h))
        g.find_node("poisoned").params["weight"][:] = np.inf
        with pytest.raises(FloatingPointError, match="poisoned"):
            execute(g, {"x": np.ones((1, 2, 2, 2), np.float32)},
                    check_finite=True, check_leaks=False)

    def test_check_finite_quiet_on_healthy_graph(self):
        g = make_chain_graph()
        execute(g, random_input(g), check_finite=True)
