"""In-place activation accounting policy (Eq. 3 vs framework reality)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import estimate_peak_internal, optimize
from repro.decompose import DecompositionConfig, decompose_graph
from repro.ir import GraphBuilder
from repro.runtime import execute

from _graph_fixtures import (make_chain_graph, make_residual_graph,
                             make_skip_graph, random_input)


class TestInplaceExecutor:
    def test_activation_pair_collapses(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 8, 8, 8))      # 2048 B
        h = b.relu(x)
        g = b.finish(h)
        inp = random_input(g)
        default = execute(g, inp).memory.peak_internal_bytes
        inplace = execute(g, inp, inplace_activations=True).memory.peak_internal_bytes
        assert default == 2 * 2048
        assert inplace == 2048

    def test_multi_consumer_input_not_reused(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 8, 8, 8))
        h = b.relu(x)
        g = b.finish(b.add(h, x))  # x used twice: relu cannot be in-place
        inp = random_input(g)
        default = execute(g, inp).memory.peak_internal_bytes
        inplace = execute(g, inp, inplace_activations=True).memory.peak_internal_bytes
        assert inplace == default

    def test_outputs_preserved(self):
        for factory in (make_chain_graph, make_skip_graph, make_residual_graph):
            g = factory()
            inp = random_input(g)
            a = execute(g, inp).output()
            b_ = execute(g, inp, inplace_activations=True).output()
            np.testing.assert_array_equal(a, b_)

    def test_never_increases_peak(self):
        for factory in (make_chain_graph, make_skip_graph, make_residual_graph):
            g = factory()
            inp = random_input(g)
            default = execute(g, inp).memory.peak_internal_bytes
            inplace = execute(g, inp,
                              inplace_activations=True).memory.peak_internal_bytes
            assert inplace <= default


class TestInplaceEstimator:
    @pytest.mark.parametrize("factory", [make_chain_graph, make_skip_graph,
                                         make_residual_graph])
    def test_estimator_matches_executor(self, factory):
        g = factory()
        measured = execute(g, random_input(g),
                           inplace_activations=True).memory.peak_internal_bytes
        assert estimate_peak_internal(g, inplace_activations=True) == measured

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 500))
    def test_property_parity_on_random_graphs(self, seed):
        rng = np.random.default_rng(seed)
        b = GraphBuilder("rand", seed=seed)
        h = b.input("x", (1, int(rng.integers(1, 5)), 6, 6))
        values = [h]
        for _ in range(int(rng.integers(2, 8))):
            pick = values[int(rng.integers(0, len(values)))]
            kind = rng.integers(0, 4)
            if kind == 0:
                h = b.conv2d(pick, int(rng.integers(1, 6)), 1)
            elif kind == 1:
                h = b.relu(pick)
            elif kind == 2:
                h = b.sigmoid(pick)
            else:
                h = b.add(pick, pick)
            values.append(h)
        g = b.finish(values[-1])
        measured = execute(g, random_input(g, seed),
                           inplace_activations=True).memory.peak_internal_bytes
        assert estimate_peak_internal(g, inplace_activations=True) == measured


class TestPolicyRobustness:
    def test_temco_still_wins_under_inplace_policy(self):
        """The paper's claim must not be an artifact of the non-inplace
        accounting: even with inplace activations, the optimized graph
        beats the decomposed baseline on the skip-connected fixture."""
        g = decompose_graph(make_skip_graph(), DecompositionConfig(ratio=0.1))
        opt, _ = optimize(g)
        inp = random_input(g)
        dec = execute(g, inp, inplace_activations=True).memory.peak_internal_bytes
        tem = execute(opt, inp, inplace_activations=True).memory.peak_internal_bytes
        assert tem < dec
