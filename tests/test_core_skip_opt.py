"""Skip-connection optimization (Algorithms 1 & 2)."""

import numpy as np
import pytest

from repro.core import (SkipOptConfig, assert_equivalent,
                        estimate_peak_internal, find_reduced,
                        find_skip_connections, optimize_skip_connections)
from repro.decompose import DecompositionConfig, decompose_graph
from repro.ir import GraphBuilder, ops
from repro.runtime import execute

from _graph_fixtures import make_residual_graph, make_skip_graph, random_input


def _decomposed_skip_graph(ratio=0.25, **kwargs):
    return decompose_graph(make_skip_graph(**kwargs),
                           DecompositionConfig(ratio=ratio))


class TestFindReduced:
    def test_leaf_is_lconv(self):
        g = _decomposed_skip_graph()
        lconv = next(n for n in g.nodes if n.attrs.get("role") == "lconv")
        plan = find_reduced(g, lconv)
        assert plan is not None
        assert plan.nodes == (lconv,)
        assert plan.reduced == (lconv.inputs[0],)
        assert plan.size == lconv.output.nbytes

    def test_chain_through_activation(self):
        g = _decomposed_skip_graph()
        skips = find_skip_connections(g, 4)
        assert skips, "expected a skip connection"
        plan = find_reduced(g, skips[0].producer)
        assert plan is not None
        assert [n.op for n in plan.nodes] == ["conv2d", "relu"]
        assert ops.is_lconv(plan.nodes[0])

    def test_fails_at_graph_input(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 4, 4, 4))
        h = b.relu(x)
        g = b.finish(h)
        assert find_reduced(g, g.nodes[0]) is None

    def test_fails_at_non_lconv_conv(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 4, 8, 8))
        h = b.relu(b.conv2d(x, 8, 3, padding=1))  # spatial conv, not lconv
        g = b.finish(h)
        assert find_reduced(g, g.nodes[-1]) is None

    def test_budget_bails_on_deep_chains(self):
        g = decompose_graph(make_residual_graph(blocks=4),
                            DecompositionConfig(ratio=0.25))
        skips = find_skip_connections(g, 4)
        deep = max(skips, key=lambda s: s.interval.begin)
        assert find_reduced(g, deep.producer, max_nodes=2) is None

    def test_multi_branch_add_chain(self):
        g = decompose_graph(make_residual_graph(blocks=1),
                            DecompositionConfig(ratio=0.25))
        # block output = relu(add(lconv_out, stem_relu_out));
        # the stem branch ends at the stem's lconv -> traversable
        final_relu = g.nodes[-1]
        plan = find_reduced(g, final_relu)
        assert plan is not None
        assert sum(1 for n in plan.nodes if ops.is_lconv(n)) >= 2
        assert plan.peak > plan.size

    def test_peak_accounts_for_residents(self):
        g = _decomposed_skip_graph()
        skips = find_skip_connections(g, 4)
        plan = find_reduced(g, skips[0].producer)
        # running the chain needs the restored tensor plus its reduced input
        assert plan.peak >= plan.size + plan.reduced[0].nbytes


class TestOptimizePass:
    def test_unet_style_skip_replaced(self):
        g = _decomposed_skip_graph()
        stats = optimize_skip_connections(
            g, SkipOptConfig(distance_threshold=4))
        assert stats.candidates == 1
        assert stats.optimized == 1
        assert stats.copies_inserted == 1
        join = g.find_node("join")
        # the concat operand is now a freshly copied restore output
        assert join.inputs[0].producer != "relu_1"
        g.validate()

    def test_semantics_preserved(self):
        g = _decomposed_skip_graph()
        before = g.clone("before")
        optimize_skip_connections(g, SkipOptConfig(distance_threshold=4))
        assert_equivalent(before, g, random_input(g), rtol=1e-3)

    def test_reduced_tensor_kept_alive_instead(self):
        g = _decomposed_skip_graph()
        optimize_skip_connections(g, SkipOptConfig(distance_threshold=4))
        res = execute(g, random_input(g))
        # at the join, a reduced (core-output) tensor must be in the live set
        join_index = g.index_of(g.find_node("join"))
        live_at_join = [e for e in res.memory.events if e.index == join_index]
        assert live_at_join

    def test_compute_guard_rejects_wide_fanout(self):
        # many far uses multiply the copy cost; a tight slack must reject
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 16, 8, 8))
        h = b.relu(b.conv2d(x, 32, 3, padding=1, name="c0"))
        skip = h
        for i in range(12):
            h = b.relu(b.conv2d(h, 32, 3, padding=1, name=f"c{i + 1}"))
        tails = [b.sigmoid(skip, name=f"use{i}") for i in range(6)]
        g = b.finish(b.add(h, *tails[:1]))
        for t in tails[1:]:
            pass
        dg = decompose_graph(g, DecompositionConfig(ratio=0.25))
        stats = optimize_skip_connections(
            dg, SkipOptConfig(distance_threshold=4, compute_slack=1e-9))
        assert stats.optimized == 0
        assert stats.rejected_compute >= 1

    def test_memory_guard_rejects(self):
        g = _decomposed_skip_graph()
        stats = optimize_skip_connections(
            g, SkipOptConfig(distance_threshold=4, memory_slack=1e-9))
        assert stats.optimized == 0
        assert stats.rejected_memory == 1

    def test_global_check_rolls_back_useless_rewrites(self):
        # without downstream fusion, rewriting this graph does not reduce
        # the static peak, so global_check must roll everything back
        g = _decomposed_skip_graph()
        baseline = estimate_peak_internal(g)
        names_before = [n.name for n in g.nodes]
        stats = optimize_skip_connections(
            g, SkipOptConfig(distance_threshold=4, global_check=True))
        assert estimate_peak_internal(g) <= baseline
        if stats.rejected_global:
            assert [n.name for n in g.nodes] == names_before

    def test_no_candidates_is_noop(self):
        g = _decomposed_skip_graph()
        stats = optimize_skip_connections(
            g, SkipOptConfig(distance_threshold=1000))
        assert stats.candidates == 0
        assert stats.optimized == 0

    def test_multiple_far_uses_get_independent_copies(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 16, 8, 8))
        h = b.relu(b.conv2d(x, 32, 3, padding=1, name="c0"))
        skip = h
        for i in range(5):
            h = b.relu(b.conv2d(h, 32, 3, padding=1, name=f"c{i + 1}"))
        u1 = b.add(h, skip, name="useA")
        h2 = b.relu(b.conv2d(u1, 32, 3, padding=1, name="tail"))
        u2 = b.add(h2, skip, name="useB")
        g = b.finish(u2)
        dg = decompose_graph(g, DecompositionConfig(ratio=0.25))
        before = dg.clone("before")
        stats = optimize_skip_connections(
            dg, SkipOptConfig(distance_threshold=4, compute_slack=10.0,
                              memory_slack=10.0))
        assert stats.optimized >= 1
        assert stats.copies_inserted >= 2
        assert_equivalent(before, dg, random_input(dg), rtol=1e-3)
