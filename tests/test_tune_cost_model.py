"""repro.tune.cost_model: site extraction, candidate grids, pruning."""

import pytest

from repro.core import optimize
from repro.decompose import DecompositionConfig, decompose_graph
from repro.kernels import DEFAULT_BLOCK_SIZE, fused_scratch_bytes
from repro.tune import (SiteSpec, collect_sites, estimate_cost,
                        prune_candidates, site_candidates)
from repro.tune.cost_model import DEFAULT_BLOCK_SIZES, DEFAULT_SPATIAL_TILES

from _graph_fixtures import make_chain_graph


@pytest.fixture(scope="module")
def fused_sites():
    graph = make_chain_graph()
    optimized, _report = optimize(
        decompose_graph(graph, DecompositionConfig(seed=0)))
    nodes = collect_sites(optimized)
    assert nodes, "fixture graph should fuse"
    return nodes


class TestSiteSpec:
    def test_from_node_extracts_shapes(self, fused_sites):
        for node in fused_sites:
            site = SiteSpec.from_node(node)
            assert site.c_prime == node.params["w1"].shape[0]
            assert site.input_shape == tuple(node.inputs[0].shape)
            assert site.itemsize == 4
            assert site.site_key == node.attrs["fused_from"][0]

    def test_rejects_non_fused_node(self):
        graph = make_chain_graph()
        with pytest.raises(ValueError, match="not a fused site"):
            SiteSpec.from_node(graph.nodes[0])


class TestCandidates:
    def test_blocks_clamped_and_deduped(self, fused_sites):
        site = SiteSpec.from_node(fused_sites[0])
        cands = site_candidates(site)
        blocks = [b for b, t in cands if t == 0]
        assert blocks == sorted(set(blocks))
        assert all(1 <= b <= site.c_prime for b, _t in cands)
        assert max(blocks) == min(max(DEFAULT_BLOCK_SIZES), site.c_prime)

    def test_tile_zero_always_present(self, fused_sites):
        site = SiteSpec.from_node(fused_sites[0])
        assert any(t == 0 for _b, t in site_candidates(site))

    def test_non_tileable_spatial_sizes_dropped(self, fused_sites):
        site = SiteSpec.from_node(fused_sites[0])
        _n, _c, h, w = site.input_shape
        # a tile larger than the feature map can never apply exactly
        cands = site_candidates(site, spatial_tiles=(0, max(h, w) * 2))
        assert {t for _b, t in cands} == {0}


class TestEstimate:
    def test_scratch_matches_kernel_accounting(self, fused_sites):
        site = SiteSpec.from_node(fused_sites[0])
        for block, tile in site_candidates(site):
            est = estimate_cost(site, block, tile)
            assert est.scratch_bytes == fused_scratch_bytes(
                site.input_shape, site.itemsize, block_size=block,
                c_prime=site.c_prime, spatial_tile=tile)

    def test_scratch_monotone_in_block(self, fused_sites):
        site = SiteSpec.from_node(fused_sites[0])
        blocks = sorted({b for b, t in site_candidates(site) if t == 0})
        scratch = [estimate_cost(site, b, 0).scratch_bytes for b in blocks]
        assert scratch == sorted(scratch)

    def test_fewer_blocks_less_input_traffic(self, fused_sites):
        site = SiteSpec.from_node(fused_sites[0])
        small = estimate_cost(site, 1, 0)
        large = estimate_cost(site, site.c_prime, 0)
        assert small.blocks > large.blocks
        assert small.traffic_bytes > large.traffic_bytes
        assert small.flops == large.flops  # tile-invariant

    def test_oversized_block_clamps(self, fused_sites):
        site = SiteSpec.from_node(fused_sites[0])
        est = estimate_cost(site, 10 ** 6, 0)
        assert est.block_size == site.c_prime
        assert est.blocks == 1 or site.pool is not None


class TestPrune:
    def test_keep_bounds_and_default_survives(self, fused_sites):
        site = SiteSpec.from_node(fused_sites[0])
        cands = site_candidates(site, DEFAULT_BLOCK_SIZES,
                                DEFAULT_SPATIAL_TILES)
        default_key = (min(DEFAULT_BLOCK_SIZE, site.c_prime), 0)
        kept = prune_candidates(site, cands, keep=3)
        assert len(kept) <= 4  # keep + possibly re-appended default
        assert default_key in {(c.block_size, c.spatial_tile) for c in kept}

    def test_scratch_cap_drops_but_keeps_default(self, fused_sites):
        site = SiteSpec.from_node(fused_sites[0])
        cands = site_candidates(site)
        kept = prune_candidates(site, cands, keep=16, max_scratch_bytes=1)
        default_key = (min(DEFAULT_BLOCK_SIZE, site.c_prime), 0)
        keys = {(c.block_size, c.spatial_tile) for c in kept}
        assert keys == {default_key}

    def test_ranked_by_score(self, fused_sites):
        site = SiteSpec.from_node(fused_sites[0])
        kept = prune_candidates(site, site_candidates(site), keep=8)
        scores = [c.score for c in kept[:-1]]  # last may be appended default
        assert scores == sorted(scores)
