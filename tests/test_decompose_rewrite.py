"""The conv → decomposed-sequence graph rewrite."""

import numpy as np
import pytest

from repro.decompose import (DecompositionConfig, decompose_graph,
                             decomposition_records)
from repro.ir import GraphBuilder, ops
from repro.kernels import conv2d
from repro.runtime import execute

from _graph_fixtures import make_chain_graph, make_skip_graph, random_input


class TestConfig:
    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="unknown method"):
            DecompositionConfig(method="svd")

    def test_bad_ratio_rejected(self):
        with pytest.raises(ValueError, match="ratio"):
            DecompositionConfig(ratio=2.0)


class TestRewriteStructure:
    def test_tucker_sequence_layout(self):
        g = decompose_graph(make_chain_graph(), DecompositionConfig(ratio=0.25))
        roles = [n.attrs.get("role") for n in g.nodes
                 if n.attrs.get("decomposed_from") == "c1"]
        assert roles == ["fconv", "core", "lconv"]
        lconv = next(n for n in g.nodes if n.attrs.get("role") == "lconv"
                     and n.attrs["decomposed_from"] == "c1")
        assert ops.is_lconv(lconv)

    def test_cp_sequence_layout(self):
        g = decompose_graph(make_chain_graph(),
                            DecompositionConfig(method="cp", ratio=0.25,
                                                cp_iters=5))
        nodes = [n for n in g.nodes if n.attrs.get("decomposed_from") == "c1"]
        assert len(nodes) == 4
        dw = [n for n in nodes if int(n.attrs.get("groups", 1)) > 1]
        assert len(dw) == 2  # two depthwise spatial factors

    def test_tt_sequence_layout(self):
        g = decompose_graph(make_chain_graph(),
                            DecompositionConfig(method="tt", ratio=0.25))
        nodes = [n for n in g.nodes if n.attrs.get("decomposed_from") == "c1"]
        kernels = [tuple(n.params["weight"].shape[2:]) for n in nodes]
        assert kernels == [(1, 1), (3, 1), (1, 3), (1, 1)]

    def test_output_shapes_preserved(self):
        g = make_skip_graph()
        for method in ("tucker", "cp", "tt"):
            dg = decompose_graph(g, DecompositionConfig(method=method,
                                                        ratio=0.25, cp_iters=5))
            assert dg.outputs[0].shape == g.outputs[0].shape
            dg.validate()

    def test_skip_names_respected(self):
        g = decompose_graph(make_chain_graph(),
                            DecompositionConfig(ratio=0.25, skip_names=("c1",)))
        assert any(n.name == "c1" for n in g.nodes)
        assert not any(n.attrs.get("decomposed_from") == "c1" for n in g.nodes)

    def test_small_convs_left_alone(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 4, 8, 8))
        h = b.conv2d(x, 8, 3, padding=1, name="tiny")   # cout < min_out_channels
        g = b.finish(h)
        dg = decompose_graph(g, DecompositionConfig(ratio=0.5,
                                                    min_out_channels=16))
        assert any(n.name == "tiny" for n in dg.nodes)

    def test_pointwise_convs_left_alone(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 32, 8, 8))
        h = b.conv2d(x, 64, 1, name="pw")
        g = b.finish(h)
        dg = decompose_graph(g, DecompositionConfig(ratio=0.25))
        assert any(n.name == "pw" for n in dg.nodes)

    def test_original_graph_untouched(self):
        g = make_chain_graph()
        names_before = [n.name for n in g.nodes]
        decompose_graph(g, DecompositionConfig(ratio=0.25))
        assert [n.name for n in g.nodes] == names_before

    def test_orig_flops_recorded_on_lconv(self):
        g = make_chain_graph()
        c1_flops = ops.node_flops(g.find_node("c1"))
        dg = decompose_graph(g, DecompositionConfig(ratio=0.25))
        lconv = next(n for n in dg.nodes
                     if n.attrs.get("role") == "lconv"
                     and n.attrs["decomposed_from"] == "c1")
        assert lconv.attrs["orig_flops"] == c1_flops


class TestRewriteSemantics:
    @pytest.mark.parametrize("method", ["tucker", "cp", "tt"])
    def test_sequence_equals_reconstructed_kernel(self, method):
        """The decomposed sequence must compute exactly the convolution
        with the reconstructed (approximate) kernel — decomposition error
        comes *only* from factorization, never from the lowering."""
        b = GraphBuilder("t", seed=2)
        x = b.input("x", (2, 12, 9, 9))
        h = b.conv2d(x, 16, 3, stride=2, padding=1, name="conv")
        g = b.finish(h)
        dg = decompose_graph(g, DecompositionConfig(method=method, ratio=0.4,
                                                    cp_iters=30))
        inp = random_input(g, seed=1)
        got = execute(dg, inp).output()
        weff = _effective_kernel(dg, "conv", method)
        want = conv2d(inp["x"].astype(np.float64), weff, None,
                      stride=(2, 2), padding=(1, 1))
        np.testing.assert_allclose(got, want, atol=5e-5)

    def test_full_rank_tucker_is_lossless(self):
        g = make_chain_graph()
        dg = decompose_graph(g, DecompositionConfig(ratio=1.0))
        inp = random_input(g)
        np.testing.assert_allclose(execute(dg, inp).output(),
                                   execute(g, inp).output(), atol=1e-4)

    def test_bias_preserved(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 16, 4, 4))
        bias = np.arange(16, dtype=np.float32)
        h = b.conv2d(x, 16, 3, padding=1, bias_value=bias, name="c")
        g = b.finish(h)
        dg = decompose_graph(g, DecompositionConfig(ratio=1.0))
        zero = {"x": np.zeros((1, 16, 4, 4), np.float32)}
        out = execute(dg, zero).output()
        np.testing.assert_allclose(out, bias[None, :, None, None]
                                   * np.ones_like(out), atol=1e-5)


class TestRecords:
    def test_records_cover_each_sequence(self):
        dg = decompose_graph(make_skip_graph(), DecompositionConfig(ratio=0.25))
        records = decomposition_records(dg)
        origins = {r.original for r in records}
        assert origins == {"enc1", "enc2", "dec"}
        for r in records:
            assert 0 <= r.fit_error < 1.5
            assert len(r.new_nodes) == 3


def _effective_kernel(dg, origin, method):
    nodes = {n.attrs.get("role"): n for n in dg.nodes
             if n.attrs.get("decomposed_from") == origin}
    by_name = {n.name: n for n in dg.nodes}
    fc = nodes["fconv"].params["weight"][:, :, 0, 0].astype(np.float64)
    lc = nodes["lconv"].params["weight"][:, :, 0, 0].astype(np.float64)
    if method == "tucker":
        core = by_name[f"{origin}.core"].params["weight"].astype(np.float64)
        return np.einsum("or,rskl,sc->ockl", lc, core, fc)
    if method == "cp":
        ch = by_name[f"{origin}.dw_h"].params["weight"][:, 0, :, 0].astype(np.float64)
        cw = by_name[f"{origin}.dw_w"].params["weight"][:, 0, 0, :].astype(np.float64)
        return np.einsum("or,rc,rk,rl->ockl", lc, fc, ch, cw)
    gh = by_name[f"{origin}.core_h"].params["weight"][:, :, :, 0].astype(np.float64)
    gw = by_name[f"{origin}.core_w"].params["weight"][:, :, 0, :].astype(np.float64)
    return np.einsum("ot,tsl,srk,rc->ockl", lc, gw, gh, fc)
