"""SLO objectives, rolling-window burn rates, spec parsing."""

import pytest

from repro.obs import (Histogram, MetricsRegistry, SLOMonitor, SLObjective,
                       evaluate_histogram, parse_slo, parse_slos)


class FakeClock:
    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t


class TestSLObjective:
    def test_availability_goodness(self):
        o = SLObjective("avail", target=0.99)
        assert o.is_good(True, None)
        assert o.is_good(True, 123.0)
        assert not o.is_good(False, 0.001)
        assert o.error_budget == pytest.approx(0.01)

    def test_latency_goodness_compares_in_ms(self):
        o = SLObjective("lat", target=0.95, latency_threshold_ms=50.0)
        assert o.is_good(True, 0.049)  # 49 ms
        assert not o.is_good(True, 0.051)  # 51 ms
        assert not o.is_good(True, None)  # completed without a latency
        assert not o.is_good(False, 0.001)

    def test_validation(self):
        with pytest.raises(ValueError, match="target"):
            SLObjective("x", target=1.0)
        with pytest.raises(ValueError, match="target"):
            SLObjective("x", target=0.0)
        with pytest.raises(ValueError, match="threshold"):
            SLObjective("x", target=0.9, latency_threshold_ms=0.0)
        with pytest.raises(ValueError, match="window"):
            SLObjective("x", target=0.9, window_s=0.0)


class TestSLOMonitor:
    def test_empty_window_is_healthy(self):
        monitor = SLOMonitor(SLObjective("a", target=0.99))
        (status,) = monitor.evaluate()
        assert status.events == 0
        assert status.good_ratio == 1.0
        assert status.burn_rate == 0.0
        assert status.healthy

    def test_burn_rate_math(self):
        # 2 bad out of 100 against a 1% budget -> burn rate 2.0
        clock = FakeClock()
        monitor = SLOMonitor(SLObjective("a", target=0.99), clock=clock)
        for i in range(100):
            monitor.record(0.001, ok=i >= 2)
        (status,) = monitor.evaluate()
        assert status.events == 100 and status.bad == 2
        assert status.burn_rate == pytest.approx(2.0)
        assert not status.healthy
        assert monitor.violated()

    def test_rolling_window_forgets_old_events(self):
        clock = FakeClock()
        monitor = SLOMonitor(SLObjective("a", target=0.5, window_s=10.0),
                             clock=clock)
        monitor.record(ok=False)
        clock.t = 60.0  # the failure is 60 s old, outside the 10 s window
        monitor.record(ok=True)
        (status,) = monitor.evaluate()
        assert status.events == 1 and status.good == 1
        assert status.healthy

    def test_per_objective_windows(self):
        clock = FakeClock()
        monitor = SLOMonitor(
            [SLObjective("short", target=0.5, window_s=5.0),
             SLObjective("long", target=0.5, window_s=100.0)], clock=clock)
        monitor.record(ok=False)
        clock.t = 20.0
        monitor.record(ok=True)
        short, long_ = monitor.evaluate()
        assert short.events == 1 and short.healthy  # failure aged out
        assert long_.events == 2
        # 1 bad of 2 against a 50% budget: burning exactly on budget
        assert long_.burn_rate == pytest.approx(1.0)
        assert long_.healthy  # burn rate exactly 1.0 is on-budget

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            SLOMonitor([SLObjective("a", target=0.9),
                        SLObjective("a", target=0.8)])

    def test_export_gauges(self):
        clock = FakeClock()
        monitor = SLOMonitor(SLObjective("avail", target=0.9), clock=clock)
        for ok in (True, True, True, False):
            monitor.record(ok=ok)
        registry = MetricsRegistry()
        statuses = monitor.export_gauges(registry)
        snap = registry.snapshot()
        assert snap["slo.avail.events"] == 4.0
        assert snap["slo.avail.good_ratio"] == pytest.approx(0.75)
        assert snap["slo.avail.burn_rate"] == pytest.approx(2.5)
        assert snap["slo.avail.healthy"] == 0.0
        assert snap["slo.avail.target"] == pytest.approx(0.9)
        assert len(statuses) == 1

    def test_thread_safety_smoke(self):
        import threading
        monitor = SLOMonitor(SLObjective("a", target=0.99))

        def hammer():
            for _ in range(500):
                monitor.record(0.001, ok=True)
                monitor.evaluate()

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        (status,) = monitor.evaluate()
        assert status.events == 2000


class TestEvaluateHistogram:
    def test_latency_compliance_from_reservoir(self):
        h = Histogram()
        for ms in range(1, 101):  # 1..100 ms
            h.observe(float(ms))
        o = SLObjective("lat", target=0.5, latency_threshold_ms=90.0)
        status = evaluate_histogram(o, h)
        assert status.events == 100
        assert status.good == 90
        assert status.healthy

    def test_failures_count_against_the_budget(self):
        h = Histogram()
        for _ in range(90):
            h.observe(1.0)
        o = SLObjective("avail", target=0.95)
        status = evaluate_histogram(o, h, failures=10)
        assert status.events == 100 and status.good == 90
        assert not status.healthy


class TestParseSLO:
    def test_availability(self):
        o = parse_slo("availability:0.99")
        assert o.name == "availability_99"
        assert o.target == 0.99
        assert o.latency_threshold_ms is None
        assert o.window_s == 60.0

    def test_availability_with_window(self):
        o = parse_slo("availability:0.995:30")
        assert o.name == "availability_99_5"
        assert o.window_s == 30.0

    def test_latency(self):
        o = parse_slo("latency:50:0.95")
        assert o.name == "latency_50ms_95"
        assert o.latency_threshold_ms == 50.0
        assert o.target == 0.95

    def test_latency_with_window(self):
        o = parse_slo("latency:50:0.95:120")
        assert o.window_s == 120.0

    @pytest.mark.parametrize("bad", [
        "availability", "latency:50", "availability:nope",
        "latency:50:0.95:120:7", "p99:50:0.95", ""])
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_slo(bad)

    def test_out_of_range_target_rejected(self):
        with pytest.raises(ValueError, match="target"):
            parse_slo("availability:1.5")

    def test_parse_slos_dedupes(self):
        objectives = parse_slos(["availability:0.99", "availability:0.99",
                                 "latency:50:0.95"])
        assert [o.name for o in objectives] == ["availability_99",
                                                "latency_50ms_95"]
