"""The repro fleet / --fleet CLI surface, plus graceful serve shutdown."""

import json
import signal
import threading

import pytest

from repro.cli import main

from test_obs_prometheus import parse_exposition


class TestLoadgenFleet:
    def test_fleet_loadgen_json(self, capsys):
        assert main(["loadgen", "unet_small", "--batch", "2", "--hw", "16",
                     "--fleet", "2", "--host-budget", "100%",
                     "--requests", "8", "--concurrency", "4",
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["completed"] == 8 and doc["errors"] == 0
        assert doc["server"]["fleet.completed"] == 8
        assert doc["server"]["fleet.replicas"] == 2.0

    def test_fleet_loadgen_survives_kill_fault(self, capsys, tmp_path):
        metrics_out = tmp_path / "fleet.metrics"
        assert main(["loadgen", "unet_small", "--batch", "2", "--hw", "16",
                     "--fleet", "3", "--fault", "1:kill:3",
                     "--requests", "12", "--concurrency", "4",
                     "--metrics-out", str(metrics_out), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["completed"] == 12 and doc["errors"] == 0
        assert doc["server"]["fleet.faults.reason.kill"] == 1
        samples = parse_exposition(metrics_out.read_text())
        assert ("repro_fleet_faults_total", '{reason="kill"}') in samples
        assert any(name == "repro_build_info" for name, _ in samples)

    def test_fleet_rejects_per_replica_budget_flag(self, capsys):
        assert main(["loadgen", "unet_small", "--batch", "2", "--hw", "16",
                     "--fleet", "2", "--budget", "90%",
                     "--requests", "2"]) == 2
        err = capsys.readouterr().err
        assert "--host-budget" in err

    def test_infeasible_host_budget_fails_cleanly(self, capsys):
        assert main(["loadgen", "unet_small", "--batch", "2", "--hw", "16",
                     "--fleet", "2", "--host-budget", "1KB",
                     "--requests", "2"]) == 1
        assert "infeasible" in capsys.readouterr().err.lower()


class TestFleetCommand:
    def test_fleet_serves_for_duration(self, capsys):
        assert main(["fleet", "unet_small", "--batch", "2", "--hw", "16",
                     "--replicas", "2", "--host-budget", "100%",
                     "--port", "0", "--duration", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "replicas" in out and "metrics" in out

    def test_fleet_rejects_per_replica_budget_flag(self, capsys):
        assert main(["fleet", "unet_small", "--batch", "2", "--hw", "16",
                     "--budget", "90%", "--duration", "0.1",
                     "--port", "0"]) == 2
        assert "--host-budget" in capsys.readouterr().err


class TestServeGracefulShutdown:
    @pytest.mark.parametrize("signum", [signal.SIGTERM, signal.SIGINT])
    def test_signal_drains_and_exits_zero(self, signum, capsys):
        # pytest runs in the main thread, so the handler installs; the
        # timer then delivers the signal mid-serve as an init system would
        timer = threading.Timer(
            0.3, lambda: signal.raise_signal(signum))
        timer.start()
        try:
            assert main(["serve", "unet_small", "--batch", "2", "--hw",
                         "16", "--port", "0"]) == 0
        finally:
            timer.cancel()
        assert "drain" in capsys.readouterr().err.lower()

    def test_duration_still_bounds_the_run(self, capsys):
        assert main(["serve", "unet_small", "--batch", "2", "--hw", "16",
                     "--port", "0", "--duration", "0.2"]) == 0
