"""Static arena planning: validity, tightness, TeMCO carry-through."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import estimate_peak_internal, optimize
from repro.decompose import DecompositionConfig, decompose_graph
from repro.ir import GraphBuilder
from repro.runtime import plan_arena

from _graph_fixtures import (make_chain_graph, make_residual_graph,
                             make_skip_graph)


class TestArenaValidity:
    @pytest.mark.parametrize("factory", [make_chain_graph, make_skip_graph,
                                         make_residual_graph])
    def test_plan_validates(self, factory):
        plan = plan_arena(factory())
        plan.validate()  # raises on overlap
        assert plan.arena_bytes > 0

    def test_every_value_placed(self):
        g = make_skip_graph()
        plan = plan_arena(g)
        placed = {s.value_name for s in plan.slots}
        expected = {v.name for v in g.values() if v.nbytes > 0}
        assert placed == expected

    def test_arena_at_least_lower_bound(self):
        for factory in (make_chain_graph, make_skip_graph, make_residual_graph):
            plan = plan_arena(factory())
            assert plan.arena_bytes >= plan.peak_lower_bound
            assert plan.fragmentation >= 0.0

    def test_arena_reasonably_tight(self):
        # greedy best-fit should stay within 2x of the lower bound on
        # these well-structured CNN graphs (usually it's exact)
        for factory in (make_chain_graph, make_skip_graph, make_residual_graph):
            plan = plan_arena(factory())
            assert plan.fragmentation < 1.0

    def test_alignment_respected(self):
        plan = plan_arena(make_chain_graph(), alignment=128)
        assert all(s.offset % 128 == 0 for s in plan.slots)

    def test_bad_alignment_rejected(self):
        with pytest.raises(ValueError, match="alignment"):
            plan_arena(make_chain_graph(), alignment=0)

    def test_offset_lookup(self):
        g = make_chain_graph()
        plan = plan_arena(g)
        assert plan.offset_of(g.nodes[0].output.name) >= 0
        with pytest.raises(KeyError):
            plan.offset_of("ghost")


class TestArenaReuse:
    def test_sequential_tensors_share_memory(self):
        # a long chain of same-sized tensors must reuse two-ish buffers,
        # not allocate one per layer
        b = GraphBuilder("longchain", seed=0)
        x = b.input("x", (1, 8, 16, 16))
        h = x
        for _ in range(10):
            h = b.relu(h)
        g = b.finish(h)
        plan = plan_arena(g)
        one = g.inputs[0].nbytes
        assert plan.arena_bytes <= 3 * one  # not 11x

    def test_temco_reduction_carries_to_arena(self):
        g = decompose_graph(make_skip_graph(), DecompositionConfig(ratio=0.1))
        opt, _ = optimize(g)
        plan_dec = plan_arena(g)
        plan_opt = plan_arena(opt)
        assert plan_opt.arena_bytes < plan_dec.arena_bytes

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 200), depth=st.integers(1, 8))
    def test_property_random_graphs_valid_and_bounded(self, seed, depth):
        rng = np.random.default_rng(seed)
        b = GraphBuilder("rand", seed=seed)
        h = b.input("x", (1, int(rng.integers(1, 5)), 8, 8))
        values = [h]
        for _ in range(depth):
            pick = values[int(rng.integers(0, len(values)))]
            kind = rng.integers(0, 3)
            if kind == 0:
                h = b.conv2d(pick, int(rng.integers(1, 6)), 1)
            elif kind == 1:
                h = b.relu(pick)
            else:
                h = b.concat(pick, pick)
            values.append(h)
        g = b.finish(values[-1])
        plan = plan_arena(g)
        plan.validate()
        # the arena can never beat the instantaneous-live lower bound,
        # which itself is at least the executor peak for aligned sizes
        assert plan.arena_bytes >= estimate_peak_internal(g) - 64 * len(plan.slots)


class TestArenaExecution:
    """Running the whole graph inside the planned buffer is the
    strongest soundness check: any offset overlap corrupts outputs."""

    @pytest.mark.parametrize("factory", [make_chain_graph, make_skip_graph,
                                         make_residual_graph])
    def test_outputs_match_normal_executor(self, factory):
        from repro.runtime import execute, execute_in_arena
        from _graph_fixtures import random_input
        g = factory()
        inp = random_input(g)
        want = execute(g, inp).output()
        outputs, plan = execute_in_arena(g, inp)
        got = outputs[g.outputs[0].name]
        np.testing.assert_allclose(got, want, atol=1e-6)
        assert plan.arena_bytes > 0

    def test_optimized_graph_runs_in_arena(self):
        from repro.runtime import execute, execute_in_arena
        from _graph_fixtures import random_input
        g = decompose_graph(make_skip_graph(), DecompositionConfig(ratio=0.25))
        opt, _ = optimize(g)
        inp = random_input(opt)
        want = execute(opt, inp).output()
        outputs, plan = execute_in_arena(opt, inp)
        np.testing.assert_allclose(outputs[opt.outputs[0].name], want,
                                   atol=1e-5)
        # the optimized arena is smaller than the decomposed one
        _, plan_dec = execute_in_arena(g, random_input(g))
        assert plan.arena_bytes < plan_dec.arena_bytes
