"""The full TeMCO pipeline (Figure 6) plus equivalence & folding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (TeMCOConfig, assert_equivalent, compare_graphs,
                        estimate_peak_internal, fold_batchnorm, optimize,
                        topk_agreement)
from repro.decompose import DecompositionConfig, decompose_graph
from repro.ir import GraphBuilder
from repro.runtime import execute

from _graph_fixtures import (make_chain_graph, make_residual_graph, make_skip_graph,
                      random_input)


class TestPipeline:
    @pytest.mark.parametrize("factory", [make_chain_graph, make_skip_graph,
                                         make_residual_graph])
    def test_never_increases_peak(self, factory):
        g = decompose_graph(factory(), DecompositionConfig(ratio=0.25))
        _, report = optimize(g)
        assert report.peak_after <= report.peak_before

    @pytest.mark.parametrize("factory", [make_chain_graph, make_skip_graph,
                                         make_residual_graph])
    def test_semantics_preserved(self, factory):
        g = decompose_graph(factory(), DecompositionConfig(ratio=0.25))
        opt, _ = optimize(g)
        assert_equivalent(g, opt, random_input(g), rtol=1e-3)

    def test_report_matches_measurement(self):
        g = decompose_graph(make_skip_graph(), DecompositionConfig(ratio=0.25))
        opt, report = optimize(g)
        measured = execute(opt, random_input(opt)).memory.peak_internal_bytes
        assert measured == report.peak_after

    def test_input_graph_untouched(self):
        g = decompose_graph(make_skip_graph(), DecompositionConfig(ratio=0.25))
        names = [n.name for n in g.nodes]
        optimize(g)
        assert [n.name for n in g.nodes] == names

    def test_stages_can_be_disabled(self):
        g = decompose_graph(make_skip_graph(), DecompositionConfig(ratio=0.25))
        opt, report = optimize(g, TeMCOConfig(enable_skip_opt=False,
                                              enable_transforms=False,
                                              enable_fusion=False))
        assert report.skip_opt is None
        assert report.transforms is None
        assert report.fusion is None
        assert [n.op for n in opt.nodes] == [n.op for n in g.nodes]

    def test_concat_strategies_all_valid(self):
        g = decompose_graph(make_skip_graph(), DecompositionConfig(ratio=0.25))
        inp = random_input(g)
        for strategy in ("merge", "split", "none"):
            opt, report = optimize(g, TeMCOConfig(concat_strategy=strategy))
            assert_equivalent(g, opt, inp, rtol=1e-3)
            assert report.peak_after <= report.peak_before

    def test_bad_strategy_rejected(self):
        with pytest.raises(ValueError, match="concat_strategy"):
            TeMCOConfig(concat_strategy="zigzag")

    def test_report_summary_readable(self):
        g = decompose_graph(make_skip_graph(), DecompositionConfig(ratio=0.25))
        _, report = optimize(g)
        s = report.summary()
        assert "peak internal" in s and "reduction" in s

    def test_idempotent_on_already_optimized(self):
        g = decompose_graph(make_chain_graph(), DecompositionConfig(ratio=0.25))
        once, report1 = optimize(g)
        twice, report2 = optimize(once)
        assert report2.peak_after <= report1.peak_after
        assert_equivalent(once, twice, random_input(once), rtol=1e-3)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 500), ratio=st.sampled_from([0.1, 0.25, 0.5]))
    def test_property_optimize_preserves_outputs(self, seed, ratio):
        g = decompose_graph(make_skip_graph(seed=seed),
                            DecompositionConfig(ratio=ratio))
        opt, _ = optimize(g)
        report = compare_graphs(g, opt, random_input(g, seed))
        assert report.within(rtol=2e-3, atol=1e-5)


class TestEquivalenceChecker:
    def test_detects_divergence(self):
        g1 = make_chain_graph(seed=1)
        g2 = make_chain_graph(seed=2)  # different weights
        with pytest.raises(AssertionError, match="diverge"):
            assert_equivalent(g1, g2, random_input(g1))

    def test_output_arity_mismatch(self):
        b = GraphBuilder("two", seed=0)
        x = b.input("x", (1, 2, 4, 4))
        g2 = b.finish(b.relu(x), b.sigmoid(x))
        g1 = make_chain_graph()
        with pytest.raises(ValueError):
            compare_graphs(g1, g2, random_input(g1))

    def test_topk_agreement_self_is_one(self):
        b = GraphBuilder("cls", seed=0)
        x = b.input("x", (4, 8, 4, 4))
        h = b.flatten(b.global_avgpool(x))
        g = b.finish(b.linear(h, 10))
        assert topk_agreement(g, g, random_input(g), k=5) == 1.0


class TestBatchnormFolding:
    def _bn_graph(self, seed=0):
        b = GraphBuilder("bn", seed=seed)
        x = b.input("x", (2, 4, 6, 6))
        h = b.conv2d(x, 8, 3, padding=1, name="c")
        h = b.batchnorm2d(h, gamma=b.rng.uniform(0.5, 2, 8),
                          beta=b.rng.normal(size=8),
                          mean=b.rng.normal(size=8),
                          var=b.rng.uniform(0.5, 2, 8))
        return b.finish(b.relu(h))

    def test_fold_removes_bn_and_preserves_outputs(self):
        g = self._bn_graph()
        before = g.clone("before")
        folded = fold_batchnorm(g)
        assert folded == 1
        assert not any(n.op == "batchnorm2d" for n in g.nodes)
        assert_equivalent(before, g, random_input(g), rtol=1e-4)

    def test_standalone_bn_kept(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 3, 4, 4))
        h = b.batchnorm2d(b.relu(x))
        g = b.finish(h)
        assert fold_batchnorm(g) == 0
        assert any(n.op == "batchnorm2d" for n in g.nodes)

    def test_shared_conv_output_not_folded(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 3, 4, 4))
        c = b.conv2d(x, 4, 1, name="c")
        bn = b.batchnorm2d(c)
        g = b.finish(bn, b.relu(c))  # conv output used twice
        assert fold_batchnorm(g) == 0
