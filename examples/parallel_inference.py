#!/usr/bin/env python
"""Data-parallel batch inference with an optimized graph.

Shards a large batch across worker processes (MPI-style scatter/gather
on one node), each running the TeMCO-optimized graph; per-worker peak
memory is the optimized graph's peak at the shard batch size.

Run:  python examples/parallel_inference.py
"""

import os
import time

import numpy as np

from repro import DecompositionConfig, build_model, decompose_graph, optimize
from repro.runtime import ParallelRunner, execute


def main() -> None:
    shard_batch = 4
    num_workers = 4
    total_batch = shard_batch * num_workers

    model = build_model("vgg11", batch=shard_batch, hw=64)
    decomposed = decompose_graph(model, DecompositionConfig(ratio=0.1))
    optimized, report = optimize(decomposed)
    print(f"per-worker peak internal: {report.peak_after / 2**20:.2f} MiB "
          f"(batch {shard_batch})")

    rng = np.random.default_rng(0)
    big_batch = {"image": rng.normal(
        size=(total_batch, 3, 64, 64)).astype(np.float32)}

    # serial reference: run the shards one by one in-process
    start = time.perf_counter()
    serial_parts = [
        execute(optimized, {"image": big_batch["image"][i:i + shard_batch]}).output()
        for i in range(0, total_batch, shard_batch)]
    serial = np.concatenate(serial_parts)
    serial_time = time.perf_counter() - start
    print(f"serial:   {serial_time * 1e3:7.1f} ms for batch {total_batch}")

    with ParallelRunner(optimized, num_workers=num_workers) as runner:
        runner.run(big_batch)  # warm the pool
        start = time.perf_counter()
        outputs = runner.run(big_batch)
        parallel_time = time.perf_counter() - start
    parallel = outputs[optimized.outputs[0].name]
    cores = os.cpu_count() or 1
    print(f"parallel: {parallel_time * 1e3:7.1f} ms with {num_workers} workers "
          f"({serial_time / parallel_time:.2f}x on {cores} core(s))")
    if cores < 2:
        print("(single-core machine: expect ~1x; the point here is the "
              "scatter/gather correctness and per-worker memory bound)")

    assert np.allclose(serial, parallel, atol=1e-6), "shard outputs diverged"
    print("outputs identical across serial and parallel execution")


if __name__ == "__main__":
    main()
