#!/usr/bin/env python
"""ResNet-18 classification across the paper's variant ladder.

ResNet is TeMCO's hard case: identity skip chains recurse through whole
stages, so Algorithm 1's overhead guard rejects most restore copies and
the benefit comes from fusing ``lconv → relu → fconv`` inside blocks.
This example walks the Original → Decomposed → Skip-Opt →
Skip-Opt+Fusion ladder and reports memory, inference time, and top-5
prediction agreement.

Run:  python examples/resnet_classification.py
"""

import numpy as np

from repro import build_model
from repro.bench import build_variants, format_table, variant_names_for
from repro.data import classification_batch, prediction_agreement, topk_accuracy
from repro.runtime import InferenceSession, execute


def main() -> None:
    batch = 8
    vs = build_variants("resnet18", batch=batch)
    data = classification_batch(batch, hw=vs.hw, seed=0)
    inputs = {"image": data.images}

    baseline = execute(vs.graphs["decomposed"], inputs).output()
    rows = []
    for variant in variant_names_for("resnet18"):
        graph = vs.graphs[variant]
        session = InferenceSession(graph)
        timing = session.time_inference(inputs, warmup=1, repeats=3)
        result = session.run(inputs)
        logits = result.output()
        rows.append([
            variant,
            result.memory.peak_internal_bytes / 2**20,
            result.memory.weight_bytes / 2**20,
            timing.median * 1e3,
            topk_accuracy(logits, data.labels, k=5),
            prediction_agreement(logits, baseline),
        ])
    print(format_table(
        ["variant", "peak internal MiB", "weights MiB", "time ms",
         "top-5 (synthetic)", "top-1 agree vs decomposed"],
        rows, title=f"ResNet-18, batch {batch}"))

    print("\nNote: weights are random (no offline ImageNet), so the top-5 "
          "column is chance-level by construction; the agreement column "
          "shows TeMCO variants predict identically to the decomposed "
          "baseline — the paper's accuracy-preservation claim.")


if __name__ == "__main__":
    main()
