#!/usr/bin/env python
"""Applying TeMCO's passes one at a time to a hand-built model.

Shows the public IR surface end-to-end: build a small skip-connected
CNN with :class:`GraphBuilder`, decompose it, then run each compiler
stage separately — liveness analysis, skip-connection optimization,
layer transformations, activation layer fusion — printing the graph
after every step so the rewrites are visible.

Run:  python examples/custom_model.py
"""

import numpy as np

from repro import DecompositionConfig, GraphBuilder, decompose_graph, format_graph
from repro.core import (FusionConfig, SkipOptConfig, analyze_liveness,
                        assert_equivalent, estimate_peak_internal,
                        find_skip_connections, fuse_activation_layers,
                        merge_lconv_concat, optimize_skip_connections)


def build() -> "Graph":
    b = GraphBuilder("custom", seed=7)
    x = b.input("x", (2, 16, 32, 32))
    h = b.relu(b.conv2d(x, 32, 3, padding=1, name="block1"))
    skip = h                                   # long-lived skip connection
    h = b.maxpool2d(h, 2)
    h = b.relu(b.conv2d(h, 64, 3, padding=1, name="block2"))
    h = b.relu(b.conv2d(h, 64, 3, padding=1, name="block3"))
    h = b.upsample_nearest(h, 2)
    h = b.concat(skip, h, name="join")         # consumed far from its def
    h = b.relu(b.conv2d(h, 32, 3, padding=1, name="head"))
    return b.finish(h)


def main() -> None:
    graph = build()
    print("=== original ===")
    print(format_graph(graph))

    decomposed = decompose_graph(graph, DecompositionConfig(ratio=0.25))
    work = decomposed.clone("custom.steps")
    print(f"\n=== decomposed (peak {estimate_peak_internal(work) / 2**20:.2f} MiB) ===")
    print(format_graph(work))

    print("\n=== liveness: skip connections ===")
    intervals = analyze_liveness(work)
    for skip in find_skip_connections(work, distance_threshold=4):
        iv = intervals[skip.value]
        print(f"  {skip.value!r}: defined @{iv.begin}, last use @{iv.end} "
              f"(distance {iv.distance}), {len(skip.far_uses)} far use(s)")

    print("\n=== after skip-connection optimization (Algorithm 1) ===")
    stats = optimize_skip_connections(work, SkipOptConfig(distance_threshold=4))
    print(f"  optimized {stats.optimized}/{stats.candidates}, "
          f"{stats.copies_inserted} restore copies")

    print("\n=== after concat merge (Figure 9a) ===")
    tstats = merge_lconv_concat(work)
    print(f"  merged {tstats.merged_concats} concat(s)")

    print("\n=== after activation layer fusion (Listing 1) ===")
    fstats = fuse_activation_layers(work, FusionConfig(block_size=16))
    print(format_graph(work))
    print(f"  {fstats.fused} fused kernels; "
          f"peak now {estimate_peak_internal(work) / 2**20:.2f} MiB")

    rng = np.random.default_rng(0)
    x = rng.normal(size=(2, 16, 32, 32)).astype(np.float32)
    assert_equivalent(decomposed, work, {"x": x}, rtol=1e-3)
    print("\nsemantics preserved (outputs match the decomposed baseline)")


if __name__ == "__main__":
    main()
