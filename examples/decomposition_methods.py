#!/usr/bin/env python
"""Comparing decomposition methods under TeMCO (paper §5's claim).

TeMCO's passes only require the decomposed sequences to start with a
channel-reducing fconv and end with a channel-restoring lconv — which
Tucker-2, CP and Tensor-Train all provide.  This example decomposes the
same model with all three methods (plus the energy-based automatic rank
policy) and reports weights, fit error, and the TeMCO-optimized memory
peak for each.

Run:  python examples/decomposition_methods.py
"""

import numpy as np

from repro import DecompositionConfig, build_model, decompose_graph, optimize
from repro.bench import format_table
from repro.core import compare_graphs, estimate_peak_internal
from repro.decompose import decomposition_records

MIB = 1024 * 1024


def main() -> None:
    model = build_model("unet_small", batch=2)
    orig_peak = estimate_peak_internal(model)
    print(f"model: {model.name}, original internal peak "
          f"{orig_peak / MIB:.2f} MiB, {model.num_params():,} params\n")

    configs = [
        ("tucker @0.1", DecompositionConfig(method="tucker", ratio=0.1)),
        ("cp @0.1", DecompositionConfig(method="cp", ratio=0.1, cp_iters=20)),
        ("tt @0.1", DecompositionConfig(method="tt", ratio=0.1)),
        ("tucker energy@0.9", DecompositionConfig(
            method="tucker", rank_policy="energy", energy=0.9)),
    ]
    rng = np.random.default_rng(0)
    inputs = {"image": rng.normal(size=model.inputs[0].shape).astype(np.float32)}

    rows = []
    for label, config in configs:
        decomposed = decompose_graph(model, config)
        optimized, report = optimize(decomposed)
        records = decomposition_records(decomposed)
        errors = [r.fit_error for r in records if np.isfinite(r.fit_error)]
        eq = compare_graphs(decomposed, optimized, inputs)
        rows.append([
            label,
            decomposed.weight_bytes() / MIB,
            float(np.mean(errors)) if errors else float("nan"),
            report.peak_before / MIB,
            report.peak_after / MIB,
            f"{1 - report.peak_after / orig_peak:.1%}",
            "yes" if eq.within(1e-3, 1e-5) else "NO",
        ])
    print(format_table(
        ["config", "weights MiB", "mean fit err", "peak dec MiB",
         "peak TeMCO MiB", "reduction vs orig", "semantics kept"],
        rows, title="decomposition methods under TeMCO (unet_small, batch 2)"))
    print("\nAll methods expose the same fconv/lconv structure, so the same "
          "compiler\npasses apply unchanged — the paper's §5 portability claim.")


if __name__ == "__main__":
    main()
