#!/usr/bin/env python
"""Trace inspection: compile + run a model under a Tracer and mine the
result programmatically.

Shows the observability layer end to end without leaving Python:

1. install an ambient :class:`repro.Tracer` around decomposition,
   the TeMCO pipeline, and one inference,
2. query the structured pass-decision log (why each skip connection
   was accepted or rejected, what fusion did),
3. rank the slowest compiler/executor spans,
4. check the memory counter track against the executor's profile,
5. dump Chrome-trace + JSONL artifacts for Perfetto / grep.

Run:  python examples/trace_inspection.py
"""

import numpy as np

from repro import (DecompositionConfig, InferenceSession, Tracer,
                   build_model, decompose_graph, optimize, use_tracer,
                   write_chrome_trace)
from repro.obs import write_jsonl
from repro.runtime import metrics_markdown

MIB = 1024 * 1024


def main() -> None:
    tracer = Tracer()
    with use_tracer(tracer):
        model = build_model("unet_small", batch=1, hw=64)
        decomposed = decompose_graph(
            model, DecompositionConfig(method="tucker", ratio=0.1))
        optimized, report = optimize(decomposed)
        x = np.random.default_rng(0).normal(
            size=model.inputs[0].shape).astype(np.float32)
        result = InferenceSession(optimized).run(x)

    print("=== 1. pipeline result ===")
    print(report.summary())

    print("\n=== 2. pass-decision log ===")
    for pass_name in ("skip_opt", "fusion", "scheduling"):
        decisions = tracer.decisions_for(pass_name)
        print(f"{pass_name}: {len(decisions)} decisions")
        for d in decisions[:5]:
            qty = ", ".join(f"{k}={v:,}" if isinstance(v, int) else f"{k}={v}"
                            for k, v in sorted(d.quantities.items()))
            print(f"  {d.verdict:>6}  {d.subject:<28} {d.reason:<18} {qty}")
        if len(decisions) > 5:
            print(f"  ... and {len(decisions) - 5} more")

    rejected = [d for d in tracer.decisions_for("skip_opt") if d.rejected]
    if rejected:
        print("\nskip-opt rejections by reason:")
        reasons = {}
        for d in rejected:
            reasons[d.reason] = reasons.get(d.reason, 0) + 1
        for reason, count in sorted(reasons.items()):
            print(f"  {reason}: {count}")

    print("\n=== 3. slowest spans ===")
    for span in sorted(tracer.spans, key=lambda s: -s.duration_us)[:8]:
        print(f"  {span.duration_us / 1e3:8.2f} ms  "
              f"{'  ' * span.depth}{span.name} [{span.category}]")

    print("\n=== 4. memory counter track vs executor profile ===")
    live = tracer.counter_series("memory", "live_bytes")
    profile = result.memory
    assert live == [e.live_bytes for e in profile.events]
    assert max(live) == profile.peak_internal_bytes
    print(f"  {len(live)} samples, peak {max(live) / MIB:.2f} MiB "
          "— matches MemoryProfile exactly")

    print("\n=== 5. metrics + artifacts ===")
    print(metrics_markdown(tracer.metrics))
    chrome = write_chrome_trace(tracer, "unet_small.trace.json")
    jsonl = write_jsonl(tracer, "unet_small.trace.jsonl")
    print(f"wrote {chrome} (open at https://ui.perfetto.dev) and {jsonl}")


if __name__ == "__main__":
    main()
