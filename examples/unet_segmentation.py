#!/usr/bin/env python
"""UNet image segmentation under TeMCO (the paper's Figure 4a scenario).

UNet's hourglass skip connections keep full-size encoder tensors alive
until the decoder consumes them — the dominant share of the decomposed
model's peak memory.  This example shows how TeMCO's skip-connection
optimization + layer transformations + fusion collapse that to reduced
tensors, and that the segmentation masks are bit-for-bit unchanged.

Run:  python examples/unet_segmentation.py
"""

import numpy as np

from repro import DecompositionConfig, build_model, decompose_graph, optimize
from repro.core import find_skip_connections
from repro.data import dice_score, segmentation_batch
from repro.runtime import execute


def ascii_timeline(timeline: list[tuple[int, int]], width: int = 60,
                   peak: int | None = None) -> str:
    peak = peak or max(b for _, b in timeline)
    lines = []
    for index, live in timeline:
        bar = "#" * max(1, round(width * live / peak))
        lines.append(f"  layer {index:3d} |{bar:<{width}}| {live / 2**20:6.2f} MiB")
    return "\n".join(lines)


def main() -> None:
    batch = 4
    model = build_model("unet", batch=batch)
    data = segmentation_batch(batch, hw=96, seed=1)
    inputs = {"image": data.images}

    decomposed = decompose_graph(model, DecompositionConfig(ratio=0.1))
    skips = find_skip_connections(decomposed, distance_threshold=4)
    print(f"UNet decomposed: {len(decomposed.nodes)} layers, "
          f"{len(skips)} skip connections "
          f"({', '.join(s.value.name for s in skips[:4])}, ...)")

    optimized, report = optimize(decomposed)
    print("\nTeMCO report:")
    print(report.summary())

    print("\nmemory timeline (decomposed):")
    dec_profile = execute(decomposed, inputs).memory
    print(ascii_timeline(dec_profile.timeline()[::4],
                         peak=dec_profile.peak_internal_bytes))
    print("\nmemory timeline (TeMCO):")
    opt_result = execute(optimized, inputs)
    print(ascii_timeline(opt_result.memory.timeline()[::4],
                         peak=dec_profile.peak_internal_bytes))

    dec_mask = execute(decomposed, inputs).output()
    opt_mask = opt_result.output()
    print(f"\ndice(decomposed, ground truth) = {dice_score(dec_mask, data.masks):.4f}")
    print(f"dice(TeMCO,      ground truth) = {dice_score(opt_mask, data.masks):.4f}")
    print(f"max |Δmask| between variants   = {np.abs(dec_mask - opt_mask).max():.2e}")


if __name__ == "__main__":
    main()
