#!/usr/bin/env python
"""The paper's full accuracy workflow: decompose → train → TeMCO (§4.4).

Trains a small CNN on the synthetic classification task, Tucker-
decomposes it, fine-tunes the decomposed model (the paper's "direct
training"), then applies TeMCO and shows:

1. the original model genuinely learned the task,
2. fine-tuning recovers most of the decomposition's accuracy loss,
3. TeMCO's optimization changes *nothing* about the predictions while
   cutting the inference memory peak.

Run:  python examples/train_and_optimize.py
"""

import numpy as np

from repro import DecompositionConfig, GraphBuilder, decompose_graph, optimize
from repro.data import classification_batch, topk_accuracy
from repro.runtime import execute
from repro.train import SGDConfig, train_classifier


def build_cnn(batch: int, hw: int = 16, num_classes: int = 4, seed: int = 0):
    b = GraphBuilder("cnn", seed=seed)
    x = b.input("image", (batch, 3, hw, hw))
    h = b.relu(b.conv2d(x, 16, 3, padding=1, name="c1"))
    h = b.maxpool2d(h, 2)
    h = b.relu(b.conv2d(h, 32, 3, padding=1, name="c2"))
    h = b.relu(b.conv2d(h, 32, 3, padding=1, name="c3"))
    h = b.flatten(b.global_avgpool(h))
    return b.finish(b.linear(h, num_classes, name="fc"))


def evaluate(graph, batch: int = 128, num_classes: int = 4) -> float:
    from repro.ir.serialize import graph_from_dict, graph_to_dict
    structure, weights = graph_to_dict(graph)
    for vd in structure["inputs"]:
        vd["shape"][0] = batch
    for nd in structure["nodes"]:
        nd["output"]["shape"][0] = batch
    eval_graph = graph_from_dict(structure, weights)
    data = classification_batch(batch, hw=16, num_classes=num_classes,
                                seed=777_777)
    logits = execute(eval_graph, {"image": data.images}).output()
    return topk_accuracy(logits, data.labels, k=1)


def main() -> None:
    num_classes = 4
    print("=== 1. train the original model ===")
    model = build_cnn(batch=32, num_classes=num_classes)
    result = train_classifier(model, steps=50, num_classes=num_classes,
                              config=SGDConfig(learning_rate=0.08))
    print(f"loss {result.losses[0]:.3f} -> {result.final_loss:.3f}; "
          f"held-out top-1 = {evaluate(model):.2f}")

    print("\n=== 2. Tucker-decompose (ratio 0.5) ===")
    decomposed = decompose_graph(model, DecompositionConfig(ratio=0.5))
    print(f"without fine-tuning: top-1 = {evaluate(decomposed):.2f}")

    print("\n=== 3. fine-tune the decomposed model ===")
    result = train_classifier(decomposed, steps=25, num_classes=num_classes,
                              seed=500, config=SGDConfig(learning_rate=0.02))
    acc_dec = evaluate(decomposed)
    print(f"loss {result.losses[0]:.3f} -> {result.final_loss:.3f}; "
          f"top-1 = {acc_dec:.2f}")

    print("\n=== 4. TeMCO optimization (inference) ===")
    optimized, report = optimize(decomposed)
    print(report.summary())
    acc_opt = evaluate(optimized)
    print(f"\ntop-1 after TeMCO = {acc_opt:.2f} "
          f"({'UNCHANGED' if acc_opt == acc_dec else 'CHANGED!'}) — "
          f"the paper's Figure 12 claim")


if __name__ == "__main__":
    main()
