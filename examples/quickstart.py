#!/usr/bin/env python
"""Quickstart: decompose a model, optimize it with TeMCO, run it.

Builds VGG-16 from the zoo, applies Tucker decomposition at the paper's
ratio (0.1), runs the TeMCO compiler, and compares peak internal-tensor
memory and outputs between the decomposed baseline and the optimized
graph.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (DecompositionConfig, InferenceSession, build_model,
                   decompose_graph, optimize)
from repro.core import compare_graphs


def main() -> None:
    batch = 4
    print("=== 1. build the model ===")
    model = build_model("vgg16", batch=batch)
    print(f"{model.name}: {len(model.nodes)} layers, "
          f"{model.num_params():,} parameters")

    print("\n=== 2. tensor decomposition (Tucker, ratio 0.1) ===")
    decomposed = decompose_graph(model, DecompositionConfig(method="tucker",
                                                            ratio=0.1))
    print(f"decomposed: {len(decomposed.nodes)} layers, "
          f"{decomposed.num_params():,} parameters "
          f"({decomposed.num_params() / model.num_params():.1%} of original)")

    print("\n=== 3. TeMCO optimization ===")
    optimized, report = optimize(decomposed)
    print(report.summary())

    print("\n=== 4. run inference ===")
    rng = np.random.default_rng(0)
    x = rng.normal(size=(batch, 3, 64, 64)).astype(np.float32)
    for label, graph in (("decomposed", decomposed), ("TeMCO", optimized)):
        session = InferenceSession(graph)
        result = session.run(x)
        mem = result.memory
        print(f"{label:>10}: peak internal "
              f"{mem.peak_internal_bytes / 2**20:6.2f} MiB, "
              f"weights {mem.weight_bytes / 2**20:6.2f} MiB, "
              f"output shape {result.output().shape}")

    print("\n=== 5. verify semantics are preserved ===")
    eq = compare_graphs(decomposed, optimized, {"image": x})
    print(f"max |Δoutput| = {eq.max_abs_error:.2e} "
          f"(output scale {eq.output_scale:.2e}) — "
          f"{'OK' if eq.within(1e-4, 1e-5) else 'DIVERGED'}")


if __name__ == "__main__":
    main()
