#!/usr/bin/env python
"""Deployment view: static arena planning + accounting policies.

Deployment runtimes reserve one static arena sized by liveness-aware
offset planning rather than malloc/free per tensor.  This example shows
that TeMCO's live-set reductions carry through to the arena a real
deployment would reserve, under both the paper's Eq. 3/4 accounting and
the in-place-activation policy frameworks actually use.

Run:  python examples/deployment_planning.py
"""

from repro import DecompositionConfig, build_model, decompose_graph, optimize
from repro.bench import format_table
from repro.core import estimate_peak_internal
from repro.runtime import plan_arena

MIB = 1024 * 1024


def main() -> None:
    rows = []
    for model_name in ("vgg16", "unet_small", "densenet"):
        original = build_model(model_name, batch=4)
        decomposed = decompose_graph(original, DecompositionConfig(ratio=0.1))
        optimized, _ = optimize(decomposed)
        for label, graph in (("original", original),
                             ("decomposed", decomposed),
                             ("TeMCO", optimized)):
            plan = plan_arena(graph)
            rows.append([
                model_name, label,
                estimate_peak_internal(graph) / MIB,
                estimate_peak_internal(graph, inplace_activations=True) / MIB,
                plan.arena_bytes / MIB,
                f"{plan.fragmentation:.1%}",
            ])
    print(format_table(
        ["model", "variant", "live peak MiB", "live peak (inplace) MiB",
         "arena MiB", "fragmentation"],
        rows, title="deployment memory planning, batch 4"))

    print("\nReading guide: the arena column is what an embedded runtime "
          "would reserve;\nTeMCO's reduction survives both the in-place "
          "policy and arena packing overhead.")


if __name__ == "__main__":
    main()
