#!/usr/bin/env python
"""Request waterfalls: drive a traced inference server and export a
Chrome trace showing each request's lifecycle.

Shows the serving side of the observability layer end to end:

1. start an :class:`repro.serve.InferenceServer` under an ambient
   :class:`repro.Tracer`, with SLO objectives attached,
2. submit a burst of concurrent single-sample requests (so the
   micro-batcher actually coalesces co-riders),
3. walk the per-request waterfall programmatically — queue wait,
   batching hold, execute — straight from the tracer's async lanes,
4. inspect drop-reason counters and SLO burn rates,
5. dump the Chrome trace for Perfetto (per-request async rows, labeled
   worker rows, fan-in flow arrows).

Run:  python examples/request_waterfall.py
"""

import numpy as np

from repro import Tracer, build_model, use_tracer
from repro.obs import SLOMonitor, SLObjective, write_chrome_trace
from repro.serve import InferenceServer, ServerConfig


def main() -> None:
    model = build_model("unet_small", batch=4, hw=32)
    tracer = Tracer()
    slo = SLOMonitor([
        SLObjective("availability_99", target=0.99, window_s=60.0),
        SLObjective("latency_1s_95", target=0.95,
                    latency_threshold_ms=1000.0, window_s=60.0),
    ])

    rng = np.random.default_rng(0)
    name = model.inputs[0].name
    sample_shape = (1,) + model.inputs[0].shape[1:]

    config = ServerConfig(num_workers=2, max_wait_s=0.005)
    with use_tracer(tracer):
        with InferenceServer(model, config, slo=slo) as server:
            futures = [
                server.submit({name: rng.normal(size=sample_shape)
                               .astype(np.float32)})
                for _ in range(12)
            ]
            for future in futures:
                future.result(timeout=30.0)
            stats = server.stats()

    print("=== 1. per-request waterfall (from the trace) ===")
    print(f"{'request':>8} {'trace_id':>17} {'queue_wait':>11} "
          f"{'batching':>9} {'execute':>8}")
    boundaries = {(e.aid, e.name, e.phase): e.ts_us
                  for e in tracer.async_events}
    for future in futures:
        rid = future.request_id
        segments = {}
        for seg in ("queue_wait", "batching", "execute"):
            begin = boundaries.get((rid, seg, "begin"))
            end = boundaries.get((rid, seg, "end"))
            segments[seg] = (end - begin) if begin is not None else 0.0
        print(f"{rid:>8} {future.trace_id:>17} "
              f"{segments['queue_wait'] / 1e3:>9.2f}ms "
              f"{segments['batching'] / 1e3:>7.2f}ms "
              f"{segments['execute'] / 1e3:>6.2f}ms")

    print("\n=== 2. fan-in: which batch served which requests ===")
    for span in tracer.spans:
        if span.name == "serve.batch":
            print(f"  worker {span.args['worker_id']} "
                  f"batch of {span.args['requests']} request(s) "
                  f"{span.args['samples']} sample(s) "
                  f"(padding {span.args['padding']}): "
                  f"ids {span.args['request_ids']}")

    print("\n=== 3. serving metrics ===")
    for key in sorted(stats):
        if key.startswith("serve.") and not key.count(".p"):
            print(f"  {key} = {stats[key]}")

    print("\n=== 4. SLO burn rates ===")
    for status in slo.evaluate():
        print(f"  {status.summary()}")

    path = write_chrome_trace(tracer, "request_waterfall.trace.json")
    print(f"\nwrote {path} — open at https://ui.perfetto.dev: the async "
          f"rows at the top are per-request waterfalls, worker-0/worker-1 "
          f"rows hold the batch + node spans, arrows show the fan-in")


if __name__ == "__main__":
    main()
