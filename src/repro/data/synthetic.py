"""Synthetic datasets standing in for ILSVRC-2012 and Carvana.

The paper evaluates accuracy on ImageNet (classification) and Carvana
(car segmentation).  Neither is available offline, so we generate
deterministic synthetic equivalents that exercise the same code paths:

- :func:`classification_batch` — class-conditioned textured images.
  Each class has a characteristic low-frequency pattern plus noise, so
  a trained (or probed) model can genuinely separate classes and top-k
  metrics are meaningful.
- :func:`segmentation_batch` — images containing a bright convex
  "car-like" blob on a textured background, with the exact binary mask,
  so dice scores are meaningful.

What matters for the reproduction is *relative* accuracy between the
decomposed model and its TeMCO-optimized form (the paper's claim is
zero degradation); these generators make that comparison executable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["classification_batch", "segmentation_batch", "ClassificationBatch",
           "SegmentationBatch"]


@dataclass(frozen=True)
class ClassificationBatch:
    images: np.ndarray  # (N, 3, H, W) float32
    labels: np.ndarray  # (N,) int64


@dataclass(frozen=True)
class SegmentationBatch:
    images: np.ndarray  # (N, 3, H, W) float32
    masks: np.ndarray   # (N, 1, H, W) float32 in {0, 1}


def _class_pattern(rng: np.random.Generator, hw: int) -> np.ndarray:
    """A smooth class-specific texture: random low-frequency Fourier mix."""
    yy, xx = np.meshgrid(np.linspace(0, 2 * np.pi, hw),
                         np.linspace(0, 2 * np.pi, hw), indexing="ij")
    pattern = np.zeros((3, hw, hw), dtype=np.float64)
    for _ in range(4):
        fy, fx = rng.integers(1, 5, size=2)
        phase = rng.uniform(0, 2 * np.pi)
        channel_mix = rng.normal(size=3)
        wave = np.sin(fy * yy + fx * xx + phase)
        pattern += channel_mix[:, None, None] * wave
    return pattern


def classification_batch(batch: int, hw: int = 64, num_classes: int = 10,
                         seed: int = 0, noise: float = 0.5) -> ClassificationBatch:
    """Deterministic labeled images: class texture + per-sample noise."""
    if batch < 1 or num_classes < 2:
        raise ValueError(f"need batch >= 1 and num_classes >= 2, got {batch}, {num_classes}")
    rng = np.random.default_rng(seed)
    class_rng = np.random.default_rng(12345)  # patterns fixed across seeds
    patterns = [_class_pattern(class_rng, hw) for _ in range(num_classes)]
    labels = rng.integers(0, num_classes, size=batch)
    images = np.stack([patterns[int(label)] for label in labels])
    images = images + noise * rng.normal(size=images.shape)
    return ClassificationBatch(images=images.astype(np.float32),
                               labels=labels.astype(np.int64))


def segmentation_batch(batch: int, hw: int = 96, seed: int = 0,
                       noise: float = 0.3) -> SegmentationBatch:
    """Images with one bright elliptical blob each, plus exact masks."""
    if batch < 1:
        raise ValueError(f"need batch >= 1, got {batch}")
    rng = np.random.default_rng(seed)
    yy, xx = np.meshgrid(np.arange(hw), np.arange(hw), indexing="ij")
    images = np.empty((batch, 3, hw, hw), dtype=np.float64)
    masks = np.empty((batch, 1, hw, hw), dtype=np.float64)
    for i in range(batch):
        cy, cx = rng.uniform(0.3 * hw, 0.7 * hw, size=2)
        ry, rx = rng.uniform(0.12 * hw, 0.3 * hw, size=2)
        angle = rng.uniform(0, np.pi)
        dy, dx = yy - cy, xx - cx
        ry_ = np.cos(angle) * dy + np.sin(angle) * dx
        rx_ = -np.sin(angle) * dy + np.cos(angle) * dx
        blob = (ry_ / ry) ** 2 + (rx_ / rx) ** 2 <= 1.0
        masks[i, 0] = blob
        background = 0.2 * np.sin(yy / 7.0) * np.cos(xx / 9.0)
        for c in range(3):
            images[i, c] = background + blob * rng.uniform(0.8, 1.4)
    images += noise * rng.normal(size=images.shape)
    return SegmentationBatch(images=images.astype(np.float32),
                             masks=masks.astype(np.float32))
