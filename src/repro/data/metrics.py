"""Evaluation metrics: top-k accuracy and dice score (paper §4.4)."""

from __future__ import annotations

import numpy as np

__all__ = ["topk_accuracy", "dice_score", "prediction_agreement"]


def topk_accuracy(logits: np.ndarray, labels: np.ndarray, k: int = 5) -> float:
    """Fraction of samples whose label is in the top-``k`` predictions."""
    if logits.ndim != 2:
        raise ValueError(f"expected (N, classes) logits, got {logits.shape}")
    if labels.shape != (logits.shape[0],):
        raise ValueError(f"labels shape {labels.shape} != ({logits.shape[0]},)")
    k = min(k, logits.shape[1])
    topk = np.argsort(logits, axis=1)[:, -k:]
    hits = (topk == labels[:, None]).any(axis=1)
    return float(hits.mean())


def dice_score(pred_mask: np.ndarray, true_mask: np.ndarray,
               threshold: float = 0.5) -> float:
    """Sørensen–Dice coefficient between a soft prediction and a binary
    ground-truth mask (the Carvana metric)."""
    if pred_mask.shape != true_mask.shape:
        raise ValueError(f"shape mismatch: {pred_mask.shape} vs {true_mask.shape}")
    pred = (pred_mask >= threshold).astype(np.float64)
    true = (true_mask >= 0.5).astype(np.float64)
    intersection = float((pred * true).sum())
    denom = float(pred.sum() + true.sum())
    if denom == 0.0:
        return 1.0  # both empty: perfect agreement
    return 2.0 * intersection / denom


def prediction_agreement(logits_a: np.ndarray, logits_b: np.ndarray) -> float:
    """Top-1 agreement rate between two models' logits."""
    if logits_a.shape != logits_b.shape or logits_a.ndim != 2:
        raise ValueError(f"expected matching 2D logits: {logits_a.shape} vs {logits_b.shape}")
    return float((logits_a.argmax(axis=1) == logits_b.argmax(axis=1)).mean())
