"""Synthetic datasets and metrics (offline stand-ins for ILSVRC/Carvana)."""

from .metrics import dice_score, prediction_agreement, topk_accuracy
from .synthetic import (ClassificationBatch, SegmentationBatch,
                        classification_batch, segmentation_batch)

__all__ = [
    "ClassificationBatch",
    "SegmentationBatch",
    "classification_batch",
    "segmentation_batch",
    "topk_accuracy",
    "dice_score",
    "prediction_agreement",
]
