"""Benchmark harness: variant building, figure drivers, ablations."""

from .ablation import (DecompositionPoint, StrategyPoint, ThresholdPoint,
                       TilePoint, ablate_concat_strategy, ablate_decomposition,
                       ablate_thresholds, ablate_tile_size)
from .figures import (Figure4Result, Figure10Row, Figure11Row, Figure12Row,
                      figure4, figure10, figure11, figure12,
                      internal_reduction_geomean, overhead_ratios)
from .harness import (MIB, PAPER_LABELS, VariantSet, bar_chart, build_variants,
                      fast_mode, format_table, geomean, trace_figures,
                      variant_names_for)

__all__ = [
    "MIB",
    "PAPER_LABELS",
    "VariantSet",
    "build_variants",
    "fast_mode",
    "format_table",
    "bar_chart",
    "geomean",
    "trace_figures",
    "variant_names_for",
    "figure4",
    "figure10",
    "figure11",
    "figure12",
    "Figure4Result",
    "Figure10Row",
    "Figure11Row",
    "Figure12Row",
    "internal_reduction_geomean",
    "overhead_ratios",
    "ablate_thresholds",
    "ablate_decomposition",
    "ablate_concat_strategy",
    "ablate_tile_size",
    "ThresholdPoint",
    "DecompositionPoint",
    "StrategyPoint",
    "TilePoint",
]
