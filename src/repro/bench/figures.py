"""Drivers that regenerate the paper's figures as data tables.

Each ``figure*`` function runs the measurement and returns a structured
result; the ``benchmarks/`` suite prints them through
:func:`repro.bench.harness.format_table` and asserts the paper's
qualitative claims (who wins, roughly by how much, where the crossovers
are).  Absolute values differ from the paper — our substrate is a NumPy
executor at reduced resolution, not PyTorch/CUDA on an RTX 4090 — but
the series *shapes* are the reproduction target (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.liveness import analyze_liveness, find_skip_connections
from ..data import (classification_batch, dice_score, prediction_agreement,
                    segmentation_batch, topk_accuracy)
from ..models import MODEL_ZOO
from ..runtime import InferenceSession, execute
from .harness import MIB, PAPER_LABELS, VariantSet, build_variants, geomean, variant_names_for

__all__ = ["figure4", "figure10", "figure11", "figure12",
           "Figure4Result", "Figure10Row", "Figure11Row", "Figure12Row"]


# ---------------------------------------------------------------------------
# Figure 4: internal-tensor memory over the layer timeline
# ---------------------------------------------------------------------------

@dataclass
class Figure4Result:
    model: str
    batch: int
    #: variant -> [(layer index, live internal MiB)]
    timelines: dict[str, list[tuple[int, float]]]
    #: variant -> peak internal MiB
    peaks: dict[str, float]
    #: maximum bytes simultaneously held by skip-connection tensors in
    #: the decomposed model, as a fraction of its peak — the paper's
    #: Figure 4a quantity ("memory usage of skip connections takes
    #: 76.2% of the peak memory usage by internal tensors" for UNet)
    skip_share_decomposed: float
    #: maximum instantaneous fraction of live bytes held by skips
    #: (≈1.0 mid-hourglass: only the skips remain resident)
    skip_share_instantaneous: float
    #: skip fraction measured exactly at the peak event
    skip_share_at_peak: float


def figure4(model: str = "unet", batch: int = 4, hw: int | None = None,
            distance_threshold: int = 4, seed: int = 0) -> Figure4Result:
    """Memory-usage-over-time comparison (paper Figure 4a/4b)."""
    vs = build_variants(model, batch=batch, hw=hw, seed=seed)
    inputs = vs.input_batch(seed)
    timelines: dict[str, list[tuple[int, float]]] = {}
    peaks: dict[str, float] = {}
    skip_share = 0.0
    skip_share_inst = 0.0
    skip_share_at_peak = 0.0
    for variant in ("original", "decomposed"):
        graph = vs.graphs[variant]
        profile = execute(graph, inputs).memory
        timelines[variant] = [(i, b / MIB) for i, b in profile.timeline()]
        peaks[variant] = profile.peak_internal_bytes / MIB
        if variant == "decomposed":
            skips = find_skip_connections(graph, distance_threshold)
            skip_names = {s.value.name for s in skips}
            if profile.peak_internal_bytes:
                skip_share_at_peak = (profile.live_bytes_by_value(skip_names)
                                      / profile.peak_internal_bytes)
            # residency share over the whole timeline (exact: the static
            # liveness model equals the executor's accounting)
            intervals = analyze_liveness(graph)
            skip_ivs = [iv for v, iv in intervals.items()
                        if v.name in skip_names]
            max_skip_resident = 0
            for index in range(len(graph.nodes)):
                total = sum(iv.value.nbytes for iv in intervals.values()
                            if iv.live_at(index))
                held = sum(iv.value.nbytes for iv in skip_ivs
                           if iv.live_at(index))
                max_skip_resident = max(max_skip_resident, held)
                if total:
                    skip_share_inst = max(skip_share_inst, held / total)
            if profile.peak_internal_bytes:
                skip_share = max_skip_resident / profile.peak_internal_bytes
    return Figure4Result(model=model, batch=batch, timelines=timelines,
                         peaks=peaks, skip_share_decomposed=skip_share,
                         skip_share_instantaneous=skip_share_inst,
                         skip_share_at_peak=skip_share_at_peak)


# ---------------------------------------------------------------------------
# Figure 10: peak memory of the 10 models across variants
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Figure10Row:
    model: str
    variant: str
    weight_mib: float
    internal_mib: float

    @property
    def total_mib(self) -> float:
        return self.weight_mib + self.internal_mib

    @property
    def label(self) -> str:
        return PAPER_LABELS[self.variant]


def figure10(models: list[str] | None = None, batch: int = 4,
             ratio: float = 0.1, seed: int = 0,
             hw: int | None = None) -> list[Figure10Row]:
    """Peak memory (weights + internal) per model/variant (Figure 10)."""
    models = models or list(MODEL_ZOO)
    rows: list[Figure10Row] = []
    for model in models:
        vs = build_variants(model, batch=batch, hw=hw, ratio=ratio, seed=seed)
        for variant in variant_names_for(model):
            rows.append(Figure10Row(
                model=model, variant=variant,
                weight_mib=vs.weight_bytes(variant) / MIB,
                internal_mib=vs.peak_internal(variant) / MIB))
    return rows


def internal_reduction_geomean(rows: list[Figure10Row]) -> float:
    """Geomean internal-tensor reduction of the best TeMCO variant vs the
    original model — the paper's 75.7% headline."""
    by_model: dict[str, dict[str, Figure10Row]] = {}
    for row in rows:
        by_model.setdefault(row.model, {})[row.variant] = row
    ratios = []
    for variants in by_model.values():
        best = min(row.internal_mib for v, row in variants.items()
                   if v not in ("original", "decomposed"))
        ratios.append(best / variants["original"].internal_mib)
    return 1.0 - geomean(ratios)


# ---------------------------------------------------------------------------
# Figure 11: end-to-end inference time
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Figure11Row:
    model: str
    variant: str
    batch: int
    seconds: float
    #: tail percentiles over the timing repeats (0.0 when unmeasured,
    #: e.g. rows constructed analytically in tests)
    p50_seconds: float = 0.0
    p95_seconds: float = 0.0
    p99_seconds: float = 0.0


def figure11(models: list[str] | None = None, batches: tuple[int, ...] = (4, 32),
             hw: int | None = None, repeats: int = 3, warmup: int = 1,
             seed: int = 0) -> list[Figure11Row]:
    """End-to-end inference time, decomposed vs fully optimized (Figure 11)."""
    models = models or list(MODEL_ZOO)
    rows: list[Figure11Row] = []
    for model in models:
        best_variant = variant_names_for(model)[-1]
        for batch in batches:
            vs = build_variants(model, batch=batch, hw=hw, seed=seed)
            inputs = vs.input_batch(seed)
            for variant in ("decomposed", best_variant):
                session = InferenceSession(vs.graphs[variant])
                timing = session.time_inference(inputs, warmup=warmup,
                                                repeats=repeats)
                rows.append(Figure11Row(model=model, variant=variant,
                                        batch=batch, seconds=timing.median,
                                        p50_seconds=timing.p50,
                                        p95_seconds=timing.p95,
                                        p99_seconds=timing.p99))
    return rows


def overhead_ratios(rows: list[Figure11Row]) -> dict[int, float]:
    """Geomean optimized/decomposed time ratio per batch size (the paper
    reports 1.08× at batch 4 and 1.70× at batch 32)."""
    by_key: dict[tuple[str, int], dict[str, float]] = {}
    for row in rows:
        kind = "decomposed" if row.variant == "decomposed" else "optimized"
        by_key.setdefault((row.model, row.batch), {})[kind] = row.seconds
    per_batch: dict[int, list[float]] = {}
    for (model, batch), t in by_key.items():
        if "decomposed" in t and "optimized" in t:
            per_batch.setdefault(batch, []).append(t["optimized"] / t["decomposed"])
    return {batch: geomean(vals) for batch, vals in sorted(per_batch.items())}


# ---------------------------------------------------------------------------
# Figure 12: accuracy preservation
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Figure12Row:
    model: str
    variant: str
    #: task metric (top-5 accuracy against synthetic labels, or dice)
    metric: float
    #: top-1 prediction agreement with the decomposed baseline
    #: (1.0 = TeMCO changed nothing, the paper's claim)
    agreement_with_decomposed: float


def figure12(models: list[str] | None = None, batch: int = 16,
             seed: int = 0, hw: int | None = None) -> list[Figure12Row]:
    """Accuracy of decomposed vs TeMCO-optimized variants (Figure 12).

    The zoo's weights are random (no offline ImageNet/Carvana), so the
    *absolute* metric is chance-level; what reproduces the paper's
    claim is that every TeMCO variant scores identically to the
    decomposed baseline and agrees with it on every prediction.
    """
    models = models or list(MODEL_ZOO)
    rows: list[Figure12Row] = []
    for model in models:
        spec = MODEL_ZOO[model]
        vs = build_variants(model, batch=batch, hw=hw, seed=seed)
        if spec.task == "classification":
            data = classification_batch(batch, hw=vs.hw, seed=seed)
            inputs = {"image": data.images}
        else:
            data = segmentation_batch(batch, hw=vs.hw, seed=seed)
            inputs = {"image": data.images}
        baseline_out = execute(vs.graphs["decomposed"], inputs).output()
        for variant in variant_names_for(model)[1:]:
            out = execute(vs.graphs[variant], inputs).output()
            if spec.task == "classification":
                metric = topk_accuracy(out, data.labels, k=5)
                agreement = prediction_agreement(out, baseline_out)
            else:
                metric = dice_score(out, data.masks)
                base_pred = (baseline_out >= 0.5)
                agreement = float(((out >= 0.5) == base_pred).mean())
            rows.append(Figure12Row(model=model, variant=variant, metric=metric,
                                    agreement_with_decomposed=agreement))
    return rows
