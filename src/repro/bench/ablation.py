"""Ablation drivers for the design choices DESIGN.md calls out.

A1 — skip-opt thresholds (DISTANCE_THRESHOLD / COMPUTE_THRESHOLD):
     how selectivity changes what gets optimized (§4.2's ResNet note).
A2 — decomposition method/ratio: weight memory, fit error and peak
     internal memory across Tucker/CP/TT and rank ratios.
A3 — concat strategy: merged block-diagonal lconv (Fig. 9a) vs
     per-branch split (Fig. 9c) vs none.
A4 — fused-kernel channel-block size: scratch bytes vs wall-clock.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import (FusionConfig, SkipOptConfig, TeMCOConfig,
                    estimate_peak_internal, optimize)
from ..core.skip_opt import optimize_skip_connections
from ..decompose import DecompositionConfig, decompose_graph, decomposition_records
from ..models import build_model
from ..runtime import InferenceSession
from .harness import MIB

__all__ = ["ThresholdPoint", "ablate_thresholds", "DecompositionPoint",
           "ablate_decomposition", "StrategyPoint", "ablate_concat_strategy",
           "TilePoint", "ablate_tile_size", "TunedTileChoice",
           "tuned_tile_choices"]


# ---------------------------------------------------------------------------
# A1: skip-opt thresholds
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ThresholdPoint:
    distance_threshold: int
    compute_slack: float
    candidates: int
    optimized: int
    peak_mib: float


def ablate_thresholds(model: str = "densenet", batch: int = 2,
                      distance_thresholds: tuple[int, ...] = (2, 4, 8, 16, 32),
                      compute_slacks: tuple[float, ...] = (0.1, 1.0, 10.0),
                      seed: int = 0) -> list[ThresholdPoint]:
    """Sweep Algorithm 1's thresholds; skip-opt only (no fusion), so the
    peak differences are attributable to the guard settings."""
    original = build_model(model, batch=batch, seed=seed)
    decomposed = decompose_graph(original, DecompositionConfig(seed=seed))
    points = []
    for dist in distance_thresholds:
        for slack in compute_slacks:
            work = decomposed.clone()
            stats = optimize_skip_connections(
                work, SkipOptConfig(distance_threshold=dist,
                                    compute_slack=slack, global_check=True))
            points.append(ThresholdPoint(
                distance_threshold=dist, compute_slack=slack,
                candidates=stats.candidates, optimized=stats.optimized,
                peak_mib=estimate_peak_internal(work) / MIB))
    return points


# ---------------------------------------------------------------------------
# A2: decomposition method / ratio
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class DecompositionPoint:
    method: str
    ratio: float
    weight_mib: float
    mean_fit_error: float
    peak_decomposed_mib: float
    peak_optimized_mib: float


def ablate_decomposition(model: str = "vgg16", batch: int = 2, hw: int = 32,
                         methods: tuple[str, ...] = ("tucker", "cp", "tt"),
                         ratios: tuple[float, ...] = (0.05, 0.1, 0.25, 0.5),
                         seed: int = 0) -> list[DecompositionPoint]:
    """Weight/fit/memory trade-off across decomposition methods & ratios."""
    original = build_model(model, batch=batch, hw=hw, seed=seed)
    points = []
    for method in methods:
        for ratio in ratios:
            decomposed = decompose_graph(
                original, DecompositionConfig(method=method, ratio=ratio,
                                              seed=seed, cp_iters=15))
            optimized, report = optimize(decomposed)
            records = decomposition_records(decomposed)
            errors = [r.fit_error for r in records if np.isfinite(r.fit_error)]
            points.append(DecompositionPoint(
                method=method, ratio=ratio,
                weight_mib=decomposed.weight_bytes() / MIB,
                mean_fit_error=float(np.mean(errors)) if errors else float("nan"),
                peak_decomposed_mib=report.peak_before / MIB,
                peak_optimized_mib=report.peak_after / MIB))
    return points


# ---------------------------------------------------------------------------
# A3: concat strategy
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class StrategyPoint:
    model: str
    strategy: str
    peak_mib: float
    weight_mib: float
    fused_kernels: int
    node_count: int


def ablate_concat_strategy(models: tuple[str, ...] = ("unet_small", "densenet"),
                           batch: int = 2, seed: int = 0) -> list[StrategyPoint]:
    """Merged lconv (Fig. 9a) vs split conv-add (Fig. 9c) vs no transform."""
    points = []
    for model in models:
        original = build_model(model, batch=batch, seed=seed)
        decomposed = decompose_graph(original, DecompositionConfig(seed=seed))
        for strategy in ("merge", "split", "none"):
            optimized, report = optimize(
                decomposed, TeMCOConfig(concat_strategy=strategy))
            points.append(StrategyPoint(
                model=model, strategy=strategy,
                peak_mib=report.peak_after / MIB,
                weight_mib=report.weight_bytes_after / MIB,
                fused_kernels=report.fusion.fused if report.fusion else 0,
                node_count=len(optimized.nodes)))
    return points


# ---------------------------------------------------------------------------
# A4: fused-kernel tile size
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TilePoint:
    block_size: int
    scratch_mib: float
    seconds: float


@dataclass(frozen=True)
class TunedTileChoice:
    """What the autotuner picked for one fusion site."""

    site: str
    block_size: int
    spatial_tile: int
    best_ms: float
    default_ms: float


def tuned_tile_choices(model: str = "vgg16", batch: int = 4, hw: int = 32,
                       budget: int = 6, repeats: int = 1,
                       seed: int = 0) -> list[TunedTileChoice]:
    """The autotuner's per-site picks on the same fused graph the A4
    sweep times — lets the ablation report show where the measured
    optimum lands relative to the swept grid."""
    from ..tune import TuneConfig, tune_graph
    original = build_model(model, batch=batch, hw=hw, seed=seed)
    decomposed = decompose_graph(original, DecompositionConfig(seed=seed))
    optimized, _report = optimize(decomposed)
    result = tune_graph(optimized, TuneConfig(budget=budget, repeats=repeats,
                                              seed=seed))
    return [TunedTileChoice(site=s.site_key, block_size=s.block_size,
                            spatial_tile=s.spatial_tile,
                            best_ms=s.seconds * 1e3,
                            default_ms=s.baseline_seconds * 1e3)
            for s in result.sites]


def ablate_tile_size(model: str = "vgg16", batch: int = 4, hw: int = 32,
                     block_sizes: tuple[int, ...] = (4, 16, 32, 64, 256),
                     repeats: int = 3, seed: int = 0) -> list[TilePoint]:
    """Channel-block width of Listing 1's tiles: scratch vs wall-clock."""
    original = build_model(model, batch=batch, hw=hw, seed=seed)
    decomposed = decompose_graph(original, DecompositionConfig(seed=seed))
    rng = np.random.default_rng(seed)
    inputs = {"image": rng.normal(size=original.inputs[0].shape).astype(np.float32)}
    points = []
    for block in block_sizes:
        optimized, _report = optimize(
            decomposed, TeMCOConfig(fusion=FusionConfig(block_size=block)))
        session = InferenceSession(optimized)
        timing = session.time_inference(inputs, warmup=1, repeats=repeats)
        profile = session.run(inputs).memory
        points.append(TilePoint(block_size=block,
                                scratch_mib=profile.peak_scratch_bytes / MIB,
                                seconds=timing.median))
    return points
