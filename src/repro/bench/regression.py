"""Benchmark baselines and the continuous regression gate.

``repro bench --json`` measures the suite and writes a
``BENCH_<name>.json`` document; ``repro bench --compare <baseline>``
re-measures with the *baseline's own configuration* and diffs the two.
The committed ``BENCH_baseline.json`` at the repo root is the
reference; CI runs the gate on every push so a change that silently
raises an optimized peak fails the build.

What gets gated, and how tightly, follows from what is deterministic:

- **peak bytes** (measured, per variant) depend only on tensor shapes
  and the compiler's decisions — identical across machines — so the
  default peak tolerance is **0.0%**: any byte of growth is a
  regression.  Improvements (lower peaks) are reported, never fatal.
- **latency** is machine- and load-dependent, so latency deltas are
  *informational* by default and only gate when an explicit
  ``--latency-tolerance`` is given (useful on a quiet dedicated box).

Document schema (version 1)::

    {"schema": 1, "name": ..., "created_at": ...,
     "config": {"models": [...], "batch": ..., "hw": ..., "ratio": ...,
                "method": ..., "seed": ..., "repeats": ..., "warmup": ...,
                "budget": ... | null},
     "models": {model: {"best_variant": ...,
                        "reduction_pct": ...,
                        "variants": {variant: {
                            "peak_bytes": ...,
                            "latency_ms": {"p50": ..., "p95": ...,
                                           "p99": ...},
                            "budgeted": {...}  # only when config.budget
                        }}}}}

The optional ``budgeted`` sub-document (present when the config sets a
``budget``, e.g. ``repro bench --json --budget 60%``) reports the
memory planner's enforced peak for that variant — informational only,
``--compare`` never gates on it.  Likewise the optional top-level
``fleet`` key (``repro bench --json --fleet``): a 1-vs-3-replica
throughput comparison under one shared host budget via
:mod:`repro.fleet` — informational, never gated (``compare_bench``
reads only ``models``).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..runtime.engine import InferenceSession
from .harness import build_variants, format_table, variant_names_for

__all__ = ["SCHEMA_VERSION", "DEFAULT_MODELS", "BenchConfig", "BenchDelta",
           "BenchComparison", "collect_bench", "write_bench", "load_bench",
           "compare_bench", "format_comparison"]

SCHEMA_VERSION = 1

#: the gate's default model subset: small enough for CI (a few seconds
#: each), diverse enough to cover the pipeline's branches — a plain
#: CNN (fusion), a skip-connection ResNet, and a U-Net (concat skips)
DEFAULT_MODELS = ("alexnet", "resnet18", "unet_small")


@dataclass(frozen=True)
class BenchConfig:
    """The suite's workload knobs (embedded in every document so
    ``--compare`` re-measures apples-to-apples)."""

    models: tuple[str, ...] = DEFAULT_MODELS
    batch: int = 4
    hw: int = 32
    ratio: float = 0.1
    method: str = "tucker"
    seed: int = 0
    repeats: int = 5
    warmup: int = 1
    #: optional memory budget (``repro.plan.parse_budget`` grammar,
    #: e.g. ``"60%"`` of each variant's own peak): adds an
    #: *informational* budgeted-peak measurement per variant — it is
    #: never gated by ``--compare``
    budget: str | None = None
    #: measure an *informational* fleet-throughput comparison (1 vs 3
    #: replicas under one shared host budget, driven through the
    #: :mod:`repro.fleet` router) — like ``budget``, never gated
    fleet: bool = False

    def to_dict(self) -> dict:
        return {"models": list(self.models), "batch": self.batch,
                "hw": self.hw, "ratio": self.ratio, "method": self.method,
                "seed": self.seed, "repeats": self.repeats,
                "warmup": self.warmup, "budget": self.budget,
                "fleet": self.fleet}

    @classmethod
    def from_dict(cls, doc: dict) -> "BenchConfig":
        return cls(models=tuple(doc["models"]), batch=doc["batch"],
                   hw=doc["hw"], ratio=doc["ratio"], method=doc["method"],
                   seed=doc["seed"], repeats=doc["repeats"],
                   warmup=doc["warmup"], budget=doc.get("budget"),
                   fleet=doc.get("fleet", False))


def _budgeted_entry(graph, inputs, budget_spec: str,
                    measured_peak: int) -> dict:
    """One variant's informational budgeted-peak measurement.

    The budget is parsed relative to the variant's *own* unplanned
    measured peak (so ``"60%"`` means 60% of this row's peak), the
    plan is enforced for one run, and the measured budgeted peak is
    reported.  Infeasible budgets are reported, never fatal — this
    column never gates.
    """
    from ..plan import InfeasibleBudget, parse_budget, plan_memory
    from ..runtime.executor import execute

    budget = parse_budget(budget_spec, reference=measured_peak)
    try:
        mplan = plan_memory(graph, budget)
    except InfeasibleBudget as exc:
        return {"budget_bytes": budget, "feasible": False,
                "residual_bytes": exc.residual_bytes,
                "planned_peak_bytes": exc.predicted_peak_bytes}
    result = execute(graph, inputs, plan=mplan)
    stats = result.memory.plan_stats
    return {"budget_bytes": budget, "feasible": True,
            "planned_peak_bytes": mplan.planned_peak_bytes,
            "measured_peak_bytes": result.memory.peak_internal_bytes,
            "spills": stats.spills if stats else 0,
            "remats": stats.remats if stats else 0,
            "spilled_bytes": stats.spilled_bytes if stats else 0}


def _fleet_entry(config: BenchConfig) -> dict:
    """The informational fleet-throughput comparison: the suite's
    first model served by 1 vs 3 replicas under the *same* shared host
    budget (3x one replica's unplanned peak — exactly enough for three
    planned replicas, so the comparison isolates what replication buys
    in throughput for a fixed host allocation), driven closed-loop
    through the fleet router.  Reported in the document's ``fleet``
    key; ``--compare`` never reads it.
    """
    from ..core import estimate_peak_internal
    from ..fleet import PoolConfig, ReplicaPool, Router
    from ..models import build_model
    from ..plan import InfeasibleBudget
    from ..serve import LoadgenConfig, ServerConfig, run_loadgen

    model = config.models[0]
    graph = build_model(model, batch=config.batch, hw=config.hw,
                        seed=config.seed)
    host_bytes = int(estimate_peak_internal(graph) * 3)
    load = LoadgenConfig(requests=24, concurrency=6, seed=config.seed)
    entry: dict = {"model": model, "host_budget_bytes": host_bytes,
                   "requests": load.requests,
                   "concurrency": load.concurrency, "replicas": {}}
    for replicas in (1, 3):
        try:
            pool = ReplicaPool(graph, PoolConfig(
                replicas=replicas, host_budget=host_bytes,
                server=ServerConfig(num_workers=1)))
        except InfeasibleBudget as exc:
            entry["replicas"][str(replicas)] = {
                "feasible": False, "residual_bytes": exc.residual_bytes}
            continue
        with Router(pool) as router:
            report = run_loadgen(router, load)
        entry["replicas"][str(replicas)] = {
            "feasible": True,
            "replica_budget_bytes": int(pool.memory_plan.budget_bytes or 0)
            if pool.memory_plan else 0,
            "throughput_rps": report.throughput_rps,
            "completed": report.completed,
            "errors": report.errors,
            "p50_ms": report.latency.p50 * 1e3}
    one = entry["replicas"].get("1", {}).get("throughput_rps")
    three = entry["replicas"].get("3", {}).get("throughput_rps")
    if one and three:
        entry["speedup"] = three / one
    return entry


def collect_bench(config: BenchConfig | None = None, *,
                  name: str = "current") -> dict:
    """Measure the suite and return a schema-1 bench document.

    Per model, measures the *original* and the best TeMCO variant:
    measured peak internal bytes (from one profiled run) and p50/p95/p99
    end-to-end latency over ``config.repeats`` timed runs.
    """
    config = config or BenchConfig()
    models: dict[str, dict] = {}
    for model in config.models:
        vs = build_variants(model, batch=config.batch, hw=config.hw,
                            ratio=config.ratio, seed=config.seed,
                            method=config.method)
        best = variant_names_for(model)[-1]
        inputs = vs.input_batch(config.seed)
        variants: dict[str, dict] = {}
        for variant in ("original", best):
            session = InferenceSession(vs.graphs[variant])
            peak = session.run(inputs).memory.peak_internal_bytes
            timing = session.time_inference(
                inputs, warmup=config.warmup, repeats=config.repeats)
            variants[variant] = {
                "peak_bytes": int(peak),
                "latency_ms": {"p50": timing.p50 * 1e3,
                               "p95": timing.p95 * 1e3,
                               "p99": timing.p99 * 1e3},
            }
            if config.budget is not None:
                variants[variant]["budgeted"] = _budgeted_entry(
                    vs.graphs[variant], inputs, config.budget, int(peak))
        original_peak = variants["original"]["peak_bytes"]
        reduction = (1.0 - variants[best]["peak_bytes"] / original_peak) \
            * 100.0 if original_peak else 0.0
        models[model] = {"best_variant": best, "reduction_pct": reduction,
                         "variants": variants}
    doc = {"schema": SCHEMA_VERSION, "name": name,
           "created_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
           "config": config.to_dict(), "models": models}
    if config.fleet:
        # informational only: compare_bench reads just the "models"
        # key, so the fleet measurement can never fail the gate
        doc["fleet"] = _fleet_entry(config)
    return doc


def write_bench(doc: dict, path: str | Path) -> Path:
    path = Path(path)
    path.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
    return path


def load_bench(path: str | Path) -> dict:
    """Load and schema-check a bench document."""
    doc = json.loads(Path(path).read_text())
    schema = doc.get("schema")
    if schema != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: bench schema {schema!r} unsupported "
            f"(expected {SCHEMA_VERSION})")
    for key in ("config", "models"):
        if key not in doc:
            raise ValueError(f"{path}: bench document missing {key!r}")
    return doc


@dataclass(frozen=True)
class BenchDelta:
    """One (model, variant) diff row."""

    model: str
    variant: str
    baseline_peak_bytes: int
    current_peak_bytes: int
    baseline_p50_ms: float
    current_p50_ms: float

    @property
    def peak_delta_pct(self) -> float:
        if not self.baseline_peak_bytes:
            return 0.0
        return (self.current_peak_bytes / self.baseline_peak_bytes - 1.0) \
            * 100.0

    @property
    def latency_delta_pct(self) -> float:
        if not self.baseline_p50_ms:
            return 0.0
        return (self.current_p50_ms / self.baseline_p50_ms - 1.0) * 100.0


@dataclass
class BenchComparison:
    """The gate's verdict: per-row deltas plus fatal regressions."""

    baseline_name: str
    current_name: str
    deltas: list[BenchDelta] = field(default_factory=list)
    regressions: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.regressions


def compare_bench(current: dict, baseline: dict, *,
                  peak_tolerance_pct: float = 0.0,
                  latency_tolerance_pct: float | None = None
                  ) -> BenchComparison:
    """Diff ``current`` against ``baseline``.

    A (model, variant) regresses when its measured peak grows more than
    ``peak_tolerance_pct`` percent over the baseline (default: any
    growth).  Latency gates only when ``latency_tolerance_pct`` is
    given; otherwise latency deltas are informational.  A model present
    in the baseline but absent from the current run is a regression
    (coverage must not silently shrink).
    """
    comparison = BenchComparison(
        baseline_name=baseline.get("name", "baseline"),
        current_name=current.get("name", "current"))
    for model, base_entry in sorted(baseline["models"].items()):
        cur_entry = current["models"].get(model)
        if cur_entry is None:
            comparison.regressions.append(
                f"{model}: present in baseline but not measured now")
            continue
        for variant, base_v in sorted(base_entry["variants"].items()):
            cur_v = cur_entry["variants"].get(variant)
            if cur_v is None:
                comparison.regressions.append(
                    f"{model}/{variant}: variant missing from current run")
                continue
            delta = BenchDelta(
                model=model, variant=variant,
                baseline_peak_bytes=int(base_v["peak_bytes"]),
                current_peak_bytes=int(cur_v["peak_bytes"]),
                baseline_p50_ms=float(base_v["latency_ms"]["p50"]),
                current_p50_ms=float(cur_v["latency_ms"]["p50"]))
            comparison.deltas.append(delta)
            if delta.peak_delta_pct > peak_tolerance_pct:
                comparison.regressions.append(
                    f"{model}/{variant}: peak {delta.current_peak_bytes} B "
                    f"is {delta.peak_delta_pct:+.2f}% vs baseline "
                    f"{delta.baseline_peak_bytes} B "
                    f"(tolerance {peak_tolerance_pct:.2f}%)")
            if (latency_tolerance_pct is not None
                    and delta.latency_delta_pct > latency_tolerance_pct):
                comparison.regressions.append(
                    f"{model}/{variant}: p50 latency "
                    f"{delta.current_p50_ms:.2f} ms is "
                    f"{delta.latency_delta_pct:+.1f}% vs baseline "
                    f"{delta.baseline_p50_ms:.2f} ms "
                    f"(tolerance {latency_tolerance_pct:.1f}%)")
    return comparison


def format_comparison(comparison: BenchComparison) -> str:
    """The gate's stdout: a delta table, then the verdict."""
    rows = [[d.model, d.variant,
             d.baseline_peak_bytes, d.current_peak_bytes,
             f"{d.peak_delta_pct:+.2f}%",
             f"{d.baseline_p50_ms:.2f}", f"{d.current_p50_ms:.2f}",
             f"{d.latency_delta_pct:+.1f}%"]
            for d in comparison.deltas]
    table = format_table(
        ["model", "variant", "base peak B", "now peak B", "peak Δ",
         "base p50 ms", "now p50 ms", "p50 Δ"],
        rows,
        title=(f"bench gate: {comparison.current_name} vs "
               f"{comparison.baseline_name}"))
    lines = [table, ""]
    if comparison.passed:
        lines.append("PASS: no regressions (latency deltas informational)")
    else:
        lines.append(f"FAIL: {len(comparison.regressions)} regression(s)")
        lines += [f"  - {reason}" for reason in comparison.regressions]
    return "\n".join(lines)
