"""Experiment harness shared by the ``benchmarks/`` suite.

Builds the paper's model variants, runs the measurements, and prints
the same rows the paper's figures report:

- **Original** — the undecomposed model,
- **Decomposed** — Tucker-decomposed at ratio 0.1 (the paper's baseline),
- **Fusion** — activation layer fusion only (AlexNet/VGG),
- **Skip-Opt** — skip-connection optimization only,
- **Skip-Opt+Fusion** — the full TeMCO pipeline (skip models).
"""

from __future__ import annotations

import contextlib
import functools
import os
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable

import numpy as np

from ..core import (FusionConfig, SkipOptConfig, TeMCOConfig,
                    estimate_peak_internal, optimize)
from ..decompose import DecompositionConfig, decompose_graph
from ..ir.graph import Graph
from ..models import MODEL_ZOO, build_model
from ..obs import Tracer, use_tracer, write_trace

__all__ = ["VariantSet", "build_variants", "variant_names_for", "format_table",
           "bar_chart", "geomean", "fast_mode", "trace_figures",
           "use_tuned_fusion", "MIB"]

MIB = 1024 * 1024

#: TeMCO variant -> pipeline configuration
_VARIANT_CONFIGS: dict[str, TeMCOConfig] = {
    "fusion": TeMCOConfig(enable_skip_opt=False, enable_transforms=False,
                          enable_fusion=True),
    "skip_opt": TeMCOConfig(enable_skip_opt=True, enable_transforms=False,
                            enable_fusion=False),
    "skip_opt_fusion": TeMCOConfig(enable_skip_opt=True, enable_transforms=True,
                                   enable_fusion=True),
}

PAPER_LABELS = {
    "original": "Original",
    "decomposed": "Decomposed",
    "fusion": "Fusion",
    "skip_opt": "Skip-Opt",
    "skip_opt_fusion": "Skip-Opt+Fusion",
}


def fast_mode() -> bool:
    """Honour ``REPRO_BENCH_FAST=1`` to shrink benchmark workloads."""
    return os.environ.get("REPRO_BENCH_FAST", "0") not in ("0", "")


@contextlib.contextmanager
def trace_figures(path: str | Path | None):
    """Trace a figure run end to end and dump the trace on exit.

    Installs a fresh :class:`repro.obs.Tracer` as the ambient tracer
    for the ``with`` body — every compile decision and executor span of
    the figure run lands in it — then writes ``path`` (Chrome trace
    JSON, or JSONL when the suffix is ``.jsonl``).  A falsy ``path``
    makes the whole thing a no-op, so callers can thread an optional
    CLI flag straight through.  Note: ``build_variants`` caches, so a
    model compiled by an earlier figure run contributes no compile
    spans the second time.
    """
    if not path:
        yield None
        return
    tracer = Tracer()
    with use_tracer(tracer):
        yield tracer
    write_trace(tracer, path)


#: ambient tuned-tile lookup installed by :func:`use_tuned_fusion`;
#: ``(original graph, variant TeMCOConfig) -> site overrides | None``
_TUNED_LOOKUP: Callable[[Graph, TeMCOConfig],
                        "dict[str, tuple[int, int]] | None"] | None = None


@contextlib.contextmanager
def use_tuned_fusion(lookup: Callable[[Graph, TeMCOConfig],
                                      "dict[str, tuple[int, int]] | None"]):
    """Make ``build_variants`` fuse with tuned tiles for the ``with`` body.

    ``lookup`` is called once per fusing variant with the *original*
    (undecomposed) graph and that variant's :class:`TeMCOConfig`;
    returning a non-empty ``{lconv_name: (block_size, spatial_tile)}``
    mapping merges it into the variant's ``FusionConfig.site_overrides``
    (typically :func:`repro.tune.cached_overrides` curried over a
    cache — a miss returns ``None`` and the variant builds untuned).
    ``build_variants``' memo cache is cleared on entry and exit so
    tuned and untuned builds never alias.
    """
    global _TUNED_LOOKUP
    prev = _TUNED_LOOKUP
    _TUNED_LOOKUP = lookup
    build_variants.cache_clear()
    try:
        yield
    finally:
        _TUNED_LOOKUP = prev
        build_variants.cache_clear()


def _variant_config(original: Graph, config: TeMCOConfig) -> TeMCOConfig:
    """Apply the ambient tuned-tile lookup (if any) to one variant."""
    if _TUNED_LOOKUP is None or not config.enable_fusion:
        return config
    overrides = _TUNED_LOOKUP(original, config)
    if not overrides:
        return config
    merged = dict(config.fusion.site_overrides or {})
    merged.update(overrides)
    return replace(config, fusion=replace(config.fusion,
                                          site_overrides=merged))


def variant_names_for(model: str) -> list[str]:
    """The paper's Figure-10 bar set for one model (§4.1)."""
    spec = MODEL_ZOO[model]
    if spec.has_skip_connections:
        return ["original", "decomposed", "skip_opt", "skip_opt_fusion"]
    return ["original", "decomposed", "fusion"]


@dataclass(frozen=True)
class VariantSet:
    """All graph variants of one benchmark model."""

    model: str
    batch: int
    hw: int
    graphs: dict[str, Graph]

    def input_batch(self, seed: int = 0) -> dict[str, np.ndarray]:
        rng = np.random.default_rng(seed)
        shape = self.graphs["original"].inputs[0].shape
        return {"image": rng.normal(size=shape).astype(np.float32)}

    def peak_internal(self, variant: str) -> int:
        return estimate_peak_internal(self.graphs[variant])

    def weight_bytes(self, variant: str) -> int:
        return self.graphs[variant].weight_bytes()


@functools.lru_cache(maxsize=64)
def build_variants(model: str, batch: int = 4, hw: int | None = None,
                   ratio: float = 0.1, seed: int = 0,
                   method: str = "tucker") -> VariantSet:
    """Build original/decomposed/TeMCO variants for one model (cached)."""
    original = build_model(model, batch=batch, hw=hw, seed=seed)
    actual_hw = original.inputs[0].shape[2]
    decomposed = decompose_graph(
        original, DecompositionConfig(method=method, ratio=ratio, seed=seed))
    graphs = {"original": original, "decomposed": decomposed}
    for variant in variant_names_for(model):
        if variant in graphs:
            continue
        config = _variant_config(original, _VARIANT_CONFIGS[variant])
        optimized, _report = optimize(decomposed, config)
        graphs[variant] = optimized
    return VariantSet(model=model, batch=batch, hw=actual_hw, graphs=graphs)


def geomean(values: list[float]) -> float:
    arr = np.asarray(values, dtype=np.float64)
    if (arr <= 0).any():
        raise ValueError(f"geomean requires positive values, got {values}")
    return float(np.exp(np.log(arr).mean()))


def format_table(headers: list[str], rows: list[list], title: str = "") -> str:
    """Plain-text table, right-aligned numerics, for bench stdout."""
    def fmt(cell) -> str:
        if isinstance(cell, float):
            return f"{cell:.3f}"
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
              for i, h in enumerate(headers)]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) if _numeric(c) else c.ljust(w)
                               for c, w in zip(row, widths)))
    return "\n".join(lines)


def _numeric(s: str) -> bool:
    try:
        float(s.rstrip("x%"))
        return True
    except ValueError:
        return False


def bar_chart(items: list[tuple[str, float]], *, width: int = 48,
              unit: str = "MiB", title: str = "") -> str:
    """Horizontal ASCII bar chart — the benchmarks' stand-in for the
    paper's figures (no plotting dependency)."""
    if not items:
        return title
    peak = max(value for _, value in items) or 1.0
    label_w = max(len(label) for label, _ in items)
    lines = [title] if title else []
    for label, value in items:
        bar = "#" * max(1, round(width * value / peak)) if value > 0 else ""
        lines.append(f"{label:<{label_w}} |{bar:<{width}}| {value:8.3f} {unit}")
    return "\n".join(lines)
