"""Data types for IR tensors.

The runtime stores activations as NumPy arrays; the IR only needs the
element size (for the allocator's byte accounting) and the NumPy dtype
(for kernel dispatch).  Models run in ``float32`` by default; the
equivalence checker can re-run graphs in ``float64`` to separate
floating-point reassociation noise from genuine semantic changes.
"""

from __future__ import annotations

import enum

import numpy as np

__all__ = ["DType"]


class DType(enum.Enum):
    """Element type of an IR tensor value."""

    float32 = "float32"
    float64 = "float64"
    int32 = "int32"
    int64 = "int64"
    bool_ = "bool"

    @property
    def np(self) -> np.dtype:
        """The corresponding NumPy dtype object."""
        return np.dtype(self.value)

    @property
    def itemsize(self) -> int:
        """Bytes per element (what the allocator charges)."""
        return self.np.itemsize

    @classmethod
    def from_numpy(cls, dtype: np.dtype | type) -> "DType":
        """Map a NumPy dtype (or array-like dtype spec) to a :class:`DType`."""
        name = np.dtype(dtype).name
        if name == "bool":
            return cls.bool_
        try:
            return cls(name)
        except ValueError as exc:  # pragma: no cover - defensive
            raise TypeError(f"unsupported dtype for IR tensors: {name!r}") from exc

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DType.{self.name}"
