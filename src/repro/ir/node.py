"""Graph nodes: one executable layer per node.

A node consumes SSA :class:`~repro.ir.value.Value` inputs and defines
exactly one output value (single-output SSA keeps the liveness and
rewrite machinery simple; multi-output layers such as ``torch.split``
do not occur in the evaluated model families).

Weights are stored on the node in ``params`` as NumPy arrays.  This
mirrors the paper's split between *weight tensors* (resident for the
whole inference, Eq. 1–2) and *internal tensors* (dynamically
allocated, Eq. 3–4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from .value import Value

__all__ = ["Node"]


@dataclass(eq=False)
class Node:
    """One layer of the model graph.

    Parameters
    ----------
    name:
        Unique node name within the graph.
    op:
        Operation kind; must be registered in :mod:`repro.ir.ops`.
    inputs:
        Ordered input values.
    output:
        The single value this node defines.
    attrs:
        JSON-safe static attributes (strides, paddings, activation
        kinds, decomposition roles, ...).
    params:
        Named weight arrays (e.g. ``weight``, ``bias``).  Counted as
        weight memory, never as internal-tensor memory.
    """

    name: str
    op: str
    inputs: list[Value]
    output: Value
    attrs: dict[str, Any] = field(default_factory=dict)
    params: dict[str, np.ndarray] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.inputs = list(self.inputs)
        if self.output.producer is None:
            self.output.producer = self.name

    # -- convenience ---------------------------------------------------
    @property
    def input(self) -> Value:
        """The sole input (raises if the node is not unary)."""
        if len(self.inputs) != 1:
            raise ValueError(f"node {self.name!r} ({self.op}) has {len(self.inputs)} inputs")
        return self.inputs[0]

    def param_bytes(self) -> int:
        """Total bytes of this node's weight tensors."""
        return sum(int(p.nbytes) for p in self.params.values())

    def param_elements(self) -> int:
        return sum(int(p.size) for p in self.params.values())

    def replace_input(self, old: Value, new: Value) -> int:
        """Replace every occurrence of ``old`` in ``inputs`` with ``new``.

        Returns the number of replacements (0 if ``old`` is not used).
        """
        count = 0
        for i, v in enumerate(self.inputs):
            if v is old:
                self.inputs[i] = new
                count += 1
        return count

    def clone(self, name: str, inputs: list[Value], output: Value, share_params: bool = True) -> "Node":
        """Copy this node with new name/edges.

        Restore-layer copying in skip-connection optimization shares
        the weight arrays (``share_params=True``) — the paper copies
        *layers*, not weights, so weight memory is unchanged.
        """
        params = dict(self.params) if share_params else {k: v.copy() for k, v in self.params.items()}
        return Node(name=name, op=self.op, inputs=list(inputs), output=output,
                    attrs=dict(self.attrs), params=params)

    def __repr__(self) -> str:
        ins = ", ".join(v.name for v in self.inputs)
        return f"<{self.op} {self.name}({ins}) -> {self.output!r}>"

    def __hash__(self) -> int:
        return id(self)
