"""Graphviz DOT export for model graphs.

``to_dot`` renders the graph structure with per-node memory annotations
(output tensor bytes) and role-based coloring, so the effect of TeMCO's
rewrites is visible at a glance: fconv/lconv/core roles, fused kernels,
merged/split provenance.  Writes plain DOT text; rendering is left to
the user's ``dot`` binary (not a dependency).
"""

from __future__ import annotations

from pathlib import Path

from .graph import Graph

__all__ = ["to_dot", "save_dot"]

_ROLE_COLORS = {
    "fconv": "#cfe8ff",   # light blue: channel reducers
    "lconv": "#ffd9cf",   # light red: channel restorers
    "core": "#e8e8e8",
}

_OP_COLORS = {
    "fused_block": "#d3f2cf",    # green: TeMCO fused kernels
    "fused_restore": "#e9f8cf",
    "concat": "#fff4c2",
    "add": "#fff4c2",
}


def _label(node) -> str:
    shape = "x".join(str(d) for d in node.output.shape)
    kib = node.output.nbytes / 1024
    extras = []
    if node.attrs.get("role"):
        extras.append(node.attrs["role"])
    if "merged_from" in node.attrs:
        extras.append(f"merged x{len(node.attrs['merged_from'])}")
    if "split_from" in node.attrs:
        extras.append("split")
    suffix = f" [{', '.join(extras)}]" if extras else ""
    return f"{node.name}\\n{node.op}{suffix}\\n{shape} ({kib:.1f} KiB)"


def _color(node) -> str:
    if node.op in _OP_COLORS:
        return _OP_COLORS[node.op]
    role = node.attrs.get("role")
    if role in _ROLE_COLORS:
        return _ROLE_COLORS[role]
    return "#ffffff"


def to_dot(graph: Graph, *, rankdir: str = "TB") -> str:
    """Render ``graph`` as DOT text."""
    lines = [f'digraph "{graph.name}" {{',
             f"  rankdir={rankdir};",
             '  node [shape=box, style="rounded,filled", fontsize=10];']
    for v in graph.inputs:
        shape = "x".join(str(d) for d in v.shape)
        lines.append(f'  "{v.name}" [label="{v.name}\\ninput\\n{shape}", '
                     f'fillcolor="#f0d9ff"];')
    producer = {v.name: v.name for v in graph.inputs}
    for node in graph.nodes:
        lines.append(f'  "{node.name}" [label="{_label(node)}", '
                     f'fillcolor="{_color(node)}"];')
        producer[node.output.name] = node.name
        for v in node.inputs:
            src = producer.get(v.name, v.name)
            lines.append(f'  "{src}" -> "{node.name}";')
    for i, v in enumerate(graph.outputs):
        sink = f"output{i}"
        lines.append(f'  "{sink}" [label="output\\n{v.name}", '
                     f'fillcolor="#f0d9ff"];')
        lines.append(f'  "{producer.get(v.name, v.name)}" -> "{sink}";')
    lines.append("}")
    return "\n".join(lines)


def save_dot(graph: Graph, path: str | Path, **kwargs) -> None:
    Path(path).write_text(to_dot(graph, **kwargs) + "\n")
