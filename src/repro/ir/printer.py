"""Human-readable graph dumps.

The textual form mirrors the paper's running examples (Figure 7/8):
one SSA assignment per line, e.g. ::

    b = relu(a)                                  # 4x64x32x32 f32
    c1 = conv2d[role=fconv](b)                   # 4x6x32x32 f32

Used by examples and by failing-test output; parsing it back is not a
goal (see :mod:`repro.ir.serialize` for round-tripping).
"""

from __future__ import annotations

from .graph import Graph
from .node import Node

__all__ = ["format_graph", "format_node", "summarize_graph"]


def format_node(node: Node) -> str:
    """One node as ``out = op[attrs](ins)  # shape``."""
    ins = ", ".join(v.name for v in node.inputs)
    interesting = {k: v for k, v in node.attrs.items()
                   if k in ("role", "stride", "kernel", "scale", "axis", "act", "pool",
                            "upsample", "groups")
                   and v not in (None, [1, 1], [0, 0], 1, {})}
    attr_str = ""
    if interesting:
        attr_str = "[" + ", ".join(f"{k}={_short(v)}" for k, v in sorted(interesting.items())) + "]"
    shape = "x".join(str(d) for d in node.output.shape)
    return f"{node.output.name} = {node.op}{attr_str}({ins})  # {shape}"


def _short(v) -> str:
    if isinstance(v, dict):
        return "{" + ",".join(f"{k}:{_short(x)}" for k, x in sorted(v.items())) + "}"
    if isinstance(v, list):
        return "x".join(str(x) for x in v)
    return str(v)


def format_graph(graph: Graph) -> str:
    """Render the whole graph, one SSA assignment per line."""
    lines = [f"graph {graph.name}:"]
    for v in graph.inputs:
        shape = "x".join(str(d) for d in v.shape)
        lines.append(f"  input {v.name}  # {shape}")
    for node in graph.nodes:
        lines.append("  " + format_node(node))
    outs = ", ".join(v.name for v in graph.outputs)
    lines.append(f"  return {outs}")
    return "\n".join(lines)


def summarize_graph(graph: Graph) -> str:
    """One-paragraph structural summary (op histogram, memory totals)."""
    histogram: dict[str, int] = {}
    for node in graph.nodes:
        histogram[node.op] = histogram.get(node.op, 0) + 1
    ops = ", ".join(f"{op}x{count}" for op, count in sorted(histogram.items()))
    weight_mib = graph.weight_bytes() / (1024 * 1024)
    return (f"{graph.name}: {len(graph.nodes)} nodes ({ops}); "
            f"{graph.num_params():,} params / {weight_mib:.2f} MiB weights")
