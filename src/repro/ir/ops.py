"""Operation registry: shape inference, validation and FLOP counting.

Every op kind used by the model zoo and by TeMCO's rewrites is
registered here with three hooks:

``infer``
    Compute the output shape from input shapes + attrs.  Called by the
    graph builder so every :class:`~repro.ir.value.Value` carries a
    static shape (the paper's passes rely on shape inference: ``SIZE(v)``
    in Algorithm 1/2 is exactly ``value.nbytes``).
``validate``
    Structural checks (arity, attr presence, weight shape consistency).
``flops``
    Multiply–accumulate-based FLOP estimate, used by the ``Overhead``
    guard of skip-connection optimization (Algorithm 1, lines 1–9).

The decomposition-specific convolution *roles* are plain attrs:

- ``role="fconv"`` — leading 1×1 that reduces channels,
- ``role="core"`` — the small core convolution(s),
- ``role="lconv"`` — trailing 1×1 that restores channels.

TeMCO's ``IsLConv`` check (Algorithm 2) is structural and does not need
the attr, but the attr makes printed graphs and tests readable.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable

import numpy as np

from .dtype import DType
from .node import Node
from .value import Value

__all__ = [
    "OpSpec",
    "REGISTRY",
    "register",
    "get_spec",
    "infer_output",
    "validate_node",
    "node_flops",
    "conv_output_hw",
    "ACTIVATION_OPS",
    "POOL_OPS",
]

#: Element-wise activation op kinds that activation-layer fusion can absorb.
ACTIVATION_OPS = ("relu", "silu", "sigmoid", "tanh",
                  "leaky_relu", "elu", "hardswish", "gelu")

#: Pooling op kinds that activation-layer fusion can absorb.
POOL_OPS = ("maxpool2d", "avgpool2d")


@dataclasses.dataclass(frozen=True)
class OpSpec:
    """Registered behaviour of one op kind."""

    name: str
    infer: Callable[[Node], tuple[tuple[int, ...], DType]]
    validate: Callable[[Node], None]
    flops: Callable[[Node], int]


REGISTRY: dict[str, OpSpec] = {}


def register(name: str, infer, validate=None, flops=None) -> None:
    """Register an op kind (see module docstring for hook contracts)."""
    REGISTRY[name] = OpSpec(
        name=name,
        infer=infer,
        validate=validate or (lambda node: None),
        flops=flops or (lambda node: node.output.num_elements),
    )


def get_spec(op: str) -> OpSpec:
    try:
        return REGISTRY[op]
    except KeyError as exc:
        raise KeyError(f"unknown op kind {op!r}; registered: {sorted(REGISTRY)}") from exc


def infer_output(node: Node) -> tuple[tuple[int, ...], DType]:
    """Output (shape, dtype) for a node whose inputs already have shapes."""
    return get_spec(node.op).infer(node)


def validate_node(node: Node) -> None:
    """Run structural validation; raises ``ValueError`` on malformed nodes."""
    spec = get_spec(node.op)
    spec.validate(node)
    shape, dtype = spec.infer(node)
    if tuple(shape) != node.output.shape:
        raise ValueError(
            f"node {node.name!r} ({node.op}): output shape {node.output.shape} "
            f"does not match inferred {tuple(shape)}"
        )
    if dtype != node.output.dtype:
        raise ValueError(
            f"node {node.name!r} ({node.op}): output dtype {node.output.dtype} "
            f"does not match inferred {dtype}"
        )


def node_flops(node: Node) -> int:
    """FLOP estimate for one node (2 × MACs for matmul-like ops)."""
    return int(get_spec(node.op).flops(node))


# ---------------------------------------------------------------------------
# shared helpers
# ---------------------------------------------------------------------------

def _pair(v) -> tuple[int, int]:
    if isinstance(v, (tuple, list)):
        a, b = v
        return int(a), int(b)
    return int(v), int(v)


def conv_output_hw(h: int, w: int, kernel, stride, padding, dilation=(1, 1)) -> tuple[int, int]:
    """Spatial output size of a convolution/pooling window."""
    kh, kw = _pair(kernel)
    sh, sw = _pair(stride)
    ph, pw = _pair(padding)
    dh, dw = _pair(dilation)
    oh = (h + 2 * ph - dh * (kh - 1) - 1) // sh + 1
    ow = (w + 2 * pw - dw * (kw - 1) - 1) // sw + 1
    if oh <= 0 or ow <= 0:
        raise ValueError(
            f"convolution window does not fit: input {h}x{w}, kernel {kh}x{kw}, "
            f"stride {sh}x{sw}, padding {ph}x{pw}, dilation {dh}x{dw}"
        )
    return oh, ow


def _require(cond: bool, node: Node, msg: str) -> None:
    if not cond:
        raise ValueError(f"node {node.name!r} ({node.op}): {msg}")


def _nchw(node: Node, value: Value) -> tuple[int, int, int, int]:
    _require(value.rank == 4, node, f"expected NCHW input, got shape {value.shape}")
    return value.shape  # type: ignore[return-value]


# ---------------------------------------------------------------------------
# convolutions
# ---------------------------------------------------------------------------

def _conv2d_infer(node: Node):
    n, c, h, w = _nchw(node, node.input)
    weight = node.params["weight"]
    cout, cin_g, kh, kw = weight.shape
    groups = int(node.attrs.get("groups", 1))
    _require(c == cin_g * groups, node,
             f"input channels {c} != weight in-channels {cin_g} * groups {groups}")
    oh, ow = conv_output_hw(h, w, (kh, kw), node.attrs.get("stride", 1),
                            node.attrs.get("padding", 0), node.attrs.get("dilation", 1))
    return (n, cout, oh, ow), node.input.dtype


def _conv2d_validate(node: Node) -> None:
    _require(len(node.inputs) == 1, node, "conv2d takes one input")
    _require("weight" in node.params, node, "missing 'weight' param")
    weight = node.params["weight"]
    _require(weight.ndim == 4, node, f"weight must be 4D, got {weight.shape}")
    groups = int(node.attrs.get("groups", 1))
    _require(weight.shape[0] % groups == 0, node,
             f"out-channels {weight.shape[0]} not divisible by groups {groups}")
    bias = node.params.get("bias")
    if bias is not None:
        _require(bias.shape == (weight.shape[0],), node,
                 f"bias shape {bias.shape} != ({weight.shape[0]},)")


def _conv2d_flops(node: Node) -> int:
    weight = node.params["weight"]
    cout, cin_g, kh, kw = weight.shape
    n, _, oh, ow = node.output.shape
    return 2 * n * cout * oh * ow * cin_g * kh * kw


register("conv2d", _conv2d_infer, _conv2d_validate, _conv2d_flops)


def _conv_transpose2d_infer(node: Node):
    n, c, h, w = _nchw(node, node.input)
    weight = node.params["weight"]  # (Cin, Cout/groups, Kh, Kw)
    cin, cout_g, kh, kw = weight.shape
    groups = int(node.attrs.get("groups", 1))
    _require(c == cin, node, f"input channels {c} != weight in-channels {cin}")
    sh, sw = _pair(node.attrs.get("stride", 1))
    ph, pw = _pair(node.attrs.get("padding", 0))
    oph, opw = _pair(node.attrs.get("output_padding", 0))
    oh = (h - 1) * sh - 2 * ph + kh + oph
    ow = (w - 1) * sw - 2 * pw + kw + opw
    return (n, cout_g * groups, oh, ow), node.input.dtype


def _conv_transpose2d_validate(node: Node) -> None:
    _require(len(node.inputs) == 1, node, "conv_transpose2d takes one input")
    _require("weight" in node.params, node, "missing 'weight' param")
    _require(node.params["weight"].ndim == 4, node, "weight must be 4D")


def _conv_transpose2d_flops(node: Node) -> int:
    weight = node.params["weight"]
    cin, cout_g, kh, kw = weight.shape
    n, _, h, w = node.input.shape
    return 2 * n * cin * h * w * cout_g * kh * kw


register("conv_transpose2d", _conv_transpose2d_infer, _conv_transpose2d_validate,
         _conv_transpose2d_flops)


def _linear_infer(node: Node):
    x = node.input
    _require(x.rank == 2, node, f"linear expects 2D input, got {x.shape}")
    weight = node.params["weight"]
    _require(x.shape[1] == weight.shape[1], node,
             f"input features {x.shape[1]} != weight in-features {weight.shape[1]}")
    return (x.shape[0], weight.shape[0]), x.dtype


def _linear_validate(node: Node) -> None:
    _require(len(node.inputs) == 1, node, "linear takes one input")
    _require("weight" in node.params and node.params["weight"].ndim == 2, node,
             "linear requires a 2D 'weight' param")


def _linear_flops(node: Node) -> int:
    weight = node.params["weight"]
    return 2 * node.input.shape[0] * weight.shape[0] * weight.shape[1]


register("linear", _linear_infer, _linear_validate, _linear_flops)


# ---------------------------------------------------------------------------
# activations & elementwise
# ---------------------------------------------------------------------------

def _unary_same_shape(node: Node):
    return node.input.shape, node.input.dtype


def _unary_validate(node: Node) -> None:
    _require(len(node.inputs) == 1, node, "expects exactly one input")


for _act in ACTIVATION_OPS + ("identity", "dropout"):
    register(_act, _unary_same_shape, _unary_validate)


def _softmax_infer(node: Node):
    return node.input.shape, node.input.dtype


register("softmax", _softmax_infer, _unary_validate)


def _add_infer(node: Node):
    shape = node.inputs[0].shape
    for v in node.inputs[1:]:
        if v.shape != shape:
            raise ValueError(f"node {node.name!r}: add operands differ: {shape} vs {v.shape}")
    return shape, node.inputs[0].dtype


def _add_validate(node: Node) -> None:
    _require(len(node.inputs) >= 2, node, "add takes >= 2 inputs")


register("add", _add_infer, _add_validate,
         flops=lambda node: node.output.num_elements * (len(node.inputs) - 1))


def _concat_infer(node: Node):
    axis = int(node.attrs.get("axis", 1))
    base = list(node.inputs[0].shape)
    for v in node.inputs[1:]:
        other = list(v.shape)
        if len(other) != len(base):
            raise ValueError(f"node {node.name!r}: concat rank mismatch")
        for i, (a, b) in enumerate(zip(base, other)):
            if i != axis and a != b:
                raise ValueError(
                    f"node {node.name!r}: concat non-axis dim {i} mismatch: {a} vs {b}")
        base[axis] += other[axis]
    return tuple(base), node.inputs[0].dtype


def _concat_validate(node: Node) -> None:
    _require(len(node.inputs) >= 2, node, "concat takes >= 2 inputs")
    axis = int(node.attrs.get("axis", 1))
    _require(0 <= axis < node.inputs[0].rank, node, f"bad concat axis {axis}")


register("concat", _concat_infer, _concat_validate,
         flops=lambda node: 0)


# ---------------------------------------------------------------------------
# pooling / resampling / reshaping
# ---------------------------------------------------------------------------

def _pool_infer(node: Node):
    n, c, h, w = _nchw(node, node.input)
    kernel = node.attrs["kernel"]
    stride = node.attrs.get("stride", kernel)
    padding = node.attrs.get("padding", 0)
    oh, ow = conv_output_hw(h, w, kernel, stride, padding)
    return (n, c, oh, ow), node.input.dtype


def _pool_validate(node: Node) -> None:
    _require(len(node.inputs) == 1, node, "pooling takes one input")
    _require("kernel" in node.attrs, node, "missing 'kernel' attr")


def _pool_flops(node: Node) -> int:
    kh, kw = _pair(node.attrs["kernel"])
    return node.output.num_elements * kh * kw


register("maxpool2d", _pool_infer, _pool_validate, _pool_flops)
register("avgpool2d", _pool_infer, _pool_validate, _pool_flops)


def _global_avgpool_infer(node: Node):
    n, c, _h, _w = _nchw(node, node.input)
    return (n, c, 1, 1), node.input.dtype


register("global_avgpool", _global_avgpool_infer, _unary_validate,
         flops=lambda node: node.input.num_elements)


def _upsample_infer(node: Node):
    n, c, h, w = _nchw(node, node.input)
    scale = int(node.attrs.get("scale", 2))
    return (n, c, h * scale, w * scale), node.input.dtype


def _upsample_validate(node: Node) -> None:
    _unary_validate(node)
    _require(int(node.attrs.get("scale", 2)) >= 1, node, "scale must be >= 1")


register("upsample_nearest", _upsample_infer, _upsample_validate,
         flops=lambda node: node.output.num_elements)


def _flatten_infer(node: Node):
    x = node.input
    start = int(node.attrs.get("start_dim", 1))
    _require(0 <= start < x.rank, node, f"bad start_dim {start}")
    tail = 1
    for d in x.shape[start:]:
        tail *= d
    return x.shape[:start] + (tail,), x.dtype


register("flatten", _flatten_infer, _unary_validate, flops=lambda node: 0)


def _batchnorm_infer(node: Node):
    n, c, h, w = _nchw(node, node.input)
    _require(node.params["gamma"].shape == (c,), node,
             f"gamma shape {node.params['gamma'].shape} != ({c},)")
    return (n, c, h, w), node.input.dtype


def _batchnorm_validate(node: Node) -> None:
    _require(len(node.inputs) == 1, node, "batchnorm takes one input")
    for p in ("gamma", "beta", "mean", "var"):
        _require(p in node.params, node, f"missing {p!r} param")


register("batchnorm2d", _batchnorm_infer, _batchnorm_validate,
         flops=lambda node: 2 * node.output.num_elements)


# ---------------------------------------------------------------------------
# fused block (Listing 1 analog)
# ---------------------------------------------------------------------------

def _fused_block_infer(node: Node):
    n, c, h, w = _nchw(node, node.input)
    w1 = node.params["w1"]  # (C', R_in) lconv restore matrix
    w2 = node.params["w2"]  # (R_out, C') fconv reduce matrix
    _require(w1.shape[1] == c, node,
             f"fused block input channels {c} != w1 in-channels {w1.shape[1]}")
    _require(w2.shape[1] == w1.shape[0], node,
             f"w2 in-channels {w2.shape[1]} != w1 out-channels {w1.shape[0]}")
    oh, ow = h, w
    pool = node.attrs.get("pool")
    if pool is not None:
        oh, ow = conv_output_hw(oh, ow, pool["kernel"], pool.get("stride", pool["kernel"]),
                                pool.get("padding", 0))
    scale = int(node.attrs.get("upsample", 0) or 0)
    if scale:
        oh, ow = oh * scale, ow * scale
    return (n, w2.shape[0], oh, ow), node.input.dtype


def _fused_block_validate(node: Node) -> None:
    _require(len(node.inputs) == 1, node, "fused_block takes one input")
    for p in ("w1", "w2"):
        _require(p in node.params and node.params[p].ndim == 2, node,
                 f"fused_block requires 2D {p!r} param")
    act = node.attrs.get("act")
    _require(act is None or act in ACTIVATION_OPS, node, f"bad act {act!r}")
    pool = node.attrs.get("pool")
    if pool is not None:
        _require(pool.get("kind") in ("max", "avg"), node, f"bad pool kind {pool}")
        _require("kernel" in pool, node, "pool config missing 'kernel'")
    _require(not (pool is not None and node.attrs.get("upsample")), node,
             "fused_block cannot both pool and upsample")


def _fused_block_flops(node: Node) -> int:
    w1 = node.params["w1"]
    w2 = node.params["w2"]
    n, _, h, w = node.input.shape
    cprime = w1.shape[0]
    lconv = 2 * n * h * w * cprime * w1.shape[1]
    # fconv runs at the post-pool/upsample resolution
    _, _, oh, ow = node.output.shape
    fconv = 2 * n * oh * ow * w2.shape[0] * cprime
    act = n * h * w * cprime
    return lconv + fconv + act


register("fused_block", _fused_block_infer, _fused_block_validate, _fused_block_flops)


def _fused_restore_infer(node: Node):
    n, c, h, w = _nchw(node, node.input)
    w1 = node.params["w1"]  # (C', R_in) lconv restore matrix
    _require(w1.shape[1] == c, node,
             f"fused restore input channels {c} != w1 in-channels {w1.shape[1]}")
    oh, ow = h, w
    pool = node.attrs.get("pool")
    if pool is not None:
        oh, ow = conv_output_hw(oh, ow, pool["kernel"], pool.get("stride", pool["kernel"]),
                                pool.get("padding", 0))
    scale = int(node.attrs.get("upsample", 0) or 0)
    if scale:
        oh, ow = oh * scale, ow * scale
    return (n, w1.shape[0], oh, ow), node.input.dtype


def _fused_restore_validate(node: Node) -> None:
    _require(len(node.inputs) == 1, node, "fused_restore takes one input")
    _require("w1" in node.params and node.params["w1"].ndim == 2, node,
             "fused_restore requires 2D 'w1' param")
    act = node.attrs.get("act")
    _require(act is None or act in ACTIVATION_OPS, node, f"bad act {act!r}")
    pool = node.attrs.get("pool")
    if pool is not None:
        _require(pool.get("kind") in ("max", "avg"), node, f"bad pool kind {pool}")
    _require(not (pool is not None and node.attrs.get("upsample")), node,
             "fused_restore cannot both pool and upsample")
    _require(act is not None or pool is not None or node.attrs.get("upsample"),
             node, "fused_restore must absorb at least one layer beyond the lconv")


def _fused_restore_flops(node: Node) -> int:
    w1 = node.params["w1"]
    n, _, h, w = node.input.shape
    return 2 * n * h * w * w1.shape[0] * w1.shape[1] + n * h * w * w1.shape[0]


register("fused_restore", _fused_restore_infer, _fused_restore_validate,
         _fused_restore_flops)


# ---------------------------------------------------------------------------
# structural predicates shared by TeMCO passes
# ---------------------------------------------------------------------------

def is_pointwise_conv(node: Node) -> bool:
    """True for 1×1 stride-1 ungrouped convolutions."""
    if node.op != "conv2d":
        return False
    weight = node.params["weight"]
    return (weight.shape[2] == 1 and weight.shape[3] == 1
            and _pair(node.attrs.get("stride", 1)) == (1, 1)
            and _pair(node.attrs.get("padding", 0)) == (0, 0)
            and int(node.attrs.get("groups", 1)) == 1)


def is_lconv(node: Node) -> bool:
    """Paper Algorithm 2 ``IsLConv``: 1×1 stride-1 conv that *increases*
    the channel count — the restore convolution of a decomposed sequence."""
    if not is_pointwise_conv(node):
        return False
    weight = node.params["weight"]
    return weight.shape[0] > weight.shape[1]


def is_fconv(node: Node) -> bool:
    """Dual of :func:`is_lconv`: 1×1 stride-1 conv that *reduces* channels."""
    if not is_pointwise_conv(node):
        return False
    weight = node.params["weight"]
    return weight.shape[0] < weight.shape[1]
