"""Graph (de)serialization and stable fingerprinting.

Round-trips a :class:`~repro.ir.graph.Graph` through a JSON-safe dict
(structure) plus a dict of NumPy arrays (weights).  ``save_graph`` /
``load_graph`` persist both in a single ``.npz`` with the structure
stored as a JSON string — handy for shipping optimized models to the
parallel inference workers without re-running the compiler.

:func:`graph_fingerprint` hashes the *canonical* form of a graph:
values and nodes are renumbered by definition order and attribute
dicts are key-sorted, so two graphs that differ only in node/value
names or in attr insertion order fingerprint identically.  The tuning
cache (:mod:`repro.tune`) keys its entries on this digest.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any

import numpy as np

from .dtype import DType
from .graph import Graph
from .node import Node
from .value import Value

__all__ = ["graph_to_dict", "graph_from_dict", "save_graph", "load_graph",
           "graph_fingerprint"]


def graph_to_dict(graph: Graph) -> tuple[dict[str, Any], dict[str, np.ndarray]]:
    """Split a graph into (JSON-safe structure, weight arrays)."""
    weights: dict[str, np.ndarray] = {}
    structure: dict[str, Any] = {
        "name": graph.name,
        "inputs": [_value_to_dict(v) for v in graph.inputs],
        "outputs": [v.name for v in graph.outputs],
        "nodes": [],
    }
    for node in graph.nodes:
        param_keys = {}
        for pname, arr in node.params.items():
            key = f"{node.name}::{pname}"
            weights[key] = arr
            param_keys[pname] = key
        structure["nodes"].append({
            "name": node.name,
            "op": node.op,
            "inputs": [v.name for v in node.inputs],
            "output": _value_to_dict(node.output),
            "attrs": node.attrs,
            "params": param_keys,
        })
    return structure, weights


def graph_from_dict(structure: dict[str, Any], weights: dict[str, np.ndarray]) -> Graph:
    """Inverse of :func:`graph_to_dict`; validates the rebuilt graph."""
    values: dict[str, Value] = {}
    inputs = []
    for vd in structure["inputs"]:
        v = _value_from_dict(vd)
        values[v.name] = v
        inputs.append(v)
    graph = Graph(structure["name"], inputs)
    for nd in structure["nodes"]:
        out = _value_from_dict(nd["output"])
        values[out.name] = out
        node = Node(
            name=nd["name"], op=nd["op"],
            inputs=[values[name] for name in nd["inputs"]],
            output=out, attrs=nd["attrs"],
            params={pname: weights[key] for pname, key in nd["params"].items()},
        )
        graph.add_node(node)
    graph.outputs = [values[name] for name in structure["outputs"]]
    graph.validate()
    return graph


def save_graph(graph: Graph, path: str | Path) -> None:
    structure, weights = graph_to_dict(graph)
    np.savez_compressed(path, __structure__=np.frombuffer(
        json.dumps(structure).encode("utf-8"), dtype=np.uint8), **weights)


def load_graph(path: str | Path) -> Graph:
    with np.load(path) as data:
        structure = json.loads(bytes(data["__structure__"]).decode("utf-8"))
        weights = {k: data[k] for k in data.files if k != "__structure__"}
    return graph_from_dict(structure, weights)


def graph_fingerprint(graph: Graph, *, include_param_values: bool = True) -> str:
    """A stable hex digest of a graph's canonical form.

    Invariant to node/value *names* (values are renumbered by
    definition order, so renaming or ``.copyN`` suffixes do not matter)
    and to attribute-dict insertion order (keys are sorted).  Sensitive
    to everything that changes what the graph computes: ops, topology,
    schedule order, shapes, dtypes, attrs, parameter shapes — and, by
    default, parameter *contents*, so editing a weight invalidates any
    cache keyed on the digest.

    Parameters
    ----------
    include_param_values:
        Hash the raw weight bytes into the digest (default).  Pass
        ``False`` for a purely structural fingerprint — e.g. when two
        differently-initialized instances of the same architecture
        should share a tuning result.
    """
    canon_id: dict[int, str] = {}
    for i, v in enumerate(graph.inputs):
        canon_id[id(v)] = f"in{i}"
    for i, node in enumerate(graph.nodes):
        canon_id[id(node.output)] = f"v{i}"

    hasher = hashlib.sha256()

    def _canon_value(v: Value) -> list[Any]:
        return [canon_id[id(v)], list(v.shape), v.dtype.value]

    entries: list[Any] = [
        "repro-graph-v1",
        [_canon_value(v) for v in graph.inputs],
        [canon_id[id(v)] for v in graph.outputs],
    ]
    for node in graph.nodes:
        param_spec = []
        for pname in sorted(node.params):
            arr = node.params[pname]
            param_spec.append([pname, list(arr.shape), str(arr.dtype)])
            if include_param_values:
                hasher.update(pname.encode("utf-8"))
                hasher.update(np.ascontiguousarray(arr).tobytes())
        entries.append([
            node.op,
            [canon_id[id(v)] for v in node.inputs],
            _canon_value(node.output),
            json.dumps(_canon_attrs(node.attrs), sort_keys=True),
            param_spec,
        ])
    hasher.update(json.dumps(entries, sort_keys=True).encode("utf-8"))
    return hasher.hexdigest()


def _canon_attrs(attrs: dict[str, Any]) -> dict[str, Any]:
    """JSON-safe copy of ``attrs`` with name-valued bookkeeping dropped.

    ``fused_from`` records the *names* of the layers a fused kernel
    collapsed — pure provenance, so it must not defeat the rename
    invariance the fingerprint promises.
    """
    return {k: v for k, v in attrs.items() if k != "fused_from"}


def _value_to_dict(v: Value) -> dict[str, Any]:
    return {"name": v.name, "shape": list(v.shape), "dtype": v.dtype.value}


def _value_from_dict(d: dict[str, Any]) -> Value:
    return Value(d["name"], tuple(d["shape"]), DType(d["dtype"]))
