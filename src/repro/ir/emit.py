"""Helpers for passes that synthesize nodes into an existing graph.

:func:`make_node` builds a node with a freshly named, shape-inferred
output value, reserving names through the graph's namer but *not*
scheduling the node — the calling pass decides where it goes (e.g.
"insert the copied restore layers immediately before the use of the
skip connection", Algorithm 1 line 23).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from . import ops as _ops
from .graph import Graph
from .node import Node
from .value import Value

__all__ = ["make_node"]


def make_node(graph: Graph, op: str, inputs: list[Value],
              attrs: dict[str, Any] | None = None,
              params: dict[str, np.ndarray] | None = None,
              name: str | None = None) -> Node:
    """Create (but do not schedule) a node with an inferred output value."""
    node_name = graph.namer.fresh(name or op)
    out = Value(graph.namer.fresh(node_name + ".out"), (), inputs[0].dtype if inputs else None)
    node = Node(name=node_name, op=op, inputs=list(inputs), output=out,
                attrs=attrs or {}, params=params or {})
    shape, dtype = _ops.infer_output(node)
    out.shape = tuple(shape)
    out.dtype = dtype
    _ops.validate_node(node)  # fail fast: passes get malformed nodes early
    return node
