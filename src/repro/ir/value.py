"""SSA values: the internal tensors of a model graph.

A :class:`Value` is a typed, named edge in the graph.  Values carry no
data — the executor binds them to NumPy arrays at run time, and the
allocator charges/frees their ``nbytes`` as they become live/dead.

Weight tensors are deliberately *not* Values.  Following the paper's
memory model (§2.2), weights live on the producing :class:`~repro.ir.node.Node`
as ``params`` and are accounted separately (loaded once, resident for
the whole inference), while Values model the dynamically allocated
*internal tensors* whose peak usage TeMCO optimizes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator

from .dtype import DType

__all__ = ["Value", "ValueNamer"]


@dataclass(eq=False)
class Value:
    """A typed SSA tensor value.

    Parameters
    ----------
    name:
        Unique name within the graph (SSA: one definition).
    shape:
        Static shape, e.g. ``(N, C, H, W)`` for feature maps.  All shapes
        in this system are fully static — shape inference runs at graph
        construction time.
    dtype:
        Element type.
    """

    name: str
    shape: tuple[int, ...]
    dtype: DType = DType.float32
    #: Name of the producing node (``None`` for graph inputs).
    producer: str | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        self.shape = tuple(int(d) for d in self.shape)
        if any(d < 0 for d in self.shape):
            raise ValueError(f"value {self.name!r} has negative dim: {self.shape}")

    @property
    def num_elements(self) -> int:
        """Total element count (product of dims; 1 for scalars)."""
        n = 1
        for d in self.shape:
            n *= d
        return n

    @property
    def nbytes(self) -> int:
        """Size in bytes — what the allocator charges when this is live."""
        return self.num_elements * self.dtype.itemsize

    @property
    def rank(self) -> int:
        return len(self.shape)

    def with_shape(self, shape: tuple[int, ...], name: str | None = None) -> "Value":
        """A new value sharing this value's dtype with a different shape."""
        return Value(name or self.name, tuple(shape), self.dtype)

    def __repr__(self) -> str:
        dims = "x".join(str(d) for d in self.shape)
        return f"%{self.name}:{dims}:{self.dtype.value}"

    def __hash__(self) -> int:
        return id(self)


class ValueNamer:
    """Generates unique SSA value names within one graph.

    Passes that clone nodes (e.g. skip-connection optimization copying
    restore layers) use this to produce fresh, readable names like
    ``relu_3.copy1``.
    """

    def __init__(self, taken: Iterator[str] | None = None) -> None:
        self._taken: set[str] = set(taken or ())
        self._counters: dict[str, itertools.count] = {}

    def reserve(self, name: str) -> None:
        self._taken.add(name)

    def fresh(self, base: str) -> str:
        """Return ``base`` if free, else ``base.copyN`` with minimal N."""
        if base not in self._taken:
            self._taken.add(base)
            return base
        counter = self._counters.setdefault(base, itertools.count(1))
        while True:
            candidate = f"{base}.copy{next(counter)}"
            if candidate not in self._taken:
                self._taken.add(candidate)
                return candidate
