"""The model graph: an ordered SSA node list plus rewrite helpers.

The graph is the unit every TeMCO pass operates on.  Design choices
mirror the paper:

- **Ordered node list** — Algorithm 1 takes "an ordered tensor node
  list L in SSA form"; execution order matters because the allocator's
  peak depends on it.  ``Graph.nodes`` *is* the execution schedule.
- **Program dependence graph** — ``predecessors``/``successors`` expose
  the PDG view (``PRED``/``SUCC`` in the algorithms) over the same nodes.
- **SSA** — each value has exactly one defining node; rewrites create
  fresh values via :class:`~repro.ir.value.ValueNamer`.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Sequence

import numpy as np

from . import ops as _ops
from .dtype import DType
from .node import Node
from .value import Value, ValueNamer

__all__ = ["Graph", "GraphBuilder"]


class Graph:
    """A static single-assignment model graph with an explicit schedule."""

    def __init__(self, name: str, inputs: Sequence[Value]) -> None:
        self.name = name
        self.inputs: list[Value] = list(inputs)
        self.outputs: list[Value] = []
        self.nodes: list[Node] = []
        self.namer = ValueNamer()
        for v in self.inputs:
            self.namer.reserve(v.name)

    # ------------------------------------------------------------------
    # construction / mutation
    # ------------------------------------------------------------------
    def add_node(self, node: Node, index: int | None = None) -> Node:
        """Append (or insert at ``index``) a node; reserves its names."""
        self.namer.reserve(node.name)
        self.namer.reserve(node.output.name)
        if index is None:
            self.nodes.append(node)
        else:
            self.nodes.insert(index, node)
        return node

    def insert_before(self, anchor: Node, new_nodes: Sequence[Node]) -> None:
        """Insert ``new_nodes`` immediately before ``anchor`` in the schedule."""
        idx = self.index_of(anchor)
        for offset, node in enumerate(new_nodes):
            self.add_node(node, index=idx + offset)

    def remove_node(self, node: Node) -> None:
        self.nodes.remove(node)

    def index_of(self, node: Node) -> int:
        for i, n in enumerate(self.nodes):
            if n is node:
                return i
        raise ValueError(f"node {node.name!r} not in graph {self.name!r}")

    # ------------------------------------------------------------------
    # PDG queries
    # ------------------------------------------------------------------
    def producer_of(self, value: Value) -> Node | None:
        """Defining node of ``value`` (``None`` for graph inputs)."""
        if value.producer is None:
            return None
        for node in self.nodes:
            if node.output is value:
                return node
        return None

    def consumer_map(self) -> dict[Value, list[Node]]:
        """Map each value to the schedule-ordered list of consuming nodes."""
        consumers: dict[Value, list[Node]] = {}
        for node in self.nodes:
            for v in node.inputs:
                consumers.setdefault(v, []).append(node)
        return consumers

    def consumers_of(self, value: Value) -> list[Node]:
        return [node for node in self.nodes if any(v is value for v in node.inputs)]

    def predecessors(self, node: Node) -> list[Node]:
        """``PRED(v, G)``: defining nodes of ``node``'s inputs, input order."""
        preds = []
        for v in node.inputs:
            p = self.producer_of(v)
            if p is not None:
                preds.append(p)
        return preds

    def successors(self, node: Node) -> list[Node]:
        """``SUCC(v, G)``: consumers of ``node``'s output, schedule order."""
        return self.consumers_of(node.output)

    # ------------------------------------------------------------------
    # values & accounting
    # ------------------------------------------------------------------
    def values(self) -> list[Value]:
        """All SSA values: graph inputs then node outputs, schedule order."""
        return list(self.inputs) + [node.output for node in self.nodes]

    def find_value(self, name: str) -> Value:
        for v in self.values():
            if v.name == name:
                return v
        raise KeyError(f"no value named {name!r} in graph {self.name!r}")

    def find_node(self, name: str) -> Node:
        for node in self.nodes:
            if node.name == name:
                return node
        raise KeyError(f"no node named {name!r} in graph {self.name!r}")

    def weight_bytes(self) -> int:
        """Total weight-tensor memory (paper Eq. 1–2, generalized)."""
        return sum(node.param_bytes() for node in self.nodes)

    def num_params(self) -> int:
        return sum(node.param_elements() for node in self.nodes)

    def total_flops(self) -> int:
        return sum(_ops.node_flops(node) for node in self.nodes)

    # ------------------------------------------------------------------
    # rewriting utilities
    # ------------------------------------------------------------------
    def replace_uses(self, old: Value, new: Value,
                     where: Callable[[Node], bool] | None = None) -> int:
        """Rewire consumers of ``old`` to ``new``; returns replacement count.

        ``where`` restricts the rewrite to selected consumer nodes —
        skip-connection optimization only replaces the *distant* uses.
        """
        count = 0
        for node in self.nodes:
            if where is not None and not where(node):
                continue
            count += node.replace_input(old, new)
        if old in self.outputs and (where is None):
            self.outputs = [new if v is old else v for v in self.outputs]
        return count

    def dead_code_eliminate(self) -> int:
        """Drop nodes whose outputs are never consumed; returns #removed."""
        removed_total = 0
        while True:
            consumers = self.consumer_map()
            live_out = set(id(v) for v in self.outputs)
            dead = [n for n in self.nodes
                    if id(n.output) not in live_out and not consumers.get(n.output)]
            if not dead:
                return removed_total
            for node in dead:
                self.nodes.remove(node)
            removed_total += len(dead)

    def clone(self, name: str | None = None) -> "Graph":
        """Structural copy sharing weight arrays (passes mutate copies)."""
        mapping: dict[Value, Value] = {}
        new_inputs = []
        for v in self.inputs:
            nv = Value(v.name, v.shape, v.dtype)
            mapping[v] = nv
            new_inputs.append(nv)
        g = Graph(name or self.name, new_inputs)
        for node in self.nodes:
            out = Value(node.output.name, node.output.shape, node.output.dtype)
            new_node = Node(name=node.name, op=node.op,
                            inputs=[mapping[v] for v in node.inputs],
                            output=out, attrs=_deep_copy_attrs(node.attrs),
                            params=dict(node.params))
            mapping[node.output] = out
            g.add_node(new_node)
        g.outputs = [mapping[v] for v in self.outputs]
        return g

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check SSA form, def-before-use scheduling and per-op contracts."""
        defined: set[int] = {id(v) for v in self.inputs}
        names: set[str] = {v.name for v in self.inputs}
        if len(names) != len(self.inputs):
            raise ValueError(f"graph {self.name!r}: duplicate input names")
        node_names: set[str] = set()
        for node in self.nodes:
            if node.name in node_names:
                raise ValueError(f"graph {self.name!r}: duplicate node name {node.name!r}")
            node_names.add(node.name)
            for v in node.inputs:
                if id(v) not in defined:
                    raise ValueError(
                        f"graph {self.name!r}: node {node.name!r} uses value "
                        f"{v.name!r} before its definition (schedule broken)")
            if id(node.output) in defined:
                raise ValueError(
                    f"graph {self.name!r}: value {node.output.name!r} defined twice (SSA broken)")
            if node.output.name in names:
                raise ValueError(
                    f"graph {self.name!r}: duplicate value name {node.output.name!r}")
            names.add(node.output.name)
            defined.add(id(node.output))
            _ops.validate_node(node)
        for v in self.outputs:
            if id(v) not in defined:
                raise ValueError(f"graph {self.name!r}: output {v.name!r} is undefined")

    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Node]:
        return iter(self.nodes)

    def __len__(self) -> int:
        return len(self.nodes)

    def __repr__(self) -> str:
        return f"<Graph {self.name!r}: {len(self.nodes)} nodes, {len(self.inputs)} inputs>"


def _deep_copy_attrs(attrs: dict[str, Any]) -> dict[str, Any]:
    out: dict[str, Any] = {}
    for k, v in attrs.items():
        out[k] = dict(v) if isinstance(v, dict) else (list(v) if isinstance(v, list) else v)
    return out


class GraphBuilder:
    """Fluent constructor used by the model zoo and by tests.

    Every method creates one node, runs shape inference and returns the
    output :class:`Value`.  Weights may be passed explicitly (NumPy
    arrays) or initialized from the builder's RNG (He-normal for conv
    and linear weights), so model construction is deterministic given a
    seed.
    """

    def __init__(self, name: str, seed: int = 0, dtype: DType = DType.float32) -> None:
        self.graph = Graph(name, inputs=[])
        self.rng = np.random.default_rng(seed)
        self.dtype = dtype
        self._counter = 0

    # ------------------------------------------------------------------
    def _fresh(self, base: str) -> str:
        self._counter += 1
        return f"{base}_{self._counter}"

    def _emit(self, op: str, inputs: list[Value], attrs: dict[str, Any] | None = None,
              params: dict[str, np.ndarray] | None = None, name: str | None = None) -> Value:
        node_name = name or self._fresh(op)
        placeholder = Value(self.graph.namer.fresh(node_name + ".out"), (), self.dtype)
        node = Node(name=node_name, op=op, inputs=inputs, output=placeholder,
                    attrs=attrs or {}, params=params or {})
        shape, dtype = _ops.infer_output(node)
        node.output.shape = tuple(shape)
        node.output.dtype = dtype
        self.graph.add_node(node)
        return node.output

    def _he_weight(self, shape: tuple[int, ...], fan_in: int) -> np.ndarray:
        std = float(np.sqrt(2.0 / max(fan_in, 1)))
        return self.rng.normal(0.0, std, size=shape).astype(self.dtype.np)

    # ------------------------------------------------------------------
    def input(self, name: str, shape: Sequence[int]) -> Value:
        v = Value(name, tuple(shape), self.dtype)
        self.graph.inputs.append(v)
        self.graph.namer.reserve(name)
        return v

    def output(self, *values: Value) -> None:
        self.graph.outputs.extend(values)

    def conv2d(self, x: Value, out_channels: int, kernel: int | tuple[int, int],
               stride: int | tuple[int, int] = 1, padding: int | tuple[int, int] = 0,
               groups: int = 1, dilation: int | tuple[int, int] = 1,
               bias: bool = True, weight: np.ndarray | None = None,
               bias_value: np.ndarray | None = None, role: str | None = None,
               name: str | None = None, **extra_attrs: Any) -> Value:
        kh, kw = (kernel, kernel) if isinstance(kernel, int) else kernel
        cin = x.shape[1]
        if weight is None:
            weight = self._he_weight((out_channels, cin // groups, kh, kw),
                                     fan_in=(cin // groups) * kh * kw)
        params = {"weight": np.asarray(weight, dtype=self.dtype.np)}
        if bias_value is not None:
            params["bias"] = np.asarray(bias_value, dtype=self.dtype.np)
        elif bias:
            params["bias"] = np.zeros(out_channels, dtype=self.dtype.np)
        attrs: dict[str, Any] = {"stride": _as_pair(stride), "padding": _as_pair(padding),
                                 "groups": groups}
        if _as_pair(dilation) != [1, 1]:
            attrs["dilation"] = _as_pair(dilation)
        if role is not None:
            attrs["role"] = role
        attrs.update(extra_attrs)
        return self._emit("conv2d", [x], attrs, params, name)

    def conv_transpose2d(self, x: Value, out_channels: int, kernel: int | tuple[int, int],
                         stride: int | tuple[int, int] = 1,
                         padding: int | tuple[int, int] = 0,
                         output_padding: int | tuple[int, int] = 0,
                         bias: bool = True, weight: np.ndarray | None = None,
                         name: str | None = None) -> Value:
        kh, kw = (kernel, kernel) if isinstance(kernel, int) else kernel
        cin = x.shape[1]
        if weight is None:
            weight = self._he_weight((cin, out_channels, kh, kw), fan_in=cin * kh * kw)
        params = {"weight": np.asarray(weight, dtype=self.dtype.np)}
        if bias:
            params["bias"] = np.zeros(out_channels, dtype=self.dtype.np)
        attrs = {"stride": _as_pair(stride), "padding": _as_pair(padding),
                 "output_padding": _as_pair(output_padding), "groups": 1}
        return self._emit("conv_transpose2d", [x], attrs, params, name)

    def linear(self, x: Value, out_features: int, bias: bool = True,
               weight: np.ndarray | None = None, name: str | None = None) -> Value:
        in_features = x.shape[1]
        if weight is None:
            weight = self._he_weight((out_features, in_features), fan_in=in_features)
        params = {"weight": np.asarray(weight, dtype=self.dtype.np)}
        if bias:
            params["bias"] = np.zeros(out_features, dtype=self.dtype.np)
        return self._emit("linear", [x], {}, params, name)

    def relu(self, x: Value, name: str | None = None) -> Value:
        return self._emit("relu", [x], name=name)

    def silu(self, x: Value, name: str | None = None) -> Value:
        return self._emit("silu", [x], name=name)

    def sigmoid(self, x: Value, name: str | None = None) -> Value:
        return self._emit("sigmoid", [x], name=name)

    def tanh(self, x: Value, name: str | None = None) -> Value:
        return self._emit("tanh", [x], name=name)

    def leaky_relu(self, x: Value, negative_slope: float = 0.01,
                   name: str | None = None) -> Value:
        return self._emit("leaky_relu", [x], {"negative_slope": negative_slope},
                          name=name)

    def elu(self, x: Value, alpha: float = 1.0, name: str | None = None) -> Value:
        return self._emit("elu", [x], {"alpha": alpha}, name=name)

    def hardswish(self, x: Value, name: str | None = None) -> Value:
        return self._emit("hardswish", [x], name=name)

    def gelu(self, x: Value, name: str | None = None) -> Value:
        return self._emit("gelu", [x], name=name)

    def identity(self, x: Value, name: str | None = None) -> Value:
        return self._emit("identity", [x], name=name)

    def softmax(self, x: Value, axis: int = 1, name: str | None = None) -> Value:
        return self._emit("softmax", [x], {"axis": axis}, name=name)

    def maxpool2d(self, x: Value, kernel: int | tuple[int, int],
                  stride: int | tuple[int, int] | None = None,
                  padding: int | tuple[int, int] = 0, name: str | None = None) -> Value:
        attrs = {"kernel": _as_pair(kernel),
                 "stride": _as_pair(stride if stride is not None else kernel),
                 "padding": _as_pair(padding)}
        return self._emit("maxpool2d", [x], attrs, name=name)

    def avgpool2d(self, x: Value, kernel: int | tuple[int, int],
                  stride: int | tuple[int, int] | None = None,
                  padding: int | tuple[int, int] = 0, name: str | None = None) -> Value:
        attrs = {"kernel": _as_pair(kernel),
                 "stride": _as_pair(stride if stride is not None else kernel),
                 "padding": _as_pair(padding)}
        return self._emit("avgpool2d", [x], attrs, name=name)

    def global_avgpool(self, x: Value, name: str | None = None) -> Value:
        return self._emit("global_avgpool", [x], name=name)

    def upsample_nearest(self, x: Value, scale: int = 2, name: str | None = None) -> Value:
        return self._emit("upsample_nearest", [x], {"scale": scale}, name=name)

    def flatten(self, x: Value, start_dim: int = 1, name: str | None = None) -> Value:
        return self._emit("flatten", [x], {"start_dim": start_dim}, name=name)

    def add(self, *xs: Value, name: str | None = None) -> Value:
        return self._emit("add", list(xs), name=name)

    def concat(self, *xs: Value, axis: int = 1, name: str | None = None) -> Value:
        return self._emit("concat", list(xs), {"axis": axis}, name=name)

    def batchnorm2d(self, x: Value, gamma=None, beta=None, mean=None, var=None,
                    eps: float = 1e-5, name: str | None = None) -> Value:
        c = x.shape[1]
        params = {
            "gamma": np.asarray(gamma if gamma is not None else np.ones(c), dtype=self.dtype.np),
            "beta": np.asarray(beta if beta is not None else np.zeros(c), dtype=self.dtype.np),
            "mean": np.asarray(mean if mean is not None else np.zeros(c), dtype=self.dtype.np),
            "var": np.asarray(var if var is not None else np.ones(c), dtype=self.dtype.np),
        }
        return self._emit("batchnorm2d", [x], {"eps": eps}, params, name)

    def finish(self, *outputs: Value) -> Graph:
        """Declare outputs, validate and return the built graph."""
        if outputs:
            self.graph.outputs = list(outputs)
        self.graph.validate()
        return self.graph


def _as_pair(v) -> list[int]:
    if isinstance(v, (tuple, list)):
        return [int(v[0]), int(v[1])]
    return [int(v), int(v)]
