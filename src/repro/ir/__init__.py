"""Tensor graph IR.

Public surface:

- :class:`DType`, :class:`Value`, :class:`Node`, :class:`Graph`,
  :class:`GraphBuilder` — the SSA model representation,
- :mod:`repro.ir.ops` — the op registry (shape inference, validation,
  FLOP counting) plus the ``is_lconv``/``is_fconv`` structural
  predicates used by TeMCO's passes,
- :func:`format_graph` — readable dumps,
- :func:`save_graph` / :func:`load_graph` — persistence.
"""

from . import ops
from .dot import save_dot, to_dot
from .dtype import DType
from .graph import Graph, GraphBuilder
from .node import Node
from .printer import format_graph, format_node, summarize_graph
from .serialize import (graph_fingerprint, graph_from_dict,
                        graph_to_dict, load_graph, save_graph)
from .value import Value, ValueNamer

__all__ = [
    "DType",
    "Graph",
    "GraphBuilder",
    "Node",
    "Value",
    "ValueNamer",
    "ops",
    "format_graph",
    "format_node",
    "summarize_graph",
    "to_dot",
    "save_dot",
    "graph_to_dict",
    "graph_fingerprint",
    "graph_from_dict",
    "save_graph",
    "load_graph",
]
