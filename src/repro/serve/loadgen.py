"""Open- and closed-loop load generation against an InferenceServer.

Two canonical load models (Schroeder et al., "Open Versus Closed: A
Cautionary Tale", NSDI'06):

- **closed loop** — ``concurrency`` synthetic clients, each submitting
  its next request the moment the previous one completes.  Measures
  peak sustainable throughput.
- **open loop** — requests arrive on a Poisson process at ``rate``
  requests/second regardless of completions.  Measures latency under
  a target load, and is the mode that exercises backpressure: when
  the server falls behind, arrivals pile into the admission queue and
  overflow into :class:`~repro.serve.server.Overloaded` rejections.

The report carries completed/rejected/shed counts, wall-clock
throughput, and the latency distribution as a
:class:`~repro.runtime.engine.TimingResult` so p50/p95/p99 come from
the same percentile code the bench harness uses.  When the driven
server carries an :class:`~repro.obs.SLOMonitor`, the report also
snapshots every objective's end-of-run status (burn rate, good
ratio), :meth:`LoadgenReport.slo_ok` gates on them, and the CLI
(``repro loadgen --slo ...``) exits non-zero on violation — the CI
contract.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from ..ir.graph import Graph
from ..runtime.engine import TimingResult
from .server import DeadlineExceeded, InferenceServer, Overloaded, ServeError

__all__ = ["LoadgenConfig", "LoadgenReport", "request_inputs", "run_loadgen"]


@dataclass(frozen=True)
class LoadgenConfig:
    """Shape of one load-generation run."""

    mode: str = "closed"  #: ``closed`` or ``open``
    requests: int = 64
    #: closed loop: number of synthetic clients
    concurrency: int = 4
    #: open loop: mean arrival rate, requests/second
    rate: float = 200.0
    #: samples per request (1 = the single-sample serving path)
    samples: int = 1
    deadline_s: float | None = None
    #: per-request result wait; generous, loadgen must never hang
    timeout_s: float = 60.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.mode not in ("closed", "open"):
            raise ValueError(f"bad loadgen mode {self.mode!r}")
        if self.requests < 1:
            raise ValueError(f"requests must be >= 1, got {self.requests}")
        if self.concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, got {self.concurrency}")
        if self.rate <= 0:
            raise ValueError(f"rate must be > 0, got {self.rate}")
        if self.samples < 1:
            raise ValueError(f"samples must be >= 1, got {self.samples}")


@dataclass
class LoadgenReport:
    """Outcome counts + latency distribution of one run."""

    mode: str
    offered: int
    completed: int
    rejected: int  #: typed Overloaded backpressure rejections
    shed: int  #: DeadlineExceeded expiries
    errors: int
    duration_s: float
    latencies_s: list[float] = field(default_factory=list)
    #: end-of-run SLO statuses (:meth:`SLOStatus.to_dict` dicts) when
    #: the driven server carried a monitor; empty otherwise
    slo: list[dict] = field(default_factory=list)

    @property
    def slo_ok(self) -> bool:
        """True when every evaluated objective is healthy (vacuously
        true without a monitor) — the CI gate."""
        return all(status["healthy"] for status in self.slo)

    @property
    def throughput_rps(self) -> float:
        """Completed requests per wall-clock second."""
        return self.completed / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def latency(self) -> TimingResult:
        return TimingResult(self.latencies_s or [0.0])

    def to_dict(self) -> dict:
        """JSON-ready summary (the CI smoke step parses this)."""
        lat = self.latency
        return {
            "mode": self.mode, "offered": self.offered,
            "completed": self.completed, "rejected": self.rejected,
            "shed": self.shed, "errors": self.errors,
            "duration_s": self.duration_s,
            "throughput_rps": self.throughput_rps,
            "latency_ms": {stat: getattr(lat, stat) * 1e3
                           for stat in ("best", "mean", "p50", "p95", "p99")},
            "slo": self.slo,
            "slo_ok": self.slo_ok,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def summary(self) -> str:
        lat = self.latency
        lines = [
            f"{self.mode}-loop load: {self.offered} offered, "
            f"{self.completed} completed, {self.rejected} rejected, "
            f"{self.shed} shed, {self.errors} errors "
            f"in {self.duration_s:.2f} s",
            f"throughput: {self.throughput_rps:.1f} req/s",
            f"latency ms: p50 {lat.p50 * 1e3:.2f}  p95 {lat.p95 * 1e3:.2f}  "
            f"p99 {lat.p99 * 1e3:.2f}  (mean {lat.mean * 1e3:.2f}, "
            f"best {lat.best * 1e3:.2f})",
        ]
        for status in self.slo:
            verdict = "ok" if status["healthy"] else "VIOLATED"
            lines.append(
                f"slo [{verdict}] {status['name']}: "
                f"{status['good']}/{status['events']} good "
                f"({status['good_ratio']:.2%}), burn rate "
                f"{status['burn_rate']:.2f}x of budget")
        return "\n".join(lines)


def request_inputs(graph: Graph, samples: int = 1,
                   seed: int = 0) -> dict[str, np.ndarray]:
    """Synthetic request payload matching the graph's per-sample shapes."""
    rng = np.random.default_rng(seed)
    return {v.name: rng.normal(size=(samples,) + v.shape[1:]).astype(v.dtype.np)
            for v in graph.inputs}


class _Tally:
    """Thread-safe outcome accumulator shared by the client threads."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.completed = 0
        self.rejected = 0
        self.shed = 0
        self.errors = 0
        self.latencies: list[float] = []

    def record(self, outcome: str, latency_s: float | None = None) -> None:
        with self.lock:
            setattr(self, outcome, getattr(self, outcome) + 1)
            if latency_s is not None:
                self.latencies.append(latency_s)


def _settle(future_or_exc, tally: _Tally, timeout: float) -> None:
    """Wait out one submission (a future, or the admission error)."""
    if isinstance(future_or_exc, Overloaded):
        tally.record("rejected")
        return
    if isinstance(future_or_exc, ServeError):
        tally.record("errors")
        return
    try:
        future_or_exc.result(timeout)
    except Overloaded:
        # a fleet router reports exhausted-overload through the
        # future rather than at submit; still a typed rejection
        tally.record("rejected")
    except DeadlineExceeded:
        tally.record("shed")
    except Exception:
        tally.record("errors")
    else:
        tally.record("completed", future_or_exc.latency_s)


def run_loadgen(server: InferenceServer,
                config: LoadgenConfig | None = None) -> LoadgenReport:
    """Drive ``server`` with synthetic traffic; returns the report.

    Each request carries an independently seeded payload so batches
    coalesce distinct samples (as real traffic would) while staying
    reproducible from ``config.seed``.
    """
    config = config or LoadgenConfig()
    graph = server.graph
    payloads = [request_inputs(graph, config.samples, seed=config.seed + i)
                for i in range(min(config.requests, 64))]
    tally = _Tally()
    start = time.perf_counter()

    if config.mode == "closed":
        counter = iter(range(config.requests))
        counter_lock = threading.Lock()

        def client() -> None:
            while True:
                with counter_lock:
                    i = next(counter, None)
                if i is None:
                    return
                try:
                    future = server.submit(payloads[i % len(payloads)],
                                           deadline_s=config.deadline_s)
                except ServeError as exc:
                    _settle(exc, tally, config.timeout_s)
                    continue
                _settle(future, tally, config.timeout_s)

        clients = [threading.Thread(target=client, name=f"loadgen-{i}")
                   for i in range(config.concurrency)]
        for thread in clients:
            thread.start()
        for thread in clients:
            thread.join()
    else:  # open loop: Poisson arrivals, completions gathered afterwards
        rng = np.random.default_rng(config.seed)
        gaps = rng.exponential(1.0 / config.rate, size=config.requests)
        submissions: list = []
        next_at = time.perf_counter()
        for i in range(config.requests):
            next_at += gaps[i]
            delay = next_at - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            try:
                submissions.append(
                    server.submit(payloads[i % len(payloads)],
                                  deadline_s=config.deadline_s))
            except ServeError as exc:
                submissions.append(exc)
        for item in submissions:
            _settle(item, tally, config.timeout_s)

    duration = time.perf_counter() - start
    slo_statuses = ([status.to_dict() for status in server.slo.evaluate()]
                    if server.slo is not None else [])
    return LoadgenReport(
        mode=config.mode, offered=config.requests,
        completed=tally.completed, rejected=tally.rejected,
        shed=tally.shed, errors=tally.errors, duration_s=duration,
        latencies_s=tally.latencies, slo=slo_statuses)
