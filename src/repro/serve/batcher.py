"""Dynamic micro-batching: pack requests into graph-batch-sized shards.

The IR has static shapes, so a servable plan is compiled at one batch
size ``B``.  Requests arrive carrying 1..k samples each; this module
is the pure packing logic between the two:

- :func:`request_samples` validates a request's inputs against the
  graph signature and returns its sample count,
- :func:`assemble` walks admitted requests in FIFO order and packs
  their samples into :class:`Shard`\\ s of exactly ``B`` samples —
  **coalescing** small requests into one shard, **splitting** requests
  larger than ``B`` across several, and **zero-padding** the tail
  shard up to ``B``,
- :func:`scatter` routes a shard's outputs back into per-request
  result buffers.

Padding cannot change numerics: every kernel in the zoo is
sample-independent along the batch axis, and the executor runs the
same static plan it would for a caller-assembled batch, so a served
sample is bitwise-identical to :meth:`InferenceSession.run` on the
identically assembled batch (the serve test suite asserts this).

Everything here is pure data plumbing — no locks, no clocks — so the
queueing policy in :mod:`repro.serve.server` stays separately
testable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..ir.graph import Graph

__all__ = ["Segment", "Shard", "request_samples", "assemble", "scatter"]


def request_samples(graph: Graph, inputs: dict[str, np.ndarray]) -> int:
    """Validate ``inputs`` against ``graph``'s signature; return the
    request's sample count.

    Every graph input must be present with the graph's per-sample
    shape (all dims after the batch axis) and a shared leading batch
    dimension ``k >= 1``.
    """
    expected = {v.name: v for v in graph.inputs}
    missing = sorted(set(expected) - set(inputs))
    if missing:
        raise ValueError(f"request missing inputs {missing}; "
                         f"graph inputs: {sorted(expected)}")
    extra = sorted(set(inputs) - set(expected))
    if extra:
        raise ValueError(f"request has unknown inputs {extra}; "
                         f"graph inputs: {sorted(expected)}")
    counts = {}
    for name, value in expected.items():
        arr = inputs[name]
        if arr.ndim != len(value.shape) or tuple(arr.shape[1:]) != value.shape[1:]:
            raise ValueError(
                f"input {name!r} has per-sample shape {tuple(arr.shape[1:])}, "
                f"expected {value.shape[1:]}")
        counts[name] = arr.shape[0]
    if len(set(counts.values())) != 1:
        raise ValueError(f"inconsistent sample counts across inputs: {counts}")
    samples = next(iter(counts.values()))
    if samples < 1:
        raise ValueError("request carries zero samples")
    return samples


@dataclass(frozen=True)
class Segment:
    """One contiguous run of a request's samples inside a shard."""

    request: Any  #: opaque handle, carried through to :func:`scatter`
    req_offset: int  #: first sample index within the request
    shard_offset: int  #: first sample index within the shard
    length: int


@dataclass
class Shard:
    """One graph-batch worth of samples, padded to the static batch."""

    inputs: dict[str, np.ndarray]
    segments: list[Segment] = field(default_factory=list)
    #: zero samples appended to reach the static batch
    padding: int = 0

    @property
    def live_samples(self) -> int:
        return sum(seg.length for seg in self.segments)


def assemble(graph: Graph, requests: list[tuple[Any, dict[str, np.ndarray]]],
             batch: int | None = None) -> list[Shard]:
    """Pack ``(handle, inputs)`` requests into shards of the graph batch.

    Requests are consumed in order; sample order inside the shard
    stream is exactly admission order, so results are reproducible
    from the request sequence alone.  The final shard is zero-padded
    up to ``batch``.
    """
    if batch is None:
        batch = graph.inputs[0].shape[0]
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")

    # consume a queue of (handle, inputs, next sample offset, remaining
    # samples), splitting large requests greedily across shards
    pending = [(handle, inputs, 0, request_samples(graph, inputs))
               for handle, inputs in requests]
    shards: list[Shard] = []
    i = 0
    while i < len(pending):
        segments: list[Segment] = []
        sources: list[dict[str, np.ndarray]] = []
        filled = 0
        while filled < batch and i < len(pending):
            handle, inputs, offset, remaining = pending[i]
            take = min(remaining, batch - filled)
            segments.append(Segment(request=handle, req_offset=offset,
                                    shard_offset=filled, length=take))
            sources.append(inputs)
            filled += take
            if take == remaining:
                i += 1
            else:
                pending[i] = (handle, inputs, offset + take, remaining - take)
        shard_inputs: dict[str, np.ndarray] = {}
        for value in graph.inputs:
            buf = np.zeros((batch,) + value.shape[1:], dtype=value.dtype.np)
            for seg, inputs in zip(segments, sources):
                buf[seg.shard_offset:seg.shard_offset + seg.length] = \
                    inputs[value.name][seg.req_offset:seg.req_offset + seg.length]
            shard_inputs[value.name] = buf
        shards.append(Shard(inputs=shard_inputs, segments=segments,
                            padding=batch - filled))
    return shards


def scatter(shard: Shard, outputs: dict[str, np.ndarray],
            buffers: dict[Any, dict[str, np.ndarray]],
            filled: dict[Any, int], totals: dict[Any, int]) -> list[Any]:
    """Copy a shard's output slices into per-request result buffers.

    ``buffers`` maps request handle -> output-name -> array of the
    request's full sample count (allocated lazily here on first
    touch); ``filled`` tracks samples scattered so far per handle and
    ``totals`` the request's total.  Returns the handles whose results
    became complete with this shard, in segment order.
    """
    completed: list[Any] = []
    for seg in shard.segments:
        out = buffers.setdefault(seg.request, {})
        for name, arr in outputs.items():
            buf = out.get(name)
            if buf is None:
                buf = out[name] = np.empty(
                    (totals[seg.request],) + arr.shape[1:], dtype=arr.dtype)
            buf[seg.req_offset:seg.req_offset + seg.length] = \
                arr[seg.shard_offset:seg.shard_offset + seg.length]
        filled[seg.request] = filled.get(seg.request, 0) + seg.length
        if filled[seg.request] == totals[seg.request]:
            completed.append(seg.request)
    return completed
