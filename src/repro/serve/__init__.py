"""Serving: dynamic batching, backpressure, deadlines, load generation.

The first subsystem that exercises the compiler's output under
concurrency.  Four moving parts:

- :mod:`repro.serve.batcher` — pure packing logic that coalesces /
  splits / zero-pads requests against the graph's static batch,
- :mod:`repro.serve.server` — :class:`InferenceServer`: a bounded
  admission queue with typed :class:`Overloaded` backpressure,
  per-request deadlines with shed-on-expiry, and worker threads each
  owning a warm :class:`~repro.runtime.engine.InferenceSession`,
- :mod:`repro.serve.loadgen` — open-/closed-loop load generation
  reporting throughput and p50/p95/p99 latency,
- :mod:`repro.serve.httpd` — a stdlib-only JSON/HTTP frontend
  (``/infer``, ``/healthz``, ``/stats``, Prometheus ``/metrics``,
  ``/slo``).

The layer is observable end to end: every admitted request gets a
``trace_id`` that flows through the admission span, the worker's
micro-batch span, and the per-op executor spans, rendering as a
per-request waterfall (queue wait → batching → execute) in the Chrome
trace; drops are counted by reason, and an optional
:class:`~repro.obs.SLOMonitor` turns completions into rolling
error-budget burn rates (see ``docs/serving.md``).

Quick use::

    from repro.serve import InferenceServer, ServerConfig

    with InferenceServer(plan, ServerConfig(num_workers=2)) as server:
        outputs = server.infer({"x": one_sample}, timeout=5.0)

See ``docs/serving.md`` for the batching policy and overload
semantics, and ``repro serve`` / ``repro loadgen`` on the CLI.
"""

from .batcher import Segment, Shard, assemble, request_samples, scatter
from .httpd import ServeHTTPD, serve_http
from .loadgen import (LoadgenConfig, LoadgenReport, request_inputs,
                      run_loadgen)
from .server import (DeadlineExceeded, InferenceServer, Overloaded,
                     ServeError, ServeFuture, ServerClosed, ServerConfig,
                     ServerDraining, resolve_plan)

__all__ = [
    "Segment",
    "Shard",
    "request_samples",
    "assemble",
    "scatter",
    "ServeError",
    "Overloaded",
    "DeadlineExceeded",
    "ServerClosed",
    "ServerDraining",
    "ServeFuture",
    "ServerConfig",
    "InferenceServer",
    "resolve_plan",
    "LoadgenConfig",
    "LoadgenReport",
    "request_inputs",
    "run_loadgen",
    "ServeHTTPD",
    "serve_http",
]
