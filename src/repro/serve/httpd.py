"""Minimal stdlib HTTP frontend for a servable backend.

The frontend serves anything implementing the small *servable*
protocol — ``graph``, ``slo``, ``submit(inputs, deadline_s=...)``,
``stats()``, ``health_doc()``, ``metrics_text()`` — which today means
a single :class:`InferenceServer` or a whole-fleet
:class:`~repro.fleet.Router`.  JSON in/out, no dependencies beyond
the standard library (the repo's no-new-deps rule):

- ``GET /healthz`` — liveness: 200 ``{"status": "ok", ...}`` while the
  backend accepts work, 503 once draining, closed or a worker died,
- ``GET /stats`` — the backend's metrics snapshot (queue depth,
  latency/batch histograms, shed/reject counters),
- ``GET /metrics`` — the same registry in Prometheus text exposition
  format (version 0.0.4), scrapeable as-is (including the ``slo_*``
  burn-rate gauges, the reason-labeled
  ``repro_serve_dropped_total`` family, the fleet's replica-labeled
  families, and the ``repro_build_info`` version gauge); see
  :mod:`repro.obs.prometheus` and ``docs/serving.md``,
- ``GET /slo`` — the attached :class:`~repro.obs.SLOMonitor`'s
  objectives evaluated now, as JSON (404 when the server has none),
- ``GET /fleetz`` — the merged fleet-observability document (per-
  replica QPS/latency/queue/memory, anomalies, SLO burn) from the
  attached :class:`~repro.obs.FleetView` (404 when none is attached);
  the ``repro top`` dashboard polls this,
- ``POST /infer`` — body ``{"inputs": {name: nested-list}, optional
  "deadline_ms": float}``; replies ``{"outputs": {...},
  "latency_ms": float}``.  Overload maps to **429**, an expired
  deadline to **504**, malformed requests to **400**, a body larger
  than :data:`MAX_BODY_BYTES` to **413**, a closed or draining server
  to **503** — the typed overload semantics on the wire.

JSON tensors are the simplest thing that round-trips everywhere; for
throughput benchmarking use the in-process
:mod:`repro.serve.loadgen`, which skips serialization entirely.
"""

from __future__ import annotations

import json
import logging
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np

from ..obs.prometheus import CONTENT_TYPE as PROMETHEUS_CONTENT_TYPE
from .server import (DeadlineExceeded, InferenceServer, Overloaded,
                     ServerClosed)

logger = logging.getLogger(__name__)

__all__ = ["ServeHTTPD", "serve_http", "MAX_BODY_BYTES"]

#: request bodies larger than this are rejected with 413 before
#: parsing — a JSON-encoded tensor this large means a caller bug, and
#: buffering it would let one request balloon the frontend's memory
MAX_BODY_BYTES = 32 * 1024 * 1024


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1.0"
    #: set by :func:`serve_http` on the handler subclass; any servable
    #: backend (an InferenceServer or a fleet Router)
    inference_server: InferenceServer
    max_body_bytes = MAX_BODY_BYTES

    def log_message(self, fmt: str, *args) -> None:  # route to logging
        logger.debug("http: " + fmt, *args)

    def _reply(self, status: int, payload: dict) -> None:
        self._reply_raw(status, json.dumps(payload).encode(),
                        "application/json")

    def _reply_raw(self, status: int, body: bytes,
                   content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        server = self.inference_server
        if self.path == "/healthz":
            doc = server.health_doc()
            self._reply(200 if doc.get("status") == "ok" else 503, doc)
        elif self.path == "/stats":
            self._reply(200, {"stats": server.stats()})
        elif self.path == "/metrics":
            self._reply_raw(200, server.metrics_text().encode(),
                            PROMETHEUS_CONTENT_TYPE)
        elif self.path == "/slo":
            if server.slo is None:
                self._reply(404, {"error": "no SLO monitor attached"})
            else:
                statuses = [s.to_dict() for s in server.slo.evaluate()]
                self._reply(200, {
                    "slo": statuses,
                    "healthy": all(s["healthy"] for s in statuses)})
        elif self.path == "/fleetz":
            view = getattr(server, "view", None)
            if view is None:
                self._reply(404, {"error": "no fleet view attached "
                                           "(serve with observability on)"})
            else:
                self._reply(200, view.fleet_doc())
        else:
            self._reply(404, {"error": f"no such endpoint {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802
        if self.path != "/infer":
            self._reply(404, {"error": f"no such endpoint {self.path!r}"})
            return
        server = self.inference_server
        try:
            length = int(self.headers.get("Content-Length", "0"))
            if length < 0:
                raise ValueError(f"bad Content-Length {length}")
            if length > self.max_body_bytes:
                self._reply(413, {
                    "error": f"request body of {length} bytes exceeds the "
                             f"{self.max_body_bytes}-byte limit"})
                return
            doc = json.loads(self.rfile.read(length))
            raw = doc["inputs"]
            if not isinstance(raw, dict):
                raise ValueError("'inputs' must be an object")
            dtypes = {v.name: v.dtype.np for v in server.graph.inputs}
            inputs = {name: np.asarray(arr, dtype=dtypes.get(name))
                      for name, arr in raw.items()}
            deadline_ms = doc.get("deadline_ms")
            deadline_s = None if deadline_ms is None else float(deadline_ms) / 1e3
        except (KeyError, ValueError, TypeError, json.JSONDecodeError) as exc:
            self._reply(400, {"error": f"bad request: {exc}"})
            return
        try:
            future = server.submit(inputs, deadline_s=deadline_s)
            outputs = future.result()
        except Overloaded as exc:
            self._reply(429, {"error": str(exc)})
        except DeadlineExceeded as exc:
            self._reply(504, {"error": str(exc)})
        except ServerClosed as exc:
            self._reply(503, {"error": str(exc)})
        except ValueError as exc:
            self._reply(400, {"error": str(exc)})
        else:
            self._reply(200, {
                "outputs": {name: arr.tolist()
                            for name, arr in outputs.items()},
                "latency_ms": (future.latency_s or 0.0) * 1e3})


class ServeHTTPD:
    """Owns the listening socket + acceptor thread for one backend
    (an :class:`InferenceServer` or a :class:`~repro.fleet.Router`)."""

    def __init__(self, server: InferenceServer, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        handler = type("BoundHandler", (_Handler,),
                       {"inference_server": server})
        self.httpd = ThreadingHTTPServer((host, port), handler)
        self.httpd.daemon_threads = True
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        """Bound (host, port) — port is concrete even when 0 was asked."""
        return self.httpd.server_address[:2]

    def start(self) -> "ServeHTTPD":
        self._thread = threading.Thread(target=self.httpd.serve_forever,
                                        name="repro-serve-http", daemon=True)
        self._thread.start()
        host, port = self.address
        logger.info("http frontend listening on %s:%d", host, port)
        return self

    def close(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(5.0)
            self._thread = None

    def __enter__(self) -> "ServeHTTPD":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()


def serve_http(server: InferenceServer, host: str = "127.0.0.1",
               port: int = 0) -> ServeHTTPD:
    """Start the HTTP frontend for ``server``; returns the running
    :class:`ServeHTTPD` (close it to release the socket)."""
    return ServeHTTPD(server, host, port).start()
