"""The inference server: bounded admission, micro-batching workers.

:class:`InferenceServer` turns a compiled graph into a servable unit:

- **admission** — :meth:`submit` appends to a *bounded* queue; a full
  queue raises :class:`Overloaded` immediately (typed backpressure,
  never unbounded growth, never a hang),
- **deadlines** — each request may carry a deadline; requests that
  expire while queued are shed at dequeue time (their future raises
  :class:`DeadlineExceeded`) instead of wasting a batch slot,
- **dynamic batching** — each worker thread drains the queue into up
  to one graph-batch of samples, waiting at most
  ``ServerConfig.max_wait_s`` after the first request for co-riders,
  then runs the shard(s) on its own warm
  :class:`~repro.runtime.engine.InferenceSession`,
- **observability** — queue depth gauge, latency/batch-occupancy
  histograms, shed/reject counters (aggregate *and* reason-labeled:
  ``serve.dropped.reason.{queue_full,deadline_expired,server_closed,
  worker_error}`` renders as one Prometheus family with a ``reason``
  label), all in a :class:`~repro.obs.MetricsRegistry`
  (:meth:`stats`),
- **request-lifecycle tracing** — every request gets a ``trace_id``
  at admission; when a recording tracer is active the server records
  an admission span, a flow arrow from admission into the micro-batch
  that served the request (the batcher's fan-in, one arrow per
  coalesced request), per-op executor spans tagged with the batch's
  trace ids, and — once the outcome is known — the request's async
  waterfall (``queue_wait`` → ``batching`` → ``execute``) on its own
  lane in the Chrome trace,
- **SLOs** — pass an :class:`~repro.obs.SLOMonitor` and the server
  feeds it every outcome (completions with latency; sheds, rejects
  and failures as bad events); :meth:`stats` re-exports burn-rate
  gauges so ``GET /metrics`` exposes them.

The server serves whatever graph it is given; pair it with
:func:`resolve_plan` to load the autotuned compiled plan from the
:mod:`repro.tune` cache at startup so every request reuses the tuned
tiles.
"""

from __future__ import annotations

import itertools
import logging
import threading
import time
from collections import deque
from dataclasses import dataclass

import numpy as np

from ..ir.graph import Graph
from ..obs import (MetricsRegistry, NOOP_TRACER, SLOMonitor, TaggedTracer,
                   get_tracer, new_trace_id)
from ..runtime.engine import InferenceSession
from .batcher import Shard, assemble, request_samples, scatter

logger = logging.getLogger(__name__)

__all__ = ["ServeError", "Overloaded", "DeadlineExceeded", "ServerClosed",
           "ServerDraining", "ServeFuture", "ServerConfig",
           "InferenceServer", "resolve_plan"]


class ServeError(RuntimeError):
    """Base class for typed serving failures."""


class Overloaded(ServeError):
    """Admission queue full: the caller should back off and retry."""


class DeadlineExceeded(ServeError):
    """The request's deadline expired before it could be served."""


class ServerClosed(ServeError):
    """The server is shut down (or was, before the request completed)."""


class ServerDraining(ServerClosed):
    """The server is draining: it finishes in-flight work but admits
    nothing new.  A subclass of :class:`ServerClosed` so existing
    retry/failover logic treats the two identically; the fleet router
    uses the distinction only for metrics labels."""


class ServeFuture:
    """Completion handle for one submitted request."""

    def __init__(self, request_id: int, samples: int,
                 trace_id: str = "") -> None:
        self.request_id = request_id
        self.samples = samples
        #: lifecycle trace id assigned at admission; grep the exported
        #: trace for it to reconstruct this request's waterfall
        self.trace_id = trace_id
        self._event = threading.Event()
        self._outputs: dict[str, np.ndarray] | None = None
        self._error: BaseException | None = None
        #: wall-clock seconds from admission to completion (set on resolve)
        self.latency_s: float | None = None

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> dict[str, np.ndarray]:
        """Block for the outputs; raises the typed error on failure."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"request {self.request_id} not done after {timeout}s")
        if self._error is not None:
            raise self._error
        assert self._outputs is not None
        return self._outputs

    def _resolve(self, outputs: dict[str, np.ndarray], latency_s: float) -> None:
        self._outputs = outputs
        self.latency_s = latency_s
        self._event.set()

    def _reject(self, error: BaseException) -> None:
        self._error = error
        self._event.set()


@dataclass(frozen=True)
class ServerConfig:
    """Queueing / batching / SLO knobs of one server."""

    num_workers: int = 1
    #: admission bound, in requests; the backpressure knob
    max_queue: int = 64
    #: samples per micro-batch; None = the graph's static batch
    max_batch: int | None = None
    #: how long a worker holds the first request open for co-riders
    max_wait_s: float = 0.002
    #: deadline applied to requests submitted without one (None = none)
    default_deadline_s: float | None = None
    #: False = no coalescing: one request per micro-batch (the
    #: one-request-at-a-time baseline the batching A/B test compares)
    batching: bool = True

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {self.num_workers}")
        if self.max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {self.max_queue}")
        if self.max_batch is not None and self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_wait_s < 0:
            raise ValueError(f"max_wait_s must be >= 0, got {self.max_wait_s}")


@dataclass(eq=False)  # identity hash: requests key scatter buffers
class _Request:
    """One admitted request (internal work item)."""

    id: int
    trace_id: str
    inputs: dict[str, np.ndarray]
    samples: int
    future: ServeFuture
    enqueued_at: float
    deadline_at: float | None  #: monotonic absolute deadline
    #: tracer timestamps bounding the queue-wait segment of the
    #: request's waterfall (0.0 when tracing is off)
    admitted_us: float = 0.0
    dequeued_us: float = 0.0


class InferenceServer:
    """Serve a compiled graph from a pool of warm sessions.

    Use as a context manager, or call :meth:`start` / :meth:`close`::

        with InferenceServer(plan, ServerConfig(num_workers=2)) as server:
            future = server.submit({"x": batch_of_one})
            outputs = future.result(timeout=5.0)
    """

    def __init__(self, graph: Graph, config: ServerConfig | None = None, *,
                 metrics: MetricsRegistry | None = None,
                 tracer=None, slo: SLOMonitor | None = None,
                 memory_plan=None) -> None:
        graph.validate()
        self.graph = graph
        self.config = config or ServerConfig()
        self.metrics = metrics or MetricsRegistry()
        self.tracer = tracer if tracer is not None else get_tracer()
        self.slo = slo
        #: optional :class:`~repro.plan.MemoryPlan` enforced on every
        #: batch each worker session runs; each run opens its own
        #: spill store, so workers never share spill state
        self.memory_plan = memory_plan
        if memory_plan is not None:
            self.metrics.gauge("plan.budget_bytes",
                               float(memory_plan.budget_bytes or 0))
            self.metrics.gauge("plan.planned_peak_bytes",
                               float(memory_plan.planned_peak_bytes))
        self.graph_batch = graph.inputs[0].shape[0]
        self.max_batch = self.config.max_batch or self.graph_batch
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._queue: deque[_Request] = deque()
        self._workers: list[threading.Thread] = []
        self._closed = False
        self._draining = False
        self._started = False
        self._in_flight = 0
        self._ids = itertools.count()
        # one warm session per worker: sessions keep per-run mutable
        # state (last_result), so they are per-thread, while the
        # read-only graph and its weights are shared.  When tracing,
        # each worker records through a TaggedTracer stamping its
        # worker_id and pinning its spans onto a dedicated, labeled
        # Chrome-trace row (tid = worker index + 1; tid 0 stays the
        # admission/main timeline), so the merged trace renders one
        # lane per worker.
        if self.tracer.enabled:
            self._worker_tracers = [
                TaggedTracer(self.tracer, tid=index + 1, worker_id=index)
                for index in range(self.config.num_workers)]
            for index in range(self.config.num_workers):
                self.tracer.name_thread(index + 1, f"worker-{index}")
        else:
            self._worker_tracers = [NOOP_TRACER] * self.config.num_workers
        self._sessions = [
            InferenceSession(graph, tracer=self._worker_tracers[index],
                             memory_plan=memory_plan)
            for index in range(self.config.num_workers)]

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "InferenceServer":
        """Spawn the worker threads (idempotent)."""
        with self._lock:
            if self._closed:
                raise ServerClosed("server already closed")
            if self._started:
                return self
            self._started = True
        for index in range(self.config.num_workers):
            worker = threading.Thread(
                target=self._worker_loop,
                args=(index, self._sessions[index]),
                name=f"repro-serve-{index}", daemon=True)
            worker.start()
            self._workers.append(worker)
        logger.info("serving %s: %d worker(s), batch %d, queue bound %d, "
                    "max wait %.1f ms, batching %s", self.graph.name,
                    self.config.num_workers, self.max_batch,
                    self.config.max_queue, self.config.max_wait_s * 1e3,
                    "on" if self.config.batching else "off")
        return self

    def close(self, timeout: float | None = 10.0) -> None:
        """Stop accepting work, drain workers, reject queued requests."""
        with self._not_empty:
            if self._closed:
                return
            self._closed = True
            pending = list(self._queue)
            self._queue.clear()
            self._gauge_depth_locked()
            self._not_empty.notify_all()
        for request in pending:
            request.future._reject(ServerClosed(
                f"server closed with request {request.id} still queued"))
            self.metrics.inc("serve.rejected_on_close")
            self._drop(request, "server_closed")
        for worker in self._workers:
            worker.join(timeout)
        self._workers.clear()

    def __enter__(self) -> "InferenceServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def drain(self, timeout: float | None = 30.0) -> bool:
        """Graceful shutdown: stop admitting, finish in-flight, close.

        New :meth:`submit` calls raise :class:`ServerDraining` (a
        :class:`ServerClosed`) immediately, :meth:`healthy` flips to
        False (so ``GET /healthz`` answers 503 and a fleet router
        stops sending traffic), and the call blocks until every
        queued and in-flight request has completed — then the server
        closes for real.  Returns False when ``timeout`` expired with
        work still pending (the server closes anyway, rejecting the
        leftovers the way :meth:`close` does).
        """
        with self._not_empty:
            if self._closed:
                return True
            self._draining = True
            self._not_empty.notify_all()
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        drained = True
        while True:
            with self._lock:
                idle = not self._queue and self._in_flight == 0
            if idle:
                break
            if deadline is not None and time.monotonic() > deadline:
                drained = False
                break
            time.sleep(0.002)
        self.close()
        return drained

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def draining(self) -> bool:
        return self._draining and not self._closed

    def healthy(self) -> bool:
        """Accepting work and every worker thread alive."""
        if self._closed or self._draining or not self._started:
            return False
        return all(w.is_alive() for w in self._workers)

    def health_doc(self) -> dict:
        """The ``GET /healthz`` body: ``status`` is ``"ok"`` while
        accepting work, ``"draining"`` during :meth:`drain`, else
        ``"unavailable"`` — anything but ``"ok"`` maps to 503."""
        if self.healthy():
            return {"status": "ok", "model": self.graph.name,
                    "workers": self.config.num_workers,
                    "graph_batch": self.graph_batch}
        if self.draining:
            return {"status": "draining", "model": self.graph.name}
        return {"status": "unavailable"}

    def metrics_text(self) -> str:
        """The ``GET /metrics`` body: the registry in Prometheus text
        exposition, plus the point-in-time extras and the
        ``repro_build_info`` version gauge."""
        from ..obs.prometheus import prometheus_text
        from .._version import __version__

        stats = self.stats()
        return prometheus_text(
            self.metrics, build_info=__version__,
            extra_gauges={key: stats[key] for key in (
                "serve.queue_depth", "serve.in_flight",
                "serve.workers", "serve.graph_batch")})

    # -- admission -----------------------------------------------------

    def submit(self, inputs: dict[str, np.ndarray] | np.ndarray, *,
               deadline_s: float | None = None,
               trace_id: str | None = None) -> ServeFuture:
        """Admit one request; returns its :class:`ServeFuture`.

        Raises :class:`Overloaded` when the admission queue is at
        ``max_queue`` (the request is *not* enqueued) and
        :class:`ServerClosed` after :meth:`close`.  ``trace_id`` lets
        an upstream router propagate the id it assigned at fleet
        admission, so one request's spans correlate across the router
        and every replica it was attempted on; without one, the
        server assigns a fresh id.
        """
        if isinstance(inputs, np.ndarray):
            if len(self.graph.inputs) != 1:
                raise ValueError(
                    f"graph has {len(self.graph.inputs)} inputs; pass a dict")
            inputs = {self.graph.inputs[0].name: inputs}
        samples = request_samples(self.graph, inputs)
        if deadline_s is None:
            deadline_s = self.config.default_deadline_s
        now = time.monotonic()
        request_id = next(self._ids)
        if trace_id is None:
            trace_id = new_trace_id()
        tracing = self.tracer.enabled
        admitted_us = self.tracer.now_us() if tracing else 0.0
        request = _Request(
            id=request_id, trace_id=trace_id, inputs=inputs, samples=samples,
            future=ServeFuture(request_id, samples, trace_id),
            enqueued_at=now, admitted_us=admitted_us,
            deadline_at=None if deadline_s is None else now + deadline_s)
        with self._not_empty:
            if self._closed:
                raise ServerClosed("server is closed")
            if self._draining:
                raise ServerDraining("server is draining: finishing "
                                     "in-flight requests, admitting none")
            if len(self._queue) >= self.config.max_queue:
                self.metrics.inc("serve.rejected")
                self._drop(request, "queue_full")
                raise Overloaded(
                    f"admission queue full ({self.config.max_queue} requests); "
                    f"retry with backoff")
            self._queue.append(request)
            self.metrics.inc("serve.requests")
            self._gauge_depth_locked()
            self._not_empty.notify()
        if tracing:
            # a short admission span on the main row hosts the source
            # endpoint of the fan-in arrow; the destination lands in
            # the micro-batch span that eventually serves the request
            self.tracer.complete(
                "serve.admit", admitted_us,
                max(self.tracer.now_us() - admitted_us, 1.0),
                category="serve", request_id=request_id, trace_id=trace_id,
                samples=samples)
            self.tracer.flow("serve.request", request_id, "start",
                             ts_us=admitted_us, trace_id=trace_id)
        return request.future

    def infer(self, inputs: dict[str, np.ndarray] | np.ndarray, *,
              deadline_s: float | None = None,
              timeout: float | None = None) -> dict[str, np.ndarray]:
        """Synchronous convenience: :meth:`submit` + wait for the result."""
        return self.submit(inputs, deadline_s=deadline_s).result(timeout)

    # -- worker side ---------------------------------------------------

    def _gauge_depth_locked(self) -> None:
        self.metrics.gauge("serve.queue_depth", len(self._queue))

    def _drop(self, request: _Request, reason: str) -> None:
        """Account one request that will never complete.

        The ``serve.dropped.reason.<reason>`` counter renders as a
        single labeled Prometheus family
        (``repro_serve_dropped_total{reason="..."}``); the SLO monitor
        sees the outcome as a bad event; with tracing on, the
        truncated waterfall lands on the request's async lane.
        """
        self.metrics.inc(f"serve.dropped.reason.{reason}")
        if self.slo is not None:
            self.slo.record(ok=False)
        if self.tracer.enabled:
            now_us = self.tracer.now_us()
            self.tracer.instant("serve.dropped", category="serve",
                                request_id=request.id,
                                trace_id=request.trace_id, reason=reason)
            if request.admitted_us:
                self.tracer.async_slice(
                    "request", request.id, request.admitted_us, now_us,
                    category="serve", trace_id=request.trace_id,
                    outcome=reason)
                self.tracer.async_slice(
                    "queue_wait", request.id, request.admitted_us,
                    request.dequeued_us or now_us, category="serve",
                    trace_id=request.trace_id)

    def _shed(self, request: _Request, now: float) -> None:
        overdue = now - (request.deadline_at or now)
        request.future._reject(DeadlineExceeded(
            f"request {request.id} expired {overdue * 1e3:.1f} ms before "
            f"service"))
        self.metrics.inc("serve.shed")
        self._drop(request, "deadline_expired")

    def _pop_live_locked(self, now: float) -> _Request | None:
        """Pop the next unexpired request, shedding expired ones."""
        while self._queue:
            request = self._queue.popleft()
            if self.tracer.enabled:
                request.dequeued_us = self.tracer.now_us()
            if request.deadline_at is not None and now > request.deadline_at:
                self._shed(request, now)
                continue
            return request
        return None

    def _take_batch(self) -> list[_Request] | None:
        """Block for the next micro-batch; None when the server closes.

        Takes the first live request, then keeps the batch open for up
        to ``max_wait_s`` (or until ``max_batch`` samples) for
        co-riders.  With batching off, returns single requests.
        """
        with self._not_empty:
            while True:
                first = self._pop_live_locked(time.monotonic())
                if first is not None:
                    break
                self._gauge_depth_locked()
                if self._closed:
                    return None
                self._not_empty.wait()
            taken = [first]
            total = first.samples
            if self.config.batching:
                wait_until = time.monotonic() + self.config.max_wait_s
                while total < self.max_batch and not self._closed:
                    request = self._pop_live_locked(time.monotonic())
                    if request is not None:
                        taken.append(request)
                        total += request.samples
                        continue
                    remaining = wait_until - time.monotonic()
                    if remaining <= 0:
                        break
                    self._not_empty.wait(remaining)
            self._gauge_depth_locked()
            self._in_flight += len(taken)
        return taken

    def _worker_loop(self, index: int, session: InferenceSession) -> None:
        while True:
            taken = self._take_batch()
            if taken is None:
                return
            try:
                self._run_batch(index, session, taken)
            except BaseException as exc:  # noqa: BLE001 — fail the batch, not the server
                logger.exception("serve worker failed on a batch")
                for request in taken:
                    if not request.future.done():
                        request.future._reject(
                            ServeError(f"inference failed: {exc!r}"))
                        self._drop(request, "worker_error")
                self.metrics.inc("serve.failed", len(taken))
            finally:
                with self._lock:
                    self._in_flight -= len(taken)

    def _run_batch(self, index: int, session: InferenceSession,
                   taken: list[_Request]) -> None:
        tracer = self._worker_tracers[index]
        tracing = self.tracer.enabled
        shards = assemble(self.graph,
                          [(request, request.inputs) for request in taken],
                          batch=self.graph_batch)
        buffers: dict[_Request, dict[str, np.ndarray]] = {}
        filled: dict[_Request, int] = {}
        totals = {request: request.samples for request in taken}
        now = time.monotonic()
        self.metrics.observe("serve.batch_requests", len(taken))
        self.metrics.observe(
            "serve.batch_samples", sum(r.samples for r in taken))
        trace_ids = [request.trace_id for request in taken]
        padding = sum(shard.padding for shard in shards)
        batch_start_us = tracer.now_us() if tracing else 0.0
        # the batch span carries the ids of every request it coalesced
        # (and, via the TaggedTracer, the worker_id / worker row);
        # every per-node executor span recorded by session.run nests
        # inside it and is tagged with the batch's trace ids
        with tracer.span("serve.batch", category="serve",
                         request_ids=[request.id for request in taken],
                         trace_ids=trace_ids, requests=len(taken),
                         samples=sum(r.samples for r in taken),
                         padding=padding):
            if tracing:
                # fan-in: one arrow per coalesced request, from its
                # admission span into this batch span
                fanin_us = tracer.now_us()
                for request in taken:
                    tracer.flow("serve.request", request.id, "finish",
                                ts_us=fanin_us, trace_id=request.trace_id)
            run_tracer = tracer.tagged(trace_ids=trace_ids) if tracing else None
            for shard in shards:
                result = session.run(shard.inputs, tracer=run_tracer)
                outputs = result.outputs
                self.metrics.inc("serve.batches")
                self._record_measured_peak(result.memory)
                self.metrics.inc("serve.padded_samples", shard.padding)
                self._record_plan_stats(result.memory.plan_stats)
                now = time.monotonic()
                for request in scatter(shard, outputs, buffers, filled,
                                       totals):
                    latency = now - request.enqueued_at
                    request.future._resolve(buffers.pop(request), latency)
                    self.metrics.inc("serve.completed")
                    self.metrics.observe("serve.latency_ms", latency * 1e3)
                    if self.slo is not None:
                        self.slo.record(latency, ok=True)
                    tracer.instant(
                        "serve.request_done", category="serve",
                        request_id=request.id, trace_id=request.trace_id,
                        samples=request.samples, latency_ms=latency * 1e3)
                    if tracing:
                        self._record_waterfall(tracer, request,
                                               batch_start_us, latency)
                    if (request.deadline_at is not None
                            and now > request.deadline_at):
                        self.metrics.inc("serve.late_completions")

    def _record_measured_peak(self, memory) -> None:
        """Running max of the measured per-batch internal-tensor peak
        (``serve.measured_peak_bytes``).  Next to the
        ``plan.planned_peak_bytes`` / ``plan.budget_bytes`` gauges,
        this is the planned-vs-measured drift signal the memory-drift
        anomaly detector and the ``repro top`` dashboard watch."""
        peak = float(getattr(memory, "peak_internal_bytes", 0) or 0)
        if peak <= 0:
            return
        # read-modify-write under the server lock so two workers can't
        # interleave and regress the running max
        with self._lock:
            if peak > self.metrics.get("serve.measured_peak_bytes", 0.0):
                self.metrics.gauge("serve.measured_peak_bytes", peak)

    def _record_plan_stats(self, stats) -> None:
        """Merge one budgeted run's spill/remat counters into the
        server registry so ``GET /metrics`` exports them
        (``repro_plan_spilled_bytes_total``, ``repro_plan_remat_total``,
        …) alongside the serving metrics."""
        if stats is None:
            return
        self.metrics.inc("plan.spills", stats.spills)
        self.metrics.inc("plan.spilled_bytes", stats.spilled_bytes)
        self.metrics.inc("plan.prefetched_bytes", stats.prefetched_bytes)
        self.metrics.inc("plan.remat", stats.remats)
        if stats.spill_failures:
            self.metrics.inc("plan.spill_failures", stats.spill_failures)
        if stats.fetch_retries:
            self.metrics.inc("plan.fetch_retries", stats.fetch_retries)

    def _record_waterfall(self, tracer, request: _Request,
                          batch_start_us: float, latency: float) -> None:
        """The request's lifecycle as nested async slices on its own
        lane: total, queue wait, batching delay (popped but held open
        for co-riders), execute."""
        done_us = tracer.now_us()
        base = dict(trace_id=request.trace_id, category="serve")
        tracer.async_slice("request", request.id, request.admitted_us,
                           done_us, samples=request.samples,
                           latency_ms=latency * 1e3, outcome="ok", **base)
        dequeued = min(request.dequeued_us or done_us, done_us)
        tracer.async_slice("queue_wait", request.id, request.admitted_us,
                           dequeued, **base)
        exec_start = min(max(batch_start_us, dequeued), done_us)
        if exec_start > dequeued:
            tracer.async_slice("batching", request.id, dequeued, exec_start,
                               **base)
        tracer.async_slice("execute", request.id, exec_start, done_us, **base)

    # -- introspection -------------------------------------------------

    def stats(self) -> dict[str, float]:
        """Point-in-time health/metrics snapshot (counters, gauges,
        latency and batch-occupancy quantiles; with an SLO monitor
        attached, fresh ``slo.*`` burn-rate gauges)."""
        if self.slo is not None:
            self.slo.export_gauges(self.metrics)
        snapshot = self.metrics.snapshot()
        with self._lock:
            snapshot["serve.queue_depth"] = float(len(self._queue))
            snapshot["serve.in_flight"] = float(self._in_flight)
        snapshot["serve.workers"] = float(self.config.num_workers)
        snapshot["serve.graph_batch"] = float(self.graph_batch)
        return snapshot


def resolve_plan(graph: Graph, *, tuned: bool = False, cache_dir=None,
                 method: str = "tucker", ratio: float = 0.1,
                 seed: int = 0) -> tuple[Graph, bool]:
    """The servable plan for ``graph``: the autotuned compiled plan
    from the :mod:`repro.tune` cache when ``tuned`` and the cache
    hits, else ``graph`` itself.  Returns ``(plan, cache_hit)``.
    """
    if not tuned:
        return graph, False
    from ..decompose import DecompositionConfig
    from ..tune import TuneCache, load_cached_plan

    cached = load_cached_plan(
        graph, cache=TuneCache(cache_dir),
        decomposition=DecompositionConfig(method=method, ratio=ratio,
                                          seed=seed))
    if cached is None:
        logger.warning("tune cache miss for %s: serving the raw graph "
                       "(run `repro tune %s` first)", graph.name, graph.name)
        return graph, False
    plan, record = cached
    logger.info("serving cached compiled plan for %s (key %s, %d tuned "
                "sites)", graph.name, record.key, len(record.sites))
    return plan, True
