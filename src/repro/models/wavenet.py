"""WaveNet-style 2D dilated residual stack with summed skip outputs.

The memory shape the budget planner targets: every residual layer taps
a same-sized *skip* tensor that idles until all of them are summed at
the head, so the live set grows linearly with depth while no single
node ever needs more than three tensors resident.  Peak is therefore
far above the irreducible working-set floor
(:func:`repro.core.estimate_peak_floor`), which makes tight
``--budget`` values honestly feasible through spill/prefetch — unlike
the pyramid-shaped classification models whose peak *is* one node's
working set.

Gated activations (``tanh × sigmoid``) are replaced by ReLU since the
kernel set has no elementwise multiply; the memory behaviour — the
part that matters here — is unchanged.
"""

from __future__ import annotations

from ..ir.graph import Graph, GraphBuilder
from .common import conv_relu

__all__ = ["build_wavenet2d"]


def build_wavenet2d(batch: int = 4, hw: int = 32, num_classes: int = 1,
                    seed: int = 0, *, channels: int = 24, layers: int = 8,
                    dilation_cycle: tuple[int, ...] = (1, 2, 4, 8)) -> Graph:
    """Build a flat-resolution dilated skip-sum network.

    ``layers`` residual layers at constant ``channels`` width and full
    ``hw`` resolution; layer *i* uses a 3×3 conv with dilation
    ``dilation_cycle[i % len(dilation_cycle)]`` (padding matched so the
    resolution never changes).  Each layer's 1×1 skip tap stays live
    until the pairwise skip sum before the sigmoid head.
    """
    if layers < 2:
        raise ValueError(f"wavenet2d needs at least 2 layers, got {layers}")
    b = GraphBuilder("wavenet2d", seed=seed)
    x = b.input("image", (batch, 3, hw, hw))
    res = conv_relu(b, x, channels, 3, padding=1, name="stem")

    skips = []
    for i in range(layers):
        d = dilation_cycle[i % len(dilation_cycle)]
        h = b.relu(b.conv2d(res, channels, 3, padding=d, dilation=d,
                            name=f"layer{i}.conv"))
        skips.append(b.conv2d(h, channels, 1, name=f"layer{i}.skip"))
        if i < layers - 1:  # the last residual update would be dead code
            res = b.add(res, b.conv2d(h, channels, 1, name=f"layer{i}.res"),
                        name=f"layer{i}.out")

    s = skips[0]
    for i, skip in enumerate(skips[1:], start=1):
        s = b.add(s, skip, name=f"skip_sum{i}")
    logits = b.conv2d(b.relu(s), num_classes, 1, name="head")
    return b.finish(b.sigmoid(logits))
