"""FractalNet (Larsson et al.) with sum joins, flat resolution.

The fractal expansion ``f_{c}(x) = join(conv(x), f_{c-1}(f_{c-1}(x)))``
computes the shallow column first, so its output idles across the
entire deep sub-tree before the join — one long-lived tensor per
recursion level.  Like :mod:`~repro.models.wavenet` this puts the peak
well above the single-node working-set floor, giving the budget
planner (:mod:`repro.plan`) real spill/remat headroom; the original
mean-join is replaced by an elementwise sum, which the skip optimizer
already models.
"""

from __future__ import annotations

from ..ir.graph import Graph, GraphBuilder
from ..ir.value import Value
from .common import classifier_head, conv_relu

__all__ = ["build_fractalnet"]


def _fractal(b: GraphBuilder, x: Value, channels: int, col: int,
             name: str) -> Value:
    if col == 1:
        return conv_relu(b, x, channels, name=f"{name}.c")
    short = conv_relu(b, x, channels, name=f"{name}.s")
    deep = _fractal(b, x, channels, col - 1, f"{name}.a")
    deep = _fractal(b, deep, channels, col - 1, f"{name}.b")
    return b.add(short, deep, name=f"{name}.join")


def build_fractalnet(batch: int = 4, hw: int = 32, num_classes: int = 10,
                     seed: int = 0, *, channels: int = 16,
                     columns: int = 6) -> Graph:
    """Build a ``columns``-column fractal block and classifier head.

    The block holds resolution and width constant so every idle column
    output is the same size; peak live bytes grow with ``columns``
    while the per-node floor stays at three tensors (the sum joins).
    """
    if columns < 2:
        raise ValueError(f"fractalnet needs at least 2 columns, got {columns}")
    b = GraphBuilder("fractalnet", seed=seed)
    x = b.input("image", (batch, 3, hw, hw))
    h = conv_relu(b, x, channels, name="stem")
    h = _fractal(b, h, channels, columns, "frac")
    return b.finish(classifier_head(b, h, num_classes))
