"""ResNet-18/34 (He et al.) with basic blocks.

Built with batch normalization (randomized inference statistics) that
is folded into the convolutions at build time.  The identity skip
connections joined by ``add`` are the paper's hard case: restore
chains recurse block-by-block and terminate at the stage-boundary
downsample convolutions, so skip-connection optimization is naturally
selective and most of TeMCO's benefit comes from fusing the
``lconv → relu → fconv`` pattern inside each block (§4.2's 30.7%).
"""

from __future__ import annotations

from ..ir.graph import Graph, GraphBuilder
from ..ir.value import Value
from .common import classifier_head, conv_bn_relu, finish_folded

__all__ = ["build_resnet", "RESNET_CONFIGS"]

#: blocks per stage
RESNET_CONFIGS: dict[str, list[int]] = {
    "resnet18": [2, 2, 2, 2],
    "resnet34": [3, 4, 6, 3],
}

_STAGE_CHANNELS = [64, 128, 256, 512]


def _basic_block(b: GraphBuilder, x: Value, channels: int, stride: int,
                 name: str) -> Value:
    identity = x
    h = conv_bn_relu(b, x, channels, 3, stride=stride, padding=1,
                     name=f"{name}.conv1")
    h = conv_bn_relu(b, h, channels, 3, stride=1, padding=1, relu=False,
                     name=f"{name}.conv2")
    if stride != 1 or x.shape[1] != channels:
        identity = conv_bn_relu(b, x, channels, 1, stride=stride, padding=0,
                                relu=False, name=f"{name}.downsample")
    return b.relu(b.add(h, identity))


def build_resnet(variant: str = "resnet18", batch: int = 4, hw: int = 64,
                 num_classes: int = 10, seed: int = 0) -> Graph:
    """Build a ResNet for ``(batch, 3, hw, hw)`` inputs (hw % 32 == 0)."""
    if variant not in RESNET_CONFIGS:
        raise ValueError(f"unknown ResNet variant {variant!r}; "
                         f"known: {sorted(RESNET_CONFIGS)}")
    if hw % 32 != 0:
        raise ValueError(f"ResNet input size must be divisible by 32, got {hw}")
    b = GraphBuilder(variant, seed=seed)
    x = b.input("image", (batch, 3, hw, hw))

    h = conv_bn_relu(b, x, 64, 7, stride=2, padding=3, name="stem")
    h = b.maxpool2d(h, 3, stride=2, padding=1)
    for stage, blocks in enumerate(RESNET_CONFIGS[variant]):
        channels = _STAGE_CHANNELS[stage]
        for block in range(blocks):
            stride = 2 if (stage > 0 and block == 0) else 1
            h = _basic_block(b, h, channels, stride,
                             name=f"layer{stage + 1}.{block}")
    logits = classifier_head(b, h, num_classes)
    return finish_folded(b, logits)
