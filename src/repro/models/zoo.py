"""The benchmark model zoo: the paper's 10 models of 5 architectures
(§4.1) plus two flat-resolution long-skip stacks whose peak sits far
above the single-node working-set floor — the regime the budget
planner (:mod:`repro.plan`) is built for.

========== ============ ============== =====================
model      family       task           TeMCO variants
========== ============ ============== =====================
alexnet    AlexNet      classification Fusion
vgg11..19  VGG          classification Fusion
resnet18   ResNet       classification Skip-Opt(+Fusion)
resnet34   ResNet       classification Skip-Opt(+Fusion)
densenet   DenseNet     classification Skip-Opt(+Fusion)
unet       UNet         segmentation   Skip-Opt(+Fusion)
unet_small UNet         segmentation   Skip-Opt(+Fusion)
wavenet2d  WaveNet      segmentation   Skip-Opt(+Fusion)
fractalnet FractalNet   classification Skip-Opt(+Fusion)
========== ============ ============== =====================
"""

from __future__ import annotations

import functools

from ..ir.graph import Graph
from .alexnet import build_alexnet
from .common import ModelSpec
from .densenet import build_densenet
from .fractalnet import build_fractalnet
from .resnet import build_resnet
from .unet import build_unet
from .vgg import build_vgg
from .wavenet import build_wavenet2d

__all__ = ["MODEL_ZOO", "build_model", "model_names"]


def _unet_small(batch: int = 4, hw: int = 64, num_classes: int = 1,
                seed: int = 0) -> Graph:
    return build_unet(batch=batch, hw=hw, num_classes=num_classes, seed=seed,
                      base_channels=16, depth=3)


MODEL_ZOO: dict[str, ModelSpec] = {
    "alexnet": ModelSpec("alexnet", "AlexNet", "classification", 64, False,
                         build_alexnet),
    "vgg11": ModelSpec("vgg11", "VGG", "classification", 64, False,
                       functools.partial(build_vgg, "vgg11")),
    "vgg13": ModelSpec("vgg13", "VGG", "classification", 64, False,
                       functools.partial(build_vgg, "vgg13")),
    "vgg16": ModelSpec("vgg16", "VGG", "classification", 64, False,
                       functools.partial(build_vgg, "vgg16")),
    "vgg19": ModelSpec("vgg19", "VGG", "classification", 64, False,
                       functools.partial(build_vgg, "vgg19")),
    "resnet18": ModelSpec("resnet18", "ResNet", "classification", 64, True,
                          functools.partial(build_resnet, "resnet18")),
    "resnet34": ModelSpec("resnet34", "ResNet", "classification", 64, True,
                          functools.partial(build_resnet, "resnet34")),
    "densenet": ModelSpec("densenet", "DenseNet", "classification", 64, True,
                          functools.partial(build_densenet, "densenet")),
    "unet": ModelSpec("unet", "UNet", "segmentation", 96, True, build_unet),
    "unet_small": ModelSpec("unet_small", "UNet", "segmentation", 64, True,
                            _unet_small),
    "wavenet2d": ModelSpec("wavenet2d", "WaveNet", "segmentation", 32, True,
                           build_wavenet2d),
    "fractalnet": ModelSpec("fractalnet", "FractalNet", "classification", 32,
                            True, build_fractalnet),
}


def model_names() -> list[str]:
    """Names of the zoo models (the paper's 10 + 2 long-skip stacks)."""
    return list(MODEL_ZOO)


def build_model(name: str, batch: int = 4, hw: int | None = None,
                num_classes: int | None = None, seed: int = 0) -> Graph:
    """Build a zoo model by name with its default resolution/classes."""
    try:
        spec = MODEL_ZOO[name]
    except KeyError as exc:
        raise KeyError(f"unknown model {name!r}; zoo: {model_names()}") from exc
    if num_classes is None:
        num_classes = 1 if spec.task == "segmentation" else 10
    return spec(batch=batch, hw=hw, num_classes=num_classes, seed=seed)
