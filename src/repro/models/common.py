"""Shared model-building helpers.

All zoo models are built with :class:`~repro.ir.graph.GraphBuilder`
from a seed, so weights are deterministic.  BatchNorm-bearing families
(ResNet, DenseNet) are built with randomized inference statistics and
folded with :func:`repro.core.folding.fold_batchnorm` before being
returned — matching the paper's inference-time setting where
frameworks fold BN into convolutions ahead of optimization.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..core.folding import fold_batchnorm
from ..ir.graph import Graph, GraphBuilder
from ..ir.value import Value

__all__ = ["ModelSpec", "conv_relu", "conv_bn_relu", "random_batchnorm_params",
           "classifier_head", "finish_folded"]


@dataclass(frozen=True)
class ModelSpec:
    """Zoo entry: how to build one benchmark model."""

    name: str
    family: str
    task: str  # "classification" | "segmentation"
    default_hw: int
    has_skip_connections: bool
    build: Callable[..., Graph] = field(compare=False)

    def __call__(self, batch: int = 4, hw: int | None = None,
                 num_classes: int = 10, seed: int = 0) -> Graph:
        return self.build(batch=batch, hw=hw or self.default_hw,
                          num_classes=num_classes, seed=seed)


def conv_relu(b: GraphBuilder, x: Value, out_channels: int, kernel: int = 3,
              stride: int = 1, padding: int = 1, name: str | None = None) -> Value:
    return b.relu(b.conv2d(x, out_channels, kernel, stride=stride,
                           padding=padding, name=name))


def random_batchnorm_params(b: GraphBuilder, channels: int) -> dict[str, np.ndarray]:
    """Non-trivial inference statistics so BN folding is exercised."""
    rng = b.rng
    return {
        "gamma": rng.uniform(0.5, 1.5, channels).astype(b.dtype.np),
        "beta": rng.normal(0.0, 0.1, channels).astype(b.dtype.np),
        "mean": rng.normal(0.0, 0.1, channels).astype(b.dtype.np),
        "var": rng.uniform(0.5, 1.5, channels).astype(b.dtype.np),
    }


def conv_bn_relu(b: GraphBuilder, x: Value, out_channels: int, kernel: int = 3,
                 stride: int = 1, padding: int = 1, relu: bool = True,
                 name: str | None = None) -> Value:
    h = b.conv2d(x, out_channels, kernel, stride=stride, padding=padding,
                 bias=False, name=name)
    bn = random_batchnorm_params(b, out_channels)
    h = b.batchnorm2d(h, **bn)
    return b.relu(h) if relu else h


def classifier_head(b: GraphBuilder, x: Value, num_classes: int,
                    hidden: int | None = None) -> Value:
    """Global-average-pool classifier (keeps the FC weight budget small
    so memory numbers are dominated by the convolutional trunk, which
    is where TeMCO acts)."""
    h = b.global_avgpool(x)
    h = b.flatten(h)
    if hidden:
        h = b.relu(b.linear(h, hidden))
    return b.linear(h, num_classes)


def finish_folded(b: GraphBuilder, out: Value) -> Graph:
    """Finalize a BN-bearing model: validate, fold BN, re-validate."""
    g = b.finish(out)
    fold_batchnorm(g)
    return g
