"""DenseNet (Huang et al.), slim configuration.

Every dense layer consumes the channel-concatenation of all previous
feature maps in its block — the paper's "numerous skip connections"
case (§4.2, 54.0% internal reduction).  The composite function follows
DenseNet-BC with BN folded at build time: ``relu → 1×1 bottleneck →
relu → 3×3 conv(growth)``.

The zoo's ``densenet`` is a slimmed DenseNet (smaller growth rate and
block sizes than DenseNet-121) so the NumPy substrate stays
laptop-fast; the connectivity pattern — the property TeMCO exercises —
is identical.
"""

from __future__ import annotations

from ..ir.graph import Graph, GraphBuilder
from ..ir.value import Value
from .common import classifier_head, conv_bn_relu, finish_folded

__all__ = ["build_densenet", "DENSENET_CONFIGS"]

#: (growth rate, init channels, layers per dense block)
DENSENET_CONFIGS: dict[str, tuple[int, int, tuple[int, ...]]] = {
    "densenet": (16, 32, (4, 8, 6)),
    "densenet_deep": (12, 24, (6, 12, 8)),
}


def _dense_layer(b: GraphBuilder, features: list[Value], growth: int,
                 name: str) -> Value:
    x = b.concat(*features) if len(features) > 1 else features[0]
    h = b.relu(x)
    h = conv_bn_relu(b, h, 4 * growth, 1, stride=1, padding=0,
                     name=f"{name}.bottleneck")
    h = conv_bn_relu(b, h, growth, 3, stride=1, padding=1, relu=False,
                     name=f"{name}.conv")
    return h


def _transition(b: GraphBuilder, features: list[Value], name: str) -> Value:
    x = b.concat(*features) if len(features) > 1 else features[0]
    h = b.relu(x)
    out_channels = max(16, x.shape[1] // 2)
    h = conv_bn_relu(b, h, out_channels, 1, stride=1, padding=0, relu=False,
                     name=f"{name}.conv")
    return b.avgpool2d(h, 2)


def build_densenet(variant: str = "densenet", batch: int = 4, hw: int = 64,
                   num_classes: int = 10, seed: int = 0) -> Graph:
    """Build a DenseNet for ``(batch, 3, hw, hw)`` inputs (hw % 16 == 0)."""
    if variant not in DENSENET_CONFIGS:
        raise ValueError(f"unknown DenseNet variant {variant!r}; "
                         f"known: {sorted(DENSENET_CONFIGS)}")
    if hw % 16 != 0:
        raise ValueError(f"DenseNet input size must be divisible by 16, got {hw}")
    growth, init_channels, blocks = DENSENET_CONFIGS[variant]
    b = GraphBuilder(variant, seed=seed)
    x = b.input("image", (batch, 3, hw, hw))

    h = conv_bn_relu(b, x, init_channels, 7, stride=2, padding=3, name="stem")
    h = b.maxpool2d(h, 3, stride=2, padding=1)
    for block_idx, num_layers in enumerate(blocks):
        features = [h]
        for layer_idx in range(num_layers):
            new = _dense_layer(b, features, growth,
                               name=f"block{block_idx + 1}.layer{layer_idx + 1}")
            features.append(new)
        if block_idx < len(blocks) - 1:
            h = _transition(b, features, name=f"transition{block_idx + 1}")
        else:
            h = b.relu(b.concat(*features))
    logits = classifier_head(b, h, num_classes)
    return finish_folded(b, logits)
