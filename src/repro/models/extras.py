"""Extra model variants beyond the paper's 10-model benchmark set.

These exercise code paths the core zoo does not:

- ``resnet_bottleneck`` — ResNet with 1×1–3×3–1×1 bottleneck blocks
  (the ResNet-50 family).  The block's own 1×1 convs structurally
  *are* fconv/lconv pairs, so activation layer fusion applies even
  before decomposition — an interesting interaction case.
- ``vgg11_silu`` — VGG-11 with SiLU activations (paper §3.2 names SiLU
  as a fusable non-decomposed activation).
- ``unet_transpose`` — UNet with learned 2×2 transposed-convolution
  upsampling, exercising ``conv_transpose2d`` end-to-end.

They are *not* part of the Figure-10/11/12 reproductions (the paper's
set is fixed) but are tested and usable through the same API.
"""

from __future__ import annotations

from ..ir.graph import Graph, GraphBuilder
from ..ir.value import Value
from .common import ModelSpec, classifier_head, conv_bn_relu, finish_folded
from .unet import build_unet
from .vgg import VGG_CONFIGS

__all__ = ["EXTRA_MODELS", "build_resnet_bottleneck", "build_vgg_silu",
           "build_extra"]


def _bottleneck_block(b: GraphBuilder, x: Value, width: int, stride: int,
                      expansion: int, name: str) -> Value:
    identity = x
    out_channels = width * expansion
    h = conv_bn_relu(b, x, width, 1, stride=1, padding=0, name=f"{name}.reduce")
    h = conv_bn_relu(b, h, width, 3, stride=stride, padding=1,
                     name=f"{name}.spatial")
    h = conv_bn_relu(b, h, out_channels, 1, stride=1, padding=0, relu=False,
                     name=f"{name}.expand")
    if stride != 1 or x.shape[1] != out_channels:
        identity = conv_bn_relu(b, x, out_channels, 1, stride=stride,
                                padding=0, relu=False,
                                name=f"{name}.downsample")
    return b.relu(b.add(h, identity))


def build_resnet_bottleneck(batch: int = 4, hw: int = 64, num_classes: int = 10,
                            seed: int = 0, *, blocks: tuple[int, ...] = (2, 2, 2),
                            expansion: int = 4) -> Graph:
    """A compact bottleneck-block ResNet (ResNet-50 family, shallow)."""
    if hw % 16 != 0:
        raise ValueError(f"input size must be divisible by 16, got {hw}")
    b = GraphBuilder("resnet_bottleneck", seed=seed)
    x = b.input("image", (batch, 3, hw, hw))
    h = conv_bn_relu(b, x, 32, 7, stride=2, padding=3, name="stem")
    h = b.maxpool2d(h, 3, stride=2, padding=1)
    width = 16
    for stage, count in enumerate(blocks):
        for block in range(count):
            stride = 2 if (stage > 0 and block == 0) else 1
            h = _bottleneck_block(b, h, width, stride, expansion,
                                  name=f"layer{stage + 1}.{block}")
        width *= 2
    logits = classifier_head(b, h, num_classes)
    return finish_folded(b, logits)


def build_vgg_silu(batch: int = 4, hw: int = 64, num_classes: int = 10,
                   seed: int = 0) -> Graph:
    """VGG-11 with SiLU activations instead of ReLU."""
    if hw % 32 != 0:
        raise ValueError(f"input size must be divisible by 32, got {hw}")
    b = GraphBuilder("vgg11_silu", seed=seed)
    h = b.input("image", (batch, 3, hw, hw))
    conv_idx = 0
    for entry in VGG_CONFIGS["vgg11"]:
        if entry == "M":
            h = b.maxpool2d(h, 2)
        else:
            conv_idx += 1
            h = b.silu(b.conv2d(h, int(entry), 3, padding=1,
                                name=f"conv{conv_idx}"))
    logits = classifier_head(b, h, num_classes, hidden=256)
    return b.finish(logits)


def _unet_transpose(batch: int = 4, hw: int = 64, num_classes: int = 1,
                    seed: int = 0) -> Graph:
    return build_unet(batch=batch, hw=hw, num_classes=num_classes, seed=seed,
                      base_channels=16, depth=3, use_transpose=True)


EXTRA_MODELS: dict[str, ModelSpec] = {
    "resnet_bottleneck": ModelSpec("resnet_bottleneck", "ResNet",
                                   "classification", 64, True,
                                   build_resnet_bottleneck),
    "vgg11_silu": ModelSpec("vgg11_silu", "VGG", "classification", 64, False,
                            build_vgg_silu),
    "unet_transpose": ModelSpec("unet_transpose", "UNet", "segmentation", 64,
                                True, _unet_transpose),
}


def build_extra(name: str, batch: int = 4, hw: int | None = None,
                num_classes: int | None = None, seed: int = 0) -> Graph:
    """Build an extra model variant by name."""
    try:
        spec = EXTRA_MODELS[name]
    except KeyError as exc:
        raise KeyError(f"unknown extra model {name!r}; "
                       f"available: {sorted(EXTRA_MODELS)}") from exc
    if num_classes is None:
        num_classes = 1 if spec.task == "segmentation" else 10
    return spec(batch=batch, hw=hw, num_classes=num_classes, seed=seed)
