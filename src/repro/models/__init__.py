"""Benchmark model zoo (paper §4.1's 10 models of 5 architectures)."""

from .alexnet import build_alexnet
from .common import ModelSpec
from .densenet import DENSENET_CONFIGS, build_densenet
from .extras import (EXTRA_MODELS, build_extra, build_resnet_bottleneck,
                     build_vgg_silu)
from .fractalnet import build_fractalnet
from .resnet import RESNET_CONFIGS, build_resnet
from .unet import build_unet
from .vgg import VGG_CONFIGS, build_vgg
from .wavenet import build_wavenet2d
from .zoo import MODEL_ZOO, build_model, model_names

__all__ = [
    "ModelSpec",
    "MODEL_ZOO",
    "build_model",
    "model_names",
    "build_alexnet",
    "build_vgg",
    "VGG_CONFIGS",
    "build_resnet",
    "RESNET_CONFIGS",
    "build_densenet",
    "DENSENET_CONFIGS",
    "build_unet",
    "build_wavenet2d",
    "build_fractalnet",
    "EXTRA_MODELS",
    "build_extra",
    "build_resnet_bottleneck",
    "build_vgg_silu",
]
