"""AlexNet (Krizhevsky et al.), scaled to the benchmark resolution.

The original network targets 224×224 inputs; the zoo default is 64×64,
so the stem stride is reduced accordingly while keeping the
characteristic structure: five convolutions with interleaved ReLU and
max-pooling, then the classifier.  AlexNet has no skip connections —
TeMCO applies only activation layer fusion to it (paper §4.1).
"""

from __future__ import annotations

from ..ir.graph import Graph, GraphBuilder
from .common import classifier_head

__all__ = ["build_alexnet"]


def build_alexnet(batch: int = 4, hw: int = 64, num_classes: int = 10,
                  seed: int = 0) -> Graph:
    """Build AlexNet for ``(batch, 3, hw, hw)`` inputs (hw divisible by 16)."""
    if hw % 16 != 0:
        raise ValueError(f"AlexNet input size must be divisible by 16, got {hw}")
    b = GraphBuilder("alexnet", seed=seed)
    x = b.input("image", (batch, 3, hw, hw))

    h = b.relu(b.conv2d(x, 64, 5, stride=2, padding=2, name="conv1"))
    h = b.maxpool2d(h, 3, stride=2, padding=1)
    h = b.relu(b.conv2d(h, 192, 5, padding=2, name="conv2"))
    h = b.maxpool2d(h, 3, stride=2, padding=1)
    h = b.relu(b.conv2d(h, 384, 3, padding=1, name="conv3"))
    h = b.relu(b.conv2d(h, 256, 3, padding=1, name="conv4"))
    h = b.relu(b.conv2d(h, 256, 3, padding=1, name="conv5"))
    h = b.maxpool2d(h, 3, stride=2, padding=1)

    logits = classifier_head(b, h, num_classes, hidden=512)
    return b.finish(logits)
