"""UNet (Ronneberger et al.) for image segmentation.

The hourglass architecture whose horizontal skip connections dominate
peak memory in the decomposed model (Figure 4a: 76.2% of the peak).
Decoder upsampling uses nearest-neighbour resampling followed by the
double-conv block (the common "up-convolution-free" UNet variant);
``use_transpose=True`` switches to learned 2×2 transposed convolutions
for a variant exercising the ``conv_transpose2d`` kernel.
"""

from __future__ import annotations

from ..ir.graph import Graph, GraphBuilder
from ..ir.value import Value
from .common import conv_relu

__all__ = ["build_unet"]


def _double_conv(b: GraphBuilder, x: Value, channels: int, name: str) -> Value:
    h = conv_relu(b, x, channels, 3, padding=1, name=f"{name}.conv1")
    return conv_relu(b, h, channels, 3, padding=1, name=f"{name}.conv2")


def build_unet(batch: int = 4, hw: int = 96, num_classes: int = 1,
               seed: int = 0, *, base_channels: int = 32, depth: int = 4,
               use_transpose: bool = False) -> Graph:
    """Build a UNet for ``(batch, 3, hw, hw)`` inputs.

    ``hw`` must be divisible by ``2**depth``.  ``num_classes`` output
    channels; a sigmoid head for the binary (Carvana-style) case.
    """
    if hw % (1 << depth) != 0:
        raise ValueError(f"UNet input size must be divisible by {1 << depth}, got {hw}")
    name = "unet" if base_channels >= 32 else "unet_small"
    b = GraphBuilder(name, seed=seed)
    x = b.input("image", (batch, 3, hw, hw))

    # encoder
    skips: list[Value] = []
    h = _double_conv(b, x, base_channels, "enc0")
    for level in range(1, depth + 1):
        skips.append(h)
        h = b.maxpool2d(h, 2)
        h = _double_conv(b, h, base_channels * (2 ** min(level, 3)),
                         f"enc{level}")

    # decoder
    for level in range(depth, 0, -1):
        skip = skips[level - 1]
        if use_transpose:
            h = b.conv_transpose2d(h, h.shape[1] // 2, 2, stride=2,
                                   name=f"up{level}")
        else:
            h = b.upsample_nearest(h, 2, name=f"up{level}")
        h = b.concat(skip, h, name=f"cat{level}")
        h = _double_conv(b, h, skip.shape[1], f"dec{level}")

    logits = b.conv2d(h, num_classes, 1, name="head")
    mask = b.sigmoid(logits)
    return b.finish(mask)
