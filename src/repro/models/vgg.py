"""VGG-11/13/16/19 (Simonyan & Zisserman).

Classic configuration strings; plain conv+ReLU stacks with five
max-pool stages.  VGG is the paper's showcase for activation layer
fusion (Figure 4b): without TeMCO, every decomposed sequence restores
its output to full width just to feed the non-decomposed ReLU/pool.
"""

from __future__ import annotations

from ..ir.graph import Graph, GraphBuilder
from .common import classifier_head

__all__ = ["build_vgg", "VGG_CONFIGS"]

#: layer configs: ints are conv output channels, "M" is a 2×2 max-pool
VGG_CONFIGS: dict[str, list] = {
    "vgg11": [64, "M", 128, "M", 256, 256, "M", 512, 512, "M", 512, 512, "M"],
    "vgg13": [64, 64, "M", 128, 128, "M", 256, 256, "M", 512, 512, "M",
              512, 512, "M"],
    "vgg16": [64, 64, "M", 128, 128, "M", 256, 256, 256, "M", 512, 512, 512,
              "M", 512, 512, 512, "M"],
    "vgg19": [64, 64, "M", 128, 128, "M", 256, 256, 256, 256, "M", 512, 512,
              512, 512, "M", 512, 512, 512, 512, "M"],
}


def build_vgg(variant: str = "vgg16", batch: int = 4, hw: int = 64,
              num_classes: int = 10, seed: int = 0) -> Graph:
    """Build a VGG variant for ``(batch, 3, hw, hw)`` inputs (hw % 32 == 0)."""
    if variant not in VGG_CONFIGS:
        raise ValueError(f"unknown VGG variant {variant!r}; "
                         f"known: {sorted(VGG_CONFIGS)}")
    if hw % 32 != 0:
        raise ValueError(f"VGG input size must be divisible by 32, got {hw}")
    b = GraphBuilder(variant, seed=seed)
    h = b.input("image", (batch, 3, hw, hw))
    conv_idx = 0
    for entry in VGG_CONFIGS[variant]:
        if entry == "M":
            h = b.maxpool2d(h, 2)
        else:
            conv_idx += 1
            h = b.relu(b.conv2d(h, int(entry), 3, padding=1,
                                name=f"conv{conv_idx}"))
    logits = classifier_head(b, h, num_classes, hidden=512)
    return b.finish(logits)
