"""Service-level objectives: rolling-window burn-rate monitoring.

An :class:`SLObjective` declares what "good" means for a serving
session — *availability* ("99% of requests complete") or *latency*
("95% of requests complete within 50 ms") — over a rolling time
window.  The :class:`SLOMonitor` consumes one event per request
outcome (the :class:`~repro.serve.InferenceServer` feeds it
completions, sheds, rejections and failures) and answers the question
"are we meeting the objective *right now*?" the way the SRE workbook
does, as an **error-budget burn rate**:

    burn_rate = observed_error_ratio / (1 - target)

A burn rate of 1.0 spends the error budget exactly as fast as the
objective allows; above 1.0 the budget is burning too fast (the
alerting threshold), 0.0 means no errors in the window.  Because the
denominator is the budget, the number is comparable across objectives
with different targets — the property multi-window burn-rate alerts
rely on.

:meth:`SLOMonitor.export_gauges` publishes ``slo.<name>.burn_rate`` /
``good_ratio`` / ``events`` gauges into a
:class:`~repro.obs.MetricsRegistry`, so the serving frontend's
``GET /metrics`` exposes them to Prometheus with zero extra wiring,
and the loadgen report can gate CI on them (``repro loadgen
--slo-p95-ms ... --slo-availability ...`` exits non-zero on
violation).

Histograms complement this: :meth:`Histogram.fraction_below
<repro.obs.metrics.Histogram.fraction_below>` turns an existing
cumulative latency histogram into a compliance ratio for offline
evaluation (:func:`evaluate_histogram`), while the monitor proper
works on the rolling event window.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from .metrics import Histogram, MetricsRegistry

__all__ = ["SLObjective", "SLOStatus", "SLOMonitor", "parse_slo",
           "evaluate_histogram"]


@dataclass(frozen=True)
class SLObjective:
    """One declarative objective.

    ``latency_threshold_ms`` of ``None`` declares an availability
    objective (an event is good iff the request completed); a number
    declares a latency objective (good iff it completed *within* the
    threshold).  ``target`` is the required good fraction over
    ``window_s`` seconds.
    """

    name: str
    target: float
    latency_threshold_ms: float | None = None
    window_s: float = 60.0

    def __post_init__(self) -> None:
        if not 0.0 < self.target < 1.0:
            raise ValueError(f"target must be in (0, 1), got {self.target}")
        if self.latency_threshold_ms is not None and self.latency_threshold_ms <= 0:
            raise ValueError(f"latency threshold must be > 0, got "
                             f"{self.latency_threshold_ms}")
        if self.window_s <= 0:
            raise ValueError(f"window_s must be > 0, got {self.window_s}")

    @property
    def error_budget(self) -> float:
        return 1.0 - self.target

    def is_good(self, ok: bool, latency_s: float | None) -> bool:
        if not ok:
            return False
        if self.latency_threshold_ms is None:
            return True
        return (latency_s is not None
                and latency_s * 1e3 <= self.latency_threshold_ms)

    def describe(self) -> str:
        what = ("completion" if self.latency_threshold_ms is None
                else f"latency <= {self.latency_threshold_ms:g} ms")
        return (f"{self.name}: {self.target:.2%} {what} "
                f"over {self.window_s:g} s")


@dataclass(frozen=True)
class SLOStatus:
    """One objective evaluated at one instant."""

    objective: SLObjective
    events: int
    good: int

    @property
    def bad(self) -> int:
        return self.events - self.good

    @property
    def good_ratio(self) -> float:
        """1.0 on an empty window — no events, no violations."""
        return self.good / self.events if self.events else 1.0

    @property
    def burn_rate(self) -> float:
        """Error-budget burn rate: 1.0 = spending exactly on budget."""
        return (1.0 - self.good_ratio) / self.objective.error_budget

    @property
    def budget_remaining(self) -> float:
        """Fraction of the window's error budget left (clamped at 0)."""
        return max(0.0, 1.0 - self.burn_rate)

    @property
    def healthy(self) -> bool:
        return self.burn_rate <= 1.0

    def to_dict(self) -> dict:
        return {"name": self.objective.name,
                "target": self.objective.target,
                "latency_threshold_ms": self.objective.latency_threshold_ms,
                "window_s": self.objective.window_s,
                "events": self.events, "good": self.good, "bad": self.bad,
                "good_ratio": self.good_ratio,
                "burn_rate": self.burn_rate,
                "budget_remaining": self.budget_remaining,
                "healthy": self.healthy}

    def summary(self) -> str:
        verdict = "ok" if self.healthy else "VIOLATED"
        return (f"[{verdict}] {self.objective.describe()} — "
                f"{self.good}/{self.events} good "
                f"({self.good_ratio:.2%}), burn rate "
                f"{self.burn_rate:.2f}x")


class SLOMonitor:
    """Rolling-window burn-rate evaluation over request outcomes.

    Thread-safe: the serving workers record outcomes concurrently and
    the metrics endpoint evaluates concurrently with them.  The event
    buffer is bounded by ``max_events`` *and* by the widest objective
    window, so a long-running server never grows without bound.
    """

    def __init__(self, objectives: Sequence[SLObjective] | SLObjective,
                 clock: Callable[[], float] = time.monotonic,
                 max_events: int = 65536) -> None:
        if isinstance(objectives, SLObjective):
            objectives = [objectives]
        self.objectives: list[SLObjective] = list(objectives)
        if not self.objectives:
            raise ValueError("SLOMonitor needs at least one objective")
        names = [o.name for o in self.objectives]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate objective names: {names}")
        self._clock = clock
        self._events: deque[tuple[float, bool, float | None]] = deque(
            maxlen=max_events)
        self._lock = threading.Lock()
        self._max_window = max(o.window_s for o in self.objectives)

    def record(self, latency_s: float | None = None, *,
               ok: bool = True) -> None:
        """One request outcome: completed (with its latency) or not."""
        now = self._clock()
        with self._lock:
            self._events.append((now, ok, latency_s))
            # opportunistic eviction of events no window can still see
            horizon = now - self._max_window
            while self._events and self._events[0][0] < horizon:
                self._events.popleft()

    def evaluate(self, now: float | None = None) -> list[SLOStatus]:
        """Every objective's status over its own rolling window."""
        if now is None:
            now = self._clock()
        with self._lock:
            events = list(self._events)
        statuses = []
        for objective in self.objectives:
            horizon = now - objective.window_s
            total = good = 0
            for ts, ok, latency_s in events:
                if ts < horizon:
                    continue
                total += 1
                if objective.is_good(ok, latency_s):
                    good += 1
            statuses.append(SLOStatus(objective=objective, events=total,
                                      good=good))
        return statuses

    def violated(self, now: float | None = None) -> list[SLOStatus]:
        return [s for s in self.evaluate(now) if not s.healthy]

    def export_gauges(self, registry: MetricsRegistry, *,
                      prefix: str = "slo") -> list[SLOStatus]:
        """Publish every objective's instantaneous state as gauges.

        Gauge names are ``{prefix}.{name}.{stat}`` for ``burn_rate``,
        ``good_ratio``, ``budget_remaining``, ``events``, ``healthy``
        (1/0) and the static ``target`` — the set the Prometheus
        exposition renders and Grafana burn-rate panels plot.
        """
        statuses = self.evaluate()
        for status in statuses:
            base = f"{prefix}.{status.objective.name}"
            registry.gauge(f"{base}.burn_rate", status.burn_rate)
            registry.gauge(f"{base}.good_ratio", status.good_ratio)
            registry.gauge(f"{base}.budget_remaining",
                           status.budget_remaining)
            registry.gauge(f"{base}.events", float(status.events))
            registry.gauge(f"{base}.healthy", 1.0 if status.healthy else 0.0)
            registry.gauge(f"{base}.target", status.objective.target)
        return statuses


def evaluate_histogram(objective: SLObjective, histogram: Histogram,
                       *, failures: int = 0) -> SLOStatus:
    """Offline evaluation of a latency objective against an existing
    cumulative latency histogram (values in **milliseconds**, as
    ``serve.latency_ms`` records them).

    ``failures`` adds requests that never reached the histogram (shed /
    rejected / errored) to the denominator as bad events.  Useful for
    one-shot reports where no rolling monitor ran; the compliance
    fraction comes from the histogram's reservoir via
    :meth:`~repro.obs.metrics.Histogram.fraction_below`.
    """
    completed = histogram.count
    total = completed + failures
    if objective.latency_threshold_ms is None:
        good = completed
    else:
        good = round(completed
                     * histogram.fraction_below(objective.latency_threshold_ms))
    return SLOStatus(objective=objective, events=total, good=min(good, total))


def parse_slo(spec: str) -> SLObjective:
    """Parse the CLI form of an objective.

    - ``availability:TARGET[:WINDOW_S]`` — e.g. ``availability:0.99``
    - ``latency:THRESHOLD_MS:TARGET[:WINDOW_S]`` — e.g.
      ``latency:50:0.95:30``

    The generated name encodes the parameters
    (``availability_99`` / ``latency_50ms_95``) so several objectives
    coexist in one registry.
    """
    parts = spec.split(":")
    kind = parts[0]
    try:
        if kind == "availability" and len(parts) in (2, 3):
            target = float(parts[1])
            window = float(parts[2]) if len(parts) == 3 else 60.0
            name = f"availability_{_pct(target)}"
            return SLObjective(name=name, target=target, window_s=window)
        if kind == "latency" and len(parts) in (3, 4):
            threshold = float(parts[1])
            target = float(parts[2])
            window = float(parts[3]) if len(parts) == 4 else 60.0
            name = f"latency_{threshold:g}ms_{_pct(target)}"
            return SLObjective(name=name, target=target,
                               latency_threshold_ms=threshold,
                               window_s=window)
    except ValueError as exc:
        if "must be" in str(exc):  # objective validation, not float()
            raise
        raise ValueError(f"bad SLO spec {spec!r}: {exc}") from exc
    raise ValueError(
        f"bad SLO spec {spec!r}; expected availability:TARGET[:WINDOW] "
        f"or latency:THRESHOLD_MS:TARGET[:WINDOW]")


def _pct(target: float) -> str:
    """0.99 -> '99', 0.995 -> '99_5' (metric-name safe)."""
    text = f"{target * 100:g}".replace(".", "_")
    return text


def parse_slos(specs: Iterable[str]) -> list[SLObjective]:
    """Parse several CLI specs (deduplicating exact repeats)."""
    seen: dict[str, SLObjective] = {}
    for spec in specs:
        objective = parse_slo(spec)
        seen[objective.name] = objective
    return list(seen.values())


__all__.append("parse_slos")
