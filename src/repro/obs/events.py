"""Typed telemetry records collected by the :class:`~repro.obs.Tracer`.

Five record kinds cover the whole taxonomy:

- :class:`SpanRecord` — a timed region (pipeline stage, one node's
  kernel, an inference).  Spans nest; ``depth`` is the nesting level at
  which the span ran.  ``tid`` selects the timeline row the span
  renders on (serve workers and parallel shards each get their own).
- :class:`InstantEvent` — a point-in-time marker (allocator alloc/free,
  arena plan summary).
- :class:`CounterSample` — one sample of a counter track (the
  live-bytes memory timeline).
- :class:`DecisionEvent` — a structured accept/reject record emitted by
  a compiler pass, carrying the subject value/node name, the verdict,
  a machine-readable reason, and the byte/FLOP quantities that drove
  the decision.
- :class:`FlowEvent` — one endpoint of a directed arrow between spans
  on different timeline rows.  The serving layer emits a flow per
  coalesced request from its admission to the micro-batch span that
  served it, so the Chrome trace renders the batch's fan-in visually.
- :class:`AsyncEvent` — one boundary of an *async* slice
  (Chrome ``ph: "b"`` / ``"e"``).  Async slices sharing one ``aid``
  render as their own stacked lane independent of any thread row —
  the natural shape for a request's lifecycle waterfall
  (queue wait → batching delay → execute → reply), which overlaps
  other requests' waterfalls and so cannot live on a thread track.

All timestamps are microseconds since the owning tracer's epoch, which
is the unit Chrome trace-event JSON uses natively.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["SpanRecord", "InstantEvent", "CounterSample", "DecisionEvent",
           "FlowEvent", "AsyncEvent"]


@dataclass(frozen=True)
class SpanRecord:
    """A completed timed region."""

    name: str
    category: str
    start_us: float
    duration_us: float
    depth: int
    tid: int = 0
    args: dict[str, Any] = field(default_factory=dict)

    @property
    def end_us(self) -> float:
        return self.start_us + self.duration_us


@dataclass(frozen=True)
class InstantEvent:
    """A point-in-time marker."""

    name: str
    category: str
    ts_us: float
    args: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class CounterSample:
    """One sample of a named counter track (e.g. ``memory``)."""

    track: str
    ts_us: float
    values: dict[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class DecisionEvent:
    """One accept/reject decision taken by a compiler pass.

    ``pass_name`` identifies the pass (``skip_opt``,
    ``transform.merge_concat``, ``fusion``, ``scheduling``,
    ``pipeline``), ``subject`` the value or node the decision is about,
    ``verdict`` what happened (``accept`` / ``reject`` / ``apply`` /
    ``skip`` / ``keep`` / ``fallback``), ``reason`` a short
    machine-readable cause, and ``quantities`` the numbers that drove
    it (bytes, FLOPs, peaks).
    """

    pass_name: str
    subject: str
    verdict: str
    reason: str
    ts_us: float
    quantities: dict[str, float] = field(default_factory=dict)

    @property
    def rejected(self) -> bool:
        return self.verdict in ("reject", "skip")


@dataclass(frozen=True)
class AsyncEvent:
    """One boundary of an async (non-thread-bound) slice.

    ``phase`` is ``"begin"`` or ``"end"``; boundaries sharing an
    ``aid`` form one lane, and begin/end pairs nest within it like a
    stack.  The serving layer keys ``aid`` by request id so every
    request renders as its own waterfall lane.
    """

    name: str
    aid: int
    phase: str  #: ``begin`` or ``end``
    ts_us: float
    category: str = ""
    args: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class FlowEvent:
    """One endpoint of a cross-row arrow (Chrome flow event).

    ``phase`` is ``"start"`` at the source span or ``"finish"`` at the
    destination; endpoints sharing one ``flow_id`` are connected.  The
    event must lie *inside* a span on its ``tid`` row for Chrome to
    bind the arrow to that span.
    """

    name: str
    flow_id: int
    phase: str  #: ``start`` or ``finish``
    ts_us: float
    tid: int = 0
    args: dict[str, Any] = field(default_factory=dict)
