"""Memory-conformance auditor: every claim about memory, checked.

TeMCO's value proposition is a *memory* claim, so this module holds the
runtime to the bar the deployment-arena literature (Pisarchyk & Lee
2020; Occamy, DAC'23) uses for memory planners: the statically
*predicted* peak and the dynamically *measured* peak must agree, and
the measurement itself must be verifiable.

:func:`audit_graph` runs one inference with the allocation ledger on
and cross-checks four independent accounts of the same bytes:

1. **ledger self-consistency** — the event log replays from zero to
   exactly the claimed totals (a corrupted or fabricated ledger fails),
2. **measured vs predicted** — the allocator's peak equals the static
   liveness estimate (:func:`repro.core.liveness.estimate_peak_internal`,
   the general-graph form of the paper's Eq. 3/4) within ``tolerance``,
3. **measured vs arena** — the measured max-live never exceeds the
   planned arena's total bytes, nor the plan's aligned lower bound,
4. **profile vs allocator** — the per-node event timeline peaks at the
   allocator's peak (the two measurement paths agree).

Every violation is a typed :class:`AuditFinding`; a graph *passes*
when no error-severity finding was raised.  :func:`audit_model` audits
a zoo model's original **and** TeMCO-optimized graphs and additionally
checks the optimization actually lowered the measured peak.  The CLI
surface is ``repro memcheck`` (see ``docs/memory_auditing.md``).

When a tracer is active, the audit also exports the planned **arena
occupancy** as a Chrome-trace counter track (``arena``), timestamped
against the executor's node spans so the measured ``memory`` track and
the planned occupancy render side by side in Perfetto.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.liveness import estimate_peak_internal
from ..ir.graph import Graph
from ..runtime.arena import ArenaPlan, plan_arena
from ..runtime.executor import execute
from ..runtime.memory_profile import MemoryProfile
from .tracer import get_tracer

__all__ = ["AuditFinding", "GraphAudit", "ModelAudit", "BudgetAudit",
           "audit_graph", "audit_model", "audit_zoo", "audit_budgeted",
           "ledger_findings", "DEFAULT_TOLERANCE"]

#: default relative tolerance for measured-vs-predicted peak agreement.
#: The refcounting executor implements exactly the liveness model, so
#: the documented contract is bit-exact agreement; the knob exists for
#: future backends whose allocation order may be timing-dependent.
DEFAULT_TOLERANCE = 0.0

MIB = 1024 * 1024


@dataclass(frozen=True)
class AuditFinding:
    """One typed mismatch diagnostic.

    ``kind`` is machine-readable: ``ledger_inconsistent``,
    ``peak_mismatch``, ``arena_overflow``, ``arena_lower_bound``,
    ``profile_mismatch``, ``no_reduction``, and — from the budgeted
    audit (:func:`audit_budgeted`) — ``infeasible_budget``,
    ``budget_exceeded``, ``plan_mismatch``, ``output_divergence``.
    ``severity`` is ``error`` (fails the audit) or ``warning``
    (reported only).
    """

    kind: str
    severity: str
    subject: str
    message: str
    measured: float | None = None
    expected: float | None = None


@dataclass
class GraphAudit:
    """Conformance verdict for one graph (one variant of one model)."""

    model: str
    variant: str
    graph_name: str
    measured_peak_bytes: int
    predicted_peak_bytes: int
    arena_bytes: int
    arena_lower_bound_bytes: int
    ledger_events: int
    num_allocations: int
    findings: list[AuditFinding] = field(default_factory=list)

    @property
    def errors(self) -> list[AuditFinding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def passed(self) -> bool:
        return not self.errors

    @property
    def deviation_pct(self) -> float:
        """Relative measured-vs-predicted disagreement, in percent."""
        if not self.predicted_peak_bytes:
            return 0.0 if not self.measured_peak_bytes else float("inf")
        return abs(self.measured_peak_bytes - self.predicted_peak_bytes) \
            / self.predicted_peak_bytes * 100.0

    def to_dict(self) -> dict:
        return {
            "model": self.model, "variant": self.variant,
            "graph": self.graph_name,
            "measured_peak_bytes": self.measured_peak_bytes,
            "predicted_peak_bytes": self.predicted_peak_bytes,
            "arena_bytes": self.arena_bytes,
            "arena_lower_bound_bytes": self.arena_lower_bound_bytes,
            "ledger_events": self.ledger_events,
            "num_allocations": self.num_allocations,
            "passed": self.passed,
            "findings": [vars(f) for f in self.findings],
        }


@dataclass
class ModelAudit:
    """Original + optimized audits of one zoo model, plus cross-checks."""

    model: str
    original: GraphAudit
    optimized: GraphAudit
    findings: list[AuditFinding] = field(default_factory=list)

    @property
    def reduction_pct(self) -> float:
        base = self.original.measured_peak_bytes
        if not base:
            return 0.0
        return (1.0 - self.optimized.measured_peak_bytes / base) * 100.0

    @property
    def passed(self) -> bool:
        return (self.original.passed and self.optimized.passed
                and not any(f.severity == "error" for f in self.findings))

    def all_findings(self) -> list[AuditFinding]:
        return (self.original.findings + self.optimized.findings
                + self.findings)

    def to_dict(self) -> dict:
        return {"model": self.model, "passed": self.passed,
                "reduction_pct": self.reduction_pct,
                "original": self.original.to_dict(),
                "optimized": self.optimized.to_dict(),
                "findings": [vars(f) for f in self.findings]}


def ledger_findings(ledger, *, expected_peak: int | None = None,
                    keep: set[str] = frozenset(),
                    subject: str = "") -> list[AuditFinding]:
    """Wrap :meth:`AllocationLedger.verify` problems as typed findings."""
    return [AuditFinding(kind="ledger_inconsistent", severity="error",
                         subject=subject, message=problem)
            for problem in ledger.verify(expected_peak=expected_peak,
                                         keep=keep)]


def audit_graph(graph: Graph, inputs: dict[str, np.ndarray] | None = None, *,
                tolerance: float = DEFAULT_TOLERANCE, model: str = "",
                variant: str = "", seed: int = 0) -> GraphAudit:
    """Execute ``graph`` with the ledger on and cross-check every
    account of its memory (see the module docstring for the four
    checks).  ``tolerance`` is the allowed relative deviation between
    measured and predicted peak (0.0 = bit-exact, the default)."""
    if inputs is None:
        rng = np.random.default_rng(seed)
        inputs = {v.name: rng.normal(size=v.shape).astype(v.dtype.np)
                  for v in graph.inputs}
    tracer = get_tracer()
    span_base = len(tracer.spans) if tracer.enabled else 0

    with tracer.span("audit", category="obs", graph=graph.name):
        result = execute(graph, inputs, record_ledger=True)
        plan = plan_arena(graph)
    profile = result.memory
    ledger = profile.ledger
    assert ledger is not None
    subject = graph.name or model

    findings: list[AuditFinding] = []

    # 1. ledger self-consistency (replay must reproduce every claimed
    #    total and the allocator's peak)
    findings += ledger_findings(
        ledger, expected_peak=profile.peak_internal_bytes,
        keep={v.name for v in graph.outputs}, subject=subject)

    # 2. measured vs statically predicted peak
    measured = profile.peak_internal_bytes
    predicted = estimate_peak_internal(graph)
    deviation = (abs(measured - predicted) / predicted) if predicted else (
        1.0 if measured else 0.0)
    if deviation > tolerance:
        findings.append(AuditFinding(
            kind="peak_mismatch", severity="error", subject=subject,
            message=(f"measured peak {measured} B deviates "
                     f"{deviation:.2%} from the liveness prediction "
                     f"{predicted} B (tolerance {tolerance:.2%})"),
            measured=measured, expected=predicted))

    # 3. measured max-live must fit the planned arena
    max_live = ledger.max_live_bytes
    if max_live > plan.arena_bytes:
        findings.append(AuditFinding(
            kind="arena_overflow", severity="error", subject=subject,
            message=(f"measured max-live {max_live} B exceeds the "
                     f"planned arena of {plan.arena_bytes} B"),
            measured=max_live, expected=plan.arena_bytes))
    if measured > plan.peak_lower_bound:
        findings.append(AuditFinding(
            kind="arena_lower_bound", severity="error", subject=subject,
            message=(f"measured peak {measured} B exceeds the arena "
                     f"plan's aligned lower bound "
                     f"{plan.peak_lower_bound} B — the plan and the "
                     f"measurement disagree about liveness"),
            measured=measured, expected=plan.peak_lower_bound))

    # 4. the two measurement paths (event timeline vs allocator peak)
    timeline_peak = max((e.live_bytes for e in profile.events), default=0)
    if timeline_peak != measured:
        findings.append(AuditFinding(
            kind="profile_mismatch", severity="error", subject=subject,
            message=(f"per-node event timeline peaks at {timeline_peak} B "
                     f"but the allocator recorded {measured} B"),
            measured=timeline_peak, expected=measured))

    if tracer.enabled:
        _emit_arena_track(tracer, plan, span_base)
        tracer.instant(
            "audit_verdict", category="obs", graph=subject,
            passed=not any(f.severity == "error" for f in findings),
            measured_peak_bytes=measured, predicted_peak_bytes=predicted,
            arena_bytes=plan.arena_bytes, findings=len(findings))

    return GraphAudit(
        model=model, variant=variant, graph_name=graph.name,
        measured_peak_bytes=measured, predicted_peak_bytes=predicted,
        arena_bytes=plan.arena_bytes,
        arena_lower_bound_bytes=plan.peak_lower_bound,
        ledger_events=len(ledger.events),
        num_allocations=profile.num_allocations,
        findings=findings)


def _emit_arena_track(tracer, plan: ArenaPlan, span_base: int) -> None:
    """Export the planned arena occupancy as the ``arena`` counter
    track, timestamped against the executor node spans recorded since
    ``span_base`` so planned and measured curves align on the trace
    timeline."""
    end_by_index: dict[int, float] = {}
    first_start = None
    for span in tracer.spans[span_base:]:
        index = span.args.get("index")
        if index is None:
            continue
        end_by_index[int(index)] = span.end_us
        if first_start is None or span.start_us < first_start:
            first_start = span.start_us
    if not end_by_index:
        return
    for index, occupied in plan.occupancy_series():
        ts = end_by_index.get(index)
        if ts is None:  # index -1: graph inputs, before the first node
            ts = (first_start or 0.0) if index < 0 else None
        if ts is None:
            continue
        tracer.counter("arena", ts_us=ts, occupied_bytes=occupied,
                       arena_bytes=plan.arena_bytes)


@dataclass
class BudgetAudit:
    """Conformance verdict for one budget-enforced run of one graph.

    The budgeted run must honour four claims at once: the plan is
    feasible, the *measured* ledger peak stays at or under the budget,
    the measured peak lands exactly on the planner's simulated peak
    (the byte-exact contract of :func:`repro.plan.simulate_plan`), and
    the outputs are bitwise identical to an unplanned run.
    """

    model: str
    graph_name: str
    budget_bytes: int
    baseline_peak_bytes: int
    planned_peak_bytes: int
    measured_peak_bytes: int
    spills: int
    remats: int
    spilled_bytes: int
    findings: list[AuditFinding] = field(default_factory=list)

    @property
    def errors(self) -> list[AuditFinding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def passed(self) -> bool:
        return not self.errors

    def to_dict(self) -> dict:
        return {
            "model": self.model, "graph": self.graph_name,
            "budget_bytes": self.budget_bytes,
            "baseline_peak_bytes": self.baseline_peak_bytes,
            "planned_peak_bytes": self.planned_peak_bytes,
            "measured_peak_bytes": self.measured_peak_bytes,
            "spills": self.spills, "remats": self.remats,
            "spilled_bytes": self.spilled_bytes,
            "passed": self.passed,
            "findings": [vars(f) for f in self.findings],
        }


def audit_budgeted(graph: Graph, budget_bytes: int,
                   inputs: dict[str, np.ndarray] | None = None, *,
                   model: str = "", seed: int = 0) -> BudgetAudit:
    """Plan ``graph`` to ``budget_bytes`` and verify the enforced run.

    Runs the graph twice — unplanned (the reference) and with the
    memory plan enforced and the ledger on — and cross-checks:

    1. **feasibility** — an infeasible budget is the typed
       ``infeasible_budget`` finding (with the planner's residual),
       not an exception,
    2. **budget** — the measured ledger peak is ≤ ``budget_bytes``
       (``budget_exceeded``),
    3. **plan conformance** — the measured peak equals the plan's
       simulated peak bit-for-bit (``plan_mismatch``),
    4. **semantics** — every output is bitwise identical to the
       unplanned run (``output_divergence``),
    5. **ledger self-consistency** — the spill/remat-tagged event log
       replays cleanly (``ledger_inconsistent``).
    """
    from ..plan import InfeasibleBudget, plan_memory

    if inputs is None:
        rng = np.random.default_rng(seed)
        inputs = {v.name: rng.normal(size=v.shape).astype(v.dtype.np)
                  for v in graph.inputs}
    subject = graph.name or model
    tracer = get_tracer()

    with tracer.span("budget_audit", category="obs", graph=graph.name,
                     budget_bytes=budget_bytes):
        reference = execute(graph, inputs)
        baseline_peak = reference.memory.peak_internal_bytes
        try:
            mplan = plan_memory(graph, budget_bytes)
        except InfeasibleBudget as exc:
            finding = AuditFinding(
                kind="infeasible_budget", severity="error", subject=subject,
                message=str(exc), measured=exc.predicted_peak_bytes,
                expected=budget_bytes)
            return BudgetAudit(
                model=model, graph_name=graph.name,
                budget_bytes=budget_bytes,
                baseline_peak_bytes=baseline_peak,
                planned_peak_bytes=exc.predicted_peak_bytes,
                measured_peak_bytes=0, spills=0, remats=0, spilled_bytes=0,
                findings=[finding])
        result = execute(graph, inputs, plan=mplan, record_ledger=True)

    profile = result.memory
    measured = profile.peak_internal_bytes
    findings: list[AuditFinding] = []

    if measured > budget_bytes:
        findings.append(AuditFinding(
            kind="budget_exceeded", severity="error", subject=subject,
            message=(f"measured peak {measured} B exceeds the enforced "
                     f"budget of {budget_bytes} B"),
            measured=measured, expected=budget_bytes))
    if measured != mplan.planned_peak_bytes:
        findings.append(AuditFinding(
            kind="plan_mismatch", severity="error", subject=subject,
            message=(f"measured peak {measured} B disagrees with the "
                     f"plan's simulated peak {mplan.planned_peak_bytes} B — "
                     f"the enforcer and the simulation diverged"),
            measured=measured, expected=mplan.planned_peak_bytes))
    for name, array in reference.outputs.items():
        if not np.array_equal(array, result.outputs[name]):
            findings.append(AuditFinding(
                kind="output_divergence", severity="error", subject=subject,
                message=(f"output {name!r} of the budgeted run is not "
                         f"bitwise identical to the unplanned run")))
    findings += ledger_findings(
        profile.ledger, expected_peak=measured,
        keep={v.name for v in graph.outputs}, subject=subject)

    if tracer.enabled:
        tracer.instant(
            "budget_audit_verdict", category="obs", graph=subject,
            passed=not any(f.severity == "error" for f in findings),
            budget_bytes=budget_bytes, measured_peak_bytes=measured,
            planned_peak_bytes=mplan.planned_peak_bytes,
            spills=len(mplan.spills), remats=len(mplan.remats))

    stats = profile.plan_stats
    return BudgetAudit(
        model=model, graph_name=graph.name, budget_bytes=budget_bytes,
        baseline_peak_bytes=baseline_peak,
        planned_peak_bytes=mplan.planned_peak_bytes,
        measured_peak_bytes=measured,
        spills=stats.spills if stats else 0,
        remats=stats.remats if stats else 0,
        spilled_bytes=stats.spilled_bytes if stats else 0,
        findings=findings)


def audit_model(model: str, *, batch: int = 2, hw: int | None = 32,
                ratio: float = 0.1, method: str = "tucker", seed: int = 0,
                tolerance: float = DEFAULT_TOLERANCE) -> ModelAudit:
    """Audit one zoo model: original graph, best TeMCO variant, and the
    cross-variant claim that optimization lowered the measured peak."""
    from ..bench.harness import build_variants, variant_names_for

    vs = build_variants(model, batch=batch, hw=hw, ratio=ratio, seed=seed,
                        method=method)
    best = variant_names_for(model)[-1]
    inputs = vs.input_batch(seed)
    original = audit_graph(vs.graphs["original"], inputs,
                           tolerance=tolerance, model=model,
                           variant="original", seed=seed)
    optimized = audit_graph(vs.graphs[best], inputs, tolerance=tolerance,
                            model=model, variant=best, seed=seed)

    findings: list[AuditFinding] = []
    if optimized.measured_peak_bytes > original.measured_peak_bytes:
        findings.append(AuditFinding(
            kind="no_reduction", severity="error", subject=model,
            message=(f"optimized variant {best!r} measured "
                     f"{optimized.measured_peak_bytes} B, *above* the "
                     f"original's {original.measured_peak_bytes} B"),
            measured=optimized.measured_peak_bytes,
            expected=original.measured_peak_bytes))
    elif optimized.measured_peak_bytes == original.measured_peak_bytes:
        findings.append(AuditFinding(
            kind="no_reduction", severity="warning", subject=model,
            message=(f"optimized variant {best!r} did not lower the "
                     f"measured peak "
                     f"({original.measured_peak_bytes} B unchanged)"),
            measured=optimized.measured_peak_bytes,
            expected=original.measured_peak_bytes))
    return ModelAudit(model=model, original=original, optimized=optimized,
                      findings=findings)


def audit_zoo(models: list[str] | None = None, *, batch: int = 2,
              hw: int | None = 32, ratio: float = 0.1,
              method: str = "tucker", seed: int = 0,
              tolerance: float = DEFAULT_TOLERANCE) -> list[ModelAudit]:
    """Audit several zoo models (all of them by default)."""
    from ..models import MODEL_ZOO

    audits = []
    for model in models or list(MODEL_ZOO):
        audits.append(audit_model(model, batch=batch, hw=hw, ratio=ratio,
                                  method=method, seed=seed,
                                  tolerance=tolerance))
    return audits
