"""Trace exporters: Chrome trace-event JSON and a JSONL event stream.

``write_chrome_trace`` emits the `Trace Event Format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
consumed by Perfetto (https://ui.perfetto.dev) and ``chrome://tracing``:

- spans become complete events (``ph: "X"``) with microsecond ``ts`` /
  ``dur``, rendered on the row their ``tid`` selects,
- decision and instant events become instant events (``ph: "i"``) whose
  ``args`` carry the verdict/reason/quantities,
- counter samples become counter events (``ph: "C"``) — the ``memory``
  track renders the live/scratch-bytes timeline alongside the node
  spans, and the ``arena`` track (emitted by the conformance auditor,
  :mod:`repro.obs.audit`) renders the planned arena occupancy next to
  it for a measured-vs-planned visual diff,
- flow events become ``ph: "s"`` / ``ph: "f"`` pairs — the arrows that
  render the micro-batcher's fan-in (one per coalesced request),
- async slices become ``ph: "b"`` / ``ph: "e"`` pairs keyed by ``id``
  — each served request renders as its own waterfall lane
  (queue wait → batching delay → execute → reply),
- process/thread names are set with metadata events (``ph: "M"``):
  the main row, plus one labeled row per tid the tracer named with
  :meth:`~repro.obs.Tracer.name_thread` or that any span landed on
  (serve workers, parallel shards) — so the trace shows
  ``worker-0`` / ``shard-1`` lanes instead of raw tids.

``write_jsonl`` dumps the same records as one self-describing JSON
object per line (``{"type": "span", ...}``), the grep-friendly form.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator

from .tracer import Tracer

__all__ = ["chrome_trace_events", "to_chrome_trace", "write_chrome_trace",
           "jsonl_records", "write_jsonl", "write_trace"]

#: pid used for every emitted event (single-process tracer)
TRACE_PID = 1
#: tid of the span/decision timeline vs the counter tracks
MAIN_TID = 0


def chrome_trace_events(tracer: Tracer, *,
                        process_name: str = "repro") -> list[dict]:
    """The tracer's records as a flat Chrome ``traceEvents`` list."""
    thread_names = dict(getattr(tracer, "thread_names", {}))
    thread_names.setdefault(MAIN_TID, "timeline")
    # every row a span landed on gets at least a generic label, so no
    # lane in the rendered trace is a bare numeric tid
    for span in tracer.spans:
        thread_names.setdefault(span.tid, f"tid-{span.tid}")
    events: list[dict] = [
        {"name": "process_name", "ph": "M", "pid": TRACE_PID, "tid": MAIN_TID,
         "args": {"name": process_name}},
    ]
    for tid in sorted(thread_names):
        events.append({"name": "thread_name", "ph": "M", "pid": TRACE_PID,
                       "tid": tid, "args": {"name": thread_names[tid]}})
        # keep lanes in tid order (admission first, then workers)
        events.append({"name": "thread_sort_index", "ph": "M",
                       "pid": TRACE_PID, "tid": tid,
                       "args": {"sort_index": tid}})
    for span in tracer.spans:
        events.append({
            "name": span.name, "cat": span.category or "span", "ph": "X",
            "ts": span.start_us, "dur": span.duration_us,
            "pid": TRACE_PID, "tid": span.tid,
            "args": dict(span.args, depth=span.depth),
        })
    for inst in tracer.instants:
        events.append({
            "name": inst.name, "cat": inst.category or "instant", "ph": "i",
            "ts": inst.ts_us, "pid": TRACE_PID, "tid": MAIN_TID, "s": "t",
            "args": dict(inst.args),
        })
    for dec in tracer.decisions:
        events.append({
            "name": f"{dec.pass_name}:{dec.subject}", "cat": "decision",
            "ph": "i", "ts": dec.ts_us, "pid": TRACE_PID, "tid": MAIN_TID,
            "s": "t",
            "args": dict(dec.quantities, pass_name=dec.pass_name,
                         subject=dec.subject, verdict=dec.verdict,
                         reason=dec.reason),
        })
    for sample in tracer.counters:
        events.append({
            "name": sample.track, "cat": "counter", "ph": "C",
            "ts": sample.ts_us, "pid": TRACE_PID, "tid": MAIN_TID,
            "args": dict(sample.values),
        })
    for fl in getattr(tracer, "flows", ()):
        event = {
            "name": fl.name, "cat": "flow",
            "ph": "s" if fl.phase == "start" else "f",
            "id": fl.flow_id, "ts": fl.ts_us,
            "pid": TRACE_PID, "tid": fl.tid, "args": dict(fl.args),
        }
        if fl.phase == "finish":
            event["bp"] = "e"  # bind to the enclosing span, not the next
        events.append(event)
    for ae in getattr(tracer, "async_events", ()):
        events.append({
            "name": ae.name, "cat": ae.category or "async",
            "ph": "b" if ae.phase == "begin" else "e",
            "id": ae.aid, "ts": ae.ts_us,
            "pid": TRACE_PID, "tid": MAIN_TID, "args": dict(ae.args),
        })
    return events


def to_chrome_trace(tracer: Tracer, *, process_name: str = "repro") -> dict:
    """The full Chrome trace JSON object."""
    return {
        "traceEvents": chrome_trace_events(tracer, process_name=process_name),
        "displayTimeUnit": "ms",
        "otherData": {
            "producer": "repro.obs",
            "metrics": tracer.metrics.snapshot(),
        },
    }


def write_chrome_trace(tracer: Tracer, path: str | Path, *,
                       process_name: str = "repro") -> Path:
    """Write the tracer's records as Chrome trace JSON at ``path``."""
    path = Path(path)
    path.write_text(json.dumps(to_chrome_trace(
        tracer, process_name=process_name), indent=1))
    return path


def jsonl_records(tracer: Tracer) -> Iterator[dict]:
    """Every record as a self-describing dict, in chronological order."""
    records: list[tuple[float, dict]] = []
    for span in tracer.spans:
        records.append((span.start_us, {
            "type": "span", "name": span.name, "category": span.category,
            "start_us": span.start_us, "duration_us": span.duration_us,
            "depth": span.depth, "tid": span.tid, "args": dict(span.args)}))
    for inst in tracer.instants:
        records.append((inst.ts_us, {
            "type": "instant", "name": inst.name, "category": inst.category,
            "ts_us": inst.ts_us, "args": dict(inst.args)}))
    for dec in tracer.decisions:
        records.append((dec.ts_us, {
            "type": "decision", "pass": dec.pass_name, "subject": dec.subject,
            "verdict": dec.verdict, "reason": dec.reason, "ts_us": dec.ts_us,
            "quantities": dict(dec.quantities)}))
    for sample in tracer.counters:
        records.append((sample.ts_us, {
            "type": "counter", "track": sample.track, "ts_us": sample.ts_us,
            "values": dict(sample.values)}))
    for fl in getattr(tracer, "flows", ()):
        records.append((fl.ts_us, {
            "type": "flow", "name": fl.name, "flow_id": fl.flow_id,
            "phase": fl.phase, "ts_us": fl.ts_us, "tid": fl.tid,
            "args": dict(fl.args)}))
    for ae in getattr(tracer, "async_events", ()):
        records.append((ae.ts_us, {
            "type": "async", "name": ae.name, "aid": ae.aid,
            "phase": ae.phase, "ts_us": ae.ts_us,
            "category": ae.category, "args": dict(ae.args)}))
    for _, record in sorted(records, key=lambda r: r[0]):
        yield record


def write_jsonl(tracer: Tracer, path: str | Path) -> Path:
    path = Path(path)
    with path.open("w") as fh:
        for record in jsonl_records(tracer):
            fh.write(json.dumps(record) + "\n")
    return path


def write_trace(tracer: Tracer, path: str | Path) -> Path:
    """Write ``path`` in the format its suffix implies: ``.jsonl`` gets
    the JSONL stream, anything else Chrome trace JSON."""
    path = Path(path)
    if path.suffix == ".jsonl":
        return write_jsonl(tracer, path)
    return write_chrome_trace(tracer, path)
