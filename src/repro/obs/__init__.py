"""Observability: tracing, decision logging, metrics, trace export.

The subsystem has three moving parts:

- :class:`Tracer` / :class:`NoopTracer` (:mod:`repro.obs.tracer`) —
  nested spans, instant events, counter tracks, and the structured
  *decision event log* every compiler pass writes its accept/reject
  verdicts to.  The no-op tracer is the ambient default, so tracing is
  zero-cost unless explicitly installed with :func:`use_tracer`.
- exporters (:mod:`repro.obs.export`) — Chrome trace-event JSON
  (openable in Perfetto / ``chrome://tracing``) and a JSONL stream.
- :class:`MetricsRegistry` (:mod:`repro.obs.metrics`) — counters and
  gauges summarized as Markdown by
  :func:`repro.runtime.report.metrics_markdown`.
- the fleet observability plane — :class:`TimeSeriesStore` /
  :class:`MetricsScraper` (:mod:`repro.obs.timeseries`) keep rolling
  metric history, :class:`AnomalyMonitor` (:mod:`repro.obs.anomaly`)
  watches it, :class:`FleetView` (:mod:`repro.obs.fleetview`) merges
  per-replica registries/traces, and :func:`write_diag_bundle`
  (:mod:`repro.obs.diag`) snapshots everything into one tarball.
  See ``docs/fleet_observability.md``.

Quick use::

    from repro.obs import Tracer, use_tracer, write_chrome_trace

    tracer = Tracer()
    with use_tracer(tracer):
        optimized, report = optimize(decomposed)
        InferenceSession(optimized).run(x)
    write_chrome_trace(tracer, "trace.json")

See ``docs/observability.md`` for the event taxonomy.
"""

from .anomaly import (Anomaly, AnomalyMonitor, DropSpikeDetector,
                      LatencyRegressionDetector, MemoryDriftDetector,
                      ReplicaOutlierDetector, default_detectors)
from .dashboard import render_dashboard
from .diag import write_diag_bundle
from .events import (AsyncEvent, CounterSample, DecisionEvent, FlowEvent,
                     InstantEvent, SpanRecord)
from .export import (chrome_trace_events, jsonl_records, to_chrome_trace,
                     write_chrome_trace, write_jsonl, write_trace)
from .fleetview import FleetView
from .metrics import Histogram, MetricsRegistry
from .profile import (OpStat, ProfileReport, collapsed_stacks, profile_spans,
                      profile_tracer, write_collapsed_stacks)
from .prometheus import prometheus_metric_name, prometheus_text
from .slo import (SLObjective, SLOMonitor, SLOStatus, evaluate_histogram,
                  parse_slo, parse_slos)
from .timeseries import MetricsScraper, TimeSeriesStore
from .tracer import (NOOP_TRACER, NoopTracer, TaggedTracer, Tracer,
                     configure_logging, get_tracer, new_trace_id, set_tracer,
                     use_tracer)

__all__ = [
    "Anomaly",
    "AnomalyMonitor",
    "DropSpikeDetector",
    "FleetView",
    "LatencyRegressionDetector",
    "MemoryDriftDetector",
    "MetricsScraper",
    "ReplicaOutlierDetector",
    "TimeSeriesStore",
    "default_detectors",
    "render_dashboard",
    "write_diag_bundle",
    "SpanRecord",
    "InstantEvent",
    "CounterSample",
    "DecisionEvent",
    "FlowEvent",
    "AsyncEvent",
    "Histogram",
    "MetricsRegistry",
    "OpStat",
    "ProfileReport",
    "profile_spans",
    "profile_tracer",
    "collapsed_stacks",
    "write_collapsed_stacks",
    "SLObjective",
    "SLOMonitor",
    "SLOStatus",
    "evaluate_histogram",
    "parse_slo",
    "parse_slos",
    "prometheus_text",
    "prometheus_metric_name",
    "Tracer",
    "NoopTracer",
    "TaggedTracer",
    "NOOP_TRACER",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "new_trace_id",
    "configure_logging",
    "chrome_trace_events",
    "to_chrome_trace",
    "write_chrome_trace",
    "jsonl_records",
    "write_jsonl",
    "write_trace",
]
