"""Rolling time-series store + background metrics scraper.

The registry/Prometheus layers (:mod:`repro.obs.metrics`,
:mod:`repro.obs.prometheus`) are point-in-time: every read reports the
state *now*.  Watching a fleet drift — p95 creeping up, measured peak
memory approaching the budget, one replica falling behind its peers —
needs history.  :class:`TimeSeriesStore` keeps that history in fixed
memory: per-metric ring buffers of ``(t, value)`` samples with
windowed rate/percentile/delta queries, fed by a
:class:`MetricsScraper` thread that snapshots any stats-producing
source (an :class:`~repro.serve.InferenceServer`, a fleet
:class:`~repro.fleet.Router`, each replica) at a fixed interval.

Both are stdlib-only and thread-safe; the anomaly detectors
(:mod:`repro.obs.anomaly`) and the ``repro top`` dashboard read the
same store the scraper writes.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable

__all__ = ["TimeSeriesStore", "MetricsScraper"]


class TimeSeriesStore:
    """Fixed-memory ``(t, value)`` history for many named series.

    Each series is a ring buffer of at most ``max_samples`` points
    (oldest evicted first), so total memory is bounded by
    ``series x max_samples`` regardless of uptime.  Timestamps default
    to the injected ``clock`` (monotonic seconds); queries are
    windowed against the same clock, so wall-clock jumps never corrupt
    rates.
    """

    def __init__(self, max_samples: int = 512, *,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if max_samples < 2:
            raise ValueError(f"max_samples must be >= 2, got {max_samples}")
        self.max_samples = max_samples
        self.clock = clock
        self._series: dict[str, deque[tuple[float, float]]] = {}
        self._lock = threading.Lock()

    def record(self, name: str, value: float, t: float | None = None) -> None:
        """Append one sample to ``name`` (timestamp defaults to now)."""
        t = self.clock() if t is None else float(t)
        with self._lock:
            series = self._series.get(name)
            if series is None:
                series = self._series[name] = deque(maxlen=self.max_samples)
            series.append((t, float(value)))

    def ingest(self, snapshot: dict[str, float],
               t: float | None = None) -> None:
        """Record every entry of a flat stats snapshot at one instant."""
        t = self.clock() if t is None else float(t)
        with self._lock:
            for name, value in snapshot.items():
                series = self._series.get(name)
                if series is None:
                    series = self._series[name] = deque(
                        maxlen=self.max_samples)
                series.append((t, float(value)))

    def names(self, prefix: str = "") -> list[str]:
        """Sorted series names, optionally filtered by prefix."""
        with self._lock:
            return sorted(n for n in self._series if n.startswith(prefix))

    def series(self, name: str) -> list[tuple[float, float]]:
        """The full retained ``(t, value)`` history of one series."""
        with self._lock:
            return list(self._series.get(name, ()))

    def latest(self, name: str, default: float = 0.0) -> float:
        """The most recent value of ``name`` (``default`` if empty)."""
        with self._lock:
            series = self._series.get(name)
            return series[-1][1] if series else default

    def window(self, name: str, seconds: float,
               now: float | None = None) -> list[tuple[float, float]]:
        """Samples of ``name`` from the trailing ``seconds`` window."""
        now = self.clock() if now is None else now
        cutoff = now - seconds
        with self._lock:
            series = self._series.get(name, ())
            return [(t, v) for t, v in series if t >= cutoff]

    def rate(self, name: str, seconds: float,
             now: float | None = None) -> float:
        """Per-second increase of a counter over the trailing window.

        Computed from the first and last samples inside the window
        (0.0 with fewer than two samples); a counter reset mid-window
        (value decreasing, e.g. a replica restart) clamps to 0.0
        rather than reporting a negative rate.
        """
        points = self.window(name, seconds, now=now)
        if len(points) < 2:
            return 0.0
        (t0, v0), (t1, v1) = points[0], points[-1]
        if t1 <= t0:
            return 0.0
        return max(0.0, (v1 - v0) / (t1 - t0))

    def delta(self, name: str, seconds: float,
              now: float | None = None) -> float:
        """Increase of a counter over the trailing window (clamped at
        0.0 across resets); 0.0 with fewer than two samples."""
        points = self.window(name, seconds, now=now)
        if len(points) < 2:
            return 0.0
        return max(0.0, points[-1][1] - points[0][1])

    def percentile(self, name: str, q: float,
                   seconds: float | None = None) -> float:
        """Interpolated quantile of the series *values* — over the
        trailing window when ``seconds`` is given, else the full
        retained history.  Empty series report 0.0."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if seconds is None:
            values = [v for _, v in self.series(name)]
        else:
            values = [v for _, v in self.window(name, seconds)]
        if not values:
            return 0.0
        values.sort()
        pos = q * (len(values) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(values) - 1)
        return values[lo] + (values[hi] - values[lo]) * (pos - lo)

    def mean(self, name: str, seconds: float | None = None) -> float:
        """Mean of the series values (windowed when ``seconds`` is
        given); 0.0 when empty."""
        if seconds is None:
            values = [v for _, v in self.series(name)]
        else:
            values = [v for _, v in self.window(name, seconds)]
        return sum(values) / len(values) if values else 0.0

    def to_dict(self) -> dict:
        """JSON-ready dump: every retained sample of every series.

        This is the ``timeseries.json`` member of a ``repro diag``
        bundle; timestamps are the store's monotonic clock.
        """
        with self._lock:
            return {
                "max_samples": self.max_samples,
                "captured_at": self.clock(),
                "series": {name: [[t, v] for t, v in points]
                           for name, points in sorted(self._series.items())},
            }


class MetricsScraper:
    """Background thread feeding a :class:`TimeSeriesStore`.

    ``source`` is any zero-argument callable returning a flat
    ``{name: value}`` dict — ``InferenceServer.stats``,
    ``Router.stats``, or a lambda composing several.  Every
    ``interval_s`` the scraper ingests one snapshot, then calls the
    optional ``hook`` (the fleet view passes the anomaly monitor's
    ``check`` here so detection rides the scrape cadence for free).
    Scrape errors are counted, never raised — a dying replica must
    not kill the observability plane.
    """

    def __init__(self, source: Callable[[], dict[str, float]],
                 store: TimeSeriesStore, *, interval_s: float = 0.5,
                 hook: Callable[[], object] | None = None) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {interval_s}")
        self.source = source
        self.store = store
        self.interval_s = interval_s
        self.hook = hook
        self.scrapes = 0
        self.errors = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def scrape_once(self) -> bool:
        """One synchronous scrape (+ hook); True on success."""
        try:
            snapshot = self.source()
        except Exception:
            self.errors += 1
            return False
        self.store.ingest(snapshot)
        self.scrapes += 1
        if self.hook is not None:
            try:
                self.hook()
            except Exception:
                self.errors += 1
        return True

    def start(self) -> "MetricsScraper":
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="metrics-scraper")
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=5.0)

    def _run(self) -> None:
        while not self._stop.is_set():
            self.scrape_once()
            self._stop.wait(self.interval_s)

    def __enter__(self) -> "MetricsScraper":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
