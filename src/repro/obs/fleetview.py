"""Cross-replica aggregation: one merged view of a serving fleet.

:class:`FleetView` sits next to any *servable* backend — a single
:class:`~repro.serve.InferenceServer` or a fleet
:class:`~repro.fleet.Router` — and produces the fleet-level surfaces
the per-process layers cannot:

- **snapshot** — the backend's stats plus every replica server's
  stats suffixed ``.replica.<id>``, the flat form the
  :class:`~repro.obs.TimeSeriesStore` ingests,
- **merged registry** — per-replica registries folded into one via
  :meth:`MetricsRegistry.merge` with ``replica.<id>`` labels, so one
  Prometheus exposition carries both fleet aggregates and labeled
  per-replica families,
- **fleet doc** — the ``GET /fleetz`` JSON (and the ``repro top``
  frame): per-replica QPS / latency quantiles / queue depth / drops /
  planned-vs-measured peak memory / spill+remat rates, fleet totals,
  SLO burn, current anomaly findings,
- **stitched trace** — every replica's spans re-rowed onto labeled
  ``replica-N`` Chrome-trace rows with cross-replica flow arrows for
  requests that touched more than one replica (hedges, retries),
- a background :class:`~repro.obs.MetricsScraper` feeding the store
  and running the :class:`~repro.obs.AnomalyMonitor` each scrape.

The view only *reads* the backend; attaching one never changes
serving behaviour (outputs stay bitwise identical to an unobserved
server).
"""

from __future__ import annotations

import time

from .._version import __version__
from .anomaly import AnomalyMonitor
from .metrics import MetricsRegistry
from .timeseries import MetricsScraper, TimeSeriesStore
from .tracer import Tracer

__all__ = ["FleetView"]

#: replica-server stat families surfaced per replica in the fleet doc
_DROP_PREFIX = "serve.dropped.reason."


class FleetView:
    """One merged observability surface over a servable backend."""

    def __init__(self, backend, *, store: TimeSeriesStore | None = None,
                 interval_s: float = 0.25, detectors=None,
                 store_samples: int = 512) -> None:
        self.backend = backend
        self.store = store or TimeSeriesStore(store_samples)
        self.interval_s = interval_s
        self._started_at = time.monotonic()
        tracer = getattr(backend, "tracer", None)
        self.monitor = AnomalyMonitor(
            self.store, detectors, registry=backend.metrics,
            tracer=tracer if tracer is not None and tracer.enabled else None)
        self.scraper = MetricsScraper(self.snapshot, self.store,
                                      interval_s=interval_s,
                                      hook=self.monitor.check)

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "FleetView":
        self.scraper.start()
        return self

    def stop(self) -> None:
        self.scraper.stop()

    def __enter__(self) -> "FleetView":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- backend shape --------------------------------------------------

    def _replicas(self) -> list[tuple[str, dict, object]]:
        """``(id, descriptor, server)`` per replica; a single server
        backend is presented as pseudo-replica ``0``."""
        pool = getattr(self.backend, "pool", None)
        if pool is None:
            return [("0", {"id": 0, "state": "ready", "generation": 0,
                           "routed": 0, "outstanding": 0},
                     self.backend)]
            # a lone InferenceServer: one replica, itself
        return [(str(r.id), r.describe(), r.server) for r in pool.replicas]

    # -- the flat scrape ------------------------------------------------

    def snapshot(self) -> dict[str, float]:
        """Backend stats + per-replica server stats suffixed
        ``.replica.<id>`` — one flat dict per scrape instant."""
        merged = dict(self.backend.stats())
        for rid, _desc, server in self._replicas():
            if server is None or server is self.backend:
                continue
            for name, value in server.stats().items():
                merged[f"{name}.replica.{rid}"] = value
        return merged

    def merged_registry(self) -> MetricsRegistry:
        """Every replica registry folded into a fresh one with
        ``replica.<id>`` labels, plus the backend's own registry
        unlabeled — the registry a fleet-wide Prometheus exposition
        renders from."""
        out = MetricsRegistry()
        out.merge(self.backend.metrics)
        for rid, _desc, server in self._replicas():
            if server is None or server is self.backend:
                continue
            out.merge(server.metrics, label=f"replica.{rid}")
        return out

    # -- the operator document ------------------------------------------

    def fleet_doc(self, *, window_s: float = 5.0,
                  scrape: bool = True) -> dict:
        """The ``GET /fleetz`` body / one ``repro top`` frame.

        ``scrape=True`` (the default) takes a fresh snapshot into the
        store and runs the anomaly detectors first, so a cold view
        still reports live numbers.
        """
        if scrape:
            self.scraper.scrape_once()
        store = self.store
        stats = self.backend.stats()
        health = self.backend.health_doc()
        fleet_completed = ("fleet.completed" if "fleet.completed" in stats
                           else "serve.completed")
        latency_base = ("fleet.latency_ms" if "fleet.latency_ms.p50" in stats
                        or "fleet.requests" in stats else "serve.latency_ms")
        replicas = []
        for rid, desc, server in self._replicas():
            suffix = "" if server is self.backend else f".replica.{rid}"
            if server is not None:
                rstats = server.stats()
            else:
                rstats = {}
            drops = {name[len(_DROP_PREFIX):]: value
                     for name, value in rstats.items()
                     if name.startswith(_DROP_PREFIX)}
            replicas.append({
                "id": desc.get("id", rid),
                "state": desc.get("state", "unknown"),
                "generation": desc.get("generation", 0),
                "outstanding": desc.get("outstanding", 0),
                "qps": store.rate(f"serve.completed{suffix}", window_s),
                "latency_ms": {
                    "p50": rstats.get("serve.latency_ms.p50", 0.0),
                    "p95": rstats.get("serve.latency_ms.p95", 0.0),
                    "p99": rstats.get("serve.latency_ms.p99", 0.0),
                },
                "attempt_p95_ms": stats.get(
                    f"fleet.attempt_ms.replica.{rid}.p95", 0.0),
                "queue_depth": rstats.get("serve.queue_depth", 0.0),
                "completed": rstats.get("serve.completed", 0.0),
                "drops": drops,
                "planned_peak_bytes": rstats.get(
                    "plan.planned_peak_bytes", 0.0),
                "measured_peak_bytes": rstats.get(
                    "serve.measured_peak_bytes", 0.0),
                "budget_bytes": rstats.get("plan.budget_bytes", 0.0),
                "spill_rate": store.rate(f"plan.spilled_bytes{suffix}",
                                         window_s),
                "remat_rate": store.rate(f"plan.remat{suffix}", window_s),
            })
        slo = getattr(self.backend, "slo", None)
        doc = {
            "model": self.backend.graph.name,
            "version": __version__,
            "status": health.get("status", "unknown"),
            "uptime_s": time.monotonic() - self._started_at,
            "fleet": {
                "replicas": len(replicas),
                "ready": sum(1 for r in replicas if r["state"] == "ready"),
                "qps": store.rate(fleet_completed, window_s),
                "completed": stats.get(fleet_completed, 0.0),
                "failed": stats.get("fleet.failed",
                                    stats.get("serve.failed", 0.0)),
                "in_flight": stats.get("fleet.in_flight",
                                       stats.get("serve.in_flight", 0.0)),
                "hedges": stats.get("fleet.hedges", 0.0),
                "retries": sum(v for k, v in stats.items()
                               if k.startswith("fleet.retries.reason.")),
                "latency_ms": {
                    "p50": stats.get(f"{latency_base}.p50", 0.0),
                    "p95": stats.get(f"{latency_base}.p95", 0.0),
                    "p99": stats.get(f"{latency_base}.p99", 0.0),
                },
            },
            "replicas": replicas,
            "slo": ([status.to_dict() for status in slo.evaluate()]
                    if slo is not None else []),
            "anomalies": [a.to_dict() for a in self.monitor.findings()],
            "ts": {
                "series": len(self.store.names()),
                "scrapes": self.scraper.scrapes,
                "scrape_errors": self.scraper.errors,
                "interval_s": self.interval_s,
                "window_s": window_s,
            },
        }
        return doc

    # -- the stitched trace ----------------------------------------------

    def stitched_trace(self) -> dict | None:
        """Every replica's records re-rowed into one Chrome trace.

        The fleet shares one tracer (replica spans are tagged
        ``replica=<id>`` by the pool); this regroups that stream onto
        labeled rows — ``fleet`` (tid 0) for router/admission events,
        ``replica-N`` for each replica's serve/executor spans — and
        draws a flow arrow between replica rows for every request
        whose attempts touched more than one replica (hedges,
        retries).  Returns None when the backend traced nothing
        (tracing off or a no-op tracer).
        """
        source = getattr(self.backend, "tracer", None)
        if source is None or not getattr(source, "enabled", False) \
                or not hasattr(source, "export_records"):
            return None
        from .export import to_chrome_trace

        records = source.export_records()
        out = Tracer()
        # same wall-clock anchor -> absorb shifts by exactly zero, so
        # stitched timestamps match the source timeline
        out.epoch_wall = records["epoch_wall"]

        rows: dict[str, int] = {}

        def row(replica) -> int:
            if replica is None:
                return 0
            key = str(replica)
            if key not in rows:
                rows[key] = len(rows) + 1
                out.name_thread(rows[key], f"replica-{key}")
            return rows[key]

        out.name_thread(0, "fleet")
        groups: dict[int, dict] = {}
        for span in records["spans"]:
            tid = row(span["args"].get("replica"))
            groups.setdefault(tid, {"epoch_wall": records["epoch_wall"],
                                    "spans": [], "instants": [],
                                    "counters": []})["spans"].append(span)
        for instant in records["instants"]:
            tid = row(instant["args"].get("replica"))
            groups.setdefault(tid, {"epoch_wall": records["epoch_wall"],
                                    "spans": [], "instants": [],
                                    "counters": []})["instants"].append(
                                        instant)
        if records["counters"]:
            groups.setdefault(0, {"epoch_wall": records["epoch_wall"],
                                  "spans": [], "instants": [],
                                  "counters": []})["counters"] \
                .extend(records["counters"])
        for tid, group in sorted(groups.items()):
            out.absorb(group, tid=tid)

        # cross-replica arrows: one per extra attempt of any request
        # that was hedged/retried onto a different replica
        touches: dict[str, list[tuple[float, object]]] = {}
        for instant in records["instants"]:
            if instant["name"] in ("fleet.attempt", "fleet.hedge"):
                trace_id = instant["args"].get("trace_id")
                replica = instant["args"].get("replica")
                if trace_id is not None and replica is not None:
                    touches.setdefault(trace_id, []).append(
                        (instant["ts_us"], replica))
        flow_id = 0
        for trace_id, attempts in sorted(touches.items()):
            attempts.sort()
            first_ts, first_replica = attempts[0]
            for ts_us, replica in attempts[1:]:
                if replica == first_replica:
                    continue
                flow_id += 1
                out.flow("fleet.cross_replica", flow_id, "start",
                         ts_us=first_ts, tid=row(first_replica),
                         trace_id=trace_id)
                out.flow("fleet.cross_replica", flow_id, "finish",
                         ts_us=ts_us, tid=row(replica), trace_id=trace_id)
        return to_chrome_trace(out, process_name="repro-fleet")
