"""Lightweight in-process tracer with nested spans and decision logging.

Two implementations share one duck-typed API:

- :class:`Tracer` — records everything into in-memory lists, ready for
  the :mod:`repro.obs.export` emitters (Chrome trace JSON / JSONL).
- :class:`NoopTracer` — the default.  ``enabled`` is ``False`` and
  every method is a no-op; hot paths guard on ``tracer.enabled`` so a
  disabled tracer costs one attribute read per node and allocates
  nothing (the no-op span is a shared singleton).

The *active* tracer is ambient state managed with
:func:`get_tracer` / :func:`set_tracer` / :func:`use_tracer`, so the
compiler passes and the executor pick it up without every call site
having to thread a parameter through.  :func:`set_tracer` installs a
*process-wide* default; :func:`use_tracer` pushes onto a
*thread-local* stack, so concurrent workers (the
:mod:`repro.serve` server threads, a
:class:`~repro.runtime.parallel.ParallelRunner` fan-out) can each
scope their own tracer without clobbering each other.
"""

from __future__ import annotations

import logging
import threading
import time
import uuid
from contextlib import contextmanager
from typing import Any, Callable, Iterator

from .events import (AsyncEvent, CounterSample, DecisionEvent, FlowEvent,
                     InstantEvent, SpanRecord)
from .metrics import MetricsRegistry

__all__ = ["Tracer", "NoopTracer", "TaggedTracer", "NOOP_TRACER",
           "get_tracer", "set_tracer", "use_tracer", "configure_logging",
           "new_trace_id"]


def new_trace_id() -> str:
    """A fresh 16-hex-char request trace id.

    Assigned once at admission (:meth:`repro.serve.InferenceServer.submit`)
    and stamped onto every span the request touches — queue wait, the
    micro-batch that served it, per-op executor spans, cross-process
    shards — so one grep (or one Perfetto query) reconstructs the
    request's full waterfall.
    """
    return uuid.uuid4().hex[:16]


class _NoopSpan:
    """Reusable do-nothing context manager (one shared instance)."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NOOP_SPAN = _NoopSpan()


class NoopTracer:
    """Disabled tracer: every operation is free and records nothing."""

    enabled: bool = False

    def __init__(self) -> None:
        self.metrics = MetricsRegistry()

    def span(self, name: str, category: str = "", tid: int | None = None,
             **args) -> _NoopSpan:
        return _NOOP_SPAN

    def now_us(self) -> float:
        return 0.0

    def complete(self, name: str, start_us: float, duration_us: float,
                 category: str = "", tid: int | None = None, **args) -> None:
        return None

    def instant(self, name: str, category: str = "", **args) -> None:
        return None

    def counter(self, track: str, ts_us: float | None = None,
                **values) -> None:
        return None

    def decision(self, pass_name: str, subject: str, verdict: str,
                 reason: str = "", **quantities) -> None:
        return None

    def flow(self, name: str, flow_id: int, phase: str,
             ts_us: float | None = None, tid: int | None = None,
             **args) -> None:
        return None

    def async_slice(self, name: str, aid: int, start_us: float,
                    end_us: float, category: str = "", **args) -> None:
        return None

    def name_thread(self, tid: int, name: str) -> None:
        return None


#: process-wide default; ``get_tracer()`` returns this unless a real
#: tracer has been installed
NOOP_TRACER = NoopTracer()


class Tracer(NoopTracer):
    """Recording tracer: nested spans, instants, counters, decisions.

    Parameters
    ----------
    clock:
        Monotonic float-seconds clock, injectable for deterministic
        tests.  Defaults to :func:`time.perf_counter`.
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        super().__init__()
        self._clock = clock
        self._epoch = clock()
        #: wall-clock time at the epoch, the cross-process alignment
        #: anchor :meth:`absorb` shifts foreign timestamps with
        self.epoch_wall = time.time()
        self._depth = 0
        self.spans: list[SpanRecord] = []
        self.instants: list[InstantEvent] = []
        self.counters: list[CounterSample] = []
        self.decisions: list[DecisionEvent] = []
        self.flows: list[FlowEvent] = []
        self.async_events: list[AsyncEvent] = []
        #: Chrome-trace row labels, tid -> name (see :meth:`name_thread`)
        self.thread_names: dict[int, str] = {}

    # -- time ---------------------------------------------------------------

    def now_us(self) -> float:
        return (self._clock() - self._epoch) * 1e6

    # -- spans --------------------------------------------------------------

    @contextmanager
    def span(self, name: str, category: str = "", tid: int | None = None,
             **args) -> Iterator[None]:
        """Timed nested region; the record is appended when it closes."""
        start = self.now_us()
        depth = self._depth
        self._depth += 1
        try:
            yield
        finally:
            self._depth -= 1
            self.spans.append(SpanRecord(
                name=name, category=category, start_us=start,
                duration_us=self.now_us() - start, depth=depth,
                tid=tid or 0, args=args))

    def complete(self, name: str, start_us: float, duration_us: float,
                 category: str = "", tid: int | None = None, **args) -> None:
        """Record an already-timed region (executor per-node fast path)."""
        self.spans.append(SpanRecord(
            name=name, category=category, start_us=start_us,
            duration_us=duration_us, depth=self._depth, tid=tid or 0,
            args=args))

    # -- point events -------------------------------------------------------

    def instant(self, name: str, category: str = "", **args) -> None:
        self.instants.append(InstantEvent(
            name=name, category=category, ts_us=self.now_us(), args=args))

    def counter(self, track: str, ts_us: float | None = None,
                **values) -> None:
        """Sample a counter track.  ``ts_us`` places the sample at an
        explicit timestamp instead of "now" — used by the conformance
        auditor to align the ``arena`` occupancy track with the
        already-recorded executor node spans."""
        self.counters.append(CounterSample(
            track=track, ts_us=self.now_us() if ts_us is None else ts_us,
            values=values))

    def decision(self, pass_name: str, subject: str, verdict: str,
                 reason: str = "", **quantities) -> None:
        self.decisions.append(DecisionEvent(
            pass_name=pass_name, subject=subject, verdict=verdict,
            reason=reason, ts_us=self.now_us(), quantities=quantities))
        self.metrics.inc(f"{pass_name}.{verdict}")

    def flow(self, name: str, flow_id: int, phase: str,
             ts_us: float | None = None, tid: int | None = None,
             **args) -> None:
        """Record one endpoint of a cross-row arrow.

        ``phase`` is ``"start"`` (source) or ``"finish"`` (destination);
        both endpoints of one arrow share ``flow_id``.  Chrome binds
        each endpoint to the span enclosing ``ts_us`` on row ``tid``.
        """
        if phase not in ("start", "finish"):
            raise ValueError(f"flow phase must be start/finish, got {phase!r}")
        self.flows.append(FlowEvent(
            name=name, flow_id=flow_id, phase=phase,
            ts_us=self.now_us() if ts_us is None else ts_us,
            tid=tid or 0, args=args))

    def async_slice(self, name: str, aid: int, start_us: float,
                    end_us: float, category: str = "", **args) -> None:
        """Record one already-timed async slice (begin + end pair).

        Slices sharing ``aid`` stack into one rendered lane; the
        serving layer emits a request's whole waterfall (queue wait →
        batching delay → execute → reply) as nested slices under its
        request-id lane once the outcome is known.
        """
        self.async_events.append(AsyncEvent(
            name=name, aid=aid, phase="begin", ts_us=start_us,
            category=category, args=args))
        self.async_events.append(AsyncEvent(
            name=name, aid=aid, phase="end", ts_us=end_us,
            category=category, args={}))

    def name_thread(self, tid: int, name: str) -> None:
        """Label a Chrome-trace timeline row (serve worker, shard)."""
        self.thread_names[tid] = name

    # -- cross-process propagation ------------------------------------------

    def export_records(self) -> dict[str, Any]:
        """This tracer's records as plain picklable data.

        The wire form a :class:`~repro.runtime.parallel.ParallelRunner`
        worker ships its shard trace back to the parent in; the parent
        merges it with :meth:`absorb`.
        """
        return {
            "epoch_wall": self.epoch_wall,
            "spans": [{"name": s.name, "category": s.category,
                       "start_us": s.start_us, "duration_us": s.duration_us,
                       "depth": s.depth, "args": dict(s.args)}
                      for s in self.spans],
            "instants": [{"name": i.name, "category": i.category,
                          "ts_us": i.ts_us, "args": dict(i.args)}
                         for i in self.instants],
            "counters": [{"track": c.track, "ts_us": c.ts_us,
                          "values": dict(c.values)}
                         for c in self.counters],
        }

    def absorb(self, records: dict[str, Any], *, tid: int = 0,
               **tags: Any) -> int:
        """Merge a foreign tracer's :meth:`export_records` dump.

        Timestamps are shifted into this tracer's timeline using the
        wall-clock anchor both tracers captured at construction, spans
        land on row ``tid``, and ``tags`` (a ``trace_id``, a shard
        index) are stamped onto every absorbed record.  Returns the
        number of spans absorbed.
        """
        offset_us = (records["epoch_wall"] - self.epoch_wall) * 1e6
        for s in records.get("spans", ()):
            self.spans.append(SpanRecord(
                name=s["name"], category=s["category"],
                start_us=s["start_us"] + offset_us,
                duration_us=s["duration_us"], depth=s["depth"], tid=tid,
                args={**s["args"], **tags}))
        for i in records.get("instants", ()):
            self.instants.append(InstantEvent(
                name=i["name"], category=i["category"],
                ts_us=i["ts_us"] + offset_us, args={**i["args"], **tags}))
        for c in records.get("counters", ()):
            self.counters.append(CounterSample(
                track=c["track"], ts_us=c["ts_us"] + offset_us,
                values=dict(c["values"])))
        return len(records.get("spans", ()))

    # -- queries ------------------------------------------------------------

    def decisions_for(self, pass_name: str,
                      verdict: str | None = None,
                      reason: str | None = None) -> list[DecisionEvent]:
        """Filter the decision log (test/report convenience)."""
        return [d for d in self.decisions
                if d.pass_name == pass_name
                and (verdict is None or d.verdict == verdict)
                and (reason is None or d.reason == reason)]

    def counter_series(self, track: str, key: str) -> list[float]:
        """One series of a counter track, in record order."""
        return [s.values[key] for s in self.counters
                if s.track == track and key in s.values]


class TaggedTracer:
    """Proxy that stamps fixed attributes onto every record.

    Wraps any tracer and merges ``tags`` into the args of every span,
    completed region, instant, and decision recorded through it.  The
    serving layer uses this to make concurrent worker traces
    attributable after they merge into one shared tracer: each worker's
    session records through ``TaggedTracer(tracer, worker_id=i)``, so
    every executor node span in the combined trace carries the worker
    that ran it (and batch spans carry the ``request_id`` list).

    Counter samples are forwarded *untagged* — their values are numeric
    series, and injecting a constant ``worker_id`` series into the
    ``memory`` track would corrupt the timeline rendering.

    Explicit tags win over colliding call-site args so a worker cannot
    accidentally mislabel itself.  A ``tid`` pins every span recorded
    through the proxy onto one Chrome-trace row, which is how each
    serve worker gets its own labeled timeline lane.
    """

    def __init__(self, inner: NoopTracer, tid: int | None = None,
                 **tags: Any) -> None:
        self._inner = inner
        self.tid = tid
        self.tags = tags

    @property
    def enabled(self) -> bool:
        return self._inner.enabled

    @property
    def metrics(self) -> MetricsRegistry:
        return self._inner.metrics

    def tagged(self, **tags: Any) -> "TaggedTracer":
        """A further-specialized proxy (same inner tracer, merged tags)."""
        return TaggedTracer(self._inner, tid=self.tid,
                            **{**self.tags, **tags})

    def now_us(self) -> float:
        return self._inner.now_us()

    def span(self, name: str, category: str = "", tid: int | None = None,
             **args):
        return self._inner.span(name, category,
                                tid=self.tid if tid is None else tid,
                                **{**args, **self.tags})

    def complete(self, name: str, start_us: float, duration_us: float,
                 category: str = "", tid: int | None = None, **args) -> None:
        self._inner.complete(name, start_us, duration_us, category,
                             tid=self.tid if tid is None else tid,
                             **{**args, **self.tags})

    def instant(self, name: str, category: str = "", **args) -> None:
        self._inner.instant(name, category, **{**args, **self.tags})

    def counter(self, track: str, ts_us: float | None = None,
                **values) -> None:
        self._inner.counter(track, ts_us=ts_us, **values)

    def decision(self, pass_name: str, subject: str, verdict: str,
                 reason: str = "", **quantities) -> None:
        self._inner.decision(pass_name, subject, verdict, reason,
                             **{**quantities, **self.tags})

    def flow(self, name: str, flow_id: int, phase: str,
             ts_us: float | None = None, tid: int | None = None,
             **args) -> None:
        self._inner.flow(name, flow_id, phase, ts_us=ts_us,
                         tid=self.tid if tid is None else tid,
                         **{**args, **self.tags})

    def async_slice(self, name: str, aid: int, start_us: float,
                    end_us: float, category: str = "", **args) -> None:
        self._inner.async_slice(name, aid, start_us, end_us, category,
                                **{**args, **self.tags})

    def name_thread(self, tid: int, name: str) -> None:
        self._inner.name_thread(tid, name)


# ---------------------------------------------------------------------------
# ambient tracer
# ---------------------------------------------------------------------------

#: process-wide default, replaced by :func:`set_tracer`
_DEFAULT_TRACER: NoopTracer = NOOP_TRACER


class _AmbientStack(threading.local):
    """Per-thread overlay of :func:`use_tracer` installations."""

    def __init__(self) -> None:
        self.stack: list[NoopTracer] = []


_AMBIENT = _AmbientStack()


def get_tracer() -> NoopTracer:
    """The currently active tracer (the no-op singleton by default).

    Resolution order: the calling thread's innermost :func:`use_tracer`
    scope, else the process-wide default set by :func:`set_tracer`.
    """
    stack = _AMBIENT.stack
    return stack[-1] if stack else _DEFAULT_TRACER


def set_tracer(tracer: NoopTracer | None) -> None:
    """Replace the process-wide default tracer; ``None`` restores the
    no-op default.  Threads inside a :func:`use_tracer` scope keep
    their scoped tracer."""
    global _DEFAULT_TRACER
    _DEFAULT_TRACER = tracer if tracer is not None else NOOP_TRACER


@contextmanager
def use_tracer(tracer: NoopTracer) -> Iterator[NoopTracer]:
    """Install ``tracer`` as the ambient tracer for the ``with`` body
    (visible only to the installing thread)."""
    _AMBIENT.stack.append(tracer)
    try:
        yield tracer
    finally:
        _AMBIENT.stack.pop()


# ---------------------------------------------------------------------------
# stdlib logging
# ---------------------------------------------------------------------------

def configure_logging(level: str = "info", *,
                      stream: Any | None = None) -> logging.Logger:
    """Wire the ``repro`` logger hierarchy to stderr at ``level``.

    Idempotent: reinvoking only adjusts the level.  Every module in the
    package logs through ``logging.getLogger(__name__)``, so this one
    call controls all of them.
    """
    logger = logging.getLogger("repro")
    logger.setLevel(getattr(logging, level.upper()))
    if not logger.handlers:
        handler = logging.StreamHandler(stream)
        handler.setFormatter(logging.Formatter(
            "%(levelname).1s %(name)s: %(message)s"))
        logger.addHandler(handler)
    return logger
