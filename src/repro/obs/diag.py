"""``repro diag``: one tarball capturing a fleet's full state.

A misbehaving fleet is only debuggable after the fact if somebody
captured its state *while* it misbehaved.  :func:`write_diag_bundle`
snapshots everything the observability plane knows into a single
``.tar.gz``:

========================  ============================================
member                    contents
========================  ============================================
``MANIFEST.json``         bundle index: version, model, member list
``fleetz.json``           the merged fleet doc (``GET /fleetz`` body)
``trace.json``            stitched multi-replica Chrome trace (when
                          the backend ran with a recording tracer)
``timeseries.json``       full rolling time-series dump
``metrics.prom``          merged Prometheus exposition (fleet
                          aggregates + ``replica``-labeled families)
``slo.json``              SLO statuses (empty list without a monitor)
``anomalies.json``        every anomaly finding seen so far
``memory_plan.json``      the enforced memory plan (when planned)
``audit.json``            fresh budget-conformance audit result
                          (when planned *and* ``audit=True``)
``config.json``           caller-provided run configuration
========================  ============================================

Everything is produced in memory (``tarfile`` over ``BytesIO``
members) — capturing a bundle never perturbs the serving path beyond
one metrics scrape.
"""

from __future__ import annotations

import io
import json
import tarfile
import time
from pathlib import Path

from .._version import __version__
from .prometheus import prometheus_text

__all__ = ["write_diag_bundle"]


def _member(tar: tarfile.TarFile, name: str, payload: str) -> None:
    data = payload.encode("utf-8")
    info = tarfile.TarInfo(name)
    info.size = len(data)
    info.mtime = int(time.time())
    tar.addfile(info, io.BytesIO(data))


def write_diag_bundle(path: str | Path, *, view, config: dict | None = None,
                      audit: bool = False) -> list[str]:
    """Capture ``view``'s backend into a ``.tar.gz`` at ``path``.

    ``view`` is a :class:`~repro.obs.FleetView`; ``config`` is an
    arbitrary JSON-able dict recording how the run was launched
    (model, flags); ``audit=True`` additionally re-runs the budget
    conformance audit (two extra graph executions) when the backend
    serves under a memory plan.  Returns the member names written.
    """
    path = Path(path)
    doc = view.fleet_doc()
    members: dict[str, str] = {}

    def add_json(name: str, payload) -> None:
        members[name] = json.dumps(payload, indent=1, sort_keys=True,
                                   default=str)

    add_json("fleetz.json", doc)
    add_json("timeseries.json", view.store.to_dict())
    add_json("slo.json", doc.get("slo", []))
    add_json("anomalies.json", doc.get("anomalies", []))
    members["metrics.prom"] = prometheus_text(view.merged_registry(),
                                              build_info=__version__)
    trace = view.stitched_trace()
    if trace is not None:
        add_json("trace.json", trace)

    backend = view.backend
    plan = getattr(backend, "memory_plan", None)
    if plan is None:
        pool = getattr(backend, "pool", None)
        plan = getattr(pool, "memory_plan", None)
    if plan is not None:
        add_json("memory_plan.json", plan.to_dict())
        if audit and plan.budget_bytes:
            from .audit import audit_budgeted
            verdict = audit_budgeted(backend.graph, plan.budget_bytes,
                                     model=backend.graph.name)
            add_json("audit.json", verdict.to_dict())

    if config is not None:
        add_json("config.json", config)

    add_json("MANIFEST.json", {
        "version": __version__,
        "model": doc.get("model", ""),
        "captured_at_unix": time.time(),
        "members": sorted(members) + ["MANIFEST.json"],
        "anomaly_count": len(doc.get("anomalies", [])),
    })

    path.parent.mkdir(parents=True, exist_ok=True)
    with tarfile.open(path, "w:gz") as tar:
        for name in sorted(members):
            _member(tar, name, members[name])
    return sorted(members)
