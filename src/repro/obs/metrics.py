"""Counter/gauge registry summarizing one compile-or-run session.

The :class:`MetricsRegistry` is deliberately tiny: monotonically
increasing counters (``inc``) and last-write-wins gauges (``gauge``),
with a stable snapshot for reports.  Every :class:`~repro.obs.Tracer`
owns one; passes and the runtime record headline numbers into it so a
single Markdown table can summarize a session without replaying the
full event stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["MetricsRegistry"]


@dataclass
class MetricsRegistry:
    """Named counters and gauges."""

    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)

    def inc(self, name: str, value: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def get(self, name: str, default: float = 0) -> float:
        if name in self.counters:
            return self.counters[name]
        return self.gauges.get(name, default)

    def snapshot(self) -> dict[str, float]:
        """Counters and gauges merged into one sorted mapping."""
        merged = {**self.counters, **self.gauges}
        return dict(sorted(merged.items()))

    def clear(self) -> None:
        self.counters.clear()
        self.gauges.clear()
