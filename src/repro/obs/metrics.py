"""Counter/gauge/histogram registry summarizing one compile-or-run session.

The :class:`MetricsRegistry` is deliberately tiny: monotonically
increasing counters (``inc``), last-write-wins gauges (``gauge``), and
value-distribution histograms (``observe``), with a stable snapshot for
reports.  Every :class:`~repro.obs.Tracer` owns one; passes and the
runtime record headline numbers into it so a single Markdown table can
summarize a session without replaying the full event stream.

All mutators and ``snapshot`` take an internal lock, so one registry
can be shared by the serving layer's worker threads
(:mod:`repro.serve`) without torn read-modify-write updates.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field

__all__ = ["Histogram", "MetricsRegistry"]

#: histogram quantiles flattened into :meth:`MetricsRegistry.snapshot`
_SNAPSHOT_QUANTILES = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99))

#: the well-defined zero-state a never-observed histogram reports;
#: every snapshot has exactly this key set, so consumers (Markdown
#: tables, the Prometheus exposition, JSON reports) never special-case
#: empty or single-sample series
_EMPTY_SNAPSHOT = {"count": 0.0, "sum": 0.0, "mean": 0.0, "min": 0.0,
                   "max": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}


class Histogram:
    """Streaming value distribution with bounded memory.

    Keeps exact ``count``/``sum``/``min``/``max`` plus a uniform
    reservoir of up to ``max_samples`` observations (Vitter's
    algorithm R, seeded for reproducibility) that quantile queries are
    answered from.  Below ``max_samples`` observations the quantiles
    are exact.
    """

    __slots__ = ("count", "total", "min", "max", "_samples", "_max_samples",
                 "_rng")

    def __init__(self, max_samples: int = 4096, seed: int = 0) -> None:
        if max_samples < 1:
            raise ValueError(f"max_samples must be >= 1, got {max_samples}")
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._samples: list[float] = []
        self._max_samples = max_samples
        self._rng = random.Random(seed)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        if len(self._samples) < self._max_samples:
            self._samples.append(value)
        else:
            slot = self._rng.randrange(self.count)
            if slot < self._max_samples:
                self._samples[slot] = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def fraction_below(self, threshold: float) -> float:
        """Estimated fraction of observations ``<= threshold``.

        Computed over the reservoir (exact below ``max_samples``
        observations); the SLO monitor uses it to turn a latency
        histogram into a compliance ratio.  An empty histogram reports
        1.0 — no observations, no violations.
        """
        if not self._samples:
            return 1.0
        below = sum(1 for v in self._samples if v <= threshold)
        return below / len(self._samples)

    def quantile(self, q: float) -> float:
        """Linearly interpolated quantile over the reservoir, ``q`` in
        [0, 1].  Well-defined on every series: an empty histogram
        reports 0.0 and a single-sample one reports that sample."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        pos = q * (len(ordered) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(ordered) - 1)
        return ordered[lo] + (ordered[hi] - ordered[lo]) * (pos - lo)

    def snapshot(self) -> dict[str, float]:
        """count/sum/mean/min/max plus the standard latency quantiles.

        The key set is fixed: an empty histogram returns all-zeros
        (never raises, never emits ``inf`` from the min/max trackers),
        and a single-sample histogram reports that sample for
        mean/min/max and every quantile.
        """
        if not self.count:
            return dict(_EMPTY_SNAPSHOT)
        out = {"count": float(self.count), "sum": self.total,
               "mean": self.mean, "min": self.min, "max": self.max}
        for label, q in _SNAPSHOT_QUANTILES:
            out[label] = self.quantile(q)
        return out

    def copy(self) -> "Histogram":
        """An independent clone (same capacity, samples, exact stats)."""
        clone = Histogram(self._max_samples)
        clone.count = self.count
        clone.total = self.total
        clone.min = self.min
        clone.max = self.max
        clone._samples = list(self._samples)
        return clone

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other``'s distribution into this one, in place.

        Exact statistics (count, sum, min, max) add exactly; the
        reservoirs concatenate, and when the union exceeds this
        histogram's capacity each side keeps a share proportional to
        the observation count it stands for (so a 10k-observation
        replica outweighs a 100-observation one in the merged
        quantiles).  Only reads ``other`` — merging one source into
        several targets is safe.  Returns ``self`` for chaining.
        """
        if other is self:
            raise ValueError("cannot merge a histogram into itself")
        if not other.count:
            return self
        new_count = self.count + other.count
        keep = len(self._samples) + len(other._samples)
        if keep <= self._max_samples:
            self._samples.extend(other._samples)
        else:
            take_self = min(len(self._samples),
                            round(self._max_samples * self.count / new_count))
            take_other = min(len(other._samples),
                             self._max_samples - take_self)
            take_self = min(len(self._samples),
                            self._max_samples - take_other)
            self._samples = (
                self._rng.sample(self._samples, take_self)
                + self._rng.sample(other._samples, take_other))
        self.count = new_count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        return self


@dataclass
class MetricsRegistry:
    """Named counters, gauges and histograms (thread-safe)."""

    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, Histogram] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    def inc(self, name: str, value: float = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        with self._lock:
            self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record one observation into the histogram ``name``."""
        with self._lock:
            hist = self.histograms.get(name)
            if hist is None:
                hist = self.histograms[name] = Histogram()
            hist.observe(value)

    def get(self, name: str, default: float = 0) -> float:
        with self._lock:
            if name in self.counters:
                return self.counters[name]
            return self.gauges.get(name, default)

    def quantiles(self, name: str) -> dict[str, float]:
        """Snapshot of one histogram.  A never-observed name returns
        the all-zero snapshot (same key set as a populated one)."""
        with self._lock:
            hist = self.histograms.get(name)
            return hist.snapshot() if hist is not None else dict(_EMPTY_SNAPSHOT)

    def snapshot(self) -> dict[str, float]:
        """Counters, gauges and flattened histogram stats, sorted.

        Histogram entries appear as ``{name}.{stat}`` (count, sum,
        mean, min, max, p50, p95, p99) so report emitters need no
        special casing.
        """
        with self._lock:
            merged = {**self.counters, **self.gauges}
            for name, hist in self.histograms.items():
                for stat, value in hist.snapshot().items():
                    merged[f"{name}.{stat}"] = value
            return dict(sorted(merged.items()))

    def export(self) -> tuple[dict[str, float], dict[str, float],
                              dict[str, dict[str, float]]]:
        """One consistent ``(counters, gauges, histogram snapshots)``
        copy taken under the lock — the raw form the Prometheus text
        exposition (:mod:`repro.obs.prometheus`) renders, which needs
        the three metric kinds kept apart rather than flattened."""
        with self._lock:
            return (dict(self.counters), dict(self.gauges),
                    {name: hist.snapshot()
                     for name, hist in self.histograms.items()})

    def merge(self, other: "MetricsRegistry", *,
              label: str | None = None) -> "MetricsRegistry":
        """Fold another registry's state into this one.

        Counters add, gauges last-write-win, histograms fold via
        :meth:`Histogram.merge`.  With ``label`` (a dotted
        ``key.value`` pair such as ``"replica.0"``), counters and
        histograms are *additionally* recorded under
        ``{name}.{label}`` and gauges move entirely to the labeled
        name — so a fleet roll-up keeps both the aggregate and the
        per-replica breakdown, and the Prometheus exposition renders
        the labeled copies as ``{key="value"}`` families.

        ``other`` is only read (one consistent copy is taken under its
        lock), so one replica registry can be merged into several
        targets.  Returns ``self`` for chaining.
        """
        if other is self:
            raise ValueError("cannot merge a registry into itself")
        with other._lock:
            counters = dict(other.counters)
            gauges = dict(other.gauges)
            histograms = {name: hist.copy()
                          for name, hist in other.histograms.items()}
        with self._lock:
            for name, value in counters.items():
                self.counters[name] = self.counters.get(name, 0) + value
                if label:
                    key = f"{name}.{label}"
                    self.counters[key] = self.counters.get(key, 0) + value
            for name, value in gauges.items():
                self.gauges[f"{name}.{label}" if label else name] = value
            for name, hist in histograms.items():
                into = self.histograms.get(name)
                if into is None:
                    self.histograms[name] = hist
                else:
                    into.merge(hist)
                if label:
                    key = f"{name}.{label}"
                    labeled = self.histograms.get(key)
                    if labeled is None:
                        self.histograms[key] = hist.copy()
                    else:
                        labeled.merge(hist)
        return self

    def clear(self) -> None:
        with self._lock:
            self.counters.clear()
            self.gauges.clear()
            self.histograms.clear()
