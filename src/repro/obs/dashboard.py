"""``repro top``: ANSI terminal rendering of one fleet-doc frame.

Pure formatting — :func:`render_dashboard` turns the dict
:meth:`~repro.obs.FleetView.fleet_doc` produces (the ``GET /fleetz``
body) into a fixed-width frame.  No curses dependency: the CLI
repaints by emitting a clear-screen escape between frames, and
``--once`` / ``--json`` bypass the escapes entirely for scripts and
CI assertions.
"""

from __future__ import annotations

__all__ = ["render_dashboard", "format_bytes_short"]

#: ANSI escapes (suppressed with color=False)
_RESET = "\x1b[0m"
_BOLD = "\x1b[1m"
_DIM = "\x1b[2m"
_RED = "\x1b[31m"
_YELLOW = "\x1b[33m"
_GREEN = "\x1b[32m"

_SEVERITY_COLOR = {"critical": _RED, "warning": _YELLOW}


def format_bytes_short(n: float) -> str:
    """1536 -> '1.5K' (dashboard cells are narrow)."""
    n = float(n)
    for unit in ("", "K", "M", "G", "T"):
        if abs(n) < 1024 or unit == "T":
            return f"{n:.0f}{unit}" if unit == "" or abs(n) >= 10 \
                else f"{n:.1f}{unit}"
        n /= 1024
    return f"{n:.0f}T"


def _paint(text: str, code: str, color: bool) -> str:
    return f"{code}{text}{_RESET}" if color else text


def render_dashboard(doc: dict, *, color: bool = True) -> str:
    """One frame of ``repro top`` from a fleet doc."""
    lines: list[str] = []
    fleet = doc.get("fleet", {})
    status = doc.get("status", "?")
    status_color = _GREEN if status == "ok" else _RED
    lat = fleet.get("latency_ms", {})
    lines.append(" ".join([
        _paint(f"repro top — {doc.get('model', '?')}", _BOLD, color),
        f"v{doc.get('version', '?')}",
        _paint(status, status_color, color),
        f"up {doc.get('uptime_s', 0.0):.0f}s",
    ]))
    lines.append(
        f"fleet: {fleet.get('ready', 0)}/{fleet.get('replicas', 0)} ready | "
        f"{fleet.get('qps', 0.0):.1f} req/s | "
        f"p50 {lat.get('p50', 0.0):.1f} ms | "
        f"p95 {lat.get('p95', 0.0):.1f} ms | "
        f"p99 {lat.get('p99', 0.0):.1f} ms | "
        f"in-flight {fleet.get('in_flight', 0):g} | "
        f"hedges {fleet.get('hedges', 0):g} | "
        f"retries {fleet.get('retries', 0):g}")
    lines.append("")
    header = (f"{'id':>3} {'state':<9} {'gen':>3} {'qps':>7} {'p50ms':>8} "
              f"{'p95ms':>8} {'p99ms':>8} {'queue':>5} {'drops':>5} "
              f"{'peak':>7} {'plan':>7} {'budget':>7} {'spill/s':>8}")
    lines.append(_paint(header, _DIM, color))
    for replica in doc.get("replicas", []):
        rlat = replica.get("latency_ms", {})
        drops = sum(replica.get("drops", {}).values())
        row = (f"{replica.get('id', '?'):>3} "
               f"{replica.get('state', '?'):<9} "
               f"{replica.get('generation', 0):>3} "
               f"{replica.get('qps', 0.0):>7.1f} "
               f"{rlat.get('p50', 0.0):>8.2f} "
               f"{rlat.get('p95', 0.0):>8.2f} "
               f"{rlat.get('p99', 0.0):>8.2f} "
               f"{replica.get('queue_depth', 0):>5g} "
               f"{drops:>5g} "
               f"{format_bytes_short(replica.get('measured_peak_bytes', 0)):>7} "
               f"{format_bytes_short(replica.get('planned_peak_bytes', 0)):>7} "
               f"{format_bytes_short(replica.get('budget_bytes', 0)):>7} "
               f"{replica.get('spill_rate', 0.0):>8.1f}")
        if replica.get("state") != "ready":
            row = _paint(row, _YELLOW, color)
        lines.append(row)
    slo = doc.get("slo", [])
    if slo:
        lines.append("")
        for status_doc in slo:
            healthy = status_doc.get("healthy", True)
            mark = _paint("ok", _GREEN, color) if healthy \
                else _paint("BURNING", _RED, color)
            lines.append(
                f"slo {status_doc.get('name', '?'):<18} {mark}  "
                f"good {status_doc.get('good_ratio', 0.0):.4f} "
                f"target {status_doc.get('target', 0.0):.4f}  "
                f"burn {status_doc.get('burn_rate', 0.0):.2f}x  "
                f"budget left {status_doc.get('budget_remaining', 0.0):.0%}")
    anomalies = doc.get("anomalies", [])
    lines.append("")
    if anomalies:
        lines.append(_paint(f"anomalies ({len(anomalies)}):", _BOLD, color))
        for finding in anomalies:
            severity = finding.get("severity", "warning")
            code = _SEVERITY_COLOR.get(severity, _YELLOW)
            lines.append("  " + _paint(
                f"[{severity}] {finding.get('kind', '?')} "
                f"{finding.get('subject', '')}: "
                f"{finding.get('message', '')}", code, color))
    else:
        lines.append(_paint("no anomalies", _DIM, color))
    ts = doc.get("ts", {})
    lines.append(_paint(
        f"{ts.get('series', 0)} series, {ts.get('scrapes', 0)} scrapes "
        f"({ts.get('scrape_errors', 0)} errors), window "
        f"{ts.get('window_s', 0):g}s", _DIM, color))
    return "\n".join(lines)
