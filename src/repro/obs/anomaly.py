"""Anomaly detection over the rolling time-series store.

Pluggable detectors read a :class:`~repro.obs.TimeSeriesStore` and
emit typed :class:`Anomaly` findings — the bridge from "metrics have
history" to "an operator gets told something is wrong":

- :class:`LatencyRegressionDetector` — the recent p95 of a latency
  series vs its own trailing baseline window,
- :class:`MemoryDriftDetector` — measured peak memory creeping toward
  the budget, or diverging upward from the planner's promise,
- :class:`DropSpikeDetector` — a burst of ``serve.dropped.reason.*``
  in the recent window,
- :class:`ReplicaOutlierDetector` — one replica's attempt/serve p95
  far above the median of its peers (a slow or sick replica).

:class:`AnomalyMonitor` runs a detector set, deduplicating nothing —
each ``check`` reports the *current* state — while accumulating every
distinct finding for the diagnostic bundle, incrementing
``anomaly.kind.<kind>`` counters (rendered on ``/metrics`` as
``repro_anomaly_total{kind=...}``), and emitting tracer instants so
findings land on the event log next to the spans that explain them.
"""

from __future__ import annotations

import statistics
import threading
from dataclasses import dataclass
from typing import Iterable, Sequence

from .metrics import MetricsRegistry
from .timeseries import TimeSeriesStore
from .tracer import Tracer

__all__ = ["Anomaly", "AnomalyMonitor", "LatencyRegressionDetector",
           "MemoryDriftDetector", "DropSpikeDetector",
           "ReplicaOutlierDetector", "default_detectors", "replica_series"]


@dataclass(frozen=True)
class Anomaly:
    """One typed finding: what fired, on what, how bad.

    ``kind`` is the stable machine name (``latency-regression``,
    ``memory-drift``, ``drop-spike``, ``replica-outlier``);
    ``severity`` is ``warning`` or ``critical``; ``subject`` names the
    offending series or replica; ``value``/``threshold`` carry the
    numbers that tripped the rule so the finding is auditable after
    the fact.
    """

    kind: str
    severity: str
    subject: str
    message: str
    value: float
    threshold: float
    at: float

    def to_dict(self) -> dict:
        return {"kind": self.kind, "severity": self.severity,
                "subject": self.subject, "message": self.message,
                "value": self.value, "threshold": self.threshold,
                "at": self.at}


def replica_series(store: TimeSeriesStore, base: str,
                   stat: str) -> dict[str, str]:
    """Map replica id -> series name for per-replica flattened stats.

    Per-replica series land in the store under two naming shapes:
    router-side histograms flatten as ``{base}.replica.{id}.{stat}``
    (``fleet.attempt_ms.replica.0.p95``) while replica-server stats
    merged with a replica suffix appear as ``{base}.{stat}.replica.{id}``
    (``serve.latency_ms.p95.replica.0``).  Detectors accept both.
    """
    out: dict[str, str] = {}
    for name in store.names(f"{base}.replica."):
        rest = name[len(base) + len(".replica."):]
        rid, sep, tail = rest.partition(".")
        if sep and tail == stat:
            out[rid] = name
    for name in store.names(f"{base}.{stat}.replica."):
        rid = name[len(base) + len(stat) + len(".replica.") + 1:]
        if rid and "." not in rid:
            out.setdefault(rid, name)
    return out


@dataclass
class LatencyRegressionDetector:
    """Recent p95 of a latency series vs its own trailing baseline.

    Compares the mean of the series over the last ``recent_s`` against
    the mean over the preceding ``baseline_s``; fires when recent is
    both ``factor``x the baseline and at least ``min_ms`` absolute —
    the floor keeps microsecond noise on a fast model from paging
    anyone.
    """

    series: Sequence[str] = ("serve.latency_ms.p95", "fleet.latency_ms.p95")
    recent_s: float = 5.0
    baseline_s: float = 30.0
    factor: float = 2.0
    min_ms: float = 5.0

    def check(self, store: TimeSeriesStore) -> list[Anomaly]:
        now = store.clock()
        findings = []
        for name in self.series:
            window = store.window(name, self.recent_s + self.baseline_s,
                                  now=now)
            split = now - self.recent_s
            recent = [v for t, v in window if t >= split]
            baseline = [v for t, v in window if t < split]
            if len(recent) < 2 or len(baseline) < 4:
                continue
            recent_mean = sum(recent) / len(recent)
            base_mean = sum(baseline) / len(baseline)
            threshold = max(base_mean * self.factor, self.min_ms)
            if recent_mean > threshold:
                findings.append(Anomaly(
                    kind="latency-regression", severity="warning",
                    subject=name,
                    message=(f"{name} p95 {recent_mean:.2f} ms over the last "
                             f"{self.recent_s:g}s vs trailing baseline "
                             f"{base_mean:.2f} ms"),
                    value=recent_mean, threshold=threshold, at=now))
        return findings


@dataclass
class MemoryDriftDetector:
    """Measured peak creeping toward the budget or past the plan.

    Two rules over the latest samples: measured peak above
    ``watermark`` of the budget is *critical* (the next admission
    spike can breach it), and measured peak above the planned peak by
    more than ``plan_tolerance`` is a *warning* (the byte-exact
    planner promise no longer holds — exactly the drift TeMCO-style
    memory claims die by).  Series names accept an optional
    per-replica suffix.
    """

    watermark: float = 0.9
    plan_tolerance: float = 0.05

    def check(self, store: TimeSeriesStore) -> list[Anomaly]:
        now = store.clock()
        findings = []
        subjects = {""}
        for name in store.names("serve.measured_peak_bytes"):
            subjects.add(name[len("serve.measured_peak_bytes"):])
        for suffix in sorted(subjects):
            measured = store.latest(f"serve.measured_peak_bytes{suffix}")
            if measured <= 0:
                continue
            budget = store.latest(f"plan.budget_bytes{suffix}")
            planned = store.latest(f"plan.planned_peak_bytes{suffix}")
            subject = suffix.lstrip(".") or "server"
            if budget > 0 and measured > budget * self.watermark:
                findings.append(Anomaly(
                    kind="memory-drift", severity="critical",
                    subject=subject,
                    message=(f"measured peak {measured:.0f} B is past "
                             f"{self.watermark:.0%} of the "
                             f"{budget:.0f} B budget"),
                    value=measured, threshold=budget * self.watermark,
                    at=now))
            elif planned > 0 and measured > planned * (1 + self.plan_tolerance):
                findings.append(Anomaly(
                    kind="memory-drift", severity="warning",
                    subject=subject,
                    message=(f"measured peak {measured:.0f} B exceeds the "
                             f"planned peak {planned:.0f} B by more than "
                             f"{self.plan_tolerance:.0%}"),
                    value=measured,
                    threshold=planned * (1 + self.plan_tolerance), at=now))
        return findings


@dataclass
class DropSpikeDetector:
    """A burst of dropped requests in the recent window.

    Watches every ``serve.dropped.reason.*`` / ``fleet.*.reason.*``
    counter series and fires when one grew by at least ``min_drops``
    within ``window_s``.
    """

    window_s: float = 5.0
    min_drops: float = 3.0
    prefixes: Sequence[str] = ("serve.dropped.reason.",
                               "fleet.failed",)

    def check(self, store: TimeSeriesStore) -> list[Anomaly]:
        now = store.clock()
        findings = []
        names: list[str] = []
        for prefix in self.prefixes:
            names.extend(store.names(prefix))
        for name in sorted(set(names)):
            grew = store.delta(name, self.window_s, now=now)
            if grew >= self.min_drops:
                findings.append(Anomaly(
                    kind="drop-spike", severity="warning", subject=name,
                    message=(f"{name} grew by {grew:g} in the last "
                             f"{self.window_s:g}s"),
                    value=grew, threshold=self.min_drops, at=now))
        return findings


@dataclass
class ReplicaOutlierDetector:
    """One replica's p95 far above the median of its peers.

    For each latency base (router-side ``fleet.attempt_ms`` sees
    response-proxy slowness the replica's own clock cannot), compares
    every replica's latest p95 against the *median of the other
    replicas'* p95s — so with two replicas the sick one is judged
    against the healthy one, not against a median it drags up itself.
    Needs live data from at least two replicas.
    """

    bases: Sequence[str] = ("fleet.attempt_ms", "serve.latency_ms")
    stat: str = "p95"
    factor: float = 2.0
    min_ms: float = 5.0

    def check(self, store: TimeSeriesStore) -> list[Anomaly]:
        now = store.clock()
        findings = []
        flagged: set[str] = set()
        for base in self.bases:
            by_replica = replica_series(store, base, self.stat)
            values = {rid: store.latest(name)
                      for rid, name in by_replica.items()}
            values = {rid: v for rid, v in values.items() if v > 0}
            if len(values) < 2:
                continue
            for rid, value in sorted(values.items()):
                if rid in flagged:
                    continue
                peers = [v for peer, v in values.items() if peer != rid]
                peer_median = statistics.median(peers)
                threshold = max(peer_median * self.factor, self.min_ms)
                if value > threshold:
                    flagged.add(rid)
                    findings.append(Anomaly(
                        kind="replica-outlier", severity="warning",
                        subject=f"replica.{rid}",
                        message=(f"replica {rid} {base} {self.stat} "
                                 f"{value:.2f} ms vs peer median "
                                 f"{peer_median:.2f} ms"),
                        value=value, threshold=threshold, at=now))
        return findings


def default_detectors() -> list:
    """The standard detector set the fleet view installs."""
    return [LatencyRegressionDetector(), MemoryDriftDetector(),
            DropSpikeDetector(), ReplicaOutlierDetector()]


class AnomalyMonitor:
    """Run a detector set over a store; record and expose findings.

    ``check()`` returns the findings *current* at that instant; the
    monitor also keeps every distinct finding ever seen (keyed by
    ``(kind, subject, severity)`` with the latest numbers) for the
    ``repro diag`` bundle, bumps ``anomaly.kind.<kind>`` counters in
    the attached registry on each new firing, and emits ``anomaly``
    instants on the attached tracer.
    """

    def __init__(self, store: TimeSeriesStore,
                 detectors: Iterable | None = None, *,
                 registry: MetricsRegistry | None = None,
                 tracer: Tracer | None = None) -> None:
        self.store = store
        self.detectors = list(detectors) if detectors is not None \
            else default_detectors()
        self.registry = registry
        self.tracer = tracer
        self.checks = 0
        self._findings: dict[tuple[str, str, str], Anomaly] = {}
        self._lock = threading.Lock()

    def check(self) -> list[Anomaly]:
        current: list[Anomaly] = []
        for detector in self.detectors:
            try:
                current.extend(detector.check(self.store))
            except Exception:
                if self.registry is not None:
                    self.registry.inc("anomaly.detector_errors")
        with self._lock:
            self.checks += 1
            for finding in current:
                key = (finding.kind, finding.subject, finding.severity)
                fresh = key not in self._findings
                self._findings[key] = finding
                if fresh:
                    if self.registry is not None:
                        self.registry.inc(f"anomaly.kind.{finding.kind}")
                    if self.tracer is not None:
                        self.tracer.instant(
                            "anomaly", kind=finding.kind,
                            severity=finding.severity,
                            subject=finding.subject,
                            message=finding.message)
        return current

    def findings(self) -> list[Anomaly]:
        """Every distinct finding seen so far (latest numbers)."""
        with self._lock:
            return sorted(self._findings.values(),
                          key=lambda a: (a.kind, a.subject))
