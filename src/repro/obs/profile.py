"""Hot-path profiler: per-op and per-layer attribution from trace spans.

The executor records one span per scheduled node, carrying the op
type, the bytes it moved (inputs + output + params), its analytic FLOP
count and any fused-kernel scratch (see
:func:`repro.runtime.executor.execute`).  This module turns those raw
spans into the attribution TeMCO's analysis is about — *where* the
time and the data movement go:

- :func:`profile_tracer` aggregates node spans into
  :class:`OpStat` rows keyed by **op type** and by **layer** (node
  name): self time, share of executor time, total bytes, analytic
  FLOPs and the derived arithmetic intensity (FLOPs/byte — low means
  memory-bound, exactly the ops the decompositions target), plus peak
  fused scratch.
- :func:`collapsed_stacks` / :func:`write_collapsed_stacks` export the
  span forest in Brendan Gregg's collapsed-stack format
  (``root;child;leaf <self_us>``), the input of ``flamegraph.pl`` and
  of speedscope's "import" box.

Everything works on any tracer — an offline ``repro profile`` run, a
serve-session trace, a merged :class:`~repro.runtime.parallel.ParallelRunner`
trace — because attribution keys off span args, not call sites.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from .events import SpanRecord
from .tracer import Tracer

__all__ = ["OpStat", "ProfileReport", "profile_spans", "profile_tracer",
           "collapsed_stacks", "write_collapsed_stacks"]


@dataclass
class OpStat:
    """Aggregated cost of one op type (or one layer) across a trace."""

    key: str
    count: int = 0
    total_us: float = 0.0
    total_bytes: int = 0
    flops: int = 0
    scratch_bytes: int = 0  #: max fused-kernel tile bytes seen
    #: fraction of all attributed executor time
    share: float = 0.0

    @property
    def mean_us(self) -> float:
        return self.total_us / self.count if self.count else 0.0

    @property
    def intensity(self) -> float:
        """Arithmetic intensity, FLOPs per byte moved (0 if byte-free)."""
        return self.flops / self.total_bytes if self.total_bytes else 0.0

    @property
    def gflops_per_s(self) -> float:
        """Achieved arithmetic throughput over the op's own span time."""
        return (self.flops / (self.total_us * 1e-6) / 1e9
                if self.total_us else 0.0)

    def to_dict(self) -> dict:
        return {"key": self.key, "count": self.count,
                "total_us": self.total_us, "mean_us": self.mean_us,
                "share": self.share, "total_bytes": self.total_bytes,
                "flops": self.flops, "intensity": self.intensity,
                "gflops_per_s": self.gflops_per_s,
                "scratch_bytes": self.scratch_bytes}


@dataclass
class ProfileReport:
    """The hot-path attribution of one traced session."""

    model: str = ""
    runs: int = 0
    total_us: float = 0.0  #: summed self time of all node spans
    by_op: list[OpStat] = field(default_factory=list)
    by_node: list[OpStat] = field(default_factory=list)

    def top_ops(self, n: int = 10) -> list[OpStat]:
        return self.by_op[:n]

    def top_nodes(self, n: int = 10) -> list[OpStat]:
        return self.by_node[:n]

    def to_dict(self) -> dict:
        return {"model": self.model, "runs": self.runs,
                "total_us": self.total_us,
                "by_op": [s.to_dict() for s in self.by_op],
                "by_node": [s.to_dict() for s in self.by_node]}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=1, sort_keys=True)


def _is_node_span(span: SpanRecord) -> bool:
    """Executor node spans are the ones stamped with an ``op`` arg."""
    return "op" in span.args


def profile_spans(spans: Iterable[SpanRecord], *, model: str = "",
                  runs: int = 0) -> ProfileReport:
    """Aggregate executor node spans into per-op / per-layer stats.

    Spans without an ``op`` arg (pipeline stages, serve batches) are
    ignored; they are containers, not attributable work.  Rows come
    back ranked by total self time, descending.
    """
    by_op: dict[str, OpStat] = {}
    by_node: dict[str, OpStat] = {}
    total_us = 0.0
    for span in spans:
        if not _is_node_span(span):
            continue
        total_us += span.duration_us
        for table, key in ((by_op, str(span.args["op"])),
                           (by_node, span.name)):
            stat = table.get(key)
            if stat is None:
                stat = table[key] = OpStat(key=key)
            stat.count += 1
            stat.total_us += span.duration_us
            stat.total_bytes += int(span.args.get("bytes", 0))
            stat.flops += int(span.args.get("flops", 0))
            stat.scratch_bytes = max(stat.scratch_bytes,
                                     int(span.args.get("scratch", 0)))
    for table in (by_op, by_node):
        for stat in table.values():
            stat.share = stat.total_us / total_us if total_us else 0.0
    rank = lambda table: sorted(  # noqa: E731
        table.values(), key=lambda s: (-s.total_us, s.key))
    return ProfileReport(model=model, runs=runs, total_us=total_us,
                         by_op=rank(by_op), by_node=rank(by_node))


def profile_tracer(tracer: Tracer, *, model: str = "") -> ProfileReport:
    """Profile every executor node span the tracer recorded."""
    runs = int(tracer.metrics.get("executor.runs", 0))
    return profile_spans(tracer.spans, model=model, runs=runs)


# ---------------------------------------------------------------------------
# flamegraph export
# ---------------------------------------------------------------------------

def collapsed_stacks(tracer: Tracer, *, root: str = "repro") -> list[str]:
    """The span forest as collapsed-stack lines, ``path self_us``.

    Nesting is reconstructed per timeline row (tid) by interval
    containment — robust across spans recorded with
    :meth:`~repro.obs.Tracer.complete` from concurrent workers, where
    the recorded ``depth`` of one shared tracer is meaningless.  Each
    span contributes its *self* time (duration minus contained
    children), so the flamegraph's widths add up to wall time per row.
    """
    weights: dict[str, float] = {}
    by_tid: dict[int, list[SpanRecord]] = {}
    for span in tracer.spans:
        by_tid.setdefault(span.tid, []).append(span)

    for spans in by_tid.values():
        # parents first: earlier start, then longer duration
        spans.sort(key=lambda s: (s.start_us, -s.duration_us))
        stack: list[tuple[SpanRecord, float]] = []  # (span, child time)

        def pop_into(weights: dict[str, float], path: list[str]) -> None:
            span, child_us = stack.pop()
            self_us = max(span.duration_us - child_us, 0.0)
            line = ";".join(path + [span.name])
            weights[line] = weights.get(line, 0.0) + self_us

        for span in spans:
            while stack and stack[-1][0].end_us <= span.start_us:
                path = [root] + [s.name for s, _ in stack[:-1]]
                pop_into(weights, path)
            if stack:
                top, child_us = stack[-1]
                stack[-1] = (top, child_us + span.duration_us)
            stack.append((span, 0.0))
        while stack:
            path = [root] + [s.name for s, _ in stack[:-1]]
            pop_into(weights, path)

    return [f"{path} {round(weight)}"
            for path, weight in sorted(weights.items())]


def write_collapsed_stacks(tracer: Tracer, path: str | Path, *,
                           root: str = "repro") -> Path:
    """Write the collapsed-stack flamegraph input at ``path``.

    Feed the file to ``flamegraph.pl`` or paste it into speedscope
    (https://www.speedscope.app) to browse the hot path interactively.
    """
    path = Path(path)
    path.write_text("\n".join(collapsed_stacks(tracer, root=root)) + "\n")
    return path
