"""Prometheus text exposition (format version 0.0.4) of a registry.

:func:`prometheus_text` renders a
:class:`~repro.obs.metrics.MetricsRegistry` as the plain-text format
Prometheus scrapes, so the serving frontend's ``GET /metrics``
endpoint makes a running :class:`~repro.serve.InferenceServer`
observable by any off-the-shelf Prometheus/Grafana stack — stdlib
only, like the rest of the repo:

- counters render as ``TYPE counter`` with the conventional ``_total``
  suffix,
- counters and gauges following the ``<base>.<label>.<value>`` naming
  convention (for the label keys in :data:`LABEL_KEYS`) collapse into
  one labeled family: ``serve.dropped.reason.queue_full`` and
  ``serve.dropped.reason.deadline_expired`` render as
  ``repro_serve_dropped_total{reason="queue_full"} ...`` — so a single
  PromQL ``sum by (reason)`` breaks overload/shed/expiry apart — and
  the fleet's ``fleet.replica_up.replica.0`` renders as
  ``repro_fleet_replica_up{replica="0"}``,
- gauges render as ``TYPE gauge``,
- when a ``build_info`` version string is passed (the serving
  frontends pass :data:`repro.__version__`), a conventional
  ``repro_build_info{version="..."} 1`` gauge leads the document so
  rollouts are distinguishable scrape-to-scrape,
- histograms render as ``TYPE summary``: the p50/p95/p99 reservoir
  quantiles with ``quantile`` labels plus ``_sum`` / ``_count``, and
  the exact min/max as companion gauges.

Metric names are sanitized to the Prometheus grammar
(``[a-zA-Z_:][a-zA-Z0-9_:]*``): the registry's dotted names
(``serve.latency_ms``) become underscore-joined and namespaced
(``repro_serve_latency_ms``).
"""

from __future__ import annotations

import re

from .metrics import MetricsRegistry

__all__ = ["prometheus_text", "prometheus_metric_name", "CONTENT_TYPE",
           "LABEL_KEYS"]

#: the Content-Type a /metrics response must declare
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_INVALID = re.compile(r"[^a-zA-Z0-9_:]")

#: summary quantile label per snapshot key
_QUANTILE_KEYS = (("p50", "0.5"), ("p95", "0.95"), ("p99", "0.99"))

#: dotted-name segments that collapse into Prometheus labels:
#: ``<base>.<key>.<value>`` renders as ``<base>{<key>="<value>"}``
LABEL_KEYS = ("reason", "replica", "kind")


def _escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format: backslash,
    double quote and newline must be ``\\\\``, ``\\"`` and ``\\n`` —
    drop-reason strings and version tags can carry any of them."""
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _split_labeled(name: str) -> tuple[str, str, str] | None:
    """``{base}.{key}.{value}`` -> ``(base, key, value)`` for the keys
    in :data:`LABEL_KEYS` (first matching key wins, so one family
    carries one label); ``None`` for plain names."""
    for key in LABEL_KEYS:
        base, sep, label_value = name.partition(f".{key}.")
        if sep and label_value:
            return base, key, label_value
    return None


def _partition_labeled(metrics: dict[str, float]) -> tuple[
        dict[str, float], dict[tuple[str, str], dict[str, float]]]:
    """Split ``{base}.{label}.{value}``-named metrics from plain ones.

    Returns ``(plain, labeled)`` where ``labeled`` maps ``(base,
    label_key)`` to ``{label_value: metric_value}``.
    """
    plain: dict[str, float] = {}
    labeled: dict[tuple[str, str], dict[str, float]] = {}
    for name, value in metrics.items():
        split = _split_labeled(name)
        if split is not None:
            base, key, label_value = split
            labeled.setdefault((base, key), {})[label_value] = value
        else:
            plain[name] = value
    return plain, labeled


def prometheus_metric_name(name: str, namespace: str = "repro") -> str:
    """Sanitize a registry metric name into a valid Prometheus name."""
    flat = _INVALID.sub("_", name)
    full = f"{namespace}_{flat}" if namespace else flat
    if not full or full[0].isdigit():
        full = f"_{full}"
    return full


def _num(value: float) -> str:
    """Exposition number rendering: integers stay exact (no %g
    truncation of byte counts), floats use repr for full precision."""
    value = float(value)
    if value.is_integer() and abs(value) < 2 ** 63:
        return str(int(value))
    return repr(value)


def prometheus_text(registry: MetricsRegistry, *, namespace: str = "repro",
                    extra_gauges: dict[str, float] | None = None,
                    build_info: str | None = None) -> str:
    """The registry as one Prometheus text-exposition document.

    ``extra_gauges`` lets a caller append point-in-time values that
    live outside the registry (the server's in-flight count, worker
    count); they render as gauges under the same namespace.
    ``build_info`` (a version string) prepends the conventional
    ``<namespace>_build_info{version="..."} 1`` gauge.
    """
    counters, gauges, histograms = registry.export()
    if extra_gauges:
        gauges = {**gauges, **{k: float(v) for k, v in extra_gauges.items()}}
    lines: list[str] = []

    if build_info is not None:
        metric = prometheus_metric_name("build_info", namespace)
        lines.append(f"# HELP {metric} Package version serving this "
                     f"endpoint (constant 1; the label carries the value).")
        lines.append(f"# TYPE {metric} gauge")
        lines.append(
            f'{metric}{{version="{_escape_label_value(build_info)}"}} 1')

    plain, labeled = _partition_labeled(counters)

    for name in sorted(plain):
        metric = prometheus_metric_name(name, namespace)
        if not metric.endswith("_total"):
            metric += "_total"
        lines.append(f"# HELP {metric} Counter {name!r} from the repro "
                     f"metrics registry.")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_num(plain[name])}")

    for base, key in sorted(labeled):
        family = labeled[(base, key)]
        metric = prometheus_metric_name(base, namespace)
        if not metric.endswith("_total"):
            metric += "_total"
        lines.append(f"# HELP {metric} Counter {base!r} from the repro "
                     f"metrics registry, labeled by {key}.")
        lines.append(f"# TYPE {metric} counter")
        for value in sorted(family):
            lines.append(f'{metric}{{{key}="{_escape_label_value(value)}"}} '
                         f"{_num(family[value])}")

    plain_gauges, labeled_gauges = _partition_labeled(gauges)

    for name in sorted(plain_gauges):
        metric = prometheus_metric_name(name, namespace)
        lines.append(f"# HELP {metric} Gauge {name!r} from the repro "
                     f"metrics registry.")
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_num(plain_gauges[name])}")

    for base, key in sorted(labeled_gauges):
        family = labeled_gauges[(base, key)]
        metric = prometheus_metric_name(base, namespace)
        lines.append(f"# HELP {metric} Gauge {base!r} from the repro "
                     f"metrics registry, labeled by {key}.")
        lines.append(f"# TYPE {metric} gauge")
        for value in sorted(family):
            lines.append(f'{metric}{{{key}="{_escape_label_value(value)}"}} '
                         f"{_num(family[value])}")

    plain_hists: dict[str, dict[str, float]] = {}
    labeled_hists: dict[tuple[str, str], dict[str, dict[str, float]]] = {}
    for name, snap in histograms.items():
        split = _split_labeled(name)
        if split is not None:
            base, key, label_value = split
            labeled_hists.setdefault((base, key), {})[label_value] = snap
        else:
            plain_hists[name] = snap

    for name in sorted(plain_hists):
        snap = plain_hists[name]
        metric = prometheus_metric_name(name, namespace)
        lines.append(f"# HELP {metric} Distribution {name!r} from the "
                     f"repro metrics registry (reservoir quantiles).")
        lines.append(f"# TYPE {metric} summary")
        for key, quantile in _QUANTILE_KEYS:
            lines.append(f'{metric}{{quantile="{quantile}"}} '
                         f"{_num(snap[key])}")
        lines.append(f"{metric}_sum {_num(snap['sum'])}")
        lines.append(f"{metric}_count {_num(snap['count'])}")
        for stat in ("min", "max"):
            lines.append(f"# TYPE {metric}_{stat} gauge")
            lines.append(f"{metric}_{stat} {_num(snap[stat])}")

    for base, label_key in sorted(labeled_hists):
        family = labeled_hists[(base, label_key)]
        metric = prometheus_metric_name(base, namespace)
        lines.append(f"# HELP {metric} Distribution {base!r} from the "
                     f"repro metrics registry, labeled by {label_key}.")
        lines.append(f"# TYPE {metric} summary")
        for label_value in sorted(family):
            snap = family[label_value]
            tag = f'{label_key}="{_escape_label_value(label_value)}"'
            for key, quantile in _QUANTILE_KEYS:
                lines.append(f'{metric}{{{tag},quantile="{quantile}"}} '
                             f"{_num(snap[key])}")
            lines.append(f"{metric}_sum{{{tag}}} {_num(snap['sum'])}")
            lines.append(f"{metric}_count{{{tag}}} {_num(snap['count'])}")

    return "\n".join(lines) + "\n"
