"""Single source of truth for the package version.

Lives in its own leaf module so low-level subsystems (notably the
Prometheus exposition in :mod:`repro.obs.prometheus`, which stamps a
``repro_build_info{version="..."}`` gauge onto every ``/metrics``
scrape) can import it without pulling in the whole :mod:`repro`
package — the top-level ``__init__`` imports the compiler, runtime and
models, which would be a circular import from inside ``repro.obs``.
"""

__version__ = "1.0.0"
