"""Measurement-driven tile search: grid seed → greedy hill-climb.

The search operates on the cost model's pruned candidate list.  It
measures a small *seed* set (the predicted-best candidate, the default
configuration, and the blocking extremes), then hill-climbs from the
best measured point to unmeasured neighbours in the
``(block_size, spatial_tile)`` grid, stopping early when a patience
budget of consecutive non-improvements is spent or the trial budget
runs out.  Every trial is reported through a callback so the tuner can
emit it as an observability decision event.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from .cost_model import CostEstimate

__all__ = ["Trial", "SearchResult", "greedy_search"]


@dataclass(frozen=True)
class Trial:
    """One measured candidate."""

    block_size: int
    spatial_tile: int
    seconds: float
    scratch_bytes: int

    @property
    def key(self) -> tuple[int, int]:
        return (self.block_size, self.spatial_tile)


@dataclass
class SearchResult:
    """Outcome of one site's search."""

    best: Trial
    trials: list[Trial] = field(default_factory=list)

    @property
    def measured(self) -> int:
        return len(self.trials)

    def trial_for(self, key: tuple[int, int]) -> Trial | None:
        for t in self.trials:
            if t.key == key:
                return t
        return None


def _neighbors(key: tuple[int, int],
               candidates: dict[tuple[int, int], CostEstimate]
               ) -> list[tuple[int, int]]:
    """Grid neighbours: adjacent block at the same tile, same/nearest
    block at the adjacent tile.  Ordered by predicted score."""
    block, tile = key
    tiles = sorted({t for _b, t in candidates})
    blocks_at = {t: sorted(b for b, t2 in candidates if t2 == t)
                 for t in tiles}
    out: list[tuple[int, int]] = []
    row = blocks_at[tile]
    i = row.index(block)
    if i > 0:
        out.append((row[i - 1], tile))
    if i + 1 < len(row):
        out.append((row[i + 1], tile))
    j = tiles.index(tile)
    for nj in (j - 1, j + 1):
        if 0 <= nj < len(tiles):
            nt = tiles[nj]
            nearest = min(blocks_at[nt], key=lambda b: abs(b - block))
            out.append((nearest, nt))
    uniq = [k for k in dict.fromkeys(out) if k in candidates]
    return sorted(uniq, key=lambda k: candidates[k].score)


def greedy_search(candidates: list[CostEstimate],
                  measure: Callable[[int, int], float],
                  *,
                  budget: int = 12,
                  patience: int = 3,
                  seeds: list[tuple[int, int]] | None = None,
                  on_trial: Callable[[Trial], None] | None = None,
                  ) -> SearchResult:
    """Search ``candidates`` for the fastest measured configuration.

    Parameters
    ----------
    measure:
        ``measure(block_size, spatial_tile) -> seconds``; called at
        most ``budget`` times.
    seeds:
        Candidate keys to measure first (deduplicated, invalid ones
        ignored).  Defaults to the predicted-best plus the blocking
        extremes.
    patience:
        Consecutive non-improving trials tolerated during the climb.
    """
    if not candidates:
        raise ValueError("greedy_search needs at least one candidate")
    budget = max(1, int(budget))
    index = {(c.block_size, c.spatial_tile): c for c in candidates}
    measured: dict[tuple[int, int], Trial] = {}
    trials: list[Trial] = []

    def run(key: tuple[int, int]) -> Trial | None:
        if key in measured:
            return measured[key]
        if len(measured) >= budget:
            return None
        cand = index[key]
        trial = Trial(block_size=cand.block_size,
                      spatial_tile=cand.spatial_tile,
                      seconds=float(measure(cand.block_size, cand.spatial_tile)),
                      scratch_bytes=cand.scratch_bytes)
        measured[key] = trial
        trials.append(trial)
        if on_trial is not None:
            on_trial(trial)
        return trial

    by_score = sorted(index, key=lambda k: index[k].score)
    blocks = sorted(b for b, _t in index)
    seed_keys = list(seeds or [])
    seed_keys += [by_score[0], (blocks[0], 0), (blocks[-1], 0)]
    for key in dict.fromkeys(k for k in seed_keys if k in index):
        if run(key) is None:
            break

    best = min(measured.values(), key=lambda t: t.seconds)
    stall = 0
    while len(measured) < budget and stall <= patience:
        frontier = [k for k in _neighbors(best.key, index) if k not in measured]
        if not frontier:
            break
        improved = False
        for key in frontier:
            trial = run(key)
            if trial is None:
                break
            if trial.seconds < best.seconds:
                best, stall, improved = trial, 0, True
                break
            stall += 1
            if stall > patience:
                break
        if not improved and (stall > patience or len(measured) >= budget):
            break
        if not improved and not any(k not in measured
                                    for k in _neighbors(best.key, index)):
            break
    return SearchResult(best=best, trials=trials)
