"""The autotuner: measured tile selection + cache/compiler integration.

Two tuning modes over an optimized (post-fusion) graph:

- ``per-site`` (default) — each fused kernel is timed *in isolation*
  on its real weights and representative input shapes; the greedy
  search picks the fastest ``(block_size, spatial_tile)`` per site.
- ``global`` — one shared pair, scored by whole-graph wall-clock; far
  fewer trials, useful when sites are many and similar.

Either way the tuner ends with a whole-graph A/B guard: the tuned
graph is re-timed against the default configuration and *falls back*
to the default tiles if it lost (measurement noise or per-site wins
that do not compose), so accepting a tuning result can never make the
model slower than the untuned fused path.  Peak internal-tensor bytes
are unaffected by tile choices by construction (tiles are scratch, not
internal tensors); the record stores the estimate as evidence.

Every trial and every selection is emitted through :mod:`repro.obs`
(pass name ``"tune"``), so ``repro trace`` shows why each tile won.
"""

from __future__ import annotations

import logging
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Callable

import numpy as np

from ..core import TeMCOConfig, estimate_peak_internal, optimize
from ..decompose import DecompositionConfig, decompose_graph
from ..ir.graph import Graph
from ..ir.node import Node
from ..kernels import DEFAULT_BLOCK_SIZE, fused_block, fused_restore
from ..obs import get_tracer
from ..runtime import InferenceSession
from .cache import SiteRecord, TuneCache, TuneRecord, new_record
from .cost_model import (DEFAULT_BLOCK_SIZES, DEFAULT_SPATIAL_TILES, SiteSpec,
                         prune_candidates, site_candidates)
from .search import Trial, greedy_search

logger = logging.getLogger(__name__)

__all__ = ["TuneConfig", "TuneResult", "collect_sites", "tune_graph",
           "apply_overrides", "tune_model", "cached_overrides",
           "load_cached_plan"]


@dataclass(frozen=True)
class TuneConfig:
    """Search-space and budget knobs for one tuning run."""

    mode: str = "per-site"  #: ``per-site`` or ``global``
    #: measured trials per site (``per-site``) or in total (``global``)
    budget: int = 12
    #: timing repeats per trial; the minimum is kept (least-noise estimator)
    repeats: int = 2
    block_sizes: tuple[int, ...] = DEFAULT_BLOCK_SIZES
    spatial_tiles: tuple[int, ...] = DEFAULT_SPATIAL_TILES
    #: candidates surviving cost-model pruning, per site
    keep: int = 8
    #: consecutive non-improving trials before the climb stops
    patience: int = 3
    #: optional hard cap on per-site scratch bytes (None = uncapped; the
    #: C' clamp already bounds scratch at one full-width tile)
    max_scratch_bytes: int | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.mode not in ("per-site", "global"):
            raise ValueError(f"bad tune mode {self.mode!r}")
        if self.budget < 1:
            raise ValueError(f"budget must be >= 1, got {self.budget}")


@dataclass
class TuneResult:
    """Chosen tiles for one optimized graph."""

    mode: str
    sites: list[SiteRecord] = field(default_factory=list)

    @property
    def overrides(self) -> dict[str, tuple[int, int]]:
        return {s.site_key: (s.block_size, s.spatial_tile) for s in self.sites}

    @property
    def total_trials(self) -> int:
        return sum(s.trials for s in self.sites)


def collect_sites(graph: Graph) -> list[Node]:
    """The fused-kernel nodes of an optimized graph, schedule order."""
    return [n for n in graph.nodes if n.op in ("fused_block", "fused_restore")]


def apply_overrides(graph: Graph,
                    overrides: dict[str, tuple[int, int]]) -> int:
    """Patch fused nodes' tile attrs in place; returns #sites patched."""
    patched = 0
    for node in collect_sites(graph):
        key = str((node.attrs.get("fused_from") or [node.name])[0])
        if key not in overrides:
            continue
        block, tile = overrides[key]
        node.attrs["block_size"] = min(max(1, int(block)),
                                       int(node.params["w1"].shape[0]))
        node.attrs["spatial_tile"] = int(tile)
        patched += 1
    return patched


# ---------------------------------------------------------------------------
# measurement
# ---------------------------------------------------------------------------

def _site_measurer(node: Node, repeats: int,
                   seed: int) -> Callable[[int, int], float]:
    """Time the fused kernel directly on a representative input."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=node.inputs[0].shape).astype(node.inputs[0].dtype.np)
    kwargs: dict[str, Any] = dict(
        act=node.attrs.get("act"),
        pool=node.attrs.get("pool"),
        upsample=int(node.attrs.get("upsample", 0) or 0),
        act_params=node.attrs.get("act_params"))

    def measure(block_size: int, spatial_tile: int) -> float:
        best = float("inf")
        for rep in range(max(1, repeats) + 1):  # +1 warmup, discarded
            start = time.perf_counter()
            if node.op == "fused_block":
                fused_block(x, node.params["w1"], node.params.get("b1"),
                            node.params["w2"], node.params.get("b2"),
                            block_size=block_size, spatial_tile=spatial_tile,
                            **kwargs)
            else:
                fused_restore(x, node.params["w1"], node.params.get("b1"),
                              block_size=block_size, spatial_tile=spatial_tile,
                              **kwargs)
            elapsed = time.perf_counter() - start
            if rep > 0:
                best = min(best, elapsed)
        return best

    return measure


def _graph_seconds(graph: Graph, *, repeats: int, seed: int) -> float:
    rng = np.random.default_rng(seed)
    inputs = {v.name: rng.normal(size=v.shape).astype(v.dtype.np)
              for v in graph.inputs}
    timing = InferenceSession(graph).time_inference(
        inputs, warmup=1, repeats=max(1, repeats))
    return timing.best


# ---------------------------------------------------------------------------
# search drivers
# ---------------------------------------------------------------------------

def tune_graph(optimized: Graph,
               config: TuneConfig | None = None) -> TuneResult:
    """Pick tile configurations for every fusion site of ``optimized``.

    The graph is not modified; apply the result with
    :func:`apply_overrides` or via ``FusionConfig(site_overrides=...)``.
    """
    config = config or TuneConfig()
    tracer = get_tracer()
    result = TuneResult(mode=config.mode)
    sites = collect_sites(optimized)
    if not sites:
        return result
    with tracer.span("tune", category="tuner", graph=optimized.name,
                     mode=config.mode, sites=len(sites)):
        if config.mode == "per-site":
            for node in sites:
                result.sites.append(_tune_site(node, config, tracer))
        else:
            result.sites.extend(_tune_global(optimized, sites, config, tracer))
    return result


def _tune_site(node: Node, config: TuneConfig, tracer) -> SiteRecord:
    site = SiteSpec.from_node(node)
    candidates = prune_candidates(
        site, site_candidates(site, config.block_sizes, config.spatial_tiles),
        keep=config.keep, max_scratch_bytes=config.max_scratch_bytes)
    default_key = (min(DEFAULT_BLOCK_SIZE, site.c_prime), 0)
    measure = _site_measurer(node, config.repeats, config.seed)

    def on_trial(trial: Trial) -> None:
        tracer.decision("tune", site.name, "trial", "measured",
                        block_size=trial.block_size,
                        spatial_tile=trial.spatial_tile,
                        seconds=trial.seconds,
                        scratch_bytes=trial.scratch_bytes)

    with tracer.span("tune.site", category="tuner", site=site.name,
                     candidates=len(candidates)):
        outcome = greedy_search(candidates, measure, budget=config.budget,
                                patience=config.patience,
                                seeds=[default_key], on_trial=on_trial)
    baseline = outcome.trial_for(default_key) or outcome.best
    best = outcome.best
    tracer.decision("tune", site.name, "select", "measured_best",
                    block_size=best.block_size,
                    spatial_tile=best.spatial_tile,
                    seconds=best.seconds,
                    baseline_seconds=baseline.seconds,
                    trials=outcome.measured)
    logger.info("tune: %s -> block %d tile %d (%.3f ms vs default %.3f ms, "
                "%d trials)", site.name, best.block_size, best.spatial_tile,
                best.seconds * 1e3, baseline.seconds * 1e3, outcome.measured)
    return SiteRecord(
        site_key=site.site_key, node=site.name,
        block_size=best.block_size, spatial_tile=best.spatial_tile,
        seconds=best.seconds, baseline_seconds=baseline.seconds,
        scratch_bytes=best.scratch_bytes,
        baseline_scratch_bytes=baseline.scratch_bytes,
        trials=outcome.measured)


def _tune_global(optimized: Graph, sites: list[Node], config: TuneConfig,
                 tracer) -> list[SiteRecord]:
    """One shared tile pair scored by whole-graph wall-clock."""
    specs = [SiteSpec.from_node(n) for n in sites]
    blocks = sorted({min(max(1, b), max(s.c_prime for s in specs))
                     for b in config.block_sizes})
    tiles = sorted({int(t) for t in config.spatial_tiles if t >= 0})
    pairs = [(b, t) for t in tiles for b in blocks]
    work = optimized.clone(f"{optimized.name}.tune")
    measured: list[tuple[int, int, float]] = []

    def measure(block: int, tile: int) -> float:
        apply_overrides(work, {s.site_key: (block, tile) for s in specs})
        seconds = _graph_seconds(work, repeats=config.repeats,
                                 seed=config.seed)
        tracer.decision("tune", optimized.name, "trial", "measured_global",
                        block_size=block, spatial_tile=tile, seconds=seconds)
        measured.append((block, tile, seconds))
        return seconds

    default_key = (DEFAULT_BLOCK_SIZE, 0)
    ordered = sorted(pairs, key=lambda p: (p != default_key, p))
    for block, tile in ordered[:max(1, config.budget)]:
        measure(block, tile)
    best_block, best_tile, best_secs = min(measured, key=lambda m: m[2])
    baseline = next((m for m in measured
                     if (m[0], m[1]) == default_key), measured[0])
    tracer.decision("tune", optimized.name, "select", "measured_best_global",
                    block_size=best_block, spatial_tile=best_tile,
                    seconds=best_secs, baseline_seconds=baseline[2],
                    trials=len(measured))
    records = []
    for spec in specs:
        blk = min(best_block, spec.c_prime)
        records.append(SiteRecord(
            site_key=spec.site_key, node=spec.name,
            block_size=blk, spatial_tile=best_tile,
            seconds=best_secs, baseline_seconds=baseline[2],
            scratch_bytes=0, baseline_scratch_bytes=0,
            trials=len(measured) if spec is specs[0] else 0))
    return records


# ---------------------------------------------------------------------------
# cache-aware entry points
# ---------------------------------------------------------------------------

def _cache_extra(decomposition: DecompositionConfig, temco: TeMCOConfig,
                 config: TuneConfig) -> dict[str, Any]:
    """The non-graph inputs that determine a tuning result.

    Deliberately excludes the pipeline enable/disable flags: overrides
    are keyed by lconv name, so a variant that fuses only a subset of
    sites simply ignores the extra entries — one tuning run serves the
    fusion-only and full-pipeline variants alike.  (The cached *plan*
    is always the full default pipeline's output.)
    """
    fusion = temco.fusion
    return {
        "decomposition": asdict(decomposition),
        "concat_strategy": temco.concat_strategy,
        "mode": config.mode,
        "block_sizes": list(config.block_sizes),
        "spatial_tiles": list(config.spatial_tiles),
        "fusion_defaults": [fusion.block_size, fusion.spatial_tile,
                            fusion.allow_pool, fusion.allow_upsample,
                            fusion.require_activation, fusion.allow_epilogue],
    }


def tune_model(original: Graph, *,
               cache: TuneCache | None = None,
               decomposition: DecompositionConfig | None = None,
               temco: TeMCOConfig | None = None,
               config: TuneConfig | None = None,
               force: bool = False) -> tuple[Graph, TuneRecord, bool]:
    """End-to-end: decompose → optimize → tune → cache.

    Returns ``(compiled plan, record, cache_hit)``.  On a hit both the
    tuner *and* the compiler are skipped — the plan graph comes
    straight off disk.
    """
    cache = cache or TuneCache()
    decomposition = decomposition or DecompositionConfig()
    temco = temco or TeMCOConfig()
    config = config or TuneConfig()
    tracer = get_tracer()
    key = cache.key_for(original,
                        extra=_cache_extra(decomposition, temco, config))

    if not force:
        record = cache.load(key)
        plan = cache.load_plan(key) if record is not None else None
        if record is not None and plan is not None:
            tracer.decision("tune", original.name, "cache_hit", "key_match",
                            key=key, sites=len(record.sites))
            logger.info("tune cache hit for %s (key %s)", original.name, key)
            return plan, record, True
    tracer.decision("tune", original.name, "cache_miss",
                    "forced" if force else "no_entry", key=key)

    decomposed = decompose_graph(original, decomposition)
    optimized, _report = optimize(decomposed, temco)
    result = tune_graph(optimized, config)

    record = new_record(key, original.name, mode=config.mode,
                        budget=config.budget)
    record.sites = result.sites
    record.total_trials = result.total_trials

    if result.sites:
        # whole-graph A/B guard: tuned tiles must beat the default tiles
        record.default_seconds = _graph_seconds(
            optimized, repeats=config.repeats, seed=config.seed)
        apply_overrides(optimized, result.overrides)
        record.tuned_seconds = _graph_seconds(
            optimized, repeats=config.repeats, seed=config.seed)
        if record.tuned_seconds > record.default_seconds:
            apply_overrides(optimized, {s.site_key: (DEFAULT_BLOCK_SIZE, 0)
                                        for s in result.sites})
            for s in record.sites:
                s.block_size, s.spatial_tile = DEFAULT_BLOCK_SIZE, 0
            record.fell_back_to_default = True
            tracer.decision("tune", original.name, "fallback",
                            "default_not_beaten",
                            tuned_seconds=record.tuned_seconds,
                            default_seconds=record.default_seconds)
            logger.info("tune: %s fell back to default tiles (%.3f ms > "
                        "%.3f ms)", original.name,
                        record.tuned_seconds * 1e3,
                        record.default_seconds * 1e3)
    record.peak_internal_bytes = estimate_peak_internal(optimized)

    cache.store(record, plan=optimized)
    tracer.decision("tune", original.name, "cache_store", "tuned",
                    key=key, sites=len(record.sites),
                    trials=record.total_trials)
    return optimized, record, False


def load_cached_plan(original: Graph, *,
                     cache: TuneCache | None = None,
                     decomposition: DecompositionConfig | None = None,
                     temco: TeMCOConfig | None = None,
                     config: TuneConfig | None = None,
                     ) -> tuple[Graph, TuneRecord] | None:
    """The cached compiled plan + record for ``original``; None on a miss.

    Lookup-only companion of :func:`tune_model` — never tunes, never
    compiles.
    """
    cache = cache or TuneCache()
    key = cache.key_for(original, extra=_cache_extra(
        decomposition or DecompositionConfig(), temco or TeMCOConfig(),
        config or TuneConfig()))
    record = cache.load(key)
    plan = cache.load_plan(key) if record is not None else None
    if record is None or plan is None:
        get_tracer().decision("tune", original.name, "cache_miss",
                              "no_entry", key=key)
        return None
    get_tracer().decision("tune", original.name, "cache_hit", "key_match",
                          key=key, sites=len(record.sites))
    return plan, record


def cached_overrides(original: Graph, *,
                     cache: TuneCache | None = None,
                     decomposition: DecompositionConfig | None = None,
                     temco: TeMCOConfig | None = None,
                     config: TuneConfig | None = None,
                     ) -> dict[str, tuple[int, int]] | None:
    """Look up tuned site overrides without tuning; None on a miss.

    This is the compiler-side hook: ``TeMCOCompiler`` can consult it to
    fuse with tuned tiles while recompiling from source.
    """
    cache = cache or TuneCache()
    record = cache.load(cache.key_for(
        original, extra=_cache_extra(decomposition or DecompositionConfig(),
                                     temco or TeMCOConfig(),
                                     config or TuneConfig())))
    if record is None or record.fell_back_to_default:
        return {} if record is not None else None
    return record.overrides
