"""Autotuning + persistent compiled-plan cache for fused-kernel tiles.

The fused kernels (paper Listing 1) expose a tile size that trades
scratch memory against GEMM efficiency.  This package turns that knob
from a hardcoded default into a measured, cached decision:

- :mod:`repro.tune.cost_model` — analytic scratch/FLOPs/traffic
  estimates that prune and order the candidate space,
- :mod:`repro.tune.search` — grid seed → greedy hill-climb with early
  stopping over real kernel timings,
- :mod:`repro.tune.cache` — content-addressed persistent cache keyed
  on graph fingerprint × compiler settings × hardware fingerprint,
  storing tuned configs *and* serialized compiled plans,
- :mod:`repro.tune.tuner` — the orchestrator plus the compiler-side
  hooks (:func:`tune_model`, :func:`cached_overrides`).

See ``docs/tuning.md`` for the search space, cache layout and the
hardware-fingerprint caveats.
"""

from .cache import (CACHE_VERSION, SiteRecord, TuneCache, TuneRecord,
                    default_cache_dir)
from .cost_model import (CostEstimate, SiteSpec, estimate_cost,
                         prune_candidates, site_candidates)
from .fingerprint import hardware_digest, hardware_fingerprint
from .search import SearchResult, Trial, greedy_search
from .tuner import (TuneConfig, TuneResult, apply_overrides, cached_overrides,
                    collect_sites, load_cached_plan, tune_graph, tune_model)

__all__ = [
    "CACHE_VERSION",
    "TuneCache",
    "TuneRecord",
    "SiteRecord",
    "default_cache_dir",
    "SiteSpec",
    "CostEstimate",
    "site_candidates",
    "estimate_cost",
    "prune_candidates",
    "hardware_fingerprint",
    "hardware_digest",
    "Trial",
    "SearchResult",
    "greedy_search",
    "TuneConfig",
    "TuneResult",
    "collect_sites",
    "tune_graph",
    "apply_overrides",
    "tune_model",
    "cached_overrides",
    "load_cached_plan",
]
