"""Analytic cost model for fused-kernel tile candidates.

For each fusion site (a ``fused_block`` / ``fused_restore`` node) and
each candidate ``(block_size, spatial_tile)`` pair the model estimates

- **scratch bytes** — the channel-block tile the kernel streams
  through (:func:`repro.kernels.fused_scratch_bytes`),
- **FLOPs** — tile-invariant (the contractions are the same work at
  any blocking), reported for context,
- **memory traffic** — where tiling actually moves the needle on a
  cache hierarchy: the reduced input is re-read once per channel
  block, and the fconv accumulator is read+written once per extra
  block, so small blocks pay traffic while large blocks pay scratch.

The model is used to *prune and order* the candidate space before any
measurement; the measured search (:mod:`repro.tune.search`) has the
final word.  Pruning keeps the default configuration, so measurement
can always compare against the untuned baseline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

from ..ir.node import Node
from ..kernels import DEFAULT_BLOCK_SIZE, fused_scratch_bytes
from ..kernels.fused import spatially_tileable

__all__ = ["SiteSpec", "CostEstimate", "site_candidates", "estimate_cost",
           "prune_candidates", "DEFAULT_BLOCK_SIZES", "DEFAULT_SPATIAL_TILES"]

#: Grid seed of channel-block widths (clamped to each site's C').
DEFAULT_BLOCK_SIZES = (4, 8, 16, 32, 64, 128, 256)
#: Grid seed of spatial tile edges (0 = channel blocking only); a tile
#: survives only where the kernel would actually apply it exactly.
DEFAULT_SPATIAL_TILES = (0, 8, 16, 32)

#: Modeled fixed cost of one block dispatch, in equivalent traffic
#: bytes.  The NumPy kernels pay einsum setup + allocation per block;
#: this term is what makes tiny blocks score badly.
_DISPATCH_OVERHEAD_BYTES = 32 * 1024


@dataclass(frozen=True)
class SiteSpec:
    """Shape summary of one fusion site, extracted from its node."""

    name: str          #: fused node name (display)
    site_key: str      #: anchoring lconv name — stable across recompiles
    op: str            #: ``fused_block`` or ``fused_restore``
    input_shape: tuple[int, int, int, int]
    c_prime: int       #: restored channels (w1 rows)
    r_out: int | None  #: fconv output channels; None for restore sites
    itemsize: int
    act: str | None
    pool: dict[str, Any] | None
    upsample: int

    @classmethod
    def from_node(cls, node: Node) -> "SiteSpec":
        if node.op not in ("fused_block", "fused_restore"):
            raise ValueError(f"node {node.name!r} is {node.op}, not a fused site")
        fused_from = node.attrs.get("fused_from") or [node.name]
        return cls(
            name=node.name,
            site_key=str(fused_from[0]),
            op=node.op,
            input_shape=tuple(node.inputs[0].shape),  # type: ignore[arg-type]
            c_prime=int(node.params["w1"].shape[0]),
            r_out=(int(node.params["w2"].shape[0])
                   if "w2" in node.params else None),
            itemsize=node.inputs[0].dtype.itemsize,
            act=node.attrs.get("act"),
            pool=node.attrs.get("pool"),
            upsample=int(node.attrs.get("upsample", 0) or 0),
        )

    @property
    def out_hw(self) -> tuple[int, int]:
        _n, _r, h, w = self.input_shape
        if self.pool is not None:
            sh, sw = self.pool.get("stride", self.pool["kernel"])
            return h // sh, w // sw
        if self.upsample:
            return h * self.upsample, w * self.upsample
        return h, w


@dataclass(frozen=True)
class CostEstimate:
    """Predicted behaviour of one ``(block_size, spatial_tile)`` pair."""

    block_size: int
    spatial_tile: int
    scratch_bytes: int
    flops: int
    traffic_bytes: int
    blocks: int  #: total dispatches (channel blocks × spatial tiles)

    @property
    def score(self) -> float:
        """Lower is predicted faster: traffic plus dispatch overhead."""
        return float(self.traffic_bytes + self.blocks * _DISPATCH_OVERHEAD_BYTES)


def site_candidates(site: SiteSpec,
                    block_sizes: tuple[int, ...] = DEFAULT_BLOCK_SIZES,
                    spatial_tiles: tuple[int, ...] = DEFAULT_SPATIAL_TILES,
                    ) -> list[tuple[int, int]]:
    """Valid, deduplicated ``(block_size, spatial_tile)`` pairs.

    Block sizes clamp to ``C'`` (so 128 and 256 collapse onto one
    candidate for a 96-channel site); spatial tiles survive only where
    the kernel would apply them exactly rather than silently falling
    back to channel-only blocking.
    """
    _n, _r, h, w = site.input_shape
    blocks = sorted({min(max(1, int(b)), site.c_prime) for b in block_sizes})
    tiles = [0] + sorted({int(t) for t in spatial_tiles
                          if t > 0 and spatially_tileable(h, w, t, site.pool)})
    return [(b, t) for t in tiles for b in blocks]


def estimate_cost(site: SiteSpec, block_size: int,
                  spatial_tile: int) -> CostEstimate:
    """Predict scratch / FLOPs / traffic for one candidate pair."""
    n, r_in, h, w = site.input_shape
    blk = min(max(1, int(block_size)), site.c_prime)
    tiled = spatially_tileable(h, w, spatial_tile, site.pool)
    th, tw = (spatial_tile, spatial_tile) if tiled else (h, w)
    n_spatial = (h // th) * (w // tw)
    n_blocks = math.ceil(site.c_prime / blk)
    blocks = n_spatial * n_blocks
    oh, ow = site.out_hw
    out_ch = site.r_out if site.r_out is not None else site.c_prime

    flops = 2 * n * site.c_prime * r_in * h * w          # restore einsum
    if site.act is not None:
        flops += n * site.c_prime * h * w
    if site.r_out is not None:
        flops += 2 * n * site.r_out * site.c_prime * oh * ow  # fconv einsum

    # traffic: input re-read per channel block; weights once per spatial
    # tile; the tile itself written+read through act/resample; the fconv
    # accumulator read+written once per block beyond the first
    elems = 0
    elems += n_blocks * n * r_in * h * w                 # x re-reads
    elems += n_spatial * site.c_prime * r_in             # w1
    elems += 3 * n * site.c_prime * h * w                # tile stream
    if site.r_out is not None:
        elems += n_spatial * site.r_out * site.c_prime   # w2
        elems += (2 * (n_blocks - 1) + 1) * n * site.r_out * oh * ow
    else:
        elems += n * out_ch * oh * ow                    # block write-through
    traffic = elems * site.itemsize

    return CostEstimate(
        block_size=blk, spatial_tile=int(spatial_tile if tiled else 0),
        scratch_bytes=fused_scratch_bytes(
            site.input_shape, site.itemsize, block_size=blk,
            c_prime=site.c_prime, spatial_tile=spatial_tile if tiled else 0),
        flops=flops, traffic_bytes=traffic, blocks=blocks)


def prune_candidates(site: SiteSpec, candidates: list[tuple[int, int]],
                     keep: int = 8,
                     max_scratch_bytes: int | None = None,
                     ) -> list[CostEstimate]:
    """Rank candidates by predicted score; keep the best ``keep``.

    The default configuration (``DEFAULT_BLOCK_SIZE`` clamped, no
    spatial tile) always survives so the search can price the baseline.
    Candidates whose scratch exceeds ``max_scratch_bytes`` are dropped
    (the default cap is the site's own unblocked tile — i.e. no cap in
    practice, since the clamp bounds scratch at C').
    """
    estimates = {(c.block_size, c.spatial_tile): c
                 for c in (estimate_cost(site, b, t) for b, t in candidates)}
    default = estimate_cost(site, DEFAULT_BLOCK_SIZE, 0)
    estimates.setdefault((default.block_size, default.spatial_tile), default)
    ranked = sorted(estimates.values(), key=lambda c: c.score)
    if max_scratch_bytes is not None:
        ranked = [c for c in ranked if c.scratch_bytes <= max_scratch_bytes
                  or (c.block_size, c.spatial_tile)
                  == (default.block_size, default.spatial_tile)]
    kept = ranked[:max(1, keep)]
    if not any((c.block_size, c.spatial_tile)
               == (default.block_size, default.spatial_tile) for c in kept):
        kept.append(estimates[(default.block_size, default.spatial_tile)])
    return kept
