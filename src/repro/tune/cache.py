"""Persistent, content-addressed cache of tuning results + compiled plans.

Layout (one pair of files per entry, under ``~/.cache/repro-tune`` or
the directory given by ``--cache-dir`` / ``$REPRO_TUNE_CACHE``)::

    <key>.json      tuning record: chosen tiles, trial log summary,
                    hardware fingerprint, wall-clock evidence
    <key>.plan.npz  the compiled (decomposed + TeMCO-optimized + tuned)
                    graph, ready to execute without re-running either
                    the tuner or the compiler

The key is a SHA-256 over the *content* of everything that determines
the result: the source graph's canonical fingerprint (weights
included, so editing a layer invalidates the entry), the
decomposition/compiler settings, the requested tuning mode, the cache
schema version, and the hardware digest.  Corrupt or truncated entries
are ignored with a warning — a broken cache can slow you down, never
crash you.
"""

from __future__ import annotations

import json
import logging
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any

from ..ir.graph import Graph
from ..ir.serialize import graph_fingerprint, load_graph, save_graph
from .fingerprint import hardware_digest, hardware_fingerprint

logger = logging.getLogger(__name__)

__all__ = ["TuneCache", "TuneRecord", "SiteRecord", "default_cache_dir",
           "CACHE_VERSION"]

#: Bump to invalidate every existing entry on schema change.
CACHE_VERSION = 1


def default_cache_dir() -> Path:
    """``$REPRO_TUNE_CACHE`` if set, else ``~/.cache/repro-tune``."""
    import os
    env = os.environ.get("REPRO_TUNE_CACHE")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-tune"


@dataclass
class SiteRecord:
    """Chosen configuration for one fusion site."""

    site_key: str            #: anchoring lconv name (FusionConfig override key)
    node: str                #: fused node name at tuning time
    block_size: int
    spatial_tile: int
    seconds: float           #: best measured per-site kernel time
    baseline_seconds: float  #: default-config per-site kernel time
    scratch_bytes: int
    baseline_scratch_bytes: int
    trials: int


@dataclass
class TuneRecord:
    """Everything ``repro tune`` learned about one (graph, machine) pair."""

    key: str
    model: str
    created: str
    version: int = CACHE_VERSION
    mode: str = "per-site"
    budget: int = 0
    hardware: dict[str, str] = field(default_factory=dict)
    sites: list[SiteRecord] = field(default_factory=list)
    total_trials: int = 0
    tuned_seconds: float | None = None    #: whole-graph, tuned tiles
    default_seconds: float | None = None  #: whole-graph, default tiles
    peak_internal_bytes: int | None = None
    fell_back_to_default: bool = False

    @property
    def overrides(self) -> dict[str, tuple[int, int]]:
        """``FusionConfig.site_overrides`` mapping."""
        return {s.site_key: (s.block_size, s.spatial_tile)
                for s in self.sites}

    def to_json(self) -> str:
        return json.dumps(asdict(self), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "TuneRecord":
        doc = json.loads(text)
        sites = [SiteRecord(**s) for s in doc.pop("sites", [])]
        return cls(sites=sites, **doc)


class TuneCache:
    """Filesystem-backed tuning cache (records + compiled plans)."""

    def __init__(self, cache_dir: str | Path | None = None) -> None:
        self.dir = Path(cache_dir) if cache_dir is not None else default_cache_dir()

    # -- keys ---------------------------------------------------------------

    def key_for(self, graph: Graph, *, extra: dict[str, Any] | None = None,
                hardware: dict[str, str] | None = None) -> str:
        """Content-addressed key for ``graph`` tuned on this machine."""
        import hashlib
        payload = {
            "graph": graph_fingerprint(graph),
            "hardware": hardware_digest(hardware),
            "version": CACHE_VERSION,
            "extra": extra or {},
        }
        blob = json.dumps(payload, sort_keys=True).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()[:32]

    # -- paths --------------------------------------------------------------

    def record_path(self, key: str) -> Path:
        return self.dir / f"{key}.json"

    def plan_path(self, key: str) -> Path:
        return self.dir / f"{key}.plan.npz"

    def entries(self) -> list[str]:
        """Keys of all readable records in the cache directory."""
        if not self.dir.is_dir():
            return []
        return sorted(p.stem for p in self.dir.glob("*.json"))

    # -- read ---------------------------------------------------------------

    def load(self, key: str) -> TuneRecord | None:
        """The record for ``key``, or ``None`` (missing / corrupt / stale)."""
        path = self.record_path(key)
        if not path.is_file():
            return None
        try:
            record = TuneRecord.from_json(path.read_text())
        except (json.JSONDecodeError, KeyError, TypeError, ValueError,
                OSError) as exc:
            logger.warning("tune cache: ignoring corrupt record %s (%s)",
                           path, exc)
            return None
        if record.version != CACHE_VERSION:
            logger.warning("tune cache: ignoring %s (schema v%s, want v%s)",
                           path, record.version, CACHE_VERSION)
            return None
        return record

    def load_plan(self, key: str) -> Graph | None:
        """The compiled plan for ``key``, or ``None`` (missing / corrupt)."""
        path = self.plan_path(key)
        if not path.is_file():
            return None
        try:
            return load_graph(path)
        except Exception as exc:  # np.load raises a zoo of types on corruption
            logger.warning("tune cache: ignoring corrupt plan %s (%s)",
                           path, exc)
            return None

    # -- write --------------------------------------------------------------

    def store(self, record: TuneRecord, plan: Graph | None = None) -> Path:
        """Persist ``record`` (and optionally its compiled plan)."""
        self.dir.mkdir(parents=True, exist_ok=True)
        path = self.record_path(record.key)
        path.write_text(record.to_json())
        if plan is not None:
            save_graph(plan, self.plan_path(record.key))
        logger.info("tune cache: stored %s (%d sites)", path,
                    len(record.sites))
        return path


def new_record(key: str, model: str, *, mode: str, budget: int) -> TuneRecord:
    """A fresh record stamped with now + this machine's fingerprint."""
    return TuneRecord(
        key=key, model=model,
        created=time.strftime("%Y-%m-%dT%H:%M:%S"),
        mode=mode, budget=budget,
        hardware=hardware_fingerprint())
