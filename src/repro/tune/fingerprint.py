"""Hardware fingerprinting for the tuning cache.

Measured tile choices are only transferable between machines with the
same memory hierarchy and BLAS stack, so every cache entry is keyed on
a digest of the attributes that plausibly move NumPy kernel timings:
CPU architecture and model, core count, OS, Python and NumPy versions.

The fingerprint is deliberately *coarse* (see ``docs/tuning.md``): it
cannot see microcode, DVFS state, or a neighbour saturating the memory
bus — entries from "the same" machine under different load still
replay.  That is the standard autotuning-cache trade-off; ``repro tune
--force`` re-measures when timings look stale.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import sys

import numpy as np

__all__ = ["hardware_fingerprint", "hardware_digest"]


def hardware_fingerprint() -> dict[str, str]:
    """JSON-safe description of the machine the tuner measured on."""
    return {
        "machine": platform.machine(),
        "processor": platform.processor() or platform.machine(),
        "system": platform.system(),
        "cpu_count": str(os.cpu_count() or 0),
        "python": f"{sys.version_info.major}.{sys.version_info.minor}",
        "numpy": np.__version__,
    }


def hardware_digest(fingerprint: dict[str, str] | None = None) -> str:
    """Short stable digest of :func:`hardware_fingerprint`."""
    fp = fingerprint if fingerprint is not None else hardware_fingerprint()
    blob = json.dumps(fp, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:16]
