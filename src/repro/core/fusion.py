"""Activation layer fusion (paper §3.2, Listing 1).

Finds ``lconv → activation [→ pool | upsample] → fconv`` chains whose
intermediate values have no other consumers, and collapses each into a
single :data:`fused_block` node that streams the restored channels
through tiles (see :mod:`repro.kernels.fused`).  The full-size restored
tensors (``Output1``/``Input2`` in Figure 3b) disappear from the graph:
the fused node consumes one reduced tensor and produces the next.

Also fuses the degenerate ``lconv → activation → fconv`` chains created
by the layer transformations (merged block-diagonal lconvs, copied
restore chains) — the paper's "restorations of skip connections can
also be hidden in the fused layers".
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field

import numpy as np

from ..ir import ops as _ops
from ..ir.emit import make_node
from ..ir.graph import Graph
from ..ir.node import Node
from ..obs import get_tracer

logger = logging.getLogger(__name__)

__all__ = ["FusionConfig", "FusionStats", "fuse_activation_layers"]


@dataclass(frozen=True)
class FusionConfig:
    """Fusion knobs.

    block_size:
        Channel-block width of the generated fused kernels (the tile
        size ``T`` of Listing 1); sweepable in the tile ablation.
    allow_pool:
        Absorb a pooling layer between activation and fconv
        (``lconv-relu-pool-fconv`` in Listing 1).
    allow_upsample:
        Absorb a nearest-neighbour upsample (UNet decoder after the
        upsample-commute transformation).
    require_activation:
        If False, also fuse bare ``lconv → fconv`` pairs (no activation
        in between); semantically those could be folded into one matmul,
        but fusing keeps weight memory unchanged.
    allow_epilogue:
        Also fuse ``lconv → act [→ pool]`` chains that do *not* end in
        an fconv (the restored tensor feeds a multi-consumer join and
        must be materialized) into a streaming ``fused_restore`` kernel
        that skips the intermediate full tensors.  Extension beyond the
        paper's lconv-act-fconv definition — see DESIGN.md.
    site_overrides:
        Optional per-site ``(block_size, spatial_tile)`` pairs keyed by
        the *lconv* node name anchoring each fused chain — the handle
        the :mod:`repro.tune` autotuner uses to install its measured
        tile choices.  Sites without an entry use the global knobs.
    """

    block_size: int = 32
    #: optional spatial tile edge for the generated fused kernels
    #: (Listing 1's 3D blocking); 0 = channel blocking only
    spatial_tile: int = 0
    allow_pool: bool = True
    allow_upsample: bool = True
    require_activation: bool = False
    allow_epilogue: bool = True
    site_overrides: dict[str, tuple[int, int]] | None = None

    def __post_init__(self) -> None:
        if self.block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {self.block_size}")
        if self.spatial_tile < 0:
            raise ValueError(
                f"spatial_tile must be >= 0, got {self.spatial_tile}")
        for site, (blk, tile) in (self.site_overrides or {}).items():
            if blk < 1 or tile < 0:
                raise ValueError(
                    f"bad override for site {site!r}: ({blk}, {tile})")

    def tile_for(self, lconv_name: str) -> tuple[int, int]:
        """The ``(block_size, spatial_tile)`` pair for one fusion site."""
        if self.site_overrides and lconv_name in self.site_overrides:
            blk, tile = self.site_overrides[lconv_name]
            return int(blk), int(tile)
        return self.block_size, self.spatial_tile


@dataclass
class FusionStats:
    fused: int = 0
    with_pool: int = 0
    with_upsample: int = 0
    epilogues: int = 0
    details: list[str] = field(default_factory=list)


def fuse_activation_layers(graph: Graph,
                           config: FusionConfig | None = None) -> FusionStats:
    """Apply activation layer fusion greedily over the schedule."""
    config = config or FusionConfig()
    stats = FusionStats()
    tracer = get_tracer()
    with tracer.span("fusion", category="compiler", graph=graph.name):
        changed = True
        while changed:
            changed = False
            consumers = graph.consumer_map()
            for node in list(graph.nodes):
                if not _ops.is_lconv(node):
                    continue
                chain = _match_chain(graph, node, consumers, config)
                if chain is None:
                    continue
                _fuse(graph, chain, config, stats)
                changed = True
                break  # consumer map is stale; rescan
        if tracer.enabled:
            # the lconvs left standing are the patterns fusion skipped
            for node in graph.nodes:
                if _ops.is_lconv(node):
                    tracer.decision("fusion", node.name, "skip",
                                    "no_fusable_chain",
                                    restored_bytes=node.output.nbytes)
        graph.validate()
    return stats


@dataclass(frozen=True)
class _Chain:
    lconv: Node
    act: Node | None
    resample: Node | None  # pool or upsample, optional
    fconv: Node | None     # None -> restore epilogue (fused_restore)


def _single_consumer(consumers: dict, node: Node) -> Node | None:
    users = consumers.get(node.output, [])
    return users[0] if len(users) == 1 else None


def _match_chain(graph: Graph, lconv: Node, consumers: dict,
                 config: FusionConfig) -> _Chain | None:
    out_ids = {id(v) for v in graph.outputs}

    def epilogue(act: Node | None, resample: Node | None) -> _Chain | None:
        """Fall back to a restore epilogue covering the chain so far."""
        if not config.allow_epilogue or (act is None and resample is None):
            return None
        # every *intermediate* value must be single-consumer & not an output
        intermediates = [lconv] + ([act] if act is not None and resample is not None else [])
        for mid in intermediates:
            if id(mid.output) in out_ids:
                return None
        return _Chain(lconv=lconv, act=act, resample=resample, fconv=None)

    cursor = _single_consumer(consumers, lconv)
    if cursor is None or id(lconv.output) in out_ids:
        return None
    act: Node | None = None
    if cursor.op in _ops.ACTIVATION_OPS:
        act = cursor
        cursor = _single_consumer(consumers, act)
        if cursor is None:
            return epilogue(act, None)
    elif config.require_activation:
        return None
    resample: Node | None = None
    if cursor.op in _ops.POOL_OPS and config.allow_pool:
        resample = cursor
        cursor = _single_consumer(consumers, resample)
        if cursor is None:
            return epilogue(act, resample)
    elif cursor.op == "upsample_nearest" and config.allow_upsample:
        resample = cursor
        cursor = _single_consumer(consumers, resample)
        if cursor is None:
            return epilogue(act, resample)
    # any 1×1 stride-1 conv can terminate the chain: the paper's fconv is
    # the common case, but split/merged transforms produce pointwise convs
    # that expand channels, and the memory claim (no full intermediate)
    # holds either way
    if not _ops.is_pointwise_conv(cursor):
        return epilogue(act, resample)
    # intermediate values must not be graph outputs (they would vanish)
    for mid in (lconv, act, resample):
        if mid is not None and id(mid.output) in out_ids:
            return None
    return _Chain(lconv=lconv, act=act, resample=resample, fconv=cursor)


def _fuse(graph: Graph, chain: _Chain, config: FusionConfig,
          stats: FusionStats) -> None:
    lconv, fconv = chain.lconv, chain.fconv
    w1 = lconv.params["weight"]
    params: dict[str, np.ndarray] = {
        "w1": np.ascontiguousarray(w1[:, :, 0, 0]),
    }
    if "bias" in lconv.params:
        params["b1"] = lconv.params["bias"]
    if fconv is not None:
        params["w2"] = np.ascontiguousarray(fconv.params["weight"][:, :, 0, 0])
        if "bias" in fconv.params:
            params["b2"] = fconv.params["bias"]
    act_params = {}
    if chain.act is not None:
        act_params = {k: v for k, v in chain.act.attrs.items()
                      if k in ("negative_slope", "alpha")}
    block_size, spatial_tile = config.tile_for(lconv.name)
    # clamp to the restored channel count: an oversized block runs as a
    # single full-width tile, so the attrs must say so too — otherwise
    # fused_scratch_bytes would report scratch the kernel never uses
    block_size = min(max(1, block_size), int(params["w1"].shape[0]))
    attrs: dict = {
        "act": chain.act.op if chain.act is not None else None,
        "act_params": act_params or None,
        "block_size": block_size,
        "spatial_tile": spatial_tile,
        "fused_from": [lconv.name, *( [chain.act.name] if chain.act else []),
                       *( [chain.resample.name] if chain.resample else []),
                       *( [fconv.name] if fconv is not None else [])],
    }
    if chain.resample is not None:
        if chain.resample.op in _ops.POOL_OPS:
            attrs["pool"] = {
                "kind": "max" if chain.resample.op == "maxpool2d" else "avg",
                "kernel": list(chain.resample.attrs["kernel"]),
                "stride": list(chain.resample.attrs.get(
                    "stride", chain.resample.attrs["kernel"])),
                "padding": list(chain.resample.attrs.get("padding", [0, 0])),
            }
            stats.with_pool += 1
        else:
            attrs["upsample"] = int(chain.resample.attrs.get("scale", 2))
            stats.with_upsample += 1

    if fconv is not None:
        final = fconv
        fused = make_node(graph, "fused_block", [lconv.inputs[0]], attrs=attrs,
                          params=params, name=f"fused[{lconv.name}+{fconv.name}]")
    else:
        final = chain.resample if chain.resample is not None else chain.act
        assert final is not None
        fused = make_node(graph, "fused_restore", [lconv.inputs[0]], attrs=attrs,
                          params=params, name=f"fused_restore[{lconv.name}]")
        stats.epilogues += 1
    if fused.output.shape != final.output.shape:  # pragma: no cover - defensive
        raise AssertionError(
            f"fusion shape mismatch: {fused.output.shape} vs {final.output.shape}")
    graph.insert_before(lconv, [fused])
    graph.replace_uses(final.output, fused.output)
    for dead in (chain.fconv, chain.resample, chain.act, chain.lconv):
        if dead is not None:
            graph.remove_node(dead)
    stats.fused += 1
    stats.details.append(fused.name)
    get_tracer().decision(
        "fusion", fused.name,
        "fuse", "restore_epilogue" if fconv is None else "lconv_act_fconv",
        chain_nodes=len(attrs["fused_from"]),
        reduced_bytes=lconv.inputs[0].nbytes,
        restored_bytes=lconv.output.nbytes,
        block_size=block_size,
        spatial_tile=spatial_tile)
    logger.debug("fusion: %s collapses %s", fused.name, attrs["fused_from"])
