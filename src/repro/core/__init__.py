"""TeMCO: the paper's compiler optimizations.

- :mod:`liveness` — tensor liveness & skip-connection discovery,
- :mod:`memory_model` — the paper's Eq. 1–4 closed forms,
- :mod:`skip_opt` — skip connection optimization (Algorithms 1–2),
- :mod:`fusion` — activation layer fusion (Listing 1),
- :mod:`transform` — concat/add layer transformations (Figure 9),
- :mod:`pipeline` — the full compiler (Figure 6),
- :mod:`equivalence` — semantics-preservation checks (§4.4),
- :mod:`folding` — inference-time batchnorm folding.
"""

from .equivalence import (EquivalenceReport, assert_equivalent, compare_graphs,
                          topk_agreement)
from .folding import fold_batchnorm
from .fusion import FusionConfig, FusionStats, fuse_activation_layers
from .liveness import (LiveInterval, SkipConnection, analyze_liveness,
                       estimate_peak_floor, estimate_peak_internal,
                       find_skip_connections, live_bytes_at)
from .memory_model import (ConvPairSpec, eq1_weight_elems_original,
                           eq2_weight_elems_decomposed,
                           eq3_peak_internal_original,
                           eq4_peak_internal_decomposed, fused_peak_internal)
from .pipeline import OptimizationReport, TeMCOCompiler, TeMCOConfig, optimize
from .scheduling import ScheduleStats, greedy_order, reschedule, schedule_peak
from .skip_opt import (RestorePlan, SkipOptConfig, SkipOptStats, find_reduced,
                       optimize_skip_connections)
from .transform import (TransformStats, commute_upsample_lconv, merge_lconv_add,
                        merge_lconv_concat, push_act_through_concat,
                        split_concat_fconv)

__all__ = [
    "LiveInterval",
    "SkipConnection",
    "analyze_liveness",
    "estimate_peak_internal",
    "estimate_peak_floor",
    "find_skip_connections",
    "live_bytes_at",
    "ConvPairSpec",
    "eq1_weight_elems_original",
    "eq2_weight_elems_decomposed",
    "eq3_peak_internal_original",
    "eq4_peak_internal_decomposed",
    "fused_peak_internal",
    "RestorePlan",
    "SkipOptConfig",
    "SkipOptStats",
    "find_reduced",
    "optimize_skip_connections",
    "FusionConfig",
    "FusionStats",
    "fuse_activation_layers",
    "TransformStats",
    "commute_upsample_lconv",
    "merge_lconv_add",
    "merge_lconv_concat",
    "push_act_through_concat",
    "split_concat_fconv",
    "ScheduleStats",
    "greedy_order",
    "reschedule",
    "schedule_peak",
    "TeMCOConfig",
    "TeMCOCompiler",
    "OptimizationReport",
    "optimize",
    "EquivalenceReport",
    "assert_equivalent",
    "compare_graphs",
    "topk_agreement",
    "fold_batchnorm",
]
