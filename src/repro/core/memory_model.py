"""Analytic memory model (paper §2.2, Equations 1–4).

These closed forms cover the two-convolution scenario of Figure 3 and
are reproduced by the ``benchmarks/test_eq_memory_model.py`` harness.
The general-graph version of the same max-of-live-sums quantity is
:func:`repro.core.liveness.estimate_peak_internal`.

All functions count *elements*; multiply by ``dtype.itemsize`` for
bytes (the paper's equations are element counts too).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "ConvPairSpec",
    "eq1_weight_elems_original",
    "eq2_weight_elems_decomposed",
    "eq3_peak_internal_original",
    "eq4_peak_internal_decomposed",
    "fused_peak_internal",
]


@dataclass(frozen=True)
class ConvPairSpec:
    """Figure 3's scenario: conv1 → activation → conv2.

    Shapes follow the paper's notation: the input tensor is
    ``C×H×W``; conv1 (kernel ``K``) produces ``C'×H'×W'``; conv2
    (kernel ``K'``) produces ``C''×H''×W''``.  Decomposition ranks
    ``c1..c4`` are the reduced channel sizes of Figure 3b.
    """

    c: int
    h: int
    w: int
    k: int
    c_prime: int
    h_prime: int
    w_prime: int
    k_prime: int
    c_dprime: int
    h_dprime: int
    w_dprime: int
    c1: int
    c2: int
    c3: int
    c4: int
    batch: int = 1

    def ranks_are_reduced(self) -> bool:
        """The paper's standing assumption: C1..C4 smaller than C..C''."""
        return (self.c1 < self.c and self.c2 < self.c_prime
                and self.c3 < self.c_prime and self.c4 < self.c_dprime)


def eq1_weight_elems_original(s: ConvPairSpec) -> int:
    """Eq. (1): ``C·C'·K² + C'·C''·K'²``."""
    return s.c * s.c_prime * s.k ** 2 + s.c_prime * s.c_dprime * s.k_prime ** 2


def eq2_weight_elems_decomposed(s: ConvPairSpec) -> int:
    """Eq. (2): ``C·C1 + C1·C2·K² + C2·C' + C'·C3 + C3·C4·K'² + C4·C''``."""
    return (s.c * s.c1 + s.c1 * s.c2 * s.k ** 2 + s.c2 * s.c_prime
            + s.c_prime * s.c3 + s.c3 * s.c4 * s.k_prime ** 2 + s.c4 * s.c_dprime)


def eq3_peak_internal_original(s: ConvPairSpec) -> int:
    """Eq. (3): max of each layer's input+output footprint."""
    b = s.batch
    in0 = b * s.c * s.h * s.w
    mid = b * s.c_prime * s.h_prime * s.w_prime
    out = b * s.c_dprime * s.h_dprime * s.w_dprime
    return max(in0 + mid,   # conv1
               2 * mid,     # activation
               mid + out)   # conv2


def eq4_peak_internal_decomposed(s: ConvPairSpec) -> int:
    """Eq. (4): the seven-layer max of the decomposed sequence.

    With reduced ranks this collapses to ``2·C'·H'·W'`` — the
    activation layer's input+output — which is the paper's core
    observation: decomposition alone does not shrink the peak.
    """
    b = s.batch
    in0 = b * s.c * s.h * s.w
    r1 = b * s.c1 * s.h * s.w
    r2 = b * s.c2 * s.h_prime * s.w_prime
    mid = b * s.c_prime * s.h_prime * s.w_prime
    r3 = b * s.c3 * s.h_prime * s.w_prime
    r4 = b * s.c4 * s.h_dprime * s.w_dprime
    out = b * s.c_dprime * s.h_dprime * s.w_dprime
    return max(in0 + r1,    # fconv1
               r1 + r2,     # core1
               r2 + mid,    # lconv1
               2 * mid,     # activation
               mid + r3,    # fconv2
               r3 + r4,     # core2
               r4 + out)    # lconv2


def fused_peak_internal(s: ConvPairSpec) -> int:
    """Peak of the TeMCO-fused sequence (Figure 5): only reduced tensors.

    The fused ``lconv1→act→fconv2`` kernel consumes Reduced2 (C2) and
    produces Reduced3 (C3); the full C' tensors never materialize.
    """
    b = s.batch
    in0 = b * s.c * s.h * s.w
    r1 = b * s.c1 * s.h * s.w
    r2 = b * s.c2 * s.h_prime * s.w_prime
    r3 = b * s.c3 * s.h_prime * s.w_prime
    r4 = b * s.c4 * s.h_dprime * s.w_dprime
    out = b * s.c_dprime * s.h_dprime * s.w_dprime
    return max(in0 + r1,    # fconv1
               r1 + r2,     # core1
               r2 + r3,     # fused lconv1-act-fconv2
               r3 + r4,     # core2
               r4 + out)    # lconv2
