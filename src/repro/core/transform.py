"""Layer transformations around concat/add joins (paper §3.3, Figure 9).

Three rewrites extend the reach of activation layer fusion to the
skip-connection *join* points:

- :func:`merge_lconv_concat` (Fig. 9b → 9a): a concat whose branches
  all end in ``[act ∘] lconv`` becomes ``[act ∘] merged-lconv ∘ concat``
  over the branches' *reduced* tensors, with the merged lconv's weight
  laid out block-diagonally (zero padding off the diagonal).  One
  lconv-act-fconv chain remains, fusable into a single kernel.
- :func:`merge_lconv_add` (Fig. 9c → 9a): an add whose operands all end
  in ``lconv`` becomes ``merged-lconv ∘ concat`` with the weights
  concatenated horizontally (``[W_a | W_b]``) and biases summed.
- :func:`split_concat_fconv` (Fig. 9b → 9c): a concat directly feeding
  a 1×1 convolution is split into per-branch 1×1 convolutions (weight
  column slices) followed by an add — the alternative strategy that
  avoids the enlarged merged weights at the cost of more kernels.

- :func:`commute_upsample_lconv` normalizes the UNet decoder:
  ``upsample ∘ act ∘ lconv`` ⇒ ``act ∘ lconv ∘ upsample`` — legal
  because nearest-neighbour upsampling replicates elements, which
  commutes with any element-wise op and with 1×1 convolutions; it moves
  the upsample onto the *reduced* tensor so the join becomes mergeable.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field

import numpy as np

from ..ir import ops as _ops
from ..ir.emit import make_node
from ..ir.graph import Graph
from ..ir.node import Node
from ..obs import get_tracer

logger = logging.getLogger(__name__)

__all__ = ["TransformStats", "merge_lconv_concat", "merge_lconv_add",
           "split_concat_fconv", "commute_upsample_lconv",
           "push_act_through_concat"]


@dataclass
class TransformStats:
    merged_concats: int = 0
    merged_adds: int = 0
    split_concats: int = 0
    commuted_upsamples: int = 0
    pushed_acts: int = 0
    details: list[str] = field(default_factory=list)

    def total(self) -> int:
        return (self.merged_concats + self.merged_adds + self.split_concats
                + self.commuted_upsamples + self.pushed_acts)


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------

def _branch_chain(graph: Graph, consumers: dict, value,
                  allow_act: bool) -> tuple[Node | None, Node] | None:
    """Match ``value = [act(]lconv(reduced)[)]`` with single-consumer links.

    Returns ``(act_or_None, lconv)`` or ``None`` if the branch does not
    end in a restorable chain.
    """
    producer = graph.producer_of(value)
    if producer is None or len(consumers.get(value, ())) != 1:
        return None
    act: Node | None = None
    if producer.op in _ops.ACTIVATION_OPS:
        if not allow_act:
            return None
        act = producer
        inner = act.inputs[0]
        producer = graph.producer_of(inner)
        if producer is None or len(consumers.get(inner, ())) != 1:
            return None
    if not _ops.is_lconv(producer):
        return None
    return act, producer


def _merged_lconv_params(lconvs: list[Node | int], layout: str) -> dict[str, np.ndarray]:
    """Build the merged restore weight.

    ``layout="block_diag"`` (concat merge): output channels stack and
    each branch reads only its own reduced channels — zeros elsewhere.
    An ``int`` entry denotes a passthrough branch of that many channels
    whose diagonal block is the identity (the branch tensor is carried
    through the merged lconv unchanged).
    ``layout="horizontal"`` (add merge): output channels are shared;
    weights sit side by side and biases sum.
    """
    weights = [np.eye(n, dtype=None) if isinstance(n, int)
               else n.params["weight"][:, :, 0, 0] for n in lconvs]
    dtype = next(w.dtype for n, w in zip(lconvs, weights) if not isinstance(n, int))
    weights = [w.astype(dtype) for w in weights]
    if layout == "block_diag":
        total_out = sum(w.shape[0] for w in weights)
        total_in = sum(w.shape[1] for w in weights)
        merged = np.zeros((total_out, total_in), dtype=dtype)
        ro = ri = 0
        for w in weights:
            merged[ro:ro + w.shape[0], ri:ri + w.shape[1]] = w
            ro += w.shape[0]
            ri += w.shape[1]
        biases = [None if isinstance(n, int) else n.params.get("bias")
                  for n in lconvs]
        if any(b is not None for b in biases):
            bias = np.concatenate([
                b if b is not None else np.zeros(w.shape[0], dtype=dtype)
                for b, w in zip(biases, weights)])
        else:
            bias = None
    else:  # horizontal
        out = {w.shape[0] for w in weights}
        if len(out) != 1:
            raise ValueError(f"add-merge needs equal output channels, got {out}")
        merged = np.concatenate(weights, axis=1)
        biases = [n.params.get("bias") for n in lconvs]
        if any(b is not None for b in biases):
            bias = np.zeros(weights[0].shape[0], dtype=dtype)
            for b in biases:
                if b is not None:
                    bias = bias + b
        else:
            bias = None
    params = {"weight": merged[:, :, None, None].copy()}
    if bias is not None:
        params["bias"] = np.asarray(bias, dtype=dtype)
    return params


def _merged_attrs(lconvs: list[Node | int]) -> dict:
    nodes = [n for n in lconvs if not isinstance(n, int)]
    return {
        "stride": [1, 1], "padding": [0, 0], "groups": 1, "role": "lconv",
        "merged_from": [n.name for n in nodes],
        "orig_flops": sum(int(n.attrs.get("orig_flops", _ops.node_flops(n)))
                          for n in nodes),
    }


# ---------------------------------------------------------------------------
# concat merge (Fig. 9b -> 9a)
# ---------------------------------------------------------------------------

def merge_lconv_concat(graph: Graph, stats: TransformStats | None = None) -> TransformStats:
    """Merge every eligible channel-concat of restore chains."""
    stats = stats or TransformStats()
    changed = True
    while changed:
        changed = False
        consumers = graph.consumer_map()
        for node in list(graph.nodes):
            if node.op != "concat" or int(node.attrs.get("axis", 1)) != 1:
                continue
            if _try_merge_concat(graph, node, consumers, stats):
                changed = True
                break
    graph.validate()
    return stats


def _try_merge_concat(graph: Graph, concat: Node, consumers: dict,
                      stats: TransformStats) -> bool:
    # classify branches: restore chains ([act ∘] lconv) or passthroughs
    # (anything else — kept as an identity block in the merged weight)
    chains: list[tuple[Node | None, Node] | None] = []
    num_lconv = 0
    for v in concat.inputs:
        chain = _branch_chain(graph, consumers, v, allow_act=True)
        chains.append(chain)
        if chain is not None:
            num_lconv += 1
    if num_lconv == 0:
        return False
    acts = {chain[0].op if chain[0] is not None else None
            for chain in chains if chain is not None}
    if len(acts) != 1:
        return False  # paper: applicable when the sequences share the activation
    act_kind = acts.pop()
    has_passthrough = any(chain is None for chain in chains)
    if has_passthrough and act_kind is not None:
        # a passthrough branch cannot be routed below a shared activation
        return False
    lconvs: list[Node | int] = []
    reduced = []
    for v, chain in zip(concat.inputs, chains):
        if chain is None:
            lconvs.append(v.shape[1])
            reduced.append(v)
        else:
            lconvs.append(chain[1])
            reduced.append(chain[1].inputs[0])

    cat_reduced = make_node(graph, "concat", reduced, attrs={"axis": 1},
                            name=f"{concat.name}.reduced")
    merged = make_node(graph, "conv2d", [cat_reduced.output],
                       attrs=_merged_attrs(lconvs),
                       params=_merged_lconv_params(lconvs, "block_diag"),
                       name=f"{concat.name}.merged_lconv")
    new_nodes = [cat_reduced, merged]
    final = merged
    if act_kind is not None:
        act_node = make_node(graph, act_kind, [merged.output],
                             name=f"{concat.name}.merged_{act_kind}")
        new_nodes.append(act_node)
        final = act_node
    graph.insert_before(concat, new_nodes)
    graph.replace_uses(concat.output, final.output)
    graph.remove_node(concat)
    graph.dead_code_eliminate()
    stats.merged_concats += 1
    stats.details.append(f"concat {concat.name} -> merged lconv over "
                         f"{len(lconvs)} reduced branches")
    get_tracer().decision(
        "transform.merge_concat", concat.name, "apply", "all_branches_restorable",
        branches=len(lconvs),
        passthrough_branches=sum(1 for c in chains if c is None),
        merged_weight_bytes=merged.params["weight"].nbytes,
        concat_bytes=concat.output.nbytes)
    logger.debug("transform: merged concat %s over %d branches",
                 concat.name, len(lconvs))
    return True


# ---------------------------------------------------------------------------
# add merge (Fig. 9c -> 9a)
# ---------------------------------------------------------------------------

def merge_lconv_add(graph: Graph, stats: TransformStats | None = None) -> TransformStats:
    """Merge every add whose operands are all restore convolutions."""
    stats = stats or TransformStats()
    changed = True
    while changed:
        changed = False
        consumers = graph.consumer_map()
        for node in list(graph.nodes):
            if node.op != "add":
                continue
            chains = []
            for v in node.inputs:
                chain = _branch_chain(graph, consumers, v, allow_act=False)
                if chain is None:
                    chains = None
                    break
                chains.append(chain)
            if not chains:
                continue
            lconvs = [c[1] for c in chains]
            if len({n.params["weight"].shape[0] for n in lconvs}) != 1:
                continue
            reduced = [n.inputs[0] for n in lconvs]
            cat_reduced = make_node(graph, "concat", reduced, attrs={"axis": 1},
                                    name=f"{node.name}.reduced")
            merged = make_node(graph, "conv2d", [cat_reduced.output],
                               attrs=_merged_attrs(lconvs),
                               params=_merged_lconv_params(lconvs, "horizontal"),
                               name=f"{node.name}.merged_lconv")
            graph.insert_before(node, [cat_reduced, merged])
            graph.replace_uses(node.output, merged.output)
            graph.remove_node(node)
            graph.dead_code_eliminate()
            stats.merged_adds += 1
            stats.details.append(f"add {node.name} -> merged lconv over "
                                 f"{len(lconvs)} reduced branches")
            get_tracer().decision(
                "transform.merge_add", node.name, "apply",
                "all_operands_restorable", branches=len(lconvs),
                merged_weight_bytes=merged.params["weight"].nbytes,
                add_bytes=node.output.nbytes)
            logger.debug("transform: merged add %s over %d branches",
                         node.name, len(lconvs))
            changed = True
            break
    graph.validate()
    return stats


# ---------------------------------------------------------------------------
# concat split (Fig. 9b -> 9c)
# ---------------------------------------------------------------------------

def split_concat_fconv(graph: Graph, stats: TransformStats | None = None) -> TransformStats:
    """Split ``concat → 1×1 conv`` into per-branch convs + add."""
    stats = stats or TransformStats()
    changed = True
    while changed:
        changed = False
        consumers = graph.consumer_map()
        for node in list(graph.nodes):
            if node.op != "concat" or int(node.attrs.get("axis", 1)) != 1:
                continue
            users = consumers.get(node.output, [])
            if len(users) != 1 or not _ops.is_pointwise_conv(users[0]):
                continue
            fconv = users[0]
            if "merged_from" in fconv.attrs:
                continue  # never split a merged lconv back apart
            # the split pays off only when per-branch fusion can consume
            # it: require at least one branch to end in a restore chain
            # (otherwise it just multiplies full-size branch outputs)
            if not any(_branch_chain(graph, consumers, v, allow_act=True)
                       for v in node.inputs):
                continue
            weight = fconv.params["weight"]
            # interleave branch convs with a chain of binary adds so at
            # most one branch result and the running accumulator are live
            # at a time (an n-ary add would hold every branch at once and
            # inflate the peak the split is meant to shrink)
            new_nodes: list[Node] = []
            acc = None
            offset = 0
            for i, v in enumerate(node.inputs):
                c = v.shape[1]
                params = {"weight": weight[:, offset:offset + c].copy()}
                if i == 0 and "bias" in fconv.params:
                    params["bias"] = fconv.params["bias"]
                attrs = {"stride": [1, 1], "padding": [0, 0], "groups": 1,
                         "split_from": fconv.name}
                if fconv.attrs.get("role"):
                    attrs["role"] = fconv.attrs["role"]
                if "orig_flops" in fconv.attrs:
                    attrs["orig_flops"] = int(fconv.attrs["orig_flops"])
                branch = make_node(graph, "conv2d", [v], attrs=attrs, params=params,
                                   name=f"{fconv.name}.branch{i}")
                new_nodes.append(branch)
                if acc is None:
                    acc = branch.output
                else:
                    add = make_node(graph, "add", [acc, branch.output],
                                    name=f"{fconv.name}.acc{i}")
                    new_nodes.append(add)
                    acc = add.output
                offset += c
            graph.insert_before(node, new_nodes)
            graph.replace_uses(fconv.output, acc)
            graph.remove_node(fconv)
            graph.remove_node(node)
            graph.dead_code_eliminate()
            stats.split_concats += 1
            stats.details.append(f"concat {node.name} + fconv {fconv.name} -> "
                                 f"{len(node.inputs)} branch convs + add chain")
            get_tracer().decision(
                "transform.split_concat", node.name, "apply",
                "restorable_branch_present", branches=len(node.inputs),
                fconv=fconv.name, fconv_weight_bytes=weight.nbytes,
                concat_bytes=node.output.nbytes)
            logger.debug("transform: split concat %s + fconv %s into %d branches",
                         node.name, fconv.name, len(node.inputs))
            changed = True
            break
    graph.validate()
    return stats


# ---------------------------------------------------------------------------
# activation push-through (DenseNet normalization)
# ---------------------------------------------------------------------------

def push_act_through_concat(graph: Graph, stats: TransformStats | None = None) -> TransformStats:
    """Rewrite ``act(concat(xs)) → conv1×1`` to ``concat(act(xs)) → conv1×1``.

    Element-wise activations distribute over channel concatenation, so
    the rewrite is exact.  It exposes DenseNet's composite function
    (``concat → relu → 1×1 bottleneck``) to :func:`split_concat_fconv`,
    whose per-branch convolutions then fuse with each branch's restore
    chain.  Only fires when the concat's single consumer is an
    activation whose single consumer is a 1×1 convolution — otherwise
    it would just duplicate work.
    """
    stats = stats or TransformStats()
    changed = True
    while changed:
        changed = False
        consumers = graph.consumer_map()
        for node in list(graph.nodes):
            if node.op != "concat" or int(node.attrs.get("axis", 1)) != 1:
                continue
            users = consumers.get(node.output, [])
            if len(users) != 1 or users[0].op not in _ops.ACTIVATION_OPS:
                continue
            act = users[0]
            act_users = consumers.get(act.output, [])
            if len(act_users) != 1 or not _ops.is_pointwise_conv(act_users[0]):
                continue
            if any(id(v) in {id(o) for o in graph.outputs}
                   for v in (node.output, act.output)):
                continue
            branch_acts = []
            for i, v in enumerate(node.inputs):
                branch = make_node(graph, act.op, [v],
                                   name=f"{act.name}.branch{i}")
                branch_acts.append(branch)
            new_concat = make_node(graph, "concat",
                                   [n.output for n in branch_acts],
                                   attrs={"axis": 1},
                                   name=f"{node.name}.pushed")
            graph.insert_before(node, branch_acts + [new_concat])
            graph.replace_uses(act.output, new_concat.output)
            graph.remove_node(act)
            graph.remove_node(node)
            graph.dead_code_eliminate()
            stats.pushed_acts += 1
            stats.details.append(f"{act.op} pushed through concat {node.name}")
            get_tracer().decision(
                "transform.push_act", node.name, "apply", "act_distributes",
                act=act.op, branches=len(node.inputs))
            logger.debug("transform: pushed %s through concat %s",
                         act.op, node.name)
            changed = True
            break
    graph.validate()
    return stats


# ---------------------------------------------------------------------------
# upsample commute (UNet decoder normalization)
# ---------------------------------------------------------------------------

def commute_upsample_lconv(graph: Graph, stats: TransformStats | None = None) -> TransformStats:
    """Rewrite ``upsample(act(lconv(r)))`` to ``act(lconv(upsample(r)))``.

    Nearest-neighbour upsampling replicates pixels, so it commutes with
    element-wise activations and with 1×1 convolutions; moving it below
    the lconv makes the upsample operate on the reduced tensor and
    exposes the branch to the concat merge.
    """
    stats = stats or TransformStats()
    changed = True
    while changed:
        changed = False
        consumers = graph.consumer_map()
        for node in list(graph.nodes):
            if node.op != "upsample_nearest":
                continue
            chain = _branch_chain(graph, consumers, node.inputs[0], allow_act=True)
            if chain is None:
                continue
            act, lconv = chain
            scale = int(node.attrs.get("scale", 2))
            up_reduced = make_node(graph, "upsample_nearest", [lconv.inputs[0]],
                                   attrs={"scale": scale},
                                   name=f"{node.name}.on_reduced")
            new_lconv = lconv.clone(name=graph.namer.fresh(lconv.name),
                                    inputs=[up_reduced.output],
                                    output=_fresh_like(graph, lconv, up_reduced))
            new_nodes = [up_reduced, new_lconv]
            final = new_lconv
            if act is not None:
                act_node = make_node(graph, act.op, [new_lconv.output],
                                     name=graph.namer.fresh(act.name))
                new_nodes.append(act_node)
                final = act_node
            graph.insert_before(node, new_nodes)
            graph.replace_uses(node.output, final.output)
            graph.remove_node(node)
            graph.dead_code_eliminate()
            stats.commuted_upsamples += 1
            stats.details.append(f"upsample {node.name} moved onto reduced tensor")
            get_tracer().decision(
                "transform.commute_upsample", node.name, "apply",
                "upsample_commutes_with_lconv",
                reduced_bytes=lconv.inputs[0].nbytes,
                restored_bytes=node.output.nbytes)
            logger.debug("transform: commuted upsample %s onto reduced tensor",
                         node.name)
            changed = True
            break
    graph.validate()
    return stats


def _fresh_like(graph: Graph, template: Node, input_node: Node):
    from ..ir.value import Value

    n, _c, h, w = input_node.output.shape
    cout = template.params["weight"].shape[0]
    return Value(graph.namer.fresh(template.output.name),
                 (n, cout, h, w), template.output.dtype)
