"""Tensor liveness analysis (Algorithm 1, lines 11–18).

For every SSA value the analyzer records its definition point (*begin*)
and last use (*end*) in the execution schedule.  The lifespan
``end - begin`` ("DISTANCE" in the paper) identifies *skip
connections*: internal tensors that stay resident far past their
definition because a distant layer still needs them.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.graph import Graph
from ..ir.node import Node
from ..ir.value import Value

__all__ = ["LiveInterval", "analyze_liveness", "live_bytes_at",
           "estimate_peak_internal", "estimate_peak_floor",
           "SkipConnection", "find_skip_connections"]


@dataclass(frozen=True)
class LiveInterval:
    """Liveness of one value over schedule indices.

    ``begin`` is the index of the defining node (−1 for graph inputs);
    ``end`` is the index of the last consuming node, or the final index
    for graph outputs (frameworks keep results alive for the caller).
    A value is live *during* every node index in ``[begin, end]``.
    """

    value: Value
    begin: int
    end: int

    @property
    def distance(self) -> int:
        """Paper's ``DISTANCE(live[n].begin, live[n].end)``."""
        return self.end - self.begin

    def live_at(self, index: int) -> bool:
        return self.begin <= index <= self.end


def analyze_liveness(graph: Graph) -> dict[Value, LiveInterval]:
    """Compute begin/end indices for every value in the schedule."""
    begin: dict[Value, int] = {v: -1 for v in graph.inputs}
    end: dict[Value, int] = {v: -1 for v in graph.inputs}
    for index, node in enumerate(graph.nodes):
        begin[node.output] = index
        end.setdefault(node.output, index)
        for v in node.inputs:
            end[v] = index
    last = len(graph.nodes) - 1
    for v in graph.outputs:
        end[v] = last
    return {v: LiveInterval(v, begin[v], max(end[v], begin[v])) for v in begin}


def live_bytes_at(intervals: dict[Value, LiveInterval], index: int) -> int:
    """Total internal-tensor bytes live while node ``index`` executes."""
    return sum(iv.value.nbytes for iv in intervals.values() if iv.live_at(index))


#: element-wise ops a framework may execute in place on their input
INPLACE_CAPABLE_OPS = frozenset(("relu", "silu", "sigmoid", "tanh",
                                 "leaky_relu", "elu", "hardswish", "gelu",
                                 "identity", "dropout"))


def estimate_peak_internal(graph: Graph, *,
                           inplace_activations: bool = False) -> int:
    """Static peak internal-tensor bytes of the schedule.

    This is the generalized Eq. 3/4 of the paper evaluated over the
    whole graph, and is exactly what the refcounting executor measures
    (a property test pins the two together).

    ``inplace_activations`` models the PyTorch ``inplace=True``
    convention: an element-wise op whose input dies at that op reuses
    the input buffer, so input and output never coexist.  The paper's
    Eq. 3 counts the activation pair (``2·C'H'W'``), i.e. the default
    ``False`` policy; the flag exists for the accounting ablation.
    """
    intervals = analyze_liveness(graph)
    if not graph.nodes:
        return sum(v.nbytes for v in graph.inputs)
    inplace_saving: dict[int, int] = {}
    if inplace_activations:
        output_ids = {id(v) for v in graph.outputs}
        for i, node in enumerate(graph.nodes):
            if node.op not in INPLACE_CAPABLE_OPS:
                continue
            v = node.inputs[0]
            # in-place applies when this node is the input's *last*
            # consumer and holds only one reference to it
            uses_here = sum(1 for u in node.inputs if u is v)
            if (intervals[v].end == i and uses_here == 1
                    and id(v) not in output_ids):
                inplace_saving[i] = v.nbytes
    return max(live_bytes_at(intervals, i) - inplace_saving.get(i, 0)
               for i in range(len(graph.nodes)))


def estimate_peak_floor(graph: Graph) -> int:
    """The irreducible working set: the largest inputs+output footprint
    of any single node (each input counted once), or the total input
    bytes when that is larger (inputs are all bound before node 0).

    No memory plan can beat this — every node's operands and result
    must be resident while it runs, whatever gets spilled or
    rematerialized around it.  Budgets below this floor are infeasible
    by construction; :func:`repro.plan.plan_memory` reports them with
    the residual against its best achievable peak.
    """
    floor = sum(v.nbytes for v in graph.inputs)
    for node in graph.nodes:
        distinct = {v.name: v.nbytes for v in node.inputs}
        distinct[node.output.name] = node.output.nbytes
        floor = max(floor, sum(distinct.values()))
    return floor


@dataclass(frozen=True)
class SkipConnection:
    """A long-lived internal tensor and where it is consumed."""

    value: Value
    interval: LiveInterval
    producer: Node
    #: consumers whose schedule index is further than the threshold from
    #: the definition — the "distant uses" whose input gets replaced
    far_uses: tuple[Node, ...]
    #: consumers within the threshold — left untouched
    near_uses: tuple[Node, ...]


def find_skip_connections(graph: Graph, distance_threshold: int) -> list[SkipConnection]:
    """Identify skip connections (Algorithm 1, lines 17–19).

    A value qualifies when its lifespan exceeds ``distance_threshold``
    schedule slots.  Graph inputs and outputs are excluded: inputs have
    no restore chain to copy, and outputs must stay materialized.
    """
    if distance_threshold < 1:
        raise ValueError(f"distance_threshold must be >= 1, got {distance_threshold}")
    intervals = analyze_liveness(graph)
    consumer_map = graph.consumer_map()
    output_ids = {id(v) for v in graph.outputs}
    input_ids = {id(v) for v in graph.inputs}
    index_of = {node: i for i, node in enumerate(graph.nodes)}

    skips: list[SkipConnection] = []
    for node in graph.nodes:
        v = node.output
        if id(v) in output_ids or id(v) in input_ids:
            continue
        interval = intervals[v]
        if interval.distance <= distance_threshold:
            continue
        far, near = [], []
        for consumer in consumer_map.get(v, ()):  # schedule order
            if index_of[consumer] - interval.begin > distance_threshold:
                far.append(consumer)
            else:
                near.append(consumer)
        if far:
            skips.append(SkipConnection(value=v, interval=interval, producer=node,
                                        far_uses=tuple(far), near_uses=tuple(near)))
    return skips
