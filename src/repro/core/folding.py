"""BatchNorm folding (inference-time canonicalization).

The paper evaluates inference graphs; frameworks fold each
``conv → batchnorm`` pair into a single convolution with rescaled
weights before any memory optimization.  We do the same so batchnorm
never sits between an lconv and an activation (which would block
fusion) — and so the model zoo can be built with batchnorm for
realism without affecting the optimizer.
"""

from __future__ import annotations

import numpy as np

from ..ir.graph import Graph

__all__ = ["fold_batchnorm"]


def fold_batchnorm(graph: Graph) -> int:
    """Fold every ``conv2d → batchnorm2d`` pair in place.

    The batchnorm must be the conv's only consumer.  Returns the number
    of folds.  Batchnorms not preceded by a conv are left in the graph
    (the executor runs them directly).
    """
    folded = 0
    changed = True
    while changed:
        changed = False
        consumers = graph.consumer_map()
        for node in list(graph.nodes):
            if node.op != "batchnorm2d":
                continue
            producer = graph.producer_of(node.inputs[0])
            if producer is None or producer.op != "conv2d":
                continue
            if len(consumers.get(producer.output, ())) != 1:
                continue
            _fold_pair(graph, producer, node)
            folded += 1
            changed = True
            break
    graph.validate()
    return folded


def _fold_pair(graph: Graph, conv, bn) -> None:
    gamma = bn.params["gamma"].astype(np.float64)
    beta = bn.params["beta"].astype(np.float64)
    mean = bn.params["mean"].astype(np.float64)
    var = bn.params["var"].astype(np.float64)
    eps = float(bn.attrs.get("eps", 1e-5))
    scale = gamma / np.sqrt(var + eps)

    weight = conv.params["weight"]
    bias = conv.params.get("bias")
    new_weight = (weight.astype(np.float64)
                  * scale[:, None, None, None]).astype(weight.dtype)
    base = bias.astype(np.float64) if bias is not None else 0.0
    new_bias = (beta + (base - mean) * scale).astype(weight.dtype)

    conv.params["weight"] = new_weight
    conv.params["bias"] = new_bias
    graph.replace_uses(bn.output, conv.output)
    graph.remove_node(bn)
