"""Semantic-equivalence checking between graph variants.

TeMCO's correctness claim (§4.4) is that its transformations preserve
the *exact* semantics of the decomposed model — fused kernels only
reassociate floating-point sums.  This module verifies that claim
empirically: run two graphs on the same inputs and bound the output
divergence, with tolerances scaled to the output magnitude (deep stacks
of convolutions amplify ulp-level noise multiplicatively).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ir.graph import Graph
from ..runtime.executor import execute

__all__ = ["EquivalenceReport", "compare_graphs", "assert_equivalent",
           "topk_agreement"]


@dataclass(frozen=True)
class EquivalenceReport:
    """Divergence statistics between two graphs' outputs."""

    max_abs_error: float
    max_rel_error: float
    output_scale: float
    outputs_compared: int

    def within(self, rtol: float, atol: float) -> bool:
        return self.max_abs_error <= atol + rtol * self.output_scale


def compare_graphs(a: Graph, b: Graph, inputs: dict[str, np.ndarray]) -> EquivalenceReport:
    """Run both graphs on ``inputs`` and measure output divergence.

    Outputs are matched positionally (TeMCO rewrites rename values, so
    name matching would be wrong); both graphs must produce the same
    number of outputs with identical shapes.
    """
    res_a = execute(a, inputs)
    res_b = execute(b, inputs)
    outs_a = [res_a.outputs[v.name] for v in a.outputs]
    outs_b = [res_b.outputs[v.name] for v in b.outputs]
    if len(outs_a) != len(outs_b):
        raise ValueError(f"output arity mismatch: {len(outs_a)} vs {len(outs_b)}")
    max_abs = 0.0
    max_rel = 0.0
    scale = 0.0
    for x, y in zip(outs_a, outs_b):
        if x.shape != y.shape:
            raise ValueError(f"output shape mismatch: {x.shape} vs {y.shape}")
        diff = np.abs(x.astype(np.float64) - y.astype(np.float64))
        max_abs = max(max_abs, float(diff.max(initial=0.0)))
        denom = np.abs(x.astype(np.float64))
        scale = max(scale, float(denom.max(initial=0.0)))
        with np.errstate(divide="ignore", invalid="ignore"):
            rel = np.where(denom > 1e-12, diff / denom, 0.0)
        max_rel = max(max_rel, float(rel.max(initial=0.0)))
    return EquivalenceReport(max_abs_error=max_abs, max_rel_error=max_rel,
                             output_scale=scale, outputs_compared=len(outs_a))


def assert_equivalent(a: Graph, b: Graph, inputs: dict[str, np.ndarray],
                      *, rtol: float = 1e-4, atol: float = 1e-5) -> EquivalenceReport:
    """Raise ``AssertionError`` if the graphs diverge beyond tolerance."""
    report = compare_graphs(a, b, inputs)
    if not report.within(rtol, atol):
        raise AssertionError(
            f"graphs {a.name!r} and {b.name!r} diverge: max abs error "
            f"{report.max_abs_error:.3e} over output scale {report.output_scale:.3e} "
            f"(rtol={rtol}, atol={atol})")
    return report


def topk_agreement(a: Graph, b: Graph, inputs: dict[str, np.ndarray],
                   k: int = 5) -> float:
    """Fraction of samples whose top-1 class of ``a`` is within the
    top-``k`` predictions of ``b`` (the paper's top-5 protocol applied
    between model variants)."""
    res_a = execute(a, inputs)
    res_b = execute(b, inputs)
    la = res_a.outputs[a.outputs[0].name]
    lb = res_b.outputs[b.outputs[0].name]
    if la.ndim != 2 or lb.shape != la.shape:
        raise ValueError(f"expected matching 2D logits, got {la.shape} vs {lb.shape}")
    top1_a = la.argmax(axis=1)
    topk_b = np.argsort(lb, axis=1)[:, -k:]
    hits = sum(1 for i in range(la.shape[0]) if top1_a[i] in topk_b[i])
    return hits / la.shape[0]
