"""Memory-aware execution scheduling.

The schedule *is* the node list (`Graph.nodes`), and the paper notes
(§3.1, §5) that execution order changes the internal-tensor peak —
its `Compare`/`Peak` functions order restore chains, and it cites layer
-scheduling work [19, 31, 50] as the general tool it plans to adopt.
This module implements that general tool:

- :func:`reschedule` — greedy list scheduling: repeatedly emit the
  ready node that minimizes the post-emission live-byte total (ties
  broken toward freeing the most bytes, then original order).  The
  result is kept only if it does not worsen the statically estimated
  peak, so the pass is always safe to run.
- :func:`schedule_peak` — evaluate the peak of a candidate order
  without mutating the graph (used by tests and the ablation bench).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass

from ..ir.graph import Graph
from ..ir.node import Node
from ..obs import get_tracer
from .liveness import estimate_peak_internal

logger = logging.getLogger(__name__)

__all__ = ["ScheduleStats", "reschedule", "schedule_peak", "greedy_order"]


@dataclass(frozen=True)
class ScheduleStats:
    peak_before: int
    peak_after: int
    changed: bool

    @property
    def reduction(self) -> float:
        if self.peak_before == 0:
            return 0.0
        return 1.0 - self.peak_after / self.peak_before


def schedule_peak(graph: Graph, order: list[Node]) -> int:
    """Peak internal bytes of executing ``graph``'s nodes in ``order``.

    Simulates the executor's refcount policy directly on the candidate
    order (graph inputs live from the start, outputs to the end).
    """
    remaining: dict[str, int] = {}
    for node in order:
        for v in node.inputs:
            remaining[v.name] = remaining.get(v.name, 0) + 1
    for v in graph.outputs:
        remaining[v.name] = remaining.get(v.name, 0) + 1

    live = {v.name: v.nbytes for v in graph.inputs}
    current = sum(live.values())
    peak = current
    for node in order:
        current += node.output.nbytes
        live[node.output.name] = node.output.nbytes
        peak = max(peak, current)
        for v in node.inputs:
            remaining[v.name] -= 1
            if remaining[v.name] == 0 and v.name in live:
                current -= live.pop(v.name)
        if remaining.get(node.output.name, 0) == 0:
            current -= live.pop(node.output.name)
    return peak


def greedy_order(graph: Graph) -> list[Node]:
    """Greedy memory-minimizing topological order of ``graph``'s nodes."""
    position = {id(node): i for i, node in enumerate(graph.nodes)}
    consumers: dict[str, int] = {}
    for node in graph.nodes:
        for v in node.inputs:
            consumers[v.name] = consumers.get(v.name, 0) + 1
    for v in graph.outputs:
        consumers[v.name] = consumers.get(v.name, 0) + 1

    # dependency counts
    producers = {node.output.name: node for node in graph.nodes}
    pending: dict[int, int] = {}
    dependents: dict[int, list[Node]] = {}
    for node in graph.nodes:
        deps = 0
        for v in node.inputs:
            producer = producers.get(v.name)
            if producer is not None:
                deps += 1
                dependents.setdefault(id(producer), []).append(node)
        pending[id(node)] = deps

    ready = [node for node in graph.nodes if pending[id(node)] == 0]
    live_bytes: dict[str, int] = {v.name: v.nbytes for v in graph.inputs}
    remaining = dict(consumers)
    order: list[Node] = []

    def cost(node: Node) -> tuple[int, int, int]:
        """(net live delta, -freed bytes, original position)."""
        freed = 0
        for v in node.inputs:
            if remaining.get(v.name, 0) == 1 and v.name in live_bytes:
                freed += live_bytes[v.name]
        grows = node.output.nbytes if remaining.get(node.output.name, 0) > 0 else 0
        return (grows - freed, -freed, position[id(node)])

    while ready:
        ready.sort(key=cost)
        node = ready.pop(0)
        order.append(node)
        live_bytes[node.output.name] = node.output.nbytes
        for v in node.inputs:
            remaining[v.name] -= 1
            if remaining[v.name] == 0:
                live_bytes.pop(v.name, None)
        if remaining.get(node.output.name, 0) == 0:
            live_bytes.pop(node.output.name, None)
        for dep in dependents.get(id(node), ()):  # newly ready nodes
            pending[id(dep)] -= 1
            if pending[id(dep)] == 0:
                ready.append(dep)

    if len(order) != len(graph.nodes):  # pragma: no cover - defensive
        raise RuntimeError("scheduling failed to order all nodes (cycle?)")
    return order


def reschedule(graph: Graph) -> ScheduleStats:
    """Reorder ``graph.nodes`` in place if the greedy order lowers the
    statically estimated peak; otherwise leave the graph untouched."""
    tracer = get_tracer()
    with tracer.span("reschedule", category="compiler", graph=graph.name):
        peak_before = estimate_peak_internal(graph)
        candidate = greedy_order(graph)
        peak_after = schedule_peak(graph, candidate)
        if peak_after < peak_before:
            graph.nodes = candidate
            graph.validate()
            tracer.decision("scheduling", graph.name, "apply", "peak_lowered",
                            peak_before_bytes=peak_before,
                            peak_after_bytes=peak_after)
            logger.info("scheduling: reordered %s (peak %d B -> %d B)",
                        graph.name, peak_before, peak_after)
            return ScheduleStats(peak_before, peak_after, changed=True)
        tracer.decision("scheduling", graph.name, "keep", "no_improvement",
                        peak_before_bytes=peak_before,
                        candidate_peak_bytes=peak_after)
        logger.debug("scheduling: kept original order of %s (peak %d B)",
                     graph.name, peak_before)
    return ScheduleStats(peak_before, peak_before, changed=False)
