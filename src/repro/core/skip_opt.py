"""Skip-connection optimization (paper §3.1, Algorithms 1 & 2).

The pass replaces the *distant* uses of a long-lived internal tensor
with a freshly copied restore chain that recomputes it on the spot from
its predecessor *reduced* tensors.  The big tensor's live range
collapses to its local uses; only the small reduced tensors stay
resident across the gap.

Pipeline of one optimization (Figure 7):

1. liveness finds skip connection ``b`` (lifespan > DISTANCE_THRESHOLD),
2. ``find_reduced`` (Algorithm 2) walks the PDG backwards from ``b``'s
   producer to the ``lconv`` leaves, collecting the restore chain in a
   peak-minimizing order (``Compare``/``Peak``),
3. ``_passes_overhead`` (Algorithm 1's ``Overhead``) rejects chains
   whose copies would cost more FLOPs than the corresponding original
   (non-decomposed) layers, or whose transient peak is out of
   proportion to the bytes being freed,
4. the chain is cloned immediately before each distant use and the use
   is rewired to the clone's output (``InsertBefore`` + replace).

On top of the paper's local ``Overhead`` guard, the pass optionally
re-estimates the *global* schedule peak after each tentative rewrite
and rolls back rewrites that do not pay off (``global_check``) — the
static estimator is exact for our executor, so accepted rewrites are
guaranteed wins.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field

from ..ir import ops as _ops
from ..ir.graph import Graph
from ..ir.node import Node
from ..ir.value import Value
from ..obs import get_tracer
from .liveness import SkipConnection, estimate_peak_internal, find_skip_connections

logger = logging.getLogger(__name__)

__all__ = ["SkipOptConfig", "SkipOptStats", "RestorePlan", "find_reduced",
           "optimize_skip_connections"]

#: ops cheap and side-effect-free enough to replicate in a restore chain
TRAVERSABLE_OPS = frozenset(
    _ops.ACTIVATION_OPS
    + ("add", "concat", "maxpool2d", "avgpool2d", "upsample_nearest",
       "batchnorm2d", "identity", "dropout"))


@dataclass(frozen=True)
class SkipOptConfig:
    """Tuning knobs of Algorithm 1.

    distance_threshold:
        Minimum lifespan (in schedule slots) for a tensor to count as a
        skip connection (``DISTANCE_THRESHOLD``).
    compute_slack:
        Multiplier on the paper's ``COMPUTE_THRESHOLD`` (the FLOPs of
        the corresponding original, non-decomposed layers).  1.0
        reproduces the paper's setting.
    memory_slack:
        The local guard ``l.peak <= m``; we take ``m`` to be
        ``memory_slack ×`` (bytes of the skip tensor + bytes of the
        reduced tensors kept alive), rejecting chains whose transient
        peak dwarfs the memory they free.
    max_chain_nodes:
        Bail out of Algorithm 2's recursion beyond this many chain
        nodes (deep ResNet-style chains; the overhead check would
        reject them anyway).
    global_check:
        After the local guards accept, tentatively apply the rewrite
        and keep it only if the statically estimated schedule peak does
        not increase.  Off by default: a restore copy often pays off
        only after the downstream transform/fusion stages collapse it,
        so the pipeline guards globally instead (it re-runs without
        skip-opt if the full pipeline ends up worse).  Enable when
        running this pass standalone.
    """

    distance_threshold: int = 4
    compute_slack: float = 1.0
    memory_slack: float = 4.0
    max_chain_nodes: int = 48
    global_check: bool = False


@dataclass
class SkipOptStats:
    """What the pass did (reported by the benchmark harness)."""

    candidates: int = 0
    optimized: int = 0
    rejected_no_chain: int = 0
    rejected_compute: int = 0
    rejected_memory: int = 0
    rejected_global: int = 0
    copies_inserted: int = 0
    nodes_copied: int = 0
    details: list[str] = field(default_factory=list)


@dataclass(frozen=True)
class RestorePlan:
    """Algorithm 2's result ``res`` for one skip connection."""

    #: original nodes to clone, in (Compare-ordered) execution order
    nodes: tuple[Node, ...]
    #: SIZE(v): bytes of the skip tensor the chain recomputes
    size: int
    #: transient peak bytes of running the chain (Algorithm 2's Peak)
    peak: int
    #: the reduced tensors the chain reads (stay alive instead of the skip)
    reduced: tuple[Value, ...]
    #: FLOPs of one copy of the chain
    flops: int
    #: FLOPs of the corresponding original (pre-decomposition) layers
    orig_flops: int


def find_reduced(graph: Graph, node: Node,
                 max_nodes: int = 48) -> RestorePlan | None:
    """Algorithm 2 ``FindReduced``: restore chain ending at ``node``.

    Returns ``None`` when some branch of the predecessor walk does not
    terminate at an ``lconv`` through traversable ops — then the tensor
    cannot be recomputed from reduced tensors and the skip connection
    is left alone.
    """
    seen: dict[int, RestorePlan] = {}

    def visit(n: Node, budget: list[int]) -> RestorePlan | None:
        if id(n) in seen:
            cached = seen[id(n)]
            # shared sub-chain: already counted, contributes no new nodes
            return cached
        if budget[0] <= 0:
            return None
        if _ops.is_lconv(n):
            budget[0] -= 1
            pred = n.inputs[0]
            plan = RestorePlan(
                nodes=(n,), size=n.output.nbytes,
                peak=n.output.nbytes + pred.nbytes,
                reduced=(pred,), flops=_ops.node_flops(n),
                orig_flops=int(n.attrs.get("orig_flops", _ops.node_flops(n))))
            seen[id(n)] = plan
            return plan
        if n.op not in TRAVERSABLE_OPS:
            return None
        budget[0] -= 1
        sub_plans: list[RestorePlan] = []
        for v in n.inputs:
            producer = graph.producer_of(v)
            if producer is None:  # graph input: nothing to recompute from
                return None
            sub = visit(producer, budget)
            if sub is None:
                return None
            sub_plans.append(sub)
        ordered = _order_by_compare(sub_plans)
        nodes: list[Node] = []
        seen_nodes: set[int] = set()
        for sub in ordered:
            for m in sub.nodes:
                if id(m) not in seen_nodes:
                    seen_nodes.add(id(m))
                    nodes.append(m)
        nodes.append(n)
        reduced: list[Value] = []
        seen_reduced: set[int] = set()
        for sub in ordered:
            for r in sub.reduced:
                if id(r) not in seen_reduced:
                    seen_reduced.add(id(r))
                    reduced.append(r)
        plan = RestorePlan(
            nodes=tuple(nodes), size=n.output.nbytes,
            peak=_peak(ordered, n.output.nbytes),
            reduced=tuple(reduced),
            flops=sum(_ops.node_flops(m) for m in nodes),
            orig_flops=sum(
                int(m.attrs.get("orig_flops", _ops.node_flops(m)))
                if _ops.is_lconv(m) else _ops.node_flops(m)
                for m in nodes))
        seen[id(n)] = plan
        return plan

    return visit(node, [max_nodes])


def _order_by_compare(plans: list[RestorePlan]) -> list[RestorePlan]:
    """Algorithm 2's ``ORDER(Compare, predList)``.

    ``Compare(a, b)`` prefers running ``a`` first when
    ``a.size + b.peak < b.size + a.peak`` — i.e. schedule first the
    sub-chain whose resident result is small relative to its transient
    peak, so the big transients do not stack on top of big residents.
    """
    import functools

    def cmp(a: RestorePlan, b: RestorePlan) -> int:
        lhs = a.size + b.peak
        rhs = b.size + a.peak
        return -1 if lhs < rhs else (1 if lhs > rhs else 0)

    return sorted(plans, key=functools.cmp_to_key(cmp))


def _peak(ordered: list[RestorePlan], final_size: int) -> int:
    """Algorithm 2's ``Peak``: transient peak of running the sub-chains
    in order, keeping each result resident, then producing the root."""
    peak = 0
    resided = 0
    for e in ordered:
        peak = max(resided + e.peak, peak)
        resided += e.size
    return max(resided + final_size, peak)


def _passes_overhead(skip: SkipConnection, plan: RestorePlan,
                     config: SkipOptConfig, stats: SkipOptStats) -> bool:
    """Algorithm 1's ``Overhead`` guard (compute + local memory)."""
    tracer = get_tracer()
    copies = len(skip.far_uses)
    total_copy_flops = plan.flops * copies
    if total_copy_flops > config.compute_slack * plan.orig_flops:
        stats.rejected_compute += 1
        stats.details.append(
            f"{skip.value.name}: rejected (copy flops {total_copy_flops:,} > "
            f"threshold {plan.orig_flops:,})")
        tracer.decision("skip_opt", skip.value.name, "reject",
                        "compute_overhead", copy_flops=total_copy_flops,
                        threshold_flops=config.compute_slack * plan.orig_flops,
                        copies=copies, chain_nodes=len(plan.nodes))
        logger.debug("skip_opt: %s rejected (copy flops %d > threshold %d)",
                     skip.value.name, total_copy_flops, plan.orig_flops)
        return False
    freed = skip.value.nbytes + sum(r.nbytes for r in plan.reduced)
    if plan.peak > config.memory_slack * freed:
        stats.rejected_memory += 1
        stats.details.append(
            f"{skip.value.name}: rejected (chain peak {plan.peak:,} B > "
            f"{config.memory_slack}x freed {freed:,} B)")
        tracer.decision("skip_opt", skip.value.name, "reject",
                        "memory_overhead", chain_peak_bytes=plan.peak,
                        freed_bytes=freed, memory_slack=config.memory_slack)
        logger.debug("skip_opt: %s rejected (chain peak %d B > %.1fx freed %d B)",
                     skip.value.name, plan.peak, config.memory_slack, freed)
        return False
    return True


def optimize_skip_connections(graph: Graph,
                              config: SkipOptConfig | None = None) -> SkipOptStats:
    """Algorithm 1: optimize every qualifying skip connection in place."""
    config = config or SkipOptConfig()
    stats = SkipOptStats()
    tracer = get_tracer()
    with tracer.span("skip_opt", category="compiler", graph=graph.name):
        skips = find_skip_connections(graph, config.distance_threshold)
        stats.candidates = len(skips)
        logger.debug("skip_opt: %d candidate skip connections in %s",
                     len(skips), graph.name)
        baseline_peak = estimate_peak_internal(graph) if config.global_check else 0

        for skip in sorted(skips, key=lambda s: s.interval.begin):
            with tracer.span(f"restore_plan:{skip.value.name}",
                             category="compiler",
                             skip_bytes=skip.value.nbytes,
                             far_uses=len(skip.far_uses)):
                plan = find_reduced(graph, skip.producer, config.max_chain_nodes)
                if plan is None:
                    stats.rejected_no_chain += 1
                    stats.details.append(
                        f"{skip.value.name}: no reduced restore chain")
                    tracer.decision("skip_opt", skip.value.name, "reject",
                                    "no_chain", skip_bytes=skip.value.nbytes,
                                    far_uses=len(skip.far_uses))
                    logger.debug("skip_opt: %s has no reduced restore chain",
                                 skip.value.name)
                    continue
                if not _passes_overhead(skip, plan, config, stats):
                    continue

                inserted = _apply(graph, skip, plan)
                if config.global_check:
                    new_peak = estimate_peak_internal(graph)
                    if new_peak >= baseline_peak and new_peak > 0:
                        _rollback(graph, skip, inserted)
                        stats.rejected_global += 1
                        stats.details.append(
                            f"{skip.value.name}: rolled back (peak {new_peak:,} B "
                            f">= baseline {baseline_peak:,} B)")
                        tracer.decision("skip_opt", skip.value.name, "reject",
                                        "global_peak", new_peak_bytes=new_peak,
                                        baseline_peak_bytes=baseline_peak)
                        logger.debug("skip_opt: %s rolled back (peak %d >= %d)",
                                     skip.value.name, new_peak, baseline_peak)
                        continue
                    baseline_peak = new_peak
                stats.optimized += 1
                stats.copies_inserted += len(skip.far_uses)
                stats.nodes_copied += len(plan.nodes) * len(skip.far_uses)
                tracer.decision("skip_opt", skip.value.name, "accept", "ok",
                                skip_bytes=skip.value.nbytes,
                                chain_peak_bytes=plan.peak,
                                copies=len(skip.far_uses),
                                nodes_copied=len(plan.nodes) * len(skip.far_uses),
                                copy_flops=plan.flops * len(skip.far_uses))
                logger.info("skip_opt: optimized %s (%d B, %d restore copies)",
                            skip.value.name, skip.value.nbytes,
                            len(skip.far_uses))
        graph.dead_code_eliminate()
        graph.validate()
    return stats


def _apply(graph: Graph, skip: SkipConnection,
           plan: RestorePlan) -> list[tuple[Node, list[Node], Value]]:
    """Clone the restore chain before each far use; rewire the use.

    Returns rollback info: ``(use node, cloned nodes, original value)``.
    """
    inserted = []
    for use in skip.far_uses:
        mapping: dict[Value, Value] = {}
        clones: list[Node] = []
        for original in plan.nodes:
            new_inputs = [mapping.get(v, v) for v in original.inputs]
            out_name = graph.namer.fresh(original.output.name)
            out = Value(out_name, original.output.shape, original.output.dtype)
            clone = original.clone(name=graph.namer.fresh(original.name),
                                   inputs=new_inputs, output=out)
            mapping[original.output] = out
            clones.append(clone)
        graph.insert_before(use, clones)
        use.replace_input(skip.value, mapping[skip.value])
        inserted.append((use, clones, skip.value))
    return inserted


def _rollback(graph: Graph, skip: SkipConnection,
              inserted: list[tuple[Node, list[Node], Value]]) -> None:
    for use, clones, original_value in inserted:
        use.replace_input(clones[-1].output, original_value)
        for clone in clones:
            graph.remove_node(clone)
